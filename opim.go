// Package opim is a Go implementation of "Online Processing Algorithms for
// Influence Maximization" (Tang, Tang, Xiao, Yuan — SIGMOD 2018).
//
// It provides:
//
//   - OPIM — online processing of influence maximization: a pausable
//     session that streams random reverse-reachable (RR) sets and, at any
//     point, returns a seed set together with an instance-specific
//     approximation guarantee α holding with probability ≥ 1−δ.
//   - OPIM-C — the extension to conventional influence maximization:
//     given (k, ε, δ), return a (1−1/e−ε)-approximate size-k seed set with
//     probability ≥ 1−δ, typically with far fewer samples than IMM.
//   - The baselines the paper evaluates against (Borgs et al.'s OPIM, IMM,
//     SSA-Fix, D-SSA-Fix) and the full experiment harness regenerating the
//     paper's figures, under ./cmd and ./internal.
//
// RR-set collections are built by a sharded parallel pipeline (sampling,
// pool merge and inverted-index construction all run across workers) that
// is byte-identical for every worker count, and coverage/selection queries
// run on reusable epoch-marked scratch, so sessions allocate nothing on the
// snapshot hot path. Set Options.Workers (≤ 0 means GOMAXPROCS) to control
// parallelism.
//
// # Quick start
//
//	g, _ := opim.GenerateProfile("synth-pokec", 0, 1)
//	sampler := opim.NewSampler(g, opim.IC)
//	res, _ := opim.Maximize(sampler, 50, 0.1, 0.01, opim.Options{Variant: opim.Plus})
//	fmt.Println(res.Seeds, res.Alpha)
//
// Or interactively:
//
//	session, _ := opim.NewOnline(sampler, opim.Options{K: 50, Delta: 0.01, Variant: opim.Plus})
//	for session.NumRR() < 1e6 {
//		session.Advance(10000)
//		snap := session.Snapshot()
//		if snap.Alpha >= 0.8 { break } // user is satisfied
//	}
package opim

import (
	"io"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/heuristic"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// Graph is an immutable directed influence graph in CSR form.
type Graph = graph.Graph

// Edge is one directed edge with its propagation probability.
type Edge = graph.Edge

// Builder accumulates edges into a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for n nodes with an edge-capacity hint.
func NewBuilder(n int32, mHint int) *Builder { return graph.NewBuilder(n, mHint) }

// WeightScheme names an edge-probability assignment rule.
type WeightScheme = graph.WeightScheme

// Weight schemes for Reweight.
const (
	// WeightedCascade sets p(u,v) = 1/indeg(v), the paper's §8.1 setting.
	WeightedCascade = graph.WeightedCascade
	// Uniform sets a constant probability on every edge.
	Uniform = graph.Uniform
	// Trivalency draws each probability from {0.1, 0.01, 0.001}.
	Trivalency = graph.Trivalency
)

// Reweight returns a copy of g with probabilities reassigned by scheme.
func Reweight(g *Graph, scheme WeightScheme, p float64, seed uint64) (*Graph, error) {
	return graph.Reweight(g, scheme, p, seed)
}

// LoadGraph reads a graph from a text or binary edge-list file.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes g to a binary edge-list file.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// GenerateProfile produces one of the built-in synthetic dataset profiles
// ("synth-pokec", "synth-orkut", "synth-livejournal", "synth-twitter"),
// scaled down from the original dataset size by scale (0 = the profile
// default), with weighted-cascade probabilities.
func GenerateProfile(name string, scale int32, seed uint64) (*Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(scale, seed)
}

// ProfileNames lists the built-in synthetic dataset profiles.
func ProfileNames() []string {
	names := make([]string, len(gen.Profiles))
	for i, p := range gen.Profiles {
		names[i] = p.Name
	}
	return names
}

// Model selects the diffusion model.
type Model = diffusion.Model

// Supported diffusion models.
const (
	// IC is the independent cascade model.
	IC = diffusion.IC
	// LT is the linear threshold model.
	LT = diffusion.LT
)

// Estimate is a Monte-Carlo spread estimate.
type Estimate = diffusion.Estimate

// EstimateSpread estimates σ(seeds) by averaging runs Monte-Carlo cascade
// simulations (the paper uses 10 000), parallelized over workers
// (0 = GOMAXPROCS). Deterministic for fixed (seed, runs).
func EstimateSpread(g *Graph, model Model, seeds []int32, runs int, seed uint64, workers int) Estimate {
	return diffusion.EstimateSpread(g, model, seeds, runs, seed, workers)
}

// Sampler draws random RR sets on one graph under one diffusion model; it
// is immutable and shared by all algorithms run on the same input.
type Sampler = rrset.Sampler

// NewSampler builds a Sampler (for LT this precomputes per-node alias
// tables in O(n+m)).
func NewSampler(g *Graph, model Model) *Sampler { return rrset.NewSampler(g, model) }

// TriggeringDistribution samples the random triggering sets of the general
// triggering model [Kempe et al. 2003]; members must be in-neighbors of v
// with no duplicates. trigger.NewIC and trigger.NewLT are built-ins; any
// user implementation extends every algorithm here to that model.
type TriggeringDistribution = rrset.TriggeringDistribution

// NewHopSampler builds a Sampler for the HOP-LIMITED spread σ_h: RR sets
// are truncated at maxHops reverse steps, so every algorithm optimizes and
// certifies expected activations within maxHops rounds of the seeds (the
// hop-based objective family; evaluate with a hop-limited simulation).
func NewHopSampler(g *Graph, model Model, maxHops int) *Sampler {
	return rrset.NewSamplerHops(g, model, maxHops)
}

// NewTriggeringSampler builds a Sampler over an arbitrary triggering
// distribution, so OPIM and OPIM-C run on any triggering model (the
// generality under which the paper states Theorem 6.4).
func NewTriggeringSampler(g *Graph, dist TriggeringDistribution) *Sampler {
	return rrset.NewSamplerTriggering(g, dist)
}

// TopDegree returns the k nodes of largest out-degree — a guarantee-free
// baseline useful for sanity checks.
func TopDegree(g *Graph, k int) []int32 { return heuristic.TopDegree(g, k) }

// TopPageRank returns the k nodes of largest PageRank (damping 0.85).
// PageRank ranks authority; for seed selection prefer TopReversePageRank.
func TopPageRank(g *Graph, k int) []int32 { return heuristic.TopPageRank(g, k) }

// TopReversePageRank returns the k nodes of largest PageRank on the
// transposed graph — the influence-relevant PageRank heuristic.
func TopReversePageRank(g *Graph, k int) ([]int32, error) {
	return heuristic.TopReversePageRank(g, k)
}

// DegreeDiscount returns k seeds via the degree-discount IC heuristic of
// Chen et al. (KDD 2009) with uniform probability p.
func DegreeDiscount(g *Graph, k int, p float64) []int32 {
	return heuristic.DegreeDiscount(g, k, p)
}

// Variant selects how the optimum upper bound σᵘ(S°) is derived.
type Variant = core.Variant

// Guarantee variants, named as in the paper.
const (
	// Vanilla is OPIM⁰ (eq. 8).
	Vanilla = core.Vanilla
	// Plus is OPIM⁺ (eq. 13) — recommended; never worse than Vanilla.
	Plus = core.Plus
	// Prime is OPIM′ (eq. 15).
	Prime = core.Prime
)

// Options configures NewOnline and Maximize.
type Options = core.Options

// Generator produces a session's RR sets. The default is in-process
// sampling (LocalGenerator); a fleet coordinator distributing generation
// over worker processes plugs in here (Options.Generator) without the
// session observing any difference — the determinism contract makes the
// two byte-identical.
type Generator = core.Generator

// LocalGenerator is the default Generator: in-process sampling.
type LocalGenerator = core.LocalGenerator

// Online is a pausable OPIM session.
type Online = core.Online

// Snapshot is one paused answer: a seed set plus its guarantee.
type Snapshot = core.Snapshot

// NewOnline starts an OPIM session on the sampler's graph.
func NewOnline(sampler *Sampler, opts Options) (*Online, error) {
	return core.NewOnline(sampler, opts)
}

// SaveSession serializes a paused Online session; the graph itself is not
// saved (LoadSession requires an equivalent sampler).
func SaveSession(w io.Writer, o *Online) error { return core.SaveSession(w, o) }

// LoadSession restores a session saved by SaveSession onto a sampler built
// over the same graph and model. A resumed session continues the exact
// sample stream of the original: save → load → Advance is byte-identical
// to never pausing.
func LoadSession(r io.Reader, sampler *Sampler) (*Online, error) {
	return core.LoadSession(r, sampler)
}

// EventSink receives the structured events emitted through
// Options.Events: one "snapshot" event per Online.Snapshot and one
// "round" + final "maximize" event per Maximize run, each carrying the
// paper quantities (θ1, θ2, Λ1, Λ2, σˡ, σᵘ, α) at that instant. See
// docs/OBSERVABILITY.md for the event catalogue.
type EventSink = obs.Sink

// JSONLEventSink writes events as JSON Lines (one object per line).
type JSONLEventSink = obs.JSONLSink

// NewJSONLEventSink wraps w in a JSON Lines event sink; the caller
// retains ownership of w (Close only flushes).
func NewJSONLEventSink(w io.Writer) *JSONLEventSink { return obs.NewJSONLSink(w) }

// CreateJSONLEventSink creates (or truncates) path and returns a sink
// that owns the file: Close flushes and closes it.
func CreateJSONLEventSink(path string) (*JSONLEventSink, error) { return obs.CreateJSONL(path) }

// MetricsRegistry is a namespace of process metrics (counters, gauges,
// timers) with JSON and text exposition.
type MetricsRegistry = obs.Registry

// Metrics returns the process-wide metrics registry that the library's
// hot paths report into (RR-set generation throughput, latest-snapshot
// guarantee gauges) and that opimd's GET /metrics exposes.
func Metrics() *MetricsRegistry { return obs.Default() }

// CResult is the outcome of one OPIM-C run.
type CResult = core.CResult

// Maximize runs OPIM-C (Algorithm 2): conventional influence maximization
// with a (1−1/e−ε) guarantee holding with probability ≥ 1−δ. opts.K and
// opts.Delta are overridden by the explicit parameters.
func Maximize(sampler *Sampler, k int, eps, delta float64, opts Options) (*CResult, error) {
	return core.Maximize(sampler, k, eps, delta, opts)
}
