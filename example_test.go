package opim_test

import (
	"fmt"

	"github.com/reprolab/opim"
)

// ExampleMaximize runs OPIM-C end to end: a synthetic network, a
// (1−1/e−0.2)-approximate size-5 seed set, and a Monte-Carlo check of the
// result. All randomness is seeded, so the output is reproducible.
func ExampleMaximize() {
	g, err := opim.GenerateProfile("synth-pokec", 8000, 7)
	if err != nil {
		panic(err)
	}
	sampler := opim.NewSampler(g, opim.IC)
	res, err := opim.Maximize(sampler, 5, 0.2, 0.05, opim.Options{Variant: opim.Plus, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("seeds: %d, certified: %v\n", len(res.Seeds), res.Alpha >= res.Target)
	// Output:
	// n=204 m=3394
	// seeds: 5, certified: true
}

// ExampleNewOnline shows the online-processing paradigm: advance the
// sample stream, pause, and read an instance-specific guarantee.
func ExampleNewOnline() {
	g, err := opim.GenerateProfile("synth-pokec", 8000, 7)
	if err != nil {
		panic(err)
	}
	session, err := opim.NewOnline(opim.NewSampler(g, opim.IC), opim.Options{
		K: 5, Delta: 0.05, Variant: opim.Plus, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	session.Advance(20000)
	snap := session.Snapshot()
	fmt.Printf("α=%.2f with %d RR sets\n", snap.Alpha, session.NumRR())
	// Output:
	// α=0.79 with 20000 RR sets
}

// ExampleEstimateSpread evaluates a seed set the way the paper's
// experiments do: averaged Monte-Carlo cascades.
func ExampleEstimateSpread() {
	g, err := opim.GenerateProfile("synth-pokec", 8000, 7)
	if err != nil {
		panic(err)
	}
	seeds := opim.TopDegree(g, 5)
	est := opim.EstimateSpread(g, opim.IC, seeds, 5000, 1, 1)
	fmt.Printf("spread of top-degree seeds: %.0f of %d nodes\n", est.Spread, g.N())
	// Output:
	// spread of top-degree seeds: 22 of 204 nodes
}
