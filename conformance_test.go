package opim

// Conformance matrix: every guarantee-bearing algorithm in the repository
// (OPIM-C in all variants, IMM, TIM, SSA-Fix, D-SSA-Fix, and the original
// Monte-Carlo greedy) run across diffusion models and graph families, with
// their seed-set spreads required to agree within a band. This is the
// whole-system integration net: a regression anywhere in sampling, greedy
// selection or bound computation shows up as one cell diverging.

import (
	"fmt"
	"testing"

	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/imm"
	"github.com/reprolab/opim/internal/mcgreedy"
	"github.com/reprolab/opim/internal/ssa"
	"github.com/reprolab/opim/internal/tim"
)

func conformanceGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{}

	pa, err := gen.PreferentialAttachment(600, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out["power-law"], err = graph.Reweight(pa, graph.WeightedCascade, 0, 2); err != nil {
		t.Fatal(err)
	}

	er, err := gen.ErdosRenyi(500, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out["erdos-renyi"], err = graph.Reweight(er, graph.WeightedCascade, 0, 4); err != nil {
		t.Fatal(err)
	}

	sbm, err := gen.StochasticBlock(400, 4, 0.06, 0.005, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out["communities"], err = graph.Reweight(sbm, graph.WeightedCascade, 0, 6); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix skipped in -short mode")
	}
	const (
		k     = 8
		eps   = 0.3
		delta = 0.1
	)
	for gname, g := range conformanceGraphs(t) {
		for _, model := range []Model{IC, LT} {
			t.Run(fmt.Sprintf("%s/%v", gname, model), func(t *testing.T) {
				sampler := NewSampler(g, model)
				spreads := map[string]float64{}
				record := func(name string, seeds []int32, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if len(seeds) != k {
						t.Fatalf("%s returned %d seeds", name, len(seeds))
					}
					est := EstimateSpread(g, model, seeds, 8000, 99, 0)
					spreads[name] = est.Spread
				}

				for _, v := range []Variant{Vanilla, Plus, Prime} {
					res, err := Maximize(sampler, k, eps, delta, Options{Variant: v, Seed: 7})
					record("OPIM-C/"+v.String(), res.Seeds, err)
				}
				ires, err := imm.Run(sampler, k, eps, delta, 7, 0)
				record("IMM", ires.Seeds, err)
				tres, err := tim.Run(sampler, k, eps, delta, 7, 0)
				record("TIM", tres.Seeds, err)
				sres, err := ssa.RunSSAFix(sampler, k, eps, delta, 7, 0)
				record("SSA-Fix", sres.Seeds, err)
				dres, err := ssa.RunDSSAFix(sampler, k, eps, delta, 7, 0)
				record("D-SSA-Fix", dres.Seeds, err)
				mres, err := mcgreedy.Run(g, model, k, 120, 7)
				record("MC-greedy", mres.Seeds, err)

				// Every pair must be within 25% — they all approximate the
				// same optimum with ≥ (1−1/e−0.3) quality.
				var worstLo, worstHi float64
				var loName, hiName string
				for name, s := range spreads {
					if worstLo == 0 || s < worstLo {
						worstLo, loName = s, name
					}
					if s > worstHi {
						worstHi, hiName = s, name
					}
				}
				if worstLo < 0.75*worstHi {
					t.Fatalf("spread divergence: %s=%.1f vs %s=%.1f\nall: %v",
						loName, worstLo, hiName, worstHi, spreads)
				}
			})
		}
	}
}
