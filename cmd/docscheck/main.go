// Command docscheck verifies that relative markdown links resolve, so the
// cross-references between README.md and the docs/ pages cannot rot. CI
// runs it over the repository root; it walks every .md file (skipping
// hidden directories and testdata), extracts [text](target) links outside
// fenced code blocks, and fails listing each link whose target file does
// not exist. External (http/https/mailto) and same-page fragment links are
// out of scope.
//
// Usage:
//
//	docscheck [dir ...]   (default ".")
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches [text](target); nested parentheses in targets are not
// used in this repo.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	broken := 0
	files := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".md") {
				return nil
			}
			files++
			broken += checkFile(path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
	}
	if broken > 0 {
		fmt.Printf("docscheck: %d broken link(s) across %d markdown file(s)\n", broken, files)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown file(s), all relative links resolve\n", files)
}

// checkFile reports each broken relative link in one markdown file and
// returns how many it found.
func checkFile(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 1
	}
	defer f.Close()

	broken := 0
	inFence := false
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop fragment
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %q (%s)\n", path, lineNo, m[1], resolved)
				broken++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: reading %s: %v\n", path, err)
		broken++
	}
	return broken
}
