// Command imbench regenerates the paper's tables and figures on the
// synthetic dataset profiles. Each experiment prints the same rows/series
// the paper plots; see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	imbench -exp fig2                    # Figure 2 (LT, k=50, four graphs)
//	imbench -exp fig6 -eps 0.3,0.2,0.1  # Figure 6 with a custom ε grid
//	imbench -exp all -scale 40000       # everything, tiny graphs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/experiments"
	"github.com/reprolab/opim/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig1,fig2,fig3,fig4,fig5,fig6,fig7,tab1,tab2,agree,all")
		scale   = flag.Int("scale", 0, "profile scale divisor (0 = per-profile default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		reps    = flag.Int("reps", 3, "repetitions per data point (paper: 50)")
		mc      = flag.Int("mc", 10000, "Monte-Carlo runs per spread estimate")
		k       = flag.Int("k", 50, "seed set size for the k=50 experiments")
		workers = flag.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		maxCP   = flag.Int("checkpoints", 11, "number of 1000·2^i checkpoints")
		chart   = flag.Bool("chart", false, "render online panels as ASCII charts")
		rrCap   = flag.Int64("rrcap", 50_000_000, "per-run RR-set safety cap for fig6/fig7 (0 = unlimited)")
		epsList = flag.String("eps", "", "comma-separated ε grid for fig6/fig7 (default 0.3,0.2,0.1,0.05)")
		logEv   = flag.String("log-events", "", "write a JSONL event per measured data point to this file")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Scale = int32(*scale)
	cfg.Seed = *seed
	cfg.Reps = *reps
	cfg.MCRuns = *mc
	cfg.K = *k
	cfg.Workers = *workers
	cfg.Chart = *chart
	if *logEv != "" {
		sink, err := obs.CreateJSONL(*logEv)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "imbench: closing %s: %v\n", *logEv, err)
			}
		}()
		cfg.Events = sink
	}
	if *maxCP > 0 && *maxCP < len(cfg.Checkpoints) {
		cfg.Checkpoints = cfg.Checkpoints[:*maxCP]
	}
	if *epsList != "" {
		var grid []float64
		for _, f := range strings.Split(*epsList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatalf("bad -eps entry %q: %v", f, err)
			}
			grid = append(grid, v)
		}
		cfg.EpsGrid = grid
	}

	run := func(id string) {
		var err error
		switch id {
		case "fig1":
			experiments.Fig1(os.Stdout)
		case "fig2":
			fmt.Println("\n### Figure 2: OPIM approximation guarantee, LT, k =", cfg.K)
			err = cfg.FigOnlineAllGraphs(os.Stdout, diffusion.LT)
		case "fig3":
			fmt.Println("\n### Figure 3: varying k on synth-twitter, LT")
			err = cfg.FigOnlineVaryK(os.Stdout, diffusion.LT)
		case "fig4":
			fmt.Println("\n### Figure 4: OPIM approximation guarantee, IC, k =", cfg.K)
			err = cfg.FigOnlineAllGraphs(os.Stdout, diffusion.IC)
		case "fig5":
			fmt.Println("\n### Figure 5: varying k on synth-twitter, IC")
			err = cfg.FigOnlineVaryK(os.Stdout, diffusion.IC)
		case "fig6":
			fmt.Println("\n### Figure 6: conventional influence maximization, LT")
			err = cfg.FigConventional(os.Stdout, diffusion.LT, *rrCap)
		case "fig7":
			fmt.Println("\n### Figure 7: conventional influence maximization, IC")
			err = cfg.FigConventional(os.Stdout, diffusion.IC, *rrCap)
		case "tab1":
			err = cfg.Tab1(os.Stdout)
		case "agree":
			fmt.Println("\n### Algorithm agreement analysis")
			err = cfg.Agreement(os.Stdout, diffusion.IC, cfg.EpsGrid[len(cfg.EpsGrid)-1])
		case "tab2":
			err = cfg.Tab2(os.Stdout)
		default:
			fatalf("unknown experiment %q", id)
		}
		if err != nil {
			fatalf("%s: %v", id, err)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"tab2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "tab1"} {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imbench: "+format+"\n", args...)
	os.Exit(1)
}
