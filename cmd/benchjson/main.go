// Command benchjson turns `go test -bench` output into a committed JSON
// snapshot and gates benchmark regressions in CI. It is the harness behind
// BENCH_opim.json and docs/PERFORMANCE.md's trajectory table.
//
// Capture a snapshot:
//
//	go test -run xxx -bench 'Kernels|LoadFile' -benchtime 2s ./... | benchjson -out BENCH_opim.json
//
// Compare a fresh run against the committed snapshot (exit 1 when any
// matched benchmark is more than -fail times slower, unless -warn-only):
//
//	go test -run xxx -bench ... ./... | benchjson -compare BENCH_opim.json -fail 1.25 -warn-only
//
// Enforce a machine-independent ratio between two benchmarks from the same
// run — immune to runner speed, the hard gate used on shared CI:
//
//	go test ... | benchjson -ratio 'BenchmarkGreedyKernels/counting:BenchmarkGreedyKernels/bitset' -min 1.5
//
// Input is `go test -bench` text (GOMAXPROCS name suffixes stripped,
// repeated runs collapsed to their minimum ns/op) or a previously written
// snapshot JSON; -in defaults to stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the committed benchmark file (schema opim-bench/v1).
type Snapshot struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPU        string           `json:"cpu,omitempty"`
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Bench is one benchmark's best observed run.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

const schemaV1 = "opim-bench/v1"

func main() {
	var (
		in       = flag.String("in", "-", "bench output or snapshot JSON ('-' = stdin)")
		out      = flag.String("out", "", "write parsed snapshot JSON to this path")
		note     = flag.String("note", "", "free-form note stored in the snapshot")
		compare  = flag.String("compare", "", "baseline snapshot JSON to compare against")
		warn     = flag.Float64("warn", 1.10, "compare: print a warning above this cur/base ratio")
		failAt   = flag.Float64("fail", 1.25, "compare: fail above this cur/base ratio")
		warnOnly = flag.Bool("warn-only", false, "compare: report regressions but always exit 0")
		match    = flag.String("match", "", "compare: only gate benchmarks matching this regexp")
		ratio    = flag.String("ratio", "", "ratio gate 'A:B': require ns(A)/ns(B) ≥ -min")
		minRatio = flag.Float64("min", 1.0, "ratio: minimum required A/B speedup")
	)
	flag.Parse()

	snap, err := load(*in)
	if err != nil {
		fatalf("%v", err)
	}
	if len(snap.Benchmarks) == 0 {
		fatalf("no benchmark results in %s", *in)
	}
	snap.Note = *note

	if *out != "" {
		if err := write(*out, snap); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
	}

	ok := true
	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fatalf("%v", err)
		}
		if !compareSnapshots(os.Stdout, base, snap, *match, *warn, *failAt) && !*warnOnly {
			ok = false
		}
	}
	if *ratio != "" {
		a, b, found := strings.Cut(*ratio, ":")
		if !found {
			fatalf("-ratio wants 'A:B', got %q", *ratio)
		}
		if !checkRatio(os.Stdout, snap, a, b, *minRatio) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// load reads either `go test -bench` text or snapshot JSON from path.
func load(path string) (*Snapshot, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	if first, err := br.Peek(1); err == nil && first[0] == '{' {
		var s Snapshot
		if err := json.NewDecoder(br).Decode(&s); err != nil {
			return nil, fmt.Errorf("parsing snapshot %s: %w", path, err)
		}
		if s.Schema != schemaV1 {
			return nil, fmt.Errorf("%s: unknown schema %q", path, s.Schema)
		}
		return &s, nil
	}
	return parseBenchText(br)
}

// benchLine matches one result line:
//
//	BenchmarkGreedyKernels/counting-8   43   25498506 ns/op   12 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// trailing GOMAXPROCS suffix on a benchmark name, e.g. "-8".
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchText parses `go test -bench` output. Repeated occurrences of a
// benchmark (e.g. -count=N) keep the minimum ns/op — the standard way to
// suppress scheduler noise when comparing.
func parseBenchText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		Schema:     schemaV1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Bench{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, found := strings.CutPrefix(line, "cpu: "); found {
			snap.CPU = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Bench{NsPerOp: ns, Runs: 1}
		fields := strings.Fields(m[4])
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if prev, seen := snap.Benchmarks[name]; seen {
			b.Runs = prev.Runs + 1
			if prev.NsPerOp < b.NsPerOp {
				b.NsPerOp, b.BytesPerOp, b.AllocsPerOp = prev.NsPerOp, prev.BytesPerOp, prev.AllocsPerOp
			}
		}
		snap.Benchmarks[name] = b
	}
	return snap, sc.Err()
}

func write(path string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareSnapshots reports every benchmark present in both snapshots, in
// name order, and returns false if any matched one regressed past failAt.
// Benchmarks only on one side are listed but never gate — adding or
// retiring a benchmark must not break CI.
func compareSnapshots(w io.Writer, base, cur *Snapshot, match string, warnAt, failAt float64) bool {
	var re *regexp.Regexp
	if match != "" {
		re = regexp.MustCompile(match)
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		b, inBase := base.Benchmarks[name]
		c := cur.Benchmarks[name]
		if !inBase {
			fmt.Fprintf(w, "  new      %-55s %12.0f ns/op\n", name, c.NsPerOp)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		switch {
		case re != nil && !re.MatchString(name):
			status = "ungated"
		case ratio > failAt:
			status = "FAIL"
			ok = false
		case ratio > warnAt:
			status = "warn"
		}
		fmt.Fprintf(w, "  %-8s %-55s %12.0f ns/op  base %12.0f  ratio %.2f\n",
			status, name, c.NsPerOp, b.NsPerOp, ratio)
	}
	for name := range base.Benchmarks {
		if _, still := cur.Benchmarks[name]; !still {
			fmt.Fprintf(w, "  gone     %s\n", name)
		}
	}
	return ok
}

// checkRatio requires ns(a)/ns(b) ≥ min — a same-machine comparison, so it
// holds on any runner regardless of absolute speed.
func checkRatio(w io.Writer, snap *Snapshot, a, b string, min float64) bool {
	ba, oka := snap.Benchmarks[a]
	bb, okb := snap.Benchmarks[b]
	if !oka || !okb {
		fmt.Fprintf(w, "ratio %s:%s: missing benchmark (have %v, %v)\n", a, b, oka, okb)
		return false
	}
	got := ba.NsPerOp / bb.NsPerOp
	if got < min {
		fmt.Fprintf(w, "ratio FAIL: %s / %s = %.2fx, want ≥ %.2fx\n", a, b, got, min)
		return false
	}
	fmt.Fprintf(w, "ratio ok: %s / %s = %.2fx (≥ %.2fx)\n", a, b, got, min)
	return true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
