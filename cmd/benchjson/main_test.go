package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/reprolab/opim/internal/maxcover
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGreedyKernels/counting-8         	      45	  25498506 ns/op
BenchmarkGreedyKernels/bitset-8           	     180	   6576234 ns/op	 2097152 B/op	       3 allocs/op
BenchmarkGreedyKernels/bitset-8           	     181	   6400000 ns/op	 2097152 B/op	       3 allocs/op
BenchmarkLoadFile/csr_mmap-8              	   18000	     64184 ns/op
PASS
ok  	github.com/reprolab/opim/internal/maxcover	4.2s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parseBenchText(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParseBenchText(t *testing.T) {
	snap := parseSample(t)
	if snap.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	counting := snap.Benchmarks["BenchmarkGreedyKernels/counting"]
	if counting.NsPerOp != 25498506 || counting.Runs != 1 {
		t.Errorf("counting = %+v", counting)
	}
	// Repeated runs keep the minimum and count both.
	bitset := snap.Benchmarks["BenchmarkGreedyKernels/bitset"]
	if bitset.NsPerOp != 6400000 || bitset.Runs != 2 {
		t.Errorf("bitset = %+v", bitset)
	}
	if bitset.BytesPerOp != 2097152 || bitset.AllocsPerOp != 3 {
		t.Errorf("bitset mem stats = %+v", bitset)
	}
}

func TestCompareSnapshots(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)

	var out strings.Builder
	if !compareSnapshots(&out, base, cur, "", 1.10, 1.25) {
		t.Errorf("identical snapshots failed compare:\n%s", out.String())
	}

	// 2x regression on a gated benchmark fails...
	slow := cur.Benchmarks["BenchmarkGreedyKernels/bitset"]
	slow.NsPerOp *= 2
	cur.Benchmarks["BenchmarkGreedyKernels/bitset"] = slow
	out.Reset()
	if compareSnapshots(&out, base, cur, "", 1.10, 1.25) {
		t.Errorf("2x regression passed compare:\n%s", out.String())
	}
	// ...but is ignored when -match excludes it.
	out.Reset()
	if !compareSnapshots(&out, base, cur, "LoadFile", 1.10, 1.25) {
		t.Errorf("unmatched regression gated anyway:\n%s", out.String())
	}
	// New/removed benchmarks never gate.
	delete(cur.Benchmarks, "BenchmarkGreedyKernels/bitset")
	cur.Benchmarks["BenchmarkBrandNew"] = Bench{NsPerOp: 1, Runs: 1}
	out.Reset()
	if !compareSnapshots(&out, base, cur, "", 1.10, 1.25) {
		t.Errorf("added/removed benchmarks gated:\n%s", out.String())
	}
}

func TestCheckRatio(t *testing.T) {
	snap := parseSample(t)
	var out strings.Builder
	if !checkRatio(&out, snap, "BenchmarkGreedyKernels/counting", "BenchmarkGreedyKernels/bitset", 1.5) {
		t.Errorf("3.98x speedup failed a 1.5x gate:\n%s", out.String())
	}
	if checkRatio(&out, snap, "BenchmarkGreedyKernels/counting", "BenchmarkGreedyKernels/bitset", 10) {
		t.Error("3.98x speedup passed a 10x gate")
	}
	if checkRatio(&out, snap, "BenchmarkNope", "BenchmarkGreedyKernels/bitset", 1) {
		t.Error("missing benchmark passed ratio gate")
	}
}
