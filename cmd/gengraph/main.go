// Command gengraph emits synthetic graphs to disk, either a named dataset
// profile (Table 2 stand-ins) or a raw generator.
//
// Usage:
//
//	gengraph -profile synth-twitter -scale 800 -out twitter.bin
//	gengraph -gen pa -n 100000 -deg 10 -weights wc -out pa.txt -format text
//	gengraph -gen er -n 10000 -m 100000 -weights uniform:0.01 -out er.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
)

func main() {
	var (
		profile = flag.String("profile", "", "dataset profile name (overrides -gen)")
		scale   = flag.Int("scale", 0, "profile scale divisor (0 = default)")
		genName = flag.String("gen", "pa", "generator: pa | er | ws | grid | sbm | cm")
		degFile = flag.String("degfile", "", "degree-sequence file for cm: one 'outdeg indeg' pair per line")
		n       = flag.Int("n", 10000, "node count (pa/er/ws)")
		m       = flag.Int64("m", 0, "edge count (er; 0 = 10n)")
		deg     = flag.Int("deg", 10, "out-degree (pa) / ring degree (ws)")
		mix     = flag.Float64("mix", 0.15, "uniform-mixing probability (pa)")
		beta    = flag.Float64("beta", 0.2, "rewire probability (ws)")
		rows    = flag.Int("rows", 100, "grid rows")
		cols    = flag.Int("cols", 100, "grid cols")
		blocks  = flag.Int("blocks", 4, "communities (sbm)")
		pIn     = flag.Float64("pin", 0.05, "within-community link probability (sbm)")
		pOut    = flag.Float64("pout", 0.005, "across-community link probability (sbm)")
		weights = flag.String("weights", "wc", "wc | uniform:<p> | trivalency | none")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (required)")
		format  = flag.String("format", "binary", "binary | csr | text")
	)
	flag.Parse()
	if *out == "" {
		fatalf("-out is required")
	}

	var g *opim.Graph
	var err error
	if *profile != "" {
		// Profiles route through GraphSpec so gengraph resolves a profile
		// name exactly like opimd/opimcli would for the same spec string.
		spec := cliutil.GraphSpec{Profile: *profile, Scale: *scale, Seed: *seed}
		g, _, err = spec.Load()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		switch *genName {
		case "pa":
			g, err = gen.PreferentialAttachment(int32(*n), *deg, *mix, *seed)
		case "er":
			mm := *m
			if mm == 0 {
				mm = int64(*n) * 10
			}
			g, err = gen.ErdosRenyi(int32(*n), mm, *seed)
		case "ws":
			g, err = gen.WattsStrogatz(int32(*n), *deg, *beta, *seed)
		case "grid":
			g, err = gen.Grid(int32(*rows), int32(*cols))
		case "sbm":
			g, err = gen.StochasticBlock(int32(*n), *blocks, *pIn, *pOut, *seed)
		case "cm":
			var outDeg, inDeg []int32
			outDeg, inDeg, err = readDegreeFile(*degFile)
			if err == nil {
				g, err = gen.ConfigurationModel(outDeg, inDeg, *seed)
			}
		default:
			fatalf("unknown generator %q", *genName)
		}
		if err != nil {
			fatalf("%v", err)
		}
		g, err = cliutil.ApplyWeights(g, *weights, *seed+1)
		if err != nil {
			fatalf("%v", err)
		}
	}

	st := g.ComputeStats()
	fmt.Printf("generated: n=%d m=%d avg-outdeg=%.2f max-indeg=%d\n", st.N, st.M, st.AvgOutDeg, st.MaxInDeg)

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = graph.WriteBinary(f, g)
	case "csr":
		// OPIMG2: the serving cache format opimd loads via mmap.
		err = graph.WriteCSR(f, g)
	case "text":
		err = graph.WriteText(f, g)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	// The fingerprint lets operators check that a graph registered in an
	// opimd catalog (or named in an OPIMS3 checkpoint) is this exact file.
	fmt.Printf("wrote %s (%s) fingerprint=%s\n", *out, *format, g.Fingerprint())
}

// readDegreeFile parses one "outdeg indeg" pair per line ('#' comments and
// blank lines ignored).
func readDegreeFile(path string) (outDeg, inDeg []int32, err error) {
	if path == "" {
		return nil, nil, fmt.Errorf("-gen cm requires -degfile")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var o, i int32
		if _, err := fmt.Sscanf(line, "%d %d", &o, &i); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		outDeg = append(outDeg, o)
		inDeg = append(inDeg, i)
	}
	return outDeg, inDeg, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gengraph: "+format+"\n", args...)
	os.Exit(1)
}
