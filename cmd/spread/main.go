// Command spread evaluates a seed set's expected influence spread by
// Monte-Carlo simulation (the paper's evaluation method: 10 000 runs).
//
// Usage:
//
//	spread -graph g.bin -model IC -seeds 5,17,20942
//	spread -profile synth-pokec -model LT -seedfile seeds.txt -mc 10000
//
// The seed file holds one node id per line ('#' comments allowed).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
)

func main() {
	var spec cliutil.GraphSpec
	spec.RegisterFlags(flag.CommandLine)
	var (
		seedsCSV = flag.String("seeds", "", "comma-separated node ids")
		seedFile = flag.String("seedfile", "", "file with one node id per line")
		mc       = flag.Int("mc", 10000, "Monte-Carlo runs")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec.Seed = *seed
	g, model, err := spec.Load()
	if err != nil {
		fatalf("%v", err)
	}
	seeds, err := cliutil.ParseSeeds(*seedsCSV, *seedFile, g.N())
	if err != nil {
		fatalf("%v", err)
	}
	if len(seeds) == 0 {
		fatalf("no seeds given: use -seeds or -seedfile")
	}

	est := opim.EstimateSpread(g, model, seeds, *mc, *seed, *workers)
	fmt.Printf("graph n=%d m=%d model=%v |S|=%d\n", g.N(), g.M(), model, len(seeds))
	fmt.Printf("spread: %v\n", est)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spread: "+format+"\n", args...)
	os.Exit(1)
}
