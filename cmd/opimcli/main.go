// Command opimcli runs an interactive-style OPIM session: it streams RR
// sets, periodically printing the current seed set quality and
// approximation guarantee, and stops when the guarantee reaches -target,
// the RR budget is exhausted, or the time budget expires — whichever comes
// first. This is the paper's online-processing user experience on the
// command line.
//
// Usage:
//
//	opimcli -profile synth-pokec -model LT -k 50 -target 0.8
//	opimcli -graph edges.txt -weights wc -model IC -k 10 -budget 2000000 -o seeds.txt
//	opimcli -profile synth-pokec -k 50 -log-events run.jsonl   # replayable JSONL trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/obs"
)

func main() {
	var spec cliutil.GraphSpec
	spec.RegisterFlags(flag.CommandLine)
	var (
		k         = flag.Int("k", 50, "seed set size")
		deltaF    = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		variantN  = flag.String("variant", "plus", "guarantee variant: vanilla | plus | prime")
		target    = flag.Float64("target", 0.85, "stop once α reaches this")
		budget    = flag.Int64("budget", 1<<21, "max RR sets")
		timeout   = flag.Duration("timeout", 5*time.Minute, "wall-clock budget")
		step      = flag.Int("step", 0, "RR sets per progress report (0 = doubling from 1000)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		union     = flag.Bool("union", false, "union-budget mode: all reports valid simultaneously with prob ≥ 1−δ")
		mc        = flag.Int("mc", 0, "if > 0, Monte-Carlo runs to evaluate the final seed set")
		outSeeds  = flag.String("o", "", "write the final seed set to this file (one id per line)")
		logEvents = flag.String("log-events", "", "write a JSONL event per snapshot to this file (see docs/OBSERVABILITY.md)")
		resume    = flag.String("resume", "", "resume a session saved with -save (graph flags must match)")
		save      = flag.String("save", "", "save the session here on exit, for later -resume")
		repl      = flag.Bool("i", false, "interactive mode: read commands from stdin (type 'help')")
	)
	flag.Parse()

	spec.Seed = *seed
	g, model, err := spec.Load()
	if err != nil {
		fatalf("%v", err)
	}
	variant, err := cliutil.ParseVariant(*variantN)
	if err != nil {
		fatalf("%v", err)
	}
	delta := *deltaF
	if delta <= 0 {
		delta = 1 / float64(g.N())
	}

	fmt.Printf("graph: n=%d m=%d  model=%v  k=%d  δ=%.2e  variant=%v\n", g.N(), g.M(), model, *k, delta, variant)
	var events *opim.JSONLEventSink
	if *logEvents != "" {
		events, err = obs.CreateJSONL(*logEvents)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "opimcli: closing %s: %v\n", *logEvents, err)
			}
		}()
	}
	sampler := opim.NewSampler(g, model)
	var session *opim.Online
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatalf("%v", err)
		}
		session, err = opim.LoadSession(f, sampler)
		f.Close()
		if err != nil {
			fatalf("resuming %s: %v", *resume, err)
		}
		if events != nil {
			session.SetEvents(events)
		}
		fmt.Printf("resumed session with %d RR sets\n", session.NumRR())
	} else {
		opts := opim.Options{
			K: *k, Delta: delta, Variant: variant, Seed: *seed, Workers: *workers, UnionBudget: *union,
		}
		if events != nil {
			opts.Events = events
		}
		session, err = opim.NewOnline(sampler, opts)
		if err != nil {
			fatalf("%v", err)
		}
	}

	if *repl {
		cliutil.RunREPL(os.Stdin, os.Stdout, session, g, model, *workers, *seed)
		return
	}

	start := time.Now()
	next := int64(1000)
	var snap *opim.Snapshot
	for {
		if *step > 0 {
			next = session.NumRR() + int64(*step)
		}
		if next > *budget {
			next = *budget
		}
		session.AdvanceTo(next)
		snap = session.Snapshot()
		fmt.Printf("%8.2fs  #RR=%9d  α=%.4f  σˡ=%.1f  σᵘ=%.1f\n",
			time.Since(start).Seconds(), session.NumRR(), snap.Alpha, snap.SigmaLower, snap.SigmaUpper)
		switch {
		case snap.Alpha >= *target:
			fmt.Printf("target α=%.2f reached\n", *target)
		case session.NumRR() >= *budget:
			fmt.Println("RR budget exhausted")
		case time.Since(start) >= *timeout:
			fmt.Println("time budget exhausted")
		default:
			if *step == 0 {
				next *= 2
			}
			continue
		}
		break
	}

	fmt.Printf("seeds: %v\n", snap.Seeds)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("%v", err)
		}
		if err := opim.SaveSession(f, session); err != nil {
			f.Close()
			fatalf("saving %s: %v", *save, err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving %s: %v", *save, err)
		}
		fmt.Printf("session saved to %s (resume with -resume %s)\n", *save, *save)
	}
	if *outSeeds != "" {
		if err := cliutil.WriteSeeds(*outSeeds, snap.Seeds); err != nil {
			fatalf("writing %s: %v", *outSeeds, err)
		}
		fmt.Printf("wrote %s\n", *outSeeds)
	}
	if *mc > 0 {
		est := opim.EstimateSpread(g, model, snap.Seeds, *mc, *seed+999, *workers)
		fmt.Printf("Monte-Carlo spread: %v\n", est)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opimcli: "+format+"\n", args...)
	os.Exit(1)
}
