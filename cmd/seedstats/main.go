// Command seedstats analyzes and compares seed sets: the prefix spread
// curve (diminishing returns), and when several algorithms are run on the
// same input, the agreement matrix and spread comparison between them.
//
// Usage:
//
//	seedstats -profile synth-pokec -model IC -seedfile seeds.txt
//	seedstats -profile synth-pokec -model IC -k 20 -compare
//
// With -compare, seedstats runs OPIM-C⁺, IMM, SSA-Fix, D-SSA-Fix, TIM and
// the degree/PageRank heuristics at the given (k, ε, δ) and reports each
// one's spread plus the pairwise Jaccard agreement of their seed choices.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/analysis"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/imm"
	"github.com/reprolab/opim/internal/ssa"
	"github.com/reprolab/opim/internal/tim"
)

func main() {
	var spec cliutil.GraphSpec
	spec.RegisterFlags(flag.CommandLine)
	var (
		seedsCSV = flag.String("seeds", "", "comma-separated node ids to analyze")
		seedFile = flag.String("seedfile", "", "file with one node id per line")
		compare  = flag.Bool("compare", false, "run all algorithms and compare their outputs")
		k        = flag.Int("k", 20, "seed set size for -compare")
		eps      = flag.Float64("eps", 0.2, "ε for -compare")
		mc       = flag.Int("mc", 10000, "Monte-Carlo runs per estimate")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec.Seed = *seed
	g, model, err := spec.Load()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("graph: n=%d m=%d model=%v\n", g.N(), g.M(), model)

	if *compare {
		runComparison(g, model, *k, *eps, *mc, *seed, *workers)
		return
	}

	seeds, err := cliutil.ParseSeeds(*seedsCSV, *seedFile, g.N())
	if err != nil {
		fatalf("%v", err)
	}
	if len(seeds) == 0 {
		fatalf("no seeds given: use -seeds, -seedfile, or -compare")
	}
	fmt.Printf("\nprefix spread curve (|S| = %d):\n", len(seeds))
	curve := analysis.SpreadCurve(g, model, seeds, *mc, *seed, *workers)
	analysis.PrintCurve(os.Stdout, curve)
}

func runComparison(g *opim.Graph, model opim.Model, k int, eps float64, mc int, seed uint64, workers int) {
	delta := 1 / float64(g.N())
	sampler := opim.NewSampler(g, model)

	names := []string{}
	sets := [][]int32{}
	add := func(name string, seeds []int32, err error) {
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		names = append(names, name)
		sets = append(sets, seeds)
	}

	cres, err := opim.Maximize(sampler, k, eps, delta, opim.Options{Variant: opim.Plus, Seed: seed, Workers: workers})
	add("OPIM-C+", cres.Seeds, err)
	ires, err := imm.Run(sampler, k, eps, delta, seed, workers)
	add("IMM", ires.Seeds, err)
	sres, err := ssa.RunSSAFix(sampler, k, eps, delta, seed, workers)
	add("SSA-Fix", sres.Seeds, err)
	dres, err := ssa.RunDSSAFix(sampler, k, eps, delta, seed, workers)
	add("D-SSA-Fix", dres.Seeds, err)
	tres, err := tim.Run(sampler, k, eps, delta, seed, workers)
	add("TIM", tres.Seeds, err)
	add("TopDegree", opim.TopDegree(g, k), nil)
	revPR, err := opim.TopReversePageRank(g, k)
	add("RevPageRank", revPR, err)

	fmt.Printf("\nexpected spreads (k=%d, ε=%.2f, δ=1/n, %d MC runs):\n", k, eps, mc)
	for i, name := range names {
		est := opim.EstimateSpread(g, model, sets[i], mc, seed+100, workers)
		fmt.Printf("  %-10s %v\n", name, est)
	}

	fmt.Printf("\nseed-set agreement (Jaccard):\n")
	m, err := analysis.Agreement(names, sets)
	if err != nil {
		fatalf("%v", err)
	}
	m.Print(os.Stdout)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "seedstats: "+format+"\n", args...)
	os.Exit(1)
}
