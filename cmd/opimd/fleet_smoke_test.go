package main

// Fleet smoke test across real process boundaries: three opimd -worker
// processes, a coordinator daemon leasing RR generation to them, and a
// SIGKILL delivered to one worker mid-generation. The run must complete
// and its results must be byte-for-byte the single-process baseline —
// the fleet changes where samples are computed, never what they are.

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// startFleetWorker launches one opimd -worker on an ephemeral port.
func startFleetWorker(t *testing.T, bin string) *daemon {
	t.Helper()
	return startDaemon(t, bin, "-worker")
}

func TestOpimdFleetWorkerKillSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	bin := buildOpimd(t)

	// Baseline: a plain single-process daemon. The batch is sized so the
	// fleet run takes long enough (hundreds of leases) that the SIGKILL
	// below reliably lands mid-generation.
	const advance = "/advance?count=300000"
	baseline := startDaemon(t, bin)
	baseline.mustPost(t, advance)
	wantStatus := baseline.mustGet(t, "/status")
	wantSnap := baseline.mustGet(t, "/snapshot")
	baseline.cmd.Process.Kill()
	baseline.cmd.Wait()

	// The fleet: three workers holding replicas of the same profile
	// (identical spec ⇒ identical fingerprint), and a coordinator
	// daemon leasing to them in small chunks so the kill lands between
	// leases, not after the whole batch.
	w1 := startFleetWorker(t, bin)
	w2 := startFleetWorker(t, bin)
	w3 := startFleetWorker(t, bin)
	coord := startDaemon(t, bin,
		"-fleet", strings.Join([]string{w1.baseURL, w2.baseURL, w3.baseURL}, ","),
		"-fleet-chunk", "1000",
		"-fleet-rpc-timeout", "10s",
	)

	// Advance in the background; SIGKILL w2 shortly after dispatch
	// begins. Its in-flight lease dies with it and must be reassigned.
	advErr := make(chan error, 1)
	go func() {
		_, err := coord.post(advance)
		advErr <- err
	}()
	time.Sleep(200 * time.Millisecond)
	select {
	case err := <-advErr:
		t.Fatalf("advance finished before the kill (err=%v); batch too small to exercise mid-run worker death", err)
	default:
	}
	if err := w2.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}
	w2.cmd.Wait()

	select {
	case err := <-advErr:
		if err != nil {
			t.Fatalf("advance through a degraded fleet failed: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("advance wedged after worker kill; lease reassignment failed")
	}

	gotStatus := coord.mustGet(t, "/status")
	gotSnap := coord.mustGet(t, "/snapshot")
	for _, key := range []string{"num_rr", "edges_examined"} {
		if fmt.Sprint(gotStatus[key]) != fmt.Sprint(wantStatus[key]) {
			t.Fatalf("%s = %v, baseline %v — fleet run diverged from single-process run",
				key, gotStatus[key], wantStatus[key])
		}
	}
	for _, key := range []string{"seeds", "alpha", "sigma_lower", "sigma_upper"} {
		if fmt.Sprint(gotSnap[key]) != fmt.Sprint(wantSnap[key]) {
			t.Fatalf("snapshot %s = %v, baseline %v — fleet run diverged from single-process run",
				key, gotSnap[key], wantSnap[key])
		}
	}

	// The two surviving workers must have carried the batch: each
	// healthy worker should have served at least one lease.
	w1.cmd.Process.Kill()
	w3.cmd.Process.Kill()
}
