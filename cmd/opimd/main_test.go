package main

// Process-level fault-tolerance smoke tests: build the real opimd
// binary, SIGKILL it mid-session, restart it, and check that the resumed
// run is indistinguishable from one that never crashed. These are the
// only tests in the repo that cross a process boundary — everything the
// daemon promises in docs/ROBUSTNESS.md is exercised here end to end.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildOpimd compiles the daemon once per test binary invocation.
func buildOpimd(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("signal-based tests are POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "opimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running opimd process plus its parsed base URL.
type daemon struct {
	cmd     *exec.Cmd
	baseURL string
	stdout  *bufio.Scanner
	lines   []string
}

// startDaemon launches opimd on an ephemeral port and waits until it
// serves /status. extra is appended to a small deterministic profile.
func startDaemon(t *testing.T, bin string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{
		"-profile", "synth-pokec", "-scale", "20000",
		"-k", "3", "-seed", "7", "-listen", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stdout: bufio.NewScanner(stdout)}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	// The daemon prints "... — listening on 127.0.0.1:PORT" once bound.
	for d.stdout.Scan() {
		line := d.stdout.Text()
		d.lines = append(d.lines, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			d.baseURL = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if d.baseURL == "" {
		t.Fatalf("opimd never reported its listen address; stdout: %q", d.lines)
	}
	// Drain remaining stdout so the child never blocks on a full pipe.
	go func() {
		for d.stdout.Scan() {
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := d.get("/status"); err == nil {
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("opimd at %s never became ready", d.baseURL)
	return nil
}

func (d *daemon) get(path string) (map[string]any, error)  { return d.req(http.MethodGet, path) }
func (d *daemon) post(path string) (map[string]any, error) { return d.req(http.MethodPost, path) }

func (d *daemon) req(method, path string) (map[string]any, error) {
	return d.reqBody(method, path, "")
}

// reqBody is req with an optional JSON request body (POST /sessions).
func (d *daemon) reqBody(method, path, body string) (map[string]any, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, d.baseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, body)
	}
	var out map[string]any
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func (d *daemon) mustPost(t *testing.T, path string) map[string]any {
	t.Helper()
	out, err := d.post(path)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func (d *daemon) mustGet(t *testing.T, path string) map[string]any {
	t.Helper()
	out, err := d.get(path)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func numRR(t *testing.T, status map[string]any) int64 {
	t.Helper()
	v, ok := status["num_rr"].(float64)
	if !ok {
		t.Fatalf("status has no num_rr: %v", status)
	}
	return int64(v)
}

// TestOpimdKillResume: SIGKILL the daemon after a checkpoint, restart it,
// and verify (a) it resumes at the checkpointed RR count, discarding only
// the never-checkpointed tail, and (b) after catching up, its snapshot is
// identical to a run that never crashed.
func TestOpimdKillResume(t *testing.T) {
	bin := buildOpimd(t)
	dir := t.TempDir()
	ck := filepath.Join(dir, "session.ck")

	// Run A: 1200 RR sets checkpointed, 400 more that will be lost to the
	// crash (checkpoint interval 1h = only explicit checkpoints).
	a := startDaemon(t, bin, "-checkpoint", ck, "-checkpoint-interval", "1h")
	a.mustPost(t, "/advance?count=1200")
	a.mustPost(t, "/checkpoint")
	a.mustPost(t, "/advance?count=400")
	if err := a.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	a.cmd.Wait()

	// Run B: must resume at exactly the checkpoint.
	b := startDaemon(t, bin, "-checkpoint", ck, "-checkpoint-interval", "1h")
	if got := numRR(t, b.mustGet(t, "/status")); got != 1200 {
		t.Fatalf("resumed num_rr = %d, want 1200 (the checkpointed state)", got)
	}
	b.mustPost(t, "/advance?count=800")
	snapB := b.mustGet(t, "/snapshot")

	// Reference run C: same parameters, no crash, straight to 2000.
	c := startDaemon(t, bin, "-checkpoint", filepath.Join(dir, "ref.ck"))
	c.mustPost(t, "/advance?count=2000")
	snapC := c.mustGet(t, "/snapshot")

	jb, _ := json.Marshal(snapB)
	jc, _ := json.Marshal(snapC)
	if string(jb) != string(jc) {
		t.Fatalf("resumed snapshot diverged from the never-crashed run:\nresumed: %s\nreference: %s", jb, jc)
	}
}

// TestOpimdMultiSessionKillResume: with -checkpoint-dir, every session —
// not just the default — must survive a SIGKILL. The restarted daemon
// adopts the directory's checkpoints, the adopted session still carries
// its OPIMS2-only fields (exact bounds, base seeds), and after catching
// up its snapshot matches a run that never crashed.
func TestOpimdMultiSessionKillResume(t *testing.T) {
	bin := buildOpimd(t)
	dir := t.TempDir()
	const spec = `{"id":"exp","k":4,"seed":11,"union":true,"exact":true,"base_seeds":[2,4]}`

	a := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	if _, err := a.reqBody(http.MethodPost, "/sessions", spec); err != nil {
		t.Fatal(err)
	}
	a.mustPost(t, "/sessions/exp/advance?count=900")
	a.mustPost(t, "/advance?count=500")
	a.mustPost(t, "/sessions/exp/checkpoint")
	a.mustPost(t, "/checkpoint")
	a.mustPost(t, "/sessions/exp/advance?count=300") // lost to the crash
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.cmd.Wait()

	b := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	if got := numRR(t, b.mustGet(t, "/status")); got != 500 {
		t.Fatalf("default resumed at num_rr = %d, want 500", got)
	}
	if got := numRR(t, b.mustGet(t, "/sessions/exp/status")); got != 900 {
		t.Fatalf("exp resumed at num_rr = %d, want 900 (the checkpointed state)", got)
	}
	info := b.mustGet(t, "/sessions/exp")
	if info["exact"] != true {
		t.Fatalf("exp lost its exact-bounds flag through kill-resume: %v", info)
	}
	if bs, _ := info["base_seeds"].([]any); len(bs) != 2 {
		t.Fatalf("exp lost its base seeds through kill-resume: %v", info)
	}
	b.mustPost(t, "/sessions/exp/advance?count=600")
	snapB := b.mustGet(t, "/sessions/exp/snapshot")

	// Reference run in a fresh directory: same session, no crash.
	c := startDaemon(t, bin, "-checkpoint-dir", t.TempDir())
	if _, err := c.reqBody(http.MethodPost, "/sessions", spec); err != nil {
		t.Fatal(err)
	}
	c.mustPost(t, "/sessions/exp/advance?count=1500")
	snapC := c.mustGet(t, "/sessions/exp/snapshot")

	jb, _ := json.Marshal(snapB)
	jc, _ := json.Marshal(snapC)
	if string(jb) != string(jc) {
		t.Fatalf("resumed session diverged from the never-crashed run:\nresumed: %s\nreference: %s", jb, jc)
	}
}

// TestOpimdMultiGraphKillResume: sessions on two different graphs — the
// flag-registered default and a catalog graph registered over HTTP — must
// both survive a SIGKILL. The restarted daemon knows nothing about the
// second graph; adoption re-registers it from the spec recorded in the
// OPIMS3 checkpoint, with the same fingerprint.
func TestOpimdMultiGraphKillResume(t *testing.T) {
	bin := buildOpimd(t)
	dir := t.TempDir()
	const graphSpec = `{"name":"aux","profile":"synth-pokec","scale":25000,"seed":9}`

	a := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h", "-max-loaded-graphs", "2")
	ginfo, err := a.reqBody(http.MethodPost, "/graphs", graphSpec)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := ginfo["graph_fingerprint"].(string)
	if len(fp) != 64 {
		t.Fatalf("registered graph has no fingerprint: %v", ginfo)
	}
	if _, err := a.reqBody(http.MethodPost, "/sessions", `{"id":"amber","k":3,"seed":21,"graph":"aux"}`); err != nil {
		t.Fatal(err)
	}
	a.mustPost(t, "/sessions/amber/advance?count=800")
	a.mustPost(t, "/advance?count=400")
	a.mustPost(t, "/sessions/amber/checkpoint")
	a.mustPost(t, "/checkpoint")
	a.mustPost(t, "/sessions/amber/advance?count=300") // lost to the crash
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.cmd.Wait()

	b := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h", "-max-loaded-graphs", "2")
	if got := numRR(t, b.mustGet(t, "/status")); got != 400 {
		t.Fatalf("default resumed at num_rr = %d, want 400", got)
	}
	st := b.mustGet(t, "/sessions/amber/status")
	if got := numRR(t, st); got != 800 {
		t.Fatalf("amber resumed at num_rr = %d, want 800 (the checkpointed state)", got)
	}
	if st["graph"] != "aux" || st["graph_fingerprint"] != fp {
		t.Fatalf("amber resumed on the wrong graph: %v", st)
	}
	aux := b.mustGet(t, "/graphs/aux")
	if aux["graph_fingerprint"] != fp {
		t.Fatalf("adopted graph fingerprint changed across restart: %v vs %s", aux, fp)
	}
	// The resumed session keeps sampling on its own graph.
	if got := numRR(t, b.mustPost(t, "/sessions/amber/advance?count=200")); got != 1000 {
		t.Fatalf("amber advance after resume reached %d, want 1000", got)
	}
}

// TestOpimdGracefulShutdown: SIGTERM must drain, write a final
// checkpoint, and exit 0; a restart resumes at the full pre-shutdown
// state with nothing lost.
func TestOpimdGracefulShutdown(t *testing.T) {
	bin := buildOpimd(t)
	ck := filepath.Join(t.TempDir(), "session.ck")

	a := startDaemon(t, bin, "-checkpoint", ck, "-checkpoint-interval", "1h")
	a.mustPost(t, "/advance?count=1000")
	// No explicit /checkpoint: only the shutdown path can persist this.
	if err := a.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v (want exit code 0)", err)
		}
	case <-time.After(30 * time.Second):
		a.cmd.Process.Kill()
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no final checkpoint after graceful shutdown: %v", err)
	}

	b := startDaemon(t, bin, "-checkpoint", ck)
	if got := numRR(t, b.mustGet(t, "/status")); got != 1000 {
		t.Fatalf("after graceful shutdown + restart num_rr = %d, want 1000", got)
	}
}

// TestOpimdRefusesCorruptCheckpoint: when both generations are bad the
// daemon must fail startup loudly rather than silently discard the
// session's δ accounting.
func TestOpimdRefusesCorruptCheckpoint(t *testing.T) {
	bin := buildOpimd(t)
	ck := filepath.Join(t.TempDir(), "session.ck")
	if err := os.WriteFile(ck, []byte("OPIMS1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-profile", "synth-pokec", "-scale", "20000",
		"-k", "3", "-seed", "7", "-listen", "127.0.0.1:0",
		"-checkpoint", ck)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("daemon started from a corrupt checkpoint; output: %s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit: %v, want exit code 1", err)
	}
	if !strings.Contains(string(out), "cannot resume") {
		t.Fatalf("startup failure does not explain the resume refusal: %s", out)
	}
}
