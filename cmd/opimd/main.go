// Command opimd serves OPIM sessions over HTTP — online processing of
// influence maximization as a long-running, multi-tenant service,
// mirroring the online query processing systems (§1) the paper takes its
// paradigm from.
//
//	opimd -profile synth-pokec -model IC -k 50 -listen :8080
//
// then:
//
//	curl -X POST localhost:8080/start      # begin streaming RR sets
//	curl localhost:8080/snapshot           # current seeds + guarantee
//	curl 'localhost:8080/snapshot?peek=1'  # last snapshot, spends no δ
//	curl -X POST localhost:8080/stop       # pause
//	curl -X POST 'localhost:8080/advance?count=100000'
//	curl localhost:8080/status
//	curl localhost:8080/metrics            # throughput, latencies, last α
//	curl -X POST localhost:8080/checkpoint # force a durable checkpoint
//
// Multi-session serving: the flags above configure the "default" session,
// which the bare paths address. Further sessions — each with its own k,
// δ, variant, seed, base seeds and δ budget — are managed over HTTP:
//
//	curl -X POST localhost:8080/sessions -d '{"id":"alice","k":20,"seed":7}'
//	curl localhost:8080/sessions           # list
//	curl localhost:8080/sessions/alice/status
//	curl -X DELETE localhost:8080/sessions/alice
//
// One background sampler round-robins across every running session, and
// a long request on one session never blocks another. See docs/API.md.
//
// Multi-graph serving: the -graph/-profile flags register the "default"
// graph; further datasets are registered by name in the graph catalog and
// referenced when creating sessions:
//
//	curl -X POST localhost:8080/graphs -d '{"name":"pokec","profile":"synth-pokec","model":"IC"}'
//	curl localhost:8080/graphs             # list, with fingerprints
//	curl -X POST localhost:8080/sessions -d '{"id":"bob","graph":"pokec","k":10}'
//	curl -X DELETE localhost:8080/graphs/pokec   # 409 while sessions use it
//
// Sessions on the same (graph, model) share one sampler, and
// -max-loaded-graphs bounds memory by unloading idle graphs (reloaded
// from their spec on demand). Checkpoints record the graph's fingerprint
// (OPIMS3), so a resume against the wrong dataset fails loudly instead of
// silently corrupting guarantees.
//
// Fault tolerance (see docs/ROBUSTNESS.md):
//
//   - -checkpoint FILE enables crash-safe checkpointing of the default
//     session: it is written atomically every -checkpoint-interval
//     (default 30s), on POST /checkpoint, and on graceful shutdown; at
//     startup the daemon auto-resumes from the checkpoint (falling back
//     to FILE.prev when the current generation is corrupt). A resumed
//     session continues the exact sample stream — seeds, α and δ
//     accounting are byte-identical to a never-crashed run. When
//     resuming, the session parameters (-k, -delta, -seed, …) come from
//     the checkpoint, not the flags.
//   - -checkpoint-dir DIR extends that to every session (DIR/<id>.ck):
//     dynamically created sessions checkpoint there, the daemon adopts
//     all of them at startup, and -max-loaded-sessions N bounds memory
//     by checkpointing-then-unloading idle sessions (reloaded
//     transparently on their next request).
//   - -request-timeout bounds /advance processing (503 + Retry-After
//     past the deadline, progress kept); -max-inflight sheds excess
//     concurrent requests with 503.
//   - SIGINT/SIGTERM drains in-flight requests, stops the sampling
//     loop, writes a final checkpoint per session, and exits 0.
//   - -fleet url1,url2 leases RR-set generation to stateless
//     `opimd -worker` processes (fingerprint-verified replicas of the
//     same graph), with lease reassignment on worker death or slowness,
//     duplicate suppression, CRC-checked transfers, and graceful
//     degradation to local sampling when no worker is healthy. Results
//     are byte-identical to a single-process run for any fleet layout
//     or failure pattern.
//
// With -pprof, Go's net/http/pprof profiling handlers are mounted under
// /debug/pprof/. See docs/API.md for the full HTTP surface and
// docs/OBSERVABILITY.md for the metric catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/fleet"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/server"
)

func main() {
	var spec cliutil.GraphSpec
	spec.RegisterFlags(flag.CommandLine)
	var (
		k          = flag.Int("k", 50, "seed set size")
		deltaF     = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		variantN   = flag.String("variant", "plus", "guarantee variant: vanilla | plus | prime")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 10000, "RR sets per background iteration")
		maxRR      = flag.Int64("maxrr", 1<<26, "RR-set budget")
		listen     = flag.String("listen", ":8080", "listen address")
		union      = flag.Bool("union", false, "union-budget mode across snapshots")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logEvents  = flag.String("log-events", "", "append a JSONL event per served snapshot to this file")
		checkpoint = flag.String("checkpoint", "", "default-session checkpoint file: enables periodic crash-safe saves and startup auto-resume")
		ckDir      = flag.String("checkpoint-dir", "", "per-session checkpoint directory (DIR/<id>.ck): enables multi-session persistence, startup adoption and eviction")
		maxLoaded  = flag.Int("max-loaded-sessions", 0, "max sessions resident in memory; past it idle sessions are checkpointed and unloaded (0 = unlimited, requires -checkpoint-dir)")
		maxGraphs  = flag.Int("max-loaded-graphs", 0, "max graphs resident in memory; past it idle registered graphs are unloaded and reloaded from their spec on demand (0 = unlimited)")
		ckInterval = flag.Duration("checkpoint-interval", server.DefaultCheckpointInterval, "periodic checkpoint cadence (requires -checkpoint or -checkpoint-dir)")
		reqTimeout = flag.Duration("request-timeout", time.Minute, "deadline for /advance processing (0 = none)")
		maxInfl    = flag.Int("max-inflight", 64, "max concurrent HTTP requests; excess requests queue briefly, then 429 (0 = unlimited)")
		maxQueue   = flag.Int("max-queue", 0, "max requests waiting for an inflight slot (0 = 2×max-inflight, negative = no queue)")
		maxQWait   = flag.Duration("max-queue-wait", 500*time.Millisecond, "max time a request queues for an inflight slot before 429")
		defRate    = flag.Float64("default-rate", 0, "default per-session admission rate for engine-touching requests, req/s token bucket (0 = unlimited; sessions override via SessionSpec.rate)")
		defBurst   = flag.Float64("default-burst", 0, "default per-session token-bucket depth (0 = max(1, default-rate))")
		workerMode = flag.Bool("worker", false, "run as a stateless RR-generation worker: serve the fleet worker protocol on -listen from a local replica of the graph flags, and nothing else")
		fleetList  = flag.String("fleet", "", "comma-separated base URLs of -worker processes; RR generation is leased to them, degrading to local sampling when none is healthy")
		fleetChunk = flag.Int("fleet-chunk", 0, "RR sets per fleet lease (0 = 256)")
		fleetRPC   = flag.Duration("fleet-rpc-timeout", 0, "deadline per fleet worker RPC (0 = 30s)")
		fleetTTL   = flag.Duration("fleet-lease-ttl", 0, "in-flight lease age before speculative reassignment (0 = 2x the RPC timeout)")
		fleetHB    = flag.Duration("fleet-heartbeat", 0, "fleet worker health-probe period (0 = 1s)")
		learnOn    = flag.Bool("learn", false, "run the default session as a feedback-driven learning campaign: POST /rounds serves explore/exploit seeds, POST /observations feeds cascades back (see docs/LEARNING.md)")
		learnSeed  = flag.Uint64("learn-seed", 1, "random seed for the learner's Thompson-sampling draws")
		learnRR    = flag.Int("learn-round-rr", 0, "RR sets generated per learning round (0 = 1024)")
		jCompact   = flag.Int("journal-compact-every", 0, "compact a graph's mutation journal into an OPIMG2 snapshot once it holds this many entries (0 = never; see docs/ROBUSTNESS.md)")
	)
	flag.Parse()

	spec.Seed = *seed
	g, model, err := spec.Load()
	if err != nil {
		fatalf("%v", err)
	}
	variant, err := cliutil.ParseVariant(*variantN)
	if err != nil {
		fatalf("%v", err)
	}
	delta := *deltaF
	if delta <= 0 {
		delta = 1 / float64(g.N())
	}

	var events *obs.JSONLSink
	if *logEvents != "" {
		events, err = obs.CreateJSONL(*logEvents)
		if err != nil {
			fatalf("%v", err)
		}
	}
	sampler := opim.NewSampler(g, model)

	if *workerMode {
		runWorker(sampler, g, model, *listen)
		return
	}

	if *maxLoaded > 0 && *ckDir == "" {
		fatalf("-max-loaded-sessions requires -checkpoint-dir (eviction needs somewhere to checkpoint)")
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			fatalf("creating -checkpoint-dir: %v", err)
		}
	}
	// Replay the default graph's mutation journal: a daemon that applied
	// POST /graphs/default/updates batches before it stopped must come back
	// on the mutated graph, at the right epoch, so its sessions' checkpoints
	// place correctly on the epoch chain.
	var glog *server.GraphLog
	if *ckDir != "" {
		var rerr error
		g, glog, rerr = server.ReplayMutationLog(*ckDir, server.DefaultGraphName, g)
		if rerr != nil {
			fatalf("%v (remove the mutation journal to start from the base graph, abandoning its epochs)", rerr)
		}
		// g.Epoch() > 0 with zero journal entries happens when a compaction
		// folded the whole history into its snapshot — the sampler must
		// still move off the base graph.
		if g.Epoch() > 0 {
			sampler = opim.NewSampler(g, model)
			fmt.Printf("opimd: default graph at epoch %d after journal replay (%d batch(es) replayed, %d folded into the compaction snapshot; n=%d m=%d)\n",
				g.Epoch(), glog.Epochs(), glog.BaseEpoch, g.N(), g.M())
		}
	}
	// The default session's checkpoint: -checkpoint wins; otherwise it
	// lives alongside the other sessions in -checkpoint-dir.
	defaultCk := *checkpoint
	if defaultCk == "" && *ckDir != "" {
		defaultCk = filepath.Join(*ckDir, server.DefaultSessionID+".ck")
	}

	// Startup auto-resume: prefer the checkpoint over a fresh session. A
	// checkpoint that exists but cannot be loaded (both generations bad)
	// stops startup — silently discarding a session would forget every
	// spent unit of δ budget, the exact failure mode resume exists to
	// prevent. The operator must remove the file to start fresh.
	var session *opim.Online
	if defaultCk != "" {
		sess, src, meta, regen, lerr := server.LoadCheckpointMetaLog(defaultCk, sampler, glog)
		switch {
		case lerr == nil:
			session = sess
			session.SetEvents(flushingSinkOrNil(events))
			fmt.Printf("opimd: resumed session from %s (num_rr=%d); session parameters come from the checkpoint\n", src, session.NumRR())
			if regen > 0 {
				fmt.Printf("opimd: checkpoint predates the latest graph mutation; caught up by regenerating %d RR set(s)\n", regen)
			}
			if !meta.Verified() {
				fmt.Printf("opimd: WARNING: %s is a legacy OPIMS%d checkpoint with no graph fingerprint; cannot verify it matches the configured graph (see docs/ROBUSTNESS.md)\n", src, meta.Format)
			}
		case errors.Is(lerr, os.ErrNotExist):
			// First boot: no checkpoint yet.
		default:
			fatalf("cannot resume: %v (remove the checkpoint to start fresh)", lerr)
		}
	}
	if session == nil {
		session, err = opim.NewOnline(sampler, opim.Options{
			K: *k, Delta: delta, Variant: variant, Seed: *seed, Workers: *workers, UnionBudget: *union,
			Events: flushingSinkOrNil(events),
		})
		if err != nil {
			fatalf("%v", err)
		}
	}

	var coordinator *fleet.Coordinator
	if *fleetList != "" {
		coordinator = fleet.NewCoordinator(fleet.Config{
			Workers:        strings.Split(*fleetList, ","),
			ChunkSize:      *fleetChunk,
			RPCTimeout:     *fleetRPC,
			LeaseTTL:       *fleetTTL,
			HeartbeatEvery: *fleetHB,
			Seed:           *seed,
			Events:         flushingSinkOrNil(events),
		})
		coordinator.Start()
	}

	srv := server.New(session, server.Config{
		Batch:               *batch,
		MaxRR:               *maxRR,
		RequestTimeout:      *reqTimeout,
		MaxInflight:         *maxInfl,
		MaxQueue:            *maxQueue,
		MaxQueueWait:        *maxQWait,
		DefaultRate:         *defRate,
		DefaultBurst:        *defBurst,
		CheckpointPath:      *checkpoint,
		CheckpointDir:       *ckDir,
		MaxLoadedSessions:   *maxLoaded,
		MaxLoadedGraphs:     *maxGraphs,
		CheckpointInterval:  *ckInterval,
		JournalCompactEvery: *jCompact,
		DefaultGraphSpec:    spec.String(),
		DefaultGraphLog:     glog,
		Events:              flushingSinkOrNil(events),
		Generator:           generatorOrNil(coordinator),
	})
	adopted, err := srv.AdoptCheckpointDir()
	if err != nil {
		fatalf("%v", err)
	}
	if len(adopted) > 0 {
		fmt.Printf("opimd: adopted %d checkpointed session(s) from %s: %v\n", len(adopted), *ckDir, adopted)
	}
	if *learnOn {
		// After checkpoint resume, so a campaign restored from the
		// checkpoint's extension (with its learned posterior) is kept; only
		// a genuinely fresh session starts from the uniform prior.
		if err := srv.EnableLearning(server.DefaultSessionID, *learnSeed, *learnRR); err != nil {
			fatalf("enabling learning on the default session: %v", err)
		}
	}
	srv.StartCheckpointer()
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	httpSrv := &http.Server{
		Handler: mux,
		// Slow-client protection. WriteTimeout must outlast the /advance
		// deadline or the connection would be cut before the 503.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeoutFor(*reqTimeout),
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}

	// Graceful shutdown on SIGINT/SIGTERM: drain in-flight requests first
	// (so no handler mutates the session underneath the final save), then
	// stop the sampling loop and checkpointer and write a final
	// checkpoint.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nopimd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "opimd: drain: %v\n", err)
		}
		if coordinator != nil {
			coordinator.Close()
		}
		if err := srv.Shutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "opimd: final checkpoint: %v\n", err)
		} else if defaultCk != "" || *ckDir != "" {
			fmt.Printf("opimd: final checkpoints written\n")
		}
		if events != nil {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "opimd: closing event log: %v\n", err)
			}
		}
		close(idle)
	}()

	fmt.Printf("opimd: n=%d m=%d model=%v k=%d δ=%.2e — listening on %s\n",
		g.N(), g.M(), model, *k, delta, ln.Addr())
	if *pprofOn {
		fmt.Printf("opimd: pprof mounted at %s/debug/pprof/\n", ln.Addr())
	}
	if coordinator != nil {
		fmt.Printf("opimd: distributing RR generation across %d fleet worker(s)\n", len(strings.Split(*fleetList, ",")))
	}
	if defaultCk != "" {
		fmt.Printf("opimd: checkpointing default session to %s every %v\n", defaultCk, *ckInterval)
	}
	if *ckDir != "" {
		fmt.Printf("opimd: per-session checkpoints in %s (max loaded: %s)\n",
			*ckDir, loadedLimit(*maxLoaded))
	}
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-idle
}

// writeTimeoutFor pads the /advance deadline so the handler can still
// write its 503 after the deadline fires; with no deadline the write
// timeout is disabled (an unbounded advance may legitimately stream for
// minutes).
func writeTimeoutFor(reqTimeout time.Duration) time.Duration {
	if reqTimeout <= 0 {
		return 0
	}
	return reqTimeout + 30*time.Second
}

// flushingSink writes each event through to disk immediately. Events in
// the daemon are rare (one per served /snapshot) but the process is
// long-running, so leaving them in the JSONL buffer until shutdown would
// make `tail -f` on the log useless.
type flushingSink struct{ s *obs.JSONLSink }

func (f flushingSink) Emit(event string, fields map[string]any) {
	f.s.Emit(event, fields)
	f.s.Flush()
}

// flushingSinkOrNil converts a possibly-nil *JSONLSink without producing
// a non-nil interface around a nil pointer.
func flushingSinkOrNil(s *obs.JSONLSink) obs.Sink {
	if s == nil {
		return nil
	}
	return flushingSink{s}
}

// loadedLimit renders -max-loaded-sessions for the startup banner.
func loadedLimit(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

// runWorker serves the fleet worker protocol and nothing else: no
// sessions, no checkpoints, no sampling loop — a stateless replica that
// turns leases into RR-set batches until it is killed. The coordinator
// owns all durable state, so SIGKILLing a worker loses at most the
// in-flight lease, which the coordinator reassigns.
func runWorker(sampler *opim.Sampler, g *opim.Graph, model opim.Model, listen string) {
	w := fleet.NewWorker(sampler)
	httpSrv := &http.Server{
		Handler:           w,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatalf("%v", err)
	}
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nopimd: worker shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // in-flight leases are reassigned anyway
		close(idle)
	}()
	fmt.Printf("opimd: worker n=%d m=%d model=%v fingerprint=%.12s — listening on %s\n",
		g.N(), g.M(), model, w.Fingerprint(), ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-idle
}

// generatorOrNil converts a possibly-nil *fleet.Coordinator without
// producing a non-nil interface around a nil pointer.
func generatorOrNil(c *fleet.Coordinator) opim.Generator {
	if c == nil {
		return nil
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opimd: "+format+"\n", args...)
	os.Exit(1)
}
