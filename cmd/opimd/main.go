// Command opimd serves an OPIM session over HTTP — online processing of
// influence maximization as a long-running service, mirroring the online
// query processing systems (§1) the paper takes its paradigm from.
//
//	opimd -profile synth-pokec -model IC -k 50 -listen :8080
//
// then:
//
//	curl -X POST localhost:8080/start      # begin streaming RR sets
//	curl localhost:8080/snapshot           # current seeds + guarantee
//	curl -X POST localhost:8080/stop       # pause
//	curl -X POST 'localhost:8080/advance?count=100000'
//	curl localhost:8080/status
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (text or binary); empty = use -profile")
		profile   = flag.String("profile", "synth-pokec", "synthetic profile when -graph is empty")
		scale     = flag.Int("scale", 0, "profile scale divisor (0 = default)")
		weights   = flag.String("weights", "", "reweight loaded graph: none | wc | uniform:<p> | trivalency")
		modelName = flag.String("model", "IC", "diffusion model: IC or LT")
		k         = flag.Int("k", 50, "seed set size")
		deltaF    = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		variantN  = flag.String("variant", "plus", "guarantee variant: vanilla | plus | prime")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 10000, "RR sets per background iteration")
		maxRR     = flag.Int64("maxrr", 1<<26, "RR-set budget")
		listen    = flag.String("listen", ":8080", "listen address")
		union     = flag.Bool("union", false, "union-budget mode across snapshots")
	)
	flag.Parse()

	g, err := cliutil.LoadGraph(*graphPath, *profile, int32(*scale), *weights, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	model, err := cliutil.ParseModel(*modelName)
	if err != nil {
		fatalf("%v", err)
	}
	variant, err := cliutil.ParseVariant(*variantN)
	if err != nil {
		fatalf("%v", err)
	}
	delta := *deltaF
	if delta <= 0 {
		delta = 1 / float64(g.N())
	}

	session, err := opim.NewOnline(opim.NewSampler(g, model), opim.Options{
		K: *k, Delta: delta, Variant: variant, Seed: *seed, Workers: *workers, UnionBudget: *union,
	})
	if err != nil {
		fatalf("%v", err)
	}
	srv := server.New(session, *batch, *maxRR)
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	// Graceful shutdown: stop the sampler loop and drain connections on
	// SIGINT/SIGTERM.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nopimd: shutting down")
		srv.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "opimd: shutdown: %v\n", err)
		}
		close(idle)
	}()

	fmt.Printf("opimd: n=%d m=%d model=%v k=%d δ=%.2e — listening on %s\n",
		g.N(), g.M(), model, *k, delta, *listen)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-idle
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opimd: "+format+"\n", args...)
	os.Exit(1)
}
