// Command opimd serves an OPIM session over HTTP — online processing of
// influence maximization as a long-running service, mirroring the online
// query processing systems (§1) the paper takes its paradigm from.
//
//	opimd -profile synth-pokec -model IC -k 50 -listen :8080
//
// then:
//
//	curl -X POST localhost:8080/start      # begin streaming RR sets
//	curl localhost:8080/snapshot           # current seeds + guarantee
//	curl -X POST localhost:8080/stop       # pause
//	curl -X POST 'localhost:8080/advance?count=100000'
//	curl localhost:8080/status
//	curl localhost:8080/metrics            # throughput, latencies, last α
//
// With -pprof, Go's net/http/pprof profiling handlers are mounted under
// /debug/pprof/. See docs/API.md for the full HTTP surface and
// docs/OBSERVABILITY.md for the metric catalogue.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (text or binary); empty = use -profile")
		profile   = flag.String("profile", "synth-pokec", "synthetic profile when -graph is empty")
		scale     = flag.Int("scale", 0, "profile scale divisor (0 = default)")
		weights   = flag.String("weights", "", "reweight loaded graph: none | wc | uniform:<p> | trivalency")
		modelName = flag.String("model", "IC", "diffusion model: IC or LT")
		k         = flag.Int("k", 50, "seed set size")
		deltaF    = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		variantN  = flag.String("variant", "plus", "guarantee variant: vanilla | plus | prime")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 10000, "RR sets per background iteration")
		maxRR     = flag.Int64("maxrr", 1<<26, "RR-set budget")
		listen    = flag.String("listen", ":8080", "listen address")
		union     = flag.Bool("union", false, "union-budget mode across snapshots")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logEvents = flag.String("log-events", "", "append a JSONL event per served snapshot to this file")
	)
	flag.Parse()

	g, err := cliutil.LoadGraph(*graphPath, *profile, int32(*scale), *weights, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	model, err := cliutil.ParseModel(*modelName)
	if err != nil {
		fatalf("%v", err)
	}
	variant, err := cliutil.ParseVariant(*variantN)
	if err != nil {
		fatalf("%v", err)
	}
	delta := *deltaF
	if delta <= 0 {
		delta = 1 / float64(g.N())
	}

	var events *obs.JSONLSink
	if *logEvents != "" {
		events, err = obs.CreateJSONL(*logEvents)
		if err != nil {
			fatalf("%v", err)
		}
	}
	session, err := opim.NewOnline(opim.NewSampler(g, model), opim.Options{
		K: *k, Delta: delta, Variant: variant, Seed: *seed, Workers: *workers, UnionBudget: *union,
		Events: flushingSinkOrNil(events),
	})
	if err != nil {
		fatalf("%v", err)
	}
	srv := server.New(session, *batch, *maxRR)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	httpSrv := &http.Server{Addr: *listen, Handler: mux}

	// Graceful shutdown: stop the sampler loop and drain connections on
	// SIGINT/SIGTERM.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nopimd: shutting down")
		srv.Stop()
		if events != nil {
			if err := events.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "opimd: closing event log: %v\n", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "opimd: shutdown: %v\n", err)
		}
		close(idle)
	}()

	fmt.Printf("opimd: n=%d m=%d model=%v k=%d δ=%.2e — listening on %s\n",
		g.N(), g.M(), model, *k, delta, *listen)
	if *pprofOn {
		fmt.Printf("opimd: pprof mounted at %s/debug/pprof/\n", *listen)
	}
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-idle
}

// flushingSink writes each event through to disk immediately. Events in
// the daemon are rare (one per served /snapshot) but the process is
// long-running, so leaving them in the JSONL buffer until shutdown would
// make `tail -f` on the log useless.
type flushingSink struct{ s *obs.JSONLSink }

func (f flushingSink) Emit(event string, fields map[string]any) {
	f.s.Emit(event, fields)
	f.s.Flush()
}

// flushingSinkOrNil converts a possibly-nil *JSONLSink without producing
// a non-nil interface around a nil pointer.
func flushingSinkOrNil(s *obs.JSONLSink) obs.Sink {
	if s == nil {
		return nil
	}
	return flushingSink{s}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opimd: "+format+"\n", args...)
	os.Exit(1)
}
