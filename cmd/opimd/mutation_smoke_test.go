package main

// Process-level dynamic-graph smoke test: mutate the default graph over
// HTTP, SIGKILL the daemon before it checkpoints again, and verify the
// restart replays the mutation journal, rebases the stale checkpoint onto
// the mutated epoch, and converges byte-for-byte (snapshot JSON) with a
// run that mutated first and never crashed.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpimdMutationKillResume(t *testing.T) {
	bin := buildOpimd(t)
	dir := t.TempDir()

	a := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	a.mustPost(t, "/advance?count=1000")
	a.mustPost(t, "/checkpoint") // epoch-0 checkpoint: stale after the mutation
	ginfo := a.mustGet(t, "/graphs/default")
	n, ok := ginfo["n"].(float64)
	if !ok || n <= 0 {
		t.Fatalf("graph info has no node count: %v", ginfo)
	}
	// One batch: add a node, wire it into the graph. node_add invalidates
	// every RR set, so the repair is a full (still deterministic) resample.
	batch := fmt.Sprintf(`{"updates":[{"op":"node_add"},{"op":"edge_insert","from":%d,"to":0,"p":0.25}]}`, int(n))
	up, err := a.reqBody(http.MethodPost, "/graphs/default/updates", batch)
	if err != nil {
		t.Fatal(err)
	}
	if up["epoch"] != float64(1) || up["applied"] != float64(2) {
		t.Fatalf("update response = %v", up)
	}
	if _, err := os.Stat(filepath.Join(dir, "graph-default.mutlog")); err != nil {
		t.Fatalf("mutation journal missing after an applied batch: %v", err)
	}
	a.mustPost(t, "/advance?count=500") // lost to the crash
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.cmd.Wait()

	// Restart: the journal replay must land the daemon on epoch 1 and the
	// pre-mutation checkpoint must be caught up, not refused.
	b := startDaemon(t, bin, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	replayed := false
	for _, line := range b.lines {
		if strings.Contains(line, "after journal replay (1 batch(es) replayed") {
			replayed = true
		}
	}
	if !replayed {
		t.Fatalf("restart never reported replaying the mutation journal; stdout: %q", b.lines)
	}
	st := b.mustGet(t, "/status")
	if got := numRR(t, st); got != 1000 {
		t.Fatalf("resumed num_rr = %d, want 1000 (the checkpointed state)", got)
	}
	if st["graph_epoch"] != float64(1) {
		t.Fatalf("resumed graph epoch = %v, want 1", st["graph_epoch"])
	}
	b.mustPost(t, "/advance?count=1000")
	snapB := b.mustGet(t, "/snapshot")

	// Reference: fresh directory, same batch applied before any sampling,
	// straight to 2000 — no crash, no repair, same bytes.
	c := startDaemon(t, bin, "-checkpoint-dir", t.TempDir(), "-checkpoint-interval", "1h")
	if _, err := c.reqBody(http.MethodPost, "/graphs/default/updates", batch); err != nil {
		t.Fatal(err)
	}
	c.mustPost(t, "/advance?count=2000")
	snapC := c.mustGet(t, "/snapshot")

	jb, _ := json.Marshal(snapB)
	jc, _ := json.Marshal(snapC)
	if string(jb) != string(jc) {
		t.Fatalf("mutated+crashed+resumed run diverged from the mutate-first run:\nresumed: %s\nreference: %s", jb, jc)
	}
}

// Regression: when compaction folds every journal entry into its snapshot,
// the journal holds zero trailing batches but the graph is still past epoch
// 0. The restart must rebuild the sampler from the snapshot epoch (keyed on
// g.Epoch(), not on the count of replayed entries) or resuming the
// post-mutation checkpoint dies with a graph fingerprint mismatch.
func TestOpimdCompactedJournalKillResume(t *testing.T) {
	bin := buildOpimd(t)
	dir := t.TempDir()
	flags := []string{"-checkpoint-dir", dir, "-checkpoint-interval", "1h", "-journal-compact-every", "1"}

	a := startDaemon(t, bin, flags...)
	a.mustPost(t, "/advance?count=1000")
	n, ok := a.mustGet(t, "/graphs/default")["n"].(float64)
	if !ok || n <= 0 {
		t.Fatal("graph info has no node count")
	}
	batch := fmt.Sprintf(`{"updates":[{"op":"node_add"},{"op":"edge_insert","from":%d,"to":0,"p":0.25}]}`, int(n))
	if _, err := a.reqBody(http.MethodPost, "/graphs/default/updates", batch); err != nil {
		t.Fatal(err)
	}
	// The threshold of 1 compacts immediately: the batch now lives only in
	// graph-default.e1.snap and the journal body is empty.
	if _, err := os.Stat(filepath.Join(dir, "graph-default.e1.snap")); err != nil {
		t.Fatalf("compaction snapshot missing after the batch: %v", err)
	}
	a.mustPost(t, "/checkpoint") // saved on the epoch-1 fingerprint
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.cmd.Wait()

	b := startDaemon(t, bin, flags...)
	landed := false
	for _, line := range b.lines {
		if strings.Contains(line, "after journal replay (0 batch(es) replayed, 1 folded into the compaction snapshot") {
			landed = true
		}
	}
	if !landed {
		t.Fatalf("restart never reported landing on the compacted epoch; stdout: %q", b.lines)
	}
	st := b.mustGet(t, "/status")
	if st["graph_epoch"] != float64(1) {
		t.Fatalf("resumed graph epoch = %v, want 1", st["graph_epoch"])
	}
	if got := numRR(t, st); got != 1000 {
		t.Fatalf("resumed num_rr = %d, want 1000 (the checkpointed state)", got)
	}
	b.mustPost(t, "/advance?count=500")
}
