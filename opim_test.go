package opim

import (
	"path/filepath"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, err := GenerateProfile("synth-pokec", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 50 {
		t.Fatalf("n = %d", g.N())
	}
	sampler := NewSampler(g, IC)

	// Online session.
	session, err := NewOnline(sampler, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	session.Advance(2000)
	snap := session.Snapshot()
	if len(snap.Seeds) != 5 || snap.Alpha <= 0 {
		t.Fatalf("snapshot = %v", snap)
	}

	// Conventional run.
	res, err := Maximize(sampler, 5, 0.3, 0.05, Options{Variant: Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("maximize seeds = %v", res.Seeds)
	}

	// Spread evaluation.
	est := EstimateSpread(g, IC, res.Seeds, 2000, 4, 0)
	if est.Spread < 5 {
		t.Fatalf("spread = %v below seed count", est.Spread)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 2 {
		t.Fatalf("round trip: n=%d m=%d", g2.N(), g2.M())
	}
}

func TestFacadeReweight(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 2, 0)
	b.AddEdge(1, 2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wc, err := Reweight(g, WeightedCascade, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := wc.InWeightSum(2); got < 0.99 || got > 1.01 {
		t.Fatalf("WC in-weight sum = %v", got)
	}
	if _, err := Reweight(g, Uniform, 0.01, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Reweight(g, Trivalency, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestProfileNames(t *testing.T) {
	names := ProfileNames()
	if len(names) != 4 {
		t.Fatalf("profiles = %v", names)
	}
	for _, n := range names {
		if _, err := GenerateProfile(n, 1<<20, 1); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := GenerateProfile("bogus", 0, 1); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
