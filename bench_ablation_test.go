package opim

// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the per-figure benches in bench_test.go:
//
//   - phase breakdown: sampling vs greedy selection vs bound computation
//   - martingale vs exact Clopper–Pearson bounds (Options.Exact)
//   - IC reverse BFS vs LT alias-walk RR generation (Appendix A's O(1)
//     per-step claim)
//   - parallel sampling worker scaling
//   - union-budget vs plain snapshot schedules

import (
	"testing"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/maxcover"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

func ablationSampler(b *testing.B, model Model) *Sampler {
	b.Helper()
	g, err := GenerateProfile("synth-pokec", 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	return NewSampler(g, model)
}

// BenchmarkPhaseBreakdown isolates the three cost phases of one OPIM
// snapshot at a fixed collection size.
func BenchmarkPhaseBreakdown(b *testing.B) {
	s := ablationSampler(b, IC)
	n := s.Graph().N()
	c := rrset.NewCollection(n)
	rrset.Generate(c, s, 32000, rng.New(2), 0)

	b.Run("sampling-32k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := rrset.NewCollection(n)
			rrset.Generate(fresh, s, 32000, rng.New(uint64(i)), 0)
		}
	})
	b.Run("greedy-k50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maxcover.Greedy(c, 50)
		}
	})
	b.Run("greedy+bounds-k50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maxcover.GreedyWithBounds(c, 50)
		}
	})
	b.Run("bound-math-only", func(b *testing.B) {
		sel := maxcover.GreedyWithBounds(c, 50)
		lam2 := c.Coverage(sel.Seeds)
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			lo := bound.SigmaLower(float64(lam2), n, int64(c.Count()), 0.005)
			hi := bound.SigmaUpper(float64(sel.LambdaU), n, int64(c.Count()), 0.005)
			sink += bound.Alpha(lo, hi)
		}
		_ = sink
	})
}

// BenchmarkBoundMethods compares the martingale formulas against the exact
// Clopper–Pearson limits (which pay beta-function inversions per call).
func BenchmarkBoundMethods(b *testing.B) {
	b.Run("martingale", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += bound.SigmaLower(150, 10000, 5000, 0.01)
			sink += bound.SigmaUpper(240, 10000, 5000, 0.01)
		}
		_ = sink
	})
	b.Run("clopper-pearson", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += bound.SigmaLowerExact(150, 5000, 10000, 0.01)
			sink += bound.SigmaUpperExact(240, 5000, 10000, 0.01)
		}
		_ = sink
	})
}

// BenchmarkSnapshotSchedules compares plain, union-budget, and exact-bound
// snapshots on identical sessions.
func BenchmarkSnapshotSchedules(b *testing.B) {
	s := ablationSampler(b, IC)
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{K: 20, Delta: 0.01, Variant: Plus, Seed: 3}},
		{"union-budget", Options{K: 20, Delta: 0.01, Variant: Plus, Seed: 3, UnionBudget: true}},
		{"exact-bounds", Options{K: 20, Delta: 0.01, Variant: Plus, Seed: 3, Exact: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			o, err := NewOnline(s, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			o.AdvanceTo(16000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Snapshot()
			}
		})
	}
}

// BenchmarkWorkerScaling measures parallel RR generation throughput.
func BenchmarkWorkerScaling(b *testing.B) {
	s := ablationSampler(b, IC)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := rrset.NewCollection(s.Graph().N())
				rrset.Generate(c, s, 16000, rng.New(uint64(i)), workers)
			}
		})
	}
}

// BenchmarkModelSamplingCost contrasts IC's reverse BFS (examines every
// in-edge of visited nodes) with LT's alias random walk (O(1) per step,
// Appendix A) on the same graph.
func BenchmarkModelSamplingCost(b *testing.B) {
	for _, model := range []Model{IC, LT} {
		b.Run(model.String(), func(b *testing.B) {
			s := ablationSampler(b, model)
			sc := s.NewScratch()
			src := rng.New(1)
			b.ResetTimer()
			var nodes int64
			for i := 0; i < b.N; i++ {
				set, _ := s.Sample(src, sc)
				nodes += int64(len(set))
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/set")
		})
	}
}
