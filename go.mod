module github.com/reprolab/opim

go 1.22
