// Comparison: every algorithm the paper evaluates, head-to-head on one
// graph — a miniature of the §8 experiments. For the online problem it
// prints each algorithm's reported guarantee at the same RR-set
// checkpoints; for the conventional problem it compares sample counts at a
// fixed (ε, δ).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/adapt"
	"github.com/reprolab/opim/internal/borgs"
	"github.com/reprolab/opim/internal/imm"
	"github.com/reprolab/opim/internal/ssa"
)

func main() {
	g, err := opim.GenerateProfile("synth-pokec", 200, 3)
	if err != nil {
		log.Fatal(err)
	}
	const k = 20
	delta := 1 / float64(g.N())
	sampler := opim.NewSampler(g, opim.IC)
	fmt.Printf("graph: n=%d m=%d, model=IC, k=%d, δ=1/n\n", g.N(), g.M(), k)

	// --- Online processing: guarantee at checkpoints 1000·2^i ------------
	checkpoints := []int64{1000, 4000, 16000, 64000}
	fmt.Printf("\n%-18s", "online α at #RR:")
	for _, cp := range checkpoints {
		fmt.Printf(" %9d", cp)
	}
	fmt.Println()

	for _, v := range []opim.Variant{opim.Plus, opim.Prime, opim.Vanilla} {
		session, err := opim.NewOnline(sampler, opim.Options{K: k, Delta: delta, Variant: v, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18v", v)
		for _, cp := range checkpoints {
			session.AdvanceTo(cp)
			fmt.Printf(" %9.4f", session.Snapshot().Alpha)
		}
		fmt.Println()
	}

	for _, algo := range []adapt.Algorithm{
		adapt.IMM{Sampler: sampler, K: k, Delta: delta, Seed: 11},
		adapt.SSAFix{Sampler: sampler, K: k, Delta: delta, Seed: 11},
		adapt.DSSAFix{Sampler: sampler, K: k, Delta: delta, Seed: 11},
	} {
		steps, err := adapt.Trace(algo, checkpoints[len(checkpoints)-1], 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s", algo.Name()+"-adopt")
		for _, cp := range checkpoints {
			fmt.Printf(" %9.4f", adapt.GuaranteeAt(steps, cp))
		}
		fmt.Println()
	}

	bs := borgs.NewSession(sampler, k, 11)
	fmt.Printf("%-18s", "Borgs")
	for _, cp := range checkpoints {
		if add := cp - bs.NumRR(); add > 0 {
			bs.Advance(int(add))
		}
		_, alpha := bs.Query()
		fmt.Printf(" %9.4f", alpha)
	}
	fmt.Println()

	// --- Conventional influence maximization -----------------------------
	const eps = 0.15
	fmt.Printf("\nconventional IM at ε=%.2f (RR sets generated → cost):\n", eps)

	cres, err := opim.Maximize(sampler, k, eps, delta, opim.Options{Variant: opim.Plus, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, seeds []int32, rr int64) {
		est := opim.EstimateSpread(g, opim.IC, seeds, 10000, 17, 0)
		fmt.Printf("  %-10s rr=%9d  spread=%v\n", name, rr, est)
	}
	report("OPIM-C+", cres.Seeds, cres.RRGenerated)

	ires, err := imm.Run(sampler, k, eps, delta, 13, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("IMM", ires.Seeds, ires.RRGenerated)

	sres, err := ssa.RunSSAFix(sampler, k, eps, delta, 13, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("SSA-Fix", sres.Seeds, sres.RRGenerated)

	dres, err := ssa.RunDSSAFix(sampler, k, eps, delta, 13, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("D-SSA-Fix", dres.Seeds, dres.RRGenerated)

	fmt.Printf("\nOPIM-C+ used %.1f× fewer RR sets than IMM at the same guarantee.\n",
		float64(ires.RRGenerated)/float64(cres.RRGenerated))
}
