// Attention-scarce diffusion: a custom triggering model beyond IC and LT.
//
// The triggering-model machinery (Kempe et al. 2003, the generality under
// which the paper proves Theorem 6.4) lets this library optimize influence
// under ANY rule of the form "v activates if someone in its random
// triggering set T(v) is active". Here we model attention scarcity: every
// user pays attention to exactly one uniformly-chosen in-neighbor per
// campaign, and is convinced with probability q — neither IC (independent
// chances per edge) nor LT (weight-proportional choice).
//
// OPIM runs unchanged on this model and still reports instance-specific
// guarantees, which we cross-check with forward simulation of the same
// custom model.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/trigger"
)

// attention is the custom triggering distribution: T(v) holds one uniform
// in-neighbor with probability q, else is empty.
type attention struct {
	g *opim.Graph
	q float64
}

func (d attention) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	from, _ := d.g.InNeighbors(v)
	if len(from) == 0 || !src.Bernoulli(d.q) {
		return buf
	}
	return append(buf, from[src.Intn(len(from))])
}

func main() {
	g, err := opim.GenerateProfile("synth-pokec", 400, 21)
	if err != nil {
		log.Fatal(err)
	}
	dist := attention{g: g, q: 0.4}
	if err := trigger.Validate(g, dist, 5000, 22); err != nil {
		log.Fatal(err) // sanity-check the custom distribution
	}
	fmt.Printf("network: n=%d m=%d, attention model q=%.1f\n\n", g.N(), g.M(), dist.q)

	sampler := opim.NewTriggeringSampler(g, dist)
	session, err := opim.NewOnline(sampler, opim.Options{
		K: 15, Delta: 0.01, Variant: opim.Plus, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, cp := range []int64{4000, 16000, 64000, 256000} {
		session.AdvanceTo(cp)
		snap := session.Snapshot()
		fmt.Printf("#RR=%7d  α=%.4f  σˡ=%.1f  σᵘ=%.1f\n", cp, snap.Alpha, snap.SigmaLower, snap.SigmaUpper)
	}
	snap := session.Snapshot()
	fmt.Printf("\nseeds: %v\n", snap.Seeds)

	// Verify the certified lower bound against forward simulation of the
	// SAME custom model — the two code paths share nothing but the
	// distribution itself.
	sim := trigger.NewSimulator(g, dist)
	src := rng.New(24)
	const runs = 20000
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(sim.Run(snap.Seeds, src))
	}
	fmt.Printf("simulated spread under the attention model: %.1f (certified ≥ %.1f)\n",
		sum/runs, snap.SigmaLower)

	// Contrast with who IC would have picked: attention scarcity devalues
	// high-out-degree hubs whose followers have many other friends.
	icRes, err := opim.Maximize(opim.NewSampler(g, opim.IC), 15, 0.2, 0.01, opim.Options{Variant: opim.Plus, Seed: 25})
	if err != nil {
		log.Fatal(err)
	}
	var icSum float64
	for i := 0; i < runs; i++ {
		icSum += float64(sim.Run(icRes.Seeds, src))
	}
	fmt.Printf("IC-optimized seeds under the attention model:   %.1f\n", icSum/runs)
}
