// Outbreak detection: influence maximization on a lattice network, the
// motif of Leskovec et al.'s water-distribution study [24] whose bound the
// paper's OPIM′ variant derives from. Contaminant spread is modeled as an
// IC cascade on a grid; placing sensors at the most influential junctions
// maximizes the expected number of junctions whose contamination a sensor
// set would catch (by symmetry of reachability on the bidirected grid).
//
// The example also contrasts the OPIM⁺ and OPIM′ guarantees on the same
// sample stream — the comparison §5 makes analytically.
//
//	go run ./examples/outbreak
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/opim"
	"github.com/reprolab/opim/internal/gen"
)

func main() {
	// A 60×60 water network; each pipe transmits contaminant with
	// probability 0.3 per direction.
	lattice, err := gen.Grid(60, 60)
	if err != nil {
		log.Fatal(err)
	}
	g, err := opim.Reweight(lattice, opim.Uniform, 0.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("water network: %d junctions, %d directed pipes\n\n", g.N(), g.M())

	sampler := opim.NewSampler(g, opim.IC)
	const sensors = 16

	for _, variant := range []opim.Variant{opim.Plus, opim.Prime, opim.Vanilla} {
		session, err := opim.NewOnline(sampler, opim.Options{
			K: sensors, Delta: 0.01, Variant: variant, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		session.Advance(200000)
		snap := session.Snapshot()
		fmt.Printf("%-6v guarantee α = %.4f  (σˡ=%.1f σᵘ=%.1f)\n",
			variant, snap.Alpha, snap.SigmaLower, snap.SigmaUpper)

		if variant == opim.Plus {
			fmt.Printf("\nsensor placement (row,col):")
			for _, s := range snap.Seeds {
				fmt.Printf(" (%d,%d)", s/60, s%60)
			}
			est := opim.EstimateSpread(g, opim.IC, snap.Seeds, 10000, 9, 0)
			fmt.Printf("\nexpected junctions covered: %v of %d\n\n", est, g.N())
		}
	}
	fmt.Println("\nnote: OPIM⁺ ≥ max(OPIM′, OPIM⁰) on every instance (Lemma 5.2).")
}
