// Quickstart: generate a synthetic social network, find 10 influential
// seeds with OPIM-C (the paper's Algorithm 2), and evaluate the result by
// Monte-Carlo simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/opim"
)

func main() {
	// A scaled-down Pokec-like social network with weighted-cascade edge
	// probabilities (p(u,v) = 1/indeg(v)).
	g, err := opim.GenerateProfile("synth-pokec", 400, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// Find a size-10 seed set with a (1−1/e−0.1)-approximation guarantee
	// holding with probability ≥ 1−1/n, under the independent cascade model.
	sampler := opim.NewSampler(g, opim.IC)
	res, err := opim.Maximize(sampler, 10, 0.1, 1/float64(g.N()), opim.Options{
		Variant: opim.Plus, // the paper's OPIM⁺ bound — certifies earliest
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPIM-C: %v\n", res)
	fmt.Printf("seeds: %v\n", res.Seeds)

	// Evaluate σ(S) the way the paper does: 10 000 Monte-Carlo cascades.
	est := opim.EstimateSpread(g, opim.IC, res.Seeds, 10000, 7, 0)
	fmt.Printf("expected spread: %v (%.2f%% of the graph)\n",
		est, 100*est.Spread/float64(g.N()))
}
