// Follow-up campaign: seed-set augmentation. Last quarter's campaign
// already recruited a set of ambassadors B; this quarter's budget adds k
// more. Re-running influence maximization from scratch would waste budget
// re-selecting users whose audience B already covers — the augmentation
// mode (Options.BaseSeeds) instead maximizes the RESIDUAL spread
// σ(B ∪ S) − σ(B), with the same certified guarantees (the residual of a
// monotone submodular function is monotone submodular).
//
//	go run ./examples/followup
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/opim"
)

func main() {
	g, err := opim.GenerateProfile("synth-livejournal", 800, 3)
	if err != nil {
		log.Fatal(err)
	}
	sampler := opim.NewSampler(g, opim.IC)
	delta := 1 / float64(g.N())
	fmt.Printf("network: n=%d m=%d\n\n", g.N(), g.M())

	// Last quarter: 10 ambassadors.
	q1, err := opim.Maximize(sampler, 10, 0.2, delta, opim.Options{Variant: opim.Plus, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	q1Spread := opim.EstimateSpread(g, opim.IC, q1.Seeds, 10000, 5, 0)
	fmt.Printf("Q1 campaign: %d ambassadors, reach %v\n", len(q1.Seeds), q1Spread)

	// This quarter: 10 more, maximizing the residual reach.
	q2, err := opim.Maximize(sampler, 10, 0.2, delta, opim.Options{
		Variant:   opim.Plus,
		Seed:      6,
		BaseSeeds: q1.Seeds,
	})
	if err != nil {
		log.Fatal(err)
	}
	both := append(append([]int32{}, q1.Seeds...), q2.Seeds...)
	bothSpread := opim.EstimateSpread(g, opim.IC, both, 10000, 7, 0)
	fmt.Printf("Q2 augmentation: +%d ambassadors, combined reach %v\n", len(q2.Seeds), bothSpread)
	fmt.Printf("certified residual gain: ≥ %.1f users (α=%.2f on the residual)\n\n",
		q2.SigmaLower, q2.Alpha)

	// Contrast: a from-scratch Q2 of the same total size overlaps Q1.
	scratch, err := opim.Maximize(sampler, 20, 0.2, delta, opim.Options{Variant: opim.Plus, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	overlap := 0
	for _, v := range scratch.Seeds {
		for _, b := range q1.Seeds {
			if v == b {
				overlap++
				break
			}
		}
	}
	fmt.Printf("a from-scratch 20-seed run would re-select %d of Q1's ambassadors;\n", overlap)
	fmt.Println("augmentation reuses them for free and spends the new budget elsewhere.")
}
