// Viral marketing with online processing: the scenario from the paper's
// introduction. A marketer wants influential users to promote a campaign,
// but does not know in advance how tight a guarantee is worth waiting for.
// With OPIM she watches the guarantee improve in real time and stops as
// soon as it is good enough — no up-front ε required.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reprolab/opim"
)

func main() {
	// A LiveJournal-like network under the linear threshold model.
	g, err := opim.GenerateProfile("synth-livejournal", 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign network: %d users, %d follow edges\n\n", g.N(), g.M())

	sampler := opim.NewSampler(g, opim.LT)
	session, err := opim.NewOnline(sampler, opim.Options{
		K:       25,                 // campaign budget: 25 seed users
		Delta:   1 / float64(g.N()), // the paper's default δ = 1/n
		Variant: opim.Plus,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The marketer checks in after every batch of samples and stops once
	// the solution is certifiably within 85% of optimal.
	const satisfiedAt = 0.85
	start := time.Now()
	fmt.Printf("%10s %10s %8s %12s %12s\n", "elapsed", "#RR", "α", "σˡ(S*)", "σᵘ(S°)")
	for batch := int64(1000); ; batch *= 2 {
		session.AdvanceTo(batch)
		snap := session.Snapshot()
		fmt.Printf("%9.2fs %10d %8.4f %12.1f %12.1f\n",
			time.Since(start).Seconds(), session.NumRR(), snap.Alpha, snap.SigmaLower, snap.SigmaUpper)

		if snap.Alpha >= satisfiedAt {
			fmt.Printf("\nsatisfied: S* is a %.1f%%-approximation with probability ≥ %.4f\n",
				100*snap.Alpha, 1-snap.DeltaSpent)
			fmt.Printf("recruit these %d users: %v\n", len(snap.Seeds), snap.Seeds)
			est := opim.EstimateSpread(g, opim.LT, snap.Seeds, 10000, 99, 0)
			fmt.Printf("projected cascade size: %v users\n", est)
			return
		}
		if session.NumRR() >= 1<<22 {
			log.Fatal("gave up: guarantee did not reach the target within the sample budget")
		}
	}
}
