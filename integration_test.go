package opim

// Integration tests exercising whole workflows across modules, including
// cross-validation of independent implementations (forward simulation vs
// reverse sampling, specialized vs triggering-model samplers, OPIM-C vs
// heuristic baselines).

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/trigger"
)

// TestWorkflowGenerateSaveLoadMaximize is the full pipeline a user of the
// CLI tools follows: generate → save → load → maximize → evaluate.
func TestWorkflowGenerateSaveLoadMaximize(t *testing.T) {
	g, err := GenerateProfile("synth-livejournal", 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.bin"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}

	sampler := NewSampler(g2, LT)
	res, err := Maximize(sampler, 10, 0.2, 0.01, Options{Variant: Plus, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spread := EstimateSpread(g2, LT, res.Seeds, 5000, 3, 0)

	// The certified solution must beat every guarantee-free heuristic's
	// (1−1/e−ε) fraction — in practice it should simply be at least
	// comparable to the best of them.
	for _, baseline := range [][]int32{
		TopDegree(g2, 10),
		TopPageRank(g2, 10),
		DegreeDiscount(g2, 10, 0.05),
	} {
		b := EstimateSpread(g2, LT, baseline, 5000, 4, 0)
		if spread.Spread < res.Target*b.Spread {
			t.Fatalf("OPIM-C spread %v below target share of heuristic %v", spread, b)
		}
	}
}

// TestTriggeringModelEndToEnd runs OPIM-C over a generic triggering
// distribution and checks the result against the specialized sampler.
func TestTriggeringModelEndToEnd(t *testing.T) {
	g, err := GenerateProfile("synth-pokec", 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Maximize(NewSampler(g, IC), 5, 0.3, 0.05, Options{Variant: Plus, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Maximize(NewTriggeringSampler(g, trigger.NewIC(g)), 5, 0.3, 0.05, Options{Variant: Plus, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := EstimateSpread(g, IC, spec.Seeds, 20000, 7, 0)
	b := EstimateSpread(g, IC, gen.Seeds, 20000, 7, 0)
	if math.Abs(a.Spread-b.Spread) > 0.15*a.Spread+4*(a.StdErr+b.StdErr) {
		t.Fatalf("triggering-model OPIM-C spread %v diverges from specialized %v", b, a)
	}
}

// majorityVote is a custom triggering distribution outside IC/LT: v's
// triggering set is a uniformly random half of its in-neighbors. It
// exercises the user-supplied-distribution path end to end.
type majorityVote struct{ g *Graph }

func (d majorityVote) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	from, _ := d.g.InNeighbors(v)
	for _, u := range from {
		if src.Bernoulli(0.5) {
			buf = append(buf, u)
		}
	}
	return buf
}

func TestCustomTriggeringDistribution(t *testing.T) {
	g, err := GenerateProfile("synth-pokec", 40000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := trigger.Validate(g, majorityVote{g}, 1000, 9); err != nil {
		t.Fatal(err)
	}
	sampler := NewTriggeringSampler(g, majorityVote{g})
	session, err := NewOnline(sampler, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	session.Advance(4000)
	snap := session.Snapshot()
	if len(snap.Seeds) != 5 || snap.Alpha <= 0 || snap.Alpha > 1 {
		t.Fatalf("snapshot = %v", snap)
	}

	// Cross-validate the certified lower bound against forward simulation
	// under the same custom distribution.
	sim := trigger.NewSimulator(g, majorityVote{g})
	src := rng.New(11)
	const runs = 20000
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(sim.Run(snap.Seeds, src))
	}
	measured := sum / runs
	if snap.SigmaLower > measured*1.1+1 {
		t.Fatalf("certified σˡ=%v above measured spread %v under custom model", snap.SigmaLower, measured)
	}
}

// TestOnlineMatchesMaximizeAtSameSampleCount checks the two front doors are
// consistent: an Online session paused at OPIM-C's final sample count
// produces the same seed set (same seed, same variant).
func TestOnlineMatchesMaximizeAtSameSampleCount(t *testing.T) {
	g, err := GenerateProfile("synth-pokec", 40000, 12)
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(g, IC)
	res, err := Maximize(sampler, 8, 0.25, 0.05, Options{Variant: Plus, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewOnline(sampler, Options{K: 8, Delta: 0.05, Variant: Plus, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	session.AdvanceTo(res.Theta1 + res.Theta2)
	snap := session.Snapshot()
	if len(snap.Seeds) != len(res.Seeds) {
		t.Fatalf("seed counts differ")
	}
	for i := range res.Seeds {
		if snap.Seeds[i] != res.Seeds[i] {
			t.Fatalf("seed %d: online %d vs maximize %d", i, snap.Seeds[i], res.Seeds[i])
		}
	}
}

// TestHopLimitedOPIMEndToEnd runs the full OPIM stack on the hop-limited
// objective and validates the certified lower bound against hop-limited
// forward simulation.
func TestHopLimitedOPIMEndToEnd(t *testing.T) {
	g, err := GenerateProfile("synth-pokec", 20000, 90)
	if err != nil {
		t.Fatal(err)
	}
	const h = 2
	sampler := NewHopSampler(g, IC, h)
	session, err := NewOnline(sampler, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	session.Advance(20000)
	snap := session.Snapshot()
	if len(snap.Seeds) != 5 || snap.Alpha <= 0 {
		t.Fatalf("snapshot = %v", snap)
	}

	sim := diffusion.NewSimulator(g)
	src := rng.New(92)
	const runs = 30000
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(sim.RunHops(diffusion.IC, snap.Seeds, h, src))
	}
	measured := sum / runs
	if snap.SigmaLower > measured*1.05+1 {
		t.Fatalf("hop-limited σˡ = %v above measured σ_h = %v", snap.SigmaLower, measured)
	}
	if snap.SigmaUpper < measured*0.95 {
		t.Fatalf("hop-limited σᵘ = %v below measured σ_h = %v", snap.SigmaUpper, measured)
	}
}
