package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// Fleet metric family (documented in docs/OBSERVABILITY.md).
var (
	mGenerations      = obs.Default().Counter("fleet_generations_total")
	mDegraded         = obs.Default().Counter("fleet_degraded_generations_total")
	mNoReplica        = obs.Default().Counter("fleet_no_replica_generations_total")
	mLeases           = obs.Default().Counter("fleet_leases_total")
	mLeasesReassigned = obs.Default().Counter("fleet_leases_reassigned_total")
	mLeasesLocal      = obs.Default().Counter("fleet_leases_local_total")
	mDuplicates       = obs.Default().Counter("fleet_batches_duplicate_total")
	mRPCFailures      = obs.Default().Counter("fleet_rpc_failures_total")
	mFPMismatches     = obs.Default().Counter("fleet_fingerprint_mismatch_total")
	mEvictions        = obs.Default().Counter("fleet_workers_evicted_total")
	mHealthyWorkers   = obs.Default().Gauge("fleet_workers_healthy")
	mRPCTimer         = obs.Default().Timer("fleet_rpc_seconds")
)

// Config parameterizes a Coordinator. The zero value of every optional
// field picks a sensible default (see the field comments).
type Config struct {
	// Workers is the list of worker base URLs ("http://host:port"). It
	// may be empty: the coordinator then runs permanently degraded,
	// sampling locally.
	Workers []string
	// Client issues worker RPCs; nil means a default client. Chaos tests
	// swap in clients wearing faultinject round-trippers. Per-RPC
	// deadlines come from RPCTimeout, not Client.Timeout.
	Client *http.Client
	// ChunkSize is the lease width in RR sets (default 256). Smaller
	// leases lose less work per failure and spread load better; larger
	// leases amortize RPC overhead.
	ChunkSize int
	// RPCTimeout bounds each worker RPC (default 30s).
	RPCTimeout time.Duration
	// ProbeTimeout bounds each /worker/info health probe (default 2s,
	// capped at RPCTimeout). Probes are cheap and answered from memory,
	// so they get a much tighter deadline than lease RPCs — one
	// blackholed worker must not stall a heartbeat sweep for the full
	// lease timeout.
	ProbeTimeout time.Duration
	// LeaseTTL is how long a lease may stay in flight before the
	// watchdog speculatively reassigns it to another worker (default
	// 2×RPCTimeout; the original RPC keeps running — first delivery
	// wins, the loser is discarded as a duplicate).
	LeaseTTL time.Duration
	// HeartbeatEvery is the background health-probe period once Start is
	// called (default 1s).
	HeartbeatEvery time.Duration
	// FailThreshold is the number of consecutive RPC failures after
	// which a worker is evicted from the current generation (default 3).
	// A later successful heartbeat re-admits it.
	FailThreshold int
	// MaxLeaseAttempts caps remote attempts per lease before the
	// coordinator gives up on the fleet for that lease and samples it
	// locally (default 4).
	MaxLeaseAttempts int
	// Seed keys the coordinator's retry-jitter stream so chaos tests
	// replay identically (default 1).
	Seed uint64
	// Events, when non-nil, receives fleet lifecycle events (worker
	// eviction, degraded-mode entry).
	Events obs.Sink
	// Logf, when non-nil, replaces log.Printf for fleet warnings.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeTimeout > c.RPCTimeout {
		c.ProbeTimeout = c.RPCTimeout
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * c.RPCTimeout
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.MaxLeaseAttempts <= 0 {
		c.MaxLeaseAttempts = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// workerState tracks one worker's registration and health. All fields are
// guarded by Coordinator.mu.
type workerState struct {
	url string
	// probed is set once /worker/info has answered at least once; an
	// unprobed worker is never leased work.
	probed bool
	// fingerprint is the worker's replica fingerprint from its last
	// successful probe.
	fingerprint string
	// epoch/lineage place the replica on its graph's mutation epoch chain
	// (from the last successful probe). A replica at the wrong epoch —
	// typically one started before a mutation batch landed — is excluded
	// exactly like one holding the wrong graph.
	epoch   int64
	lineage string
	// model is the worker's diffusion model from its last successful
	// probe. A worker sampling under the wrong model is excluded exactly
	// like one holding the wrong graph.
	model string
	// mismatchLogged remembers the last (fingerprint, model) identity
	// this worker was logged as mismatching, so a permanent wrong-replica
	// configuration logs once, not once per Generate.
	mismatchLogged string
	// healthy means the last probe or RPC succeeded.
	healthy bool
	// evicted removes the worker from dispatch until a heartbeat
	// re-admits it (or permanently, for fingerprint mismatches —
	// re-admission requires the fingerprint to match again).
	evicted       bool
	consecFails   int
	batchesServed int64
}

// Coordinator distributes RR-set generation over a worker fleet. It
// satisfies core.Generator structurally (this package deliberately does
// not import core), so it plugs into core.Options.Generator or
// server.Config.Generator directly.
//
// Safe for concurrent use; each Generate call runs its own dispatch.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers []*workerState
	jitter  *rng.Source
	stop    chan struct{}
	stopped sync.WaitGroup
	started bool
	// degradedLogged remembers degrade reasons already logged once, for
	// reasons that describe a permanent configuration (no matching
	// replica) rather than a transient outage.
	degradedLogged map[string]bool
}

// NewCoordinator returns a Coordinator over cfg.Workers. Workers are
// registered lazily: the first Generate (or Start) probes them.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg, jitter: rng.NewStream(cfg.Seed, 0x1ea5e)}
	for _, u := range cfg.Workers {
		c.workers = append(c.workers, &workerState{url: u})
	}
	return c
}

// Start launches the background heartbeat prober. It is optional —
// Generate probes unregistered workers itself — but without it a worker
// that died stays undetected until it fails leases, and an evicted worker
// that recovered is never re-admitted. Call Close to stop it.
func (c *Coordinator) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.stopped.Add(1)
	go func() {
		defer c.stopped.Done()
		t := time.NewTicker(c.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops the heartbeat prober. It does not interrupt an in-flight
// Generate.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	close(c.stop)
	c.mu.Unlock()
	c.stopped.Wait()
}

// probeAll heartbeats every worker: GET /worker/info, verify the
// fingerprint is self-consistent, update health, re-admit recovered
// workers. Probing also performs initial registration. Probes run
// concurrently so one blackholed worker delays a sweep by ProbeTimeout,
// not by ProbeTimeout × fleet size.
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	targets := make([]*workerState, len(c.workers))
	copy(targets, c.workers)
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range targets {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			info, err := c.probe(w.url)
			c.mu.Lock()
			defer c.mu.Unlock()
			if err != nil {
				w.healthy = false
				return
			}
			prev := w.fingerprint
			w.probed = true
			w.fingerprint = info.Fingerprint
			w.epoch, w.lineage = info.Epoch, info.Lineage
			w.model = info.Model
			w.healthy = true
			w.consecFails = 0
			if w.evicted {
				// Re-admission: the worker answers again. If it was
				// evicted for an identity mismatch, the mismatch check
				// at dispatch time still excludes it unless its replica
				// changed to the right graph and model.
				w.evicted = false
				if prev != info.Fingerprint {
					c.cfg.Logf("fleet: worker %s re-admitted with fingerprint %.12s", w.url, info.Fingerprint)
				}
			}
		}(w)
	}
	wg.Wait()
	c.updateHealthyGauge()
}

func (c *Coordinator) probe(url string) (*infoResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+pathInfo, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort drain for keep-alive
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s%s: status %d", url, pathInfo, resp.StatusCode)
	}
	var info infoResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&info); err != nil {
		return nil, fmt.Errorf("fleet: %s%s: %w", url, pathInfo, err)
	}
	return &info, nil
}

func (c *Coordinator) updateHealthyGauge() {
	c.mu.Lock()
	n := 0
	for _, w := range c.workers {
		if w.probed && w.healthy && !w.evicted {
			n++
		}
	}
	c.mu.Unlock()
	mHealthyWorkers.Set(float64(n))
}

// eligible returns the workers fit to receive leases for the influence
// instance (fp, epoch, lineage, model), probing any not-yet-registered
// worker first (concurrently, so an unreachable worker costs one
// ProbeTimeout, not one per worker, before the first lease goes out).
func (c *Coordinator) eligible(fp string, epoch int64, lineage, model string) []*workerState {
	c.mu.Lock()
	var unprobed []*workerState
	for _, w := range c.workers {
		if !w.probed {
			unprobed = append(unprobed, w)
		}
	}
	c.mu.Unlock()
	if len(unprobed) > 0 {
		var wg sync.WaitGroup
		for _, w := range unprobed {
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				info, err := c.probe(w.url)
				c.mu.Lock()
				if err == nil {
					w.probed, w.healthy = true, true
					w.fingerprint, w.model = info.Fingerprint, info.Model
					w.epoch, w.lineage = info.Epoch, info.Lineage
				}
				c.mu.Unlock()
			}(w)
		}
		wg.Wait()
		c.updateHealthyGauge()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	want := fmt.Sprintf("%s@%d/%s/%s", fp, epoch, lineage, model)
	var out []*workerState
	for _, w := range c.workers {
		if !w.probed || !w.healthy || w.evicted {
			continue
		}
		if w.fingerprint != fp || w.epoch != epoch || w.lineage != lineage || w.model != model {
			mFPMismatches.Inc()
			// A wrong replica is usually a permanent configuration (or, for
			// an epoch mismatch, lasts until the worker restarts on the
			// mutated graph): log each worker's exclusion once per wanted
			// identity, not once per Generate.
			if w.mismatchLogged != want {
				w.mismatchLogged = want
				c.cfg.Logf("fleet: worker %s holds graph %.12s epoch %d model %s, session needs %.12s epoch %d model %s; excluded",
					w.url, w.fingerprint, w.epoch, w.model, fp, epoch, model)
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// Lease lifecycle. A lease is a contiguous seed range [lo, hi) of the
// batch; its RR sets are Split(startID+lo) … Split(startID+hi-1).
type leaseStatus int32

const (
	leaseQueued leaseStatus = iota
	leaseInFlight
	leaseDone
)

type lease struct {
	lo, hi int
	// All below guarded by run.mu.
	status       leaseStatus
	attempts     int
	dispatchedAt time.Time
	result       *rrset.Collection
}

// run is the per-Generate dispatch state.
type run struct {
	c *Coordinator

	fp      string
	epoch   int64
	lineage string
	model   string
	key0    string
	key1    string
	startID uint64
	workers int // worker-local sampling parallelism hint

	sampler *rrset.Sampler // for local fallback

	mu        sync.Mutex
	leases    []*lease
	remaining int

	queue   chan int      // lease indices awaiting pickup
	allDone chan struct{} // closed when remaining hits 0
	// ctx parents every lease RPC and is cancelled the moment the run
	// completes, so a losing speculative RPC on a wedged worker cannot
	// hold Generate hostage for the rest of its RPCTimeout.
	ctx    context.Context
	cancel context.CancelFunc
}

// Generate implements the core.Generator contract: it appends count RR
// sets to coll, deterministically equivalent to
// rrset.Generate(coll, s, count, base, workers), by leasing seed ranges to
// the fleet and merging results in order. It never fails: leases that the
// fleet cannot serve — including all of them, when no worker is healthy —
// are sampled locally.
func (c *Coordinator) Generate(coll *rrset.Collection, s *rrset.Sampler, count int, base *rng.Source, workers int) {
	if count <= 0 {
		return
	}
	mGenerations.Inc()
	g := s.Graph()
	fp := g.Fingerprint()
	epoch, lineage := g.Epoch(), g.EpochLineage()
	model := s.Model().String()
	eligible := c.eligible(fp, epoch, lineage, model)
	if len(eligible) == 0 {
		why, permanent := c.degradeReason(fp, epoch, model)
		c.degrade(coll, s, count, base, workers, why, permanent)
		return
	}

	k0, k1 := base.Key()
	startID := uint64(coll.Count())
	r := &run{
		c:       c,
		fp:      fp,
		epoch:   epoch,
		lineage: lineage,
		model:   model,
		key0:    strconv.FormatUint(k0, 16),
		key1:    strconv.FormatUint(k1, 16),
		startID: startID,
		workers: workers,
		sampler: s,
		allDone: make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	defer r.cancel()
	for lo := 0; lo < count; lo += c.cfg.ChunkSize {
		hi := lo + c.cfg.ChunkSize
		if hi > count {
			hi = count
		}
		r.leases = append(r.leases, &lease{lo: lo, hi: hi})
	}
	r.remaining = len(r.leases)
	mLeases.Add(int64(len(r.leases)))
	// Capacity covers every lease at its attempt cap plus watchdog
	// re-pushes; pushes are non-blocking besides, so the exact figure
	// only affects how rarely the watchdog has to re-push.
	r.queue = make(chan int, len(r.leases)*(c.cfg.MaxLeaseAttempts+2))
	for i := range r.leases {
		r.queue <- i
	}

	// One puller per eligible worker, plus a watchdog that reassigns
	// leases stuck in flight past the TTL.
	var wg sync.WaitGroup
	for _, w := range eligible {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			r.pull(w)
		}(w)
	}
	watchdogDone := make(chan struct{})
	go r.watchdog(watchdogDone)

	workersExited := make(chan struct{})
	go func() { wg.Wait(); close(workersExited) }()

	select {
	case <-r.allDone:
	case <-workersExited:
		// Every worker failed out mid-run with leases still open. No
		// RPCs remain in flight (pullers exited), so finish the tail
		// locally — at-least-once still holds, and markDone dedup makes
		// the merge exactly-once even if this races nothing.
		r.finishLocally("all workers evicted mid-generation")
	}
	close(watchdogDone)
	wg.Wait()

	// Merge in lease order: byte-identical to the single-process run.
	for _, l := range r.leases {
		if err := coll.AppendCollection(l.result); err != nil {
			// Unreachable: every chunk was generated for coll's graph.
			panic(fmt.Sprintf("fleet: merge: %v", err))
		}
	}
}

// degradeReason distinguishes the two ways a fleet ends up with no
// eligible worker: a genuine outage (nobody healthy) versus a permanent
// configuration where healthy workers exist but none replicates this
// session's (graph, model). The latter is expected on a multi-graph
// daemon and reported quietly (once per identity) so it cannot drown out
// real outages.
func (c *Coordinator) degradeReason(fp string, epoch int64, model string) (why string, permanent bool) {
	c.mu.Lock()
	aliveMismatched := 0
	for _, w := range c.workers {
		if w.probed && w.healthy && !w.evicted {
			aliveMismatched++
		}
	}
	c.mu.Unlock()
	if aliveMismatched > 0 {
		mNoReplica.Inc()
		return fmt.Sprintf("no worker replicates graph %.12s epoch %d model %s", fp, epoch, model), true
	}
	return "no healthy workers", false
}

// degrade falls back to fully local, in-process generation. A permanent
// reason (no matching replica — a configuration, not an incident) is
// logged and emitted once; transient outages are reported every time.
func (c *Coordinator) degrade(coll *rrset.Collection, s *rrset.Sampler, count int, base *rng.Source, workers int, why string, permanent bool) {
	mDegraded.Inc()
	loud := true
	if permanent {
		c.mu.Lock()
		if c.degradedLogged == nil {
			c.degradedLogged = make(map[string]bool)
		}
		loud = !c.degradedLogged[why]
		c.degradedLogged[why] = true
		c.mu.Unlock()
	}
	if loud {
		suffix := ""
		if permanent {
			suffix = " (further occurrences logged at most once)"
		}
		c.cfg.Logf("fleet: DEGRADED: %s; sampling %d RR sets locally%s", why, count, suffix)
		obs.Emit(c.cfg.Events, "fleet_degraded", map[string]any{
			"reason": why,
			"count":  count,
		})
	}
	rrset.Generate(coll, s, count, base, workers)
}

// pull is one worker's dispatch loop: take a lease, run the RPC, deliver
// or requeue. It exits when the run completes or its worker is evicted.
func (r *run) pull(w *workerState) {
	for {
		select {
		case <-r.allDone:
			return
		case idx := <-r.queue:
			l := r.leases[idx]
			r.mu.Lock()
			if l.status == leaseDone {
				r.mu.Unlock()
				continue
			}
			// A speculative pickup (the lease is already in flight on
			// another worker) races the original delivery; it does not
			// consume an attempt, so a slow-but-healthy holder cannot
			// burn the lease through MaxLeaseAttempts by itself.
			if l.status != leaseInFlight {
				l.attempts++
			}
			l.status = leaseInFlight
			attempt := l.attempts
			l.dispatchedAt = time.Now()
			r.mu.Unlock()

			cc, err := r.generateRPC(w, l)
			if err == nil {
				r.markDone(idx, cc, w)
				continue
			}
			select {
			case <-r.allDone:
				// The run completed while this RPC was in flight and
				// cancelled it; that is not the worker's failure.
				return
			default:
			}

			mRPCFailures.Inc()
			evicted := r.c.workerFailed(w, err)
			r.mu.Lock()
			done := l.status == leaseDone
			if !done {
				l.status = leaseQueued
			}
			r.mu.Unlock()
			if !done {
				if attempt >= r.c.cfg.MaxLeaseAttempts {
					// The fleet has had its chances; compute this lease
					// in-process so the batch still completes.
					r.localLease(idx, "attempt cap reached")
				} else {
					r.push(idx)
				}
			}
			if evicted {
				return
			}
			// Jittered backoff before this worker takes another lease,
			// mirroring the client retry idiom: failures are rarely
			// fixed by immediately hammering the same endpoint.
			r.backoff(attempt)
		}
	}
}

// push enqueues a lease index without ever blocking a puller; if the
// queue is momentarily full the watchdog will re-push on its next sweep.
func (r *run) push(idx int) {
	select {
	case r.queue <- idx:
	default:
	}
}

func (r *run) backoff(attempt int) {
	base := 50 * time.Millisecond
	max := time.Second
	d := base << uint(attempt-1)
	if d > max {
		d = max
	}
	r.c.mu.Lock()
	j := time.Duration(r.c.jitter.Float64() * float64(d) / 2)
	r.c.mu.Unlock()
	select {
	case <-time.After(d/2 + j):
	case <-r.allDone:
	}
}

// markDone records a lease delivery. The first delivery wins; later
// duplicates (speculative reassignment racing the original) are counted
// and discarded, keeping the merge exactly-once.
func (r *run) markDone(idx int, cc *rrset.Collection, w *workerState) {
	l := r.leases[idx]
	r.mu.Lock()
	if l.status == leaseDone {
		r.mu.Unlock()
		mDuplicates.Inc()
		return
	}
	l.status = leaseDone
	l.result = cc
	r.remaining--
	last := r.remaining == 0
	r.mu.Unlock()
	if w != nil {
		r.c.workerSucceeded(w)
	}
	if last {
		close(r.allDone)
		// Cancel in-flight losing RPCs immediately: Generate must not
		// wait out a wedged worker's RPCTimeout after the batch is done.
		r.cancel()
	}
}

// localLease computes one lease in-process — the per-lease degradation
// path for leases the fleet kept failing.
func (r *run) localLease(idx int, why string) {
	l := r.leases[idx]
	r.mu.Lock()
	if l.status == leaseDone {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	mLeasesLocal.Inc()
	r.c.cfg.Logf("fleet: lease [%d,%d): %s; sampling locally", l.lo, l.hi, why)
	r.markDone(idx, r.generateLocal(l), nil)
}

// generateLocal reproduces a lease's exact chunk in-process.
func (r *run) generateLocal(l *lease) *rrset.Collection {
	cc := rrset.NewCollection(r.sampler.Graph().N())
	k0, _ := strconv.ParseUint(r.key0, 16, 64)
	k1, _ := strconv.ParseUint(r.key1, 16, 64)
	base := rng.NewFromKey(k0, k1)
	rrset.GenerateAt(cc, r.sampler, l.hi-l.lo, base, r.startID+uint64(l.lo), r.workers)
	return cc
}

// finishLocally completes every unfinished lease in-process.
func (r *run) finishLocally(why string) {
	for idx, l := range r.leases {
		r.mu.Lock()
		open := l.status != leaseDone
		r.mu.Unlock()
		if open {
			r.localLease(idx, why)
		}
	}
}

// watchdog reassigns leases stuck in flight past the TTL (the holder may
// be wedged, GC-paused, or dead without closing the connection) and
// re-pushes queued leases whose enqueue was dropped on a full queue.
func (r *run) watchdog(stop chan struct{}) {
	tick := r.c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-r.allDone:
			return
		case <-t.C:
			now := time.Now()
			for idx, l := range r.leases {
				r.mu.Lock()
				expired := l.status == leaseInFlight && now.Sub(l.dispatchedAt) > r.c.cfg.LeaseTTL
				if expired {
					// Re-arm the TTL so one expiry triggers one
					// reassignment, not one per tick until a puller
					// happens to pick the duplicate up.
					l.dispatchedAt = now
				}
				requeue := l.status == leaseQueued
				r.mu.Unlock()
				if expired {
					mLeasesReassigned.Inc()
					r.c.cfg.Logf("fleet: lease [%d,%d) expired after %v; reassigning", l.lo, l.hi, r.c.cfg.LeaseTTL)
					r.push(idx)
				} else if requeue {
					r.push(idx)
				}
			}
		}
	}
}

// generateRPC ships one lease to w and decodes the returned chunk. Any
// transport error, non-200 status, or CRC/format failure is returned for
// the caller to retry elsewhere; a 412 additionally evicts the worker
// (its replica is the wrong graph — no retry can help).
func (r *run) generateRPC(w *workerState, l *lease) (*rrset.Collection, error) {
	body, err := json.Marshal(generateRequest{
		Fingerprint: r.fp,
		Epoch:       r.epoch,
		Lineage:     r.lineage,
		Model:       r.model,
		Key0:        r.key0,
		Key1:        r.key1,
		StartID:     r.startID + uint64(l.lo),
		Count:       l.hi - l.lo,
		Workers:     r.workers,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(r.ctx, r.c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+pathGenerate, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.c.cfg.Client.Do(req)
	mRPCTimer.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10)) //nolint:errcheck // best-effort drain for keep-alive
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusPreconditionFailed:
		mFPMismatches.Inc()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		why := string(bytes.TrimSpace(msg))
		if why == "" {
			why = "identity mismatch"
		}
		r.c.evict(w, why)
		return nil, fmt.Errorf("fleet: %s refused lease: %s", w.url, why)
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fleet: %s%s: status %d: %s", w.url, pathGenerate, resp.StatusCode, bytes.TrimSpace(msg))
	}
	cc, err := rrset.ReadCollection(resp.Body)
	if err != nil {
		// Torn or corrupted transfer; the OPIMR2 CRC trailer turns it
		// into a clean retryable error instead of silent bad data.
		return nil, fmt.Errorf("fleet: %s: chunk decode: %w", w.url, err)
	}
	if got := cc.Count(); got != l.hi-l.lo {
		return nil, fmt.Errorf("fleet: %s returned %d RR sets for a lease of %d", w.url, got, l.hi-l.lo)
	}
	return cc, nil
}

// workerFailed records an RPC failure; crossing FailThreshold evicts the
// worker. Reports whether the worker is now evicted.
func (c *Coordinator) workerFailed(w *workerState, err error) bool {
	c.mu.Lock()
	w.consecFails++
	hit := w.consecFails >= c.cfg.FailThreshold && !w.evicted
	c.mu.Unlock()
	if hit {
		c.evict(w, fmt.Sprintf("%d consecutive failures (last: %v)", c.cfg.FailThreshold, err))
	}
	c.mu.Lock()
	out := w.evicted
	c.mu.Unlock()
	return out
}

func (c *Coordinator) workerSucceeded(w *workerState) {
	c.mu.Lock()
	w.consecFails = 0
	w.healthy = true
	w.batchesServed++
	c.mu.Unlock()
}

func (c *Coordinator) evict(w *workerState, why string) {
	c.mu.Lock()
	already := w.evicted
	w.evicted = true
	w.healthy = false
	c.mu.Unlock()
	if already {
		return
	}
	mEvictions.Inc()
	c.cfg.Logf("fleet: evicting worker %s: %s", w.url, why)
	obs.Emit(c.cfg.Events, "fleet_evict", map[string]any{
		"worker": w.url,
		"reason": why,
	})
	c.updateHealthyGauge()
}
