// Package fleet distributes RR-set generation across a fleet of stateless
// worker processes while preserving the library's determinism invariant:
// the merged collection is byte-identical to a single-process run, for any
// worker count, any interleaving of deliveries, and any pattern of worker
// failures.
//
// The design splits cleanly because the RNG does: RR set i of a batch is
// driven by base.Split(startID+i), and Split depends only on the parent's
// seeding snapshot (rng.Key), never its position. The coordinator therefore
// partitions a batch into contiguous seed-range leases, ships each lease as
// (key, startID, count) to a worker, and merges the returned chunk
// collections in lease order. Which machine computed a chunk is
// unobservable in the output.
//
// Delivery is at-least-once (failed or slow leases are reassigned, possibly
// racing the original), merge is exactly-once (first completed delivery of
// a lease wins; duplicates are discarded and counted). Torn or corrupted
// transfers are caught by the OPIMR2 CRC trailer and retried. A fleet with
// zero healthy workers degrades to local in-process sampling — generation
// never fails, it only gets slower and louder (metrics + event + log).
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// Wire paths of the worker protocol (documented in docs/API.md).
const (
	pathInfo     = "/worker/info"
	pathGenerate = "/worker/generate"
)

// maxGenerateBody bounds the generate request body; requests are a few
// hundred bytes, so anything larger is garbage.
const maxGenerateBody = 1 << 16

var (
	mWorkerBatches   = obs.Default().Counter("fleet_worker_batches_total")
	mWorkerRRSets    = obs.Default().Counter("fleet_worker_rrsets_total")
	mWorkerRefusals  = obs.Default().Counter("fleet_worker_refusals_total")
	mWorkerGenTimer  = obs.Default().Timer("fleet_worker_generate_seconds")
	mWorkerBadableRq = obs.Default().Counter("fleet_worker_bad_requests_total")
)

// infoResponse is the body of GET /worker/info.
type infoResponse struct {
	// Fingerprint is the content fingerprint of the worker's graph
	// replica (graph.Fingerprint). The coordinator refuses to lease work
	// to a worker whose fingerprint differs from the session graph's.
	Fingerprint string `json:"fingerprint"`
	// Epoch and Lineage place the replica on its graph's mutation epoch
	// chain (graph.EpochLineage): a worker still holding the pre-mutation
	// replica is excluded until it restarts on the mutated graph.
	Epoch   int64  `json:"epoch"`
	Lineage string `json:"lineage"`
	// N is the replica's node count (a cheap cross-check and a useful
	// human diagnostic when fingerprints differ).
	N int32 `json:"n"`
	// Model names the diffusion model the worker samples under.
	Model string `json:"model"`
}

// generateRequest is the body of POST /worker/generate: one seed-range
// lease. Key0/Key1 carry the coordinator's base-source seeding snapshot
// (rng.Source.Key) as hex strings — uint64 values do not survive JSON
// number round-trips above 2^53.
type generateRequest struct {
	// Fingerprint is the graph the coordinator believes it is sampling
	// on. A mismatch is refused with 412 rather than computing RR sets
	// on the wrong influence instance.
	Fingerprint string `json:"fingerprint"`
	// Model is the diffusion model the coordinator samples under. Same
	// graph + different model is a different influence instance, so a
	// mismatch is refused with 412 exactly like a fingerprint mismatch.
	Model string `json:"model"`
	// Epoch and Lineage pin the lease to a position on the graph's
	// mutation epoch chain. The same base dataset at a different epoch is
	// a different graph; a replica that has not seen the mutation batch
	// refuses with 412 like any other identity mismatch.
	Epoch   int64  `json:"epoch"`
	Lineage string `json:"lineage"`
	Key0    string `json:"key0"`
	Key1    string `json:"key1"`
	// StartID is the global id of the lease's first RR set: set j of the
	// response was driven by Split(StartID+j).
	StartID uint64 `json:"start_id"`
	// Count is the number of RR sets to generate (the lease width).
	Count int `json:"count"`
	// Workers bounds the worker-local sampling parallelism (≤0 means
	// GOMAXPROCS). It cannot change the bytes produced, only the speed.
	Workers int `json:"workers"`
}

// Worker serves seed-range leases over HTTP from a local graph replica.
// It is stateless between requests: every lease carries the full seeding
// material needed to reproduce its RR sets, so a worker can be killed and
// replaced at any time without losing anything but in-flight effort.
type Worker struct {
	sampler *rrset.Sampler
	fp      string
	epoch   int64
	lineage string
	model   string
	mux     *http.ServeMux
}

// NewWorker returns a Worker serving RR-set leases sampled from s.
func NewWorker(s *rrset.Sampler) *Worker {
	g := s.Graph()
	w := &Worker{
		sampler: s,
		fp:      g.Fingerprint(),
		epoch:   g.Epoch(),
		lineage: g.EpochLineage(),
		model:   s.Model().String(),
	}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc(pathInfo, w.handleInfo)
	w.mux.HandleFunc(pathGenerate, w.handleGenerate)
	// /status aliases /worker/info so ops tooling (and the opimd process
	// harness) can health-check workers and daemons uniformly.
	w.mux.HandleFunc("/status", w.handleInfo)
	return w
}

// Fingerprint returns the fingerprint of the worker's graph replica.
func (w *Worker) Fingerprint() string { return w.fp }

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			// A panicking lease must not take the worker down: report 500
			// and let the coordinator reassign.
			http.Error(rw, fmt.Sprintf("worker: internal error: %v", p), http.StatusInternalServerError)
		}
	}()
	w.mux.ServeHTTP(rw, r)
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(infoResponse{
		Fingerprint: w.fp,
		Epoch:       w.epoch,
		Lineage:     w.lineage,
		N:           w.sampler.Graph().N(),
		Model:       w.model,
	})
}

func (w *Worker) handleGenerate(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req generateRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxGenerateBody))
	if err := dec.Decode(&req); err != nil {
		mWorkerBadableRq.Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Fingerprint != w.fp {
		// Refuse rather than sample: RR sets from a different graph are
		// not wrong-looking, they are silently wrong.
		mWorkerRefusals.Inc()
		http.Error(rw, fmt.Sprintf("graph fingerprint mismatch: worker holds %s, lease expects %s",
			w.fp, req.Fingerprint), http.StatusPreconditionFailed)
		return
	}
	if req.Model != w.model {
		// Same graph under a different diffusion model is a different
		// influence instance; its RR sets are just as silently wrong.
		mWorkerRefusals.Inc()
		http.Error(rw, fmt.Sprintf("diffusion model mismatch: worker samples %s, lease expects %s",
			w.model, req.Model), http.StatusPreconditionFailed)
		return
	}
	if req.Epoch != w.epoch || req.Lineage != w.lineage {
		// The coordinator's graph mutated past (or behind) this replica:
		// identical base content at a different epoch samples different RR
		// sets. Refuse until the replica restarts on the right epoch.
		mWorkerRefusals.Inc()
		http.Error(rw, fmt.Sprintf("graph epoch mismatch: worker holds epoch %d (%s), lease expects epoch %d (%s)",
			w.epoch, w.lineage, req.Epoch, req.Lineage), http.StatusPreconditionFailed)
		return
	}
	k0, err0 := strconv.ParseUint(req.Key0, 16, 64)
	k1, err1 := strconv.ParseUint(req.Key1, 16, 64)
	if err0 != nil || err1 != nil || req.Count <= 0 || req.Count > 1<<24 {
		mWorkerBadableRq.Inc()
		http.Error(rw, "bad request: invalid key or count", http.StatusBadRequest)
		return
	}

	start := time.Now()
	cc := rrset.NewCollection(w.sampler.Graph().N())
	base := rng.NewFromKey(k0, k1)
	rrset.GenerateAt(cc, w.sampler, req.Count, base, req.StartID, req.Workers)
	mWorkerGenTimer.Observe(time.Since(start))

	// Serialize to memory first so the response carries a Content-Length;
	// a truncated transfer is then detectable at the TCP layer as well as
	// by the OPIMR2 CRC trailer.
	var buf bytes.Buffer
	if err := rrset.WriteCollection(&buf, cc); err != nil {
		http.Error(rw, "serialize: "+err.Error(), http.StatusInternalServerError)
		return
	}
	mWorkerBatches.Inc()
	mWorkerRRSets.Add(int64(req.Count))
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	rw.Write(buf.Bytes())
}
