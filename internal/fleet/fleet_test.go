package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/faultinject"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

func testSampler(t testing.TB, n int32, seed uint64) *rrset.Sampler {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 8, 0.15, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return rrset.NewSampler(g, diffusion.IC)
}

// localBytes is the ground truth: the serialized bytes of a pure
// single-process generation.
func localBytes(t *testing.T, s *rrset.Sampler, count int, seed uint64) []byte {
	t.Helper()
	c := rrset.NewCollection(s.Graph().N())
	rrset.Generate(c, s, count, rng.New(seed), 0)
	return collBytes(t, c)
}

func collBytes(t *testing.T, c *rrset.Collection) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rrset.WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startWorkers spins up n httptest servers each serving a fresh Worker
// over its own replica of the same graph (same generator seed → same
// fingerprint), returning their base URLs.
func startWorkers(t *testing.T, n int, graphN int32, graphSeed uint64) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		w := NewWorker(testSampler(t, graphN, graphSeed))
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func quietConfig(urls []string) Config {
	return Config{
		Workers:    urls,
		ChunkSize:  50,
		RPCTimeout: 10 * time.Second,
		Logf:       func(string, ...any) {},
	}
}

// TestFleetLayoutsByteIdentical is the central determinism property: the
// same generation run under {pure local, 1 worker, 2 workers, 3 workers,
// 3 workers with one killed mid-run over a flaky transport} produces the
// identical serialized collection — and therefore identical selected
// seeds downstream — regardless of layout or failures.
func TestFleetLayoutsByteIdentical(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 600
		rngSeed   = 9
	)
	s := testSampler(t, graphN, graphSeed)
	want := localBytes(t, s, count, rngSeed)

	run := func(t *testing.T, coord *Coordinator) []byte {
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, count, rng.New(rngSeed), 0)
		return collBytes(t, c)
	}

	t.Run("one-worker", func(t *testing.T) {
		coord := NewCoordinator(quietConfig(startWorkers(t, 1, graphN, graphSeed)))
		if !bytes.Equal(run(t, coord), want) {
			t.Fatal("1-worker fleet diverged from local generation")
		}
	})
	t.Run("two-workers", func(t *testing.T) {
		coord := NewCoordinator(quietConfig(startWorkers(t, 2, graphN, graphSeed)))
		if !bytes.Equal(run(t, coord), want) {
			t.Fatal("2-worker fleet diverged from local generation")
		}
	})
	t.Run("three-workers", func(t *testing.T) {
		coord := NewCoordinator(quietConfig(startWorkers(t, 3, graphN, graphSeed)))
		if !bytes.Equal(run(t, coord), want) {
			t.Fatal("3-worker fleet diverged from local generation")
		}
	})
	t.Run("three-workers-one-killed-flaky-transport", func(t *testing.T) {
		urls := startWorkers(t, 2, graphN, graphSeed)

		// The third worker dies after serving its first batch: every
		// later request is refused at the transport level, like a
		// SIGKILLed process whose port stopped answering.
		var served atomic.Int64
		dying := NewWorker(testSampler(t, graphN, graphSeed))
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == pathGenerate && served.Add(1) > 1 {
				conn, _, err := rw.(http.Hijacker).Hijack()
				if err == nil {
					conn.Close() // drop the connection mid-request
				}
				return
			}
			dying.ServeHTTP(rw, r)
		}))
		t.Cleanup(srv.Close)

		cfg := quietConfig(append(urls, srv.URL))
		cfg.Client = &http.Client{Transport: faultinject.NewFlakyRoundTripper(nil, 77, 0.2)}
		cfg.FailThreshold = 2
		coord := NewCoordinator(cfg)
		if !bytes.Equal(run(t, coord), want) {
			t.Fatal("fleet with a killed worker and flaky transport diverged from local generation")
		}
	})
}

// TestDegradedZeroWorkers: an empty (or fully dead) fleet must still
// answer generation requests via local sampling — degraded, never failed.
func TestDegradedZeroWorkers(t *testing.T) {
	s := testSampler(t, 200, 5)
	want := localBytes(t, s, 300, 3)

	before := mDegraded.Value()
	coord := NewCoordinator(quietConfig(nil))
	c := rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, 300, rng.New(3), 0)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("degraded generation diverged from local")
	}
	if mDegraded.Value() != before+1 {
		t.Fatalf("fleet_degraded_generations_total = %d, want %d", mDegraded.Value(), before+1)
	}

	// A fleet whose only worker is unreachable degrades the same way.
	coord = NewCoordinator(quietConfig([]string{"http://127.0.0.1:1"}))
	c = rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, 300, rng.New(3), 0)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("unreachable-fleet generation diverged from local")
	}
	if mDegraded.Value() != before+2 {
		t.Fatal("unreachable fleet did not count as degraded")
	}
}

// TestDuplicateDeliverySuppressed: speculative reassignment makes the
// transport at-least-once, so the same lease can be delivered twice; the
// first delivery wins, the second is discarded and counted. (End-to-end,
// the losing RPC is usually cancelled the moment the run completes, so
// the merge-level dedup is exercised directly.)
func TestDuplicateDeliverySuppressed(t *testing.T) {
	s := testSampler(t, 100, 3)
	r := &run{
		c:       NewCoordinator(quietConfig(nil)),
		sampler: s,
		leases:  []*lease{{lo: 0, hi: 10}, {lo: 10, hi: 20}},
		allDone: make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	r.remaining = len(r.leases)

	first := rrset.NewCollection(s.Graph().N())
	second := rrset.NewCollection(s.Graph().N())
	dupBefore := mDuplicates.Value()
	r.markDone(0, first, nil)
	if r.remaining != 1 {
		t.Fatalf("remaining = %d after first delivery, want 1", r.remaining)
	}
	r.markDone(0, second, nil) // the losing speculative delivery
	if r.remaining != 1 {
		t.Fatalf("remaining = %d after duplicate delivery, want 1 — duplicate was merged", r.remaining)
	}
	if r.leases[0].result != first {
		t.Fatal("duplicate delivery replaced the winning chunk")
	}
	if mDuplicates.Value() != dupBefore+1 {
		t.Fatal("duplicate delivery was not counted")
	}
	select {
	case <-r.allDone:
		t.Fatal("run completed with a lease still open")
	default:
	}
}

// TestSlowWorkerLeaseReassigned: a worker slower than the lease TTL gets
// its lease speculatively reassigned to a healthy worker; the run
// completes byte-identically, and the slow-but-healthy original neither
// burns the lease's attempt cap nor forces a local fallback.
func TestSlowWorkerLeaseReassigned(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 600
		rngSeed   = 13
	)
	s := testSampler(t, graphN, graphSeed)
	want := localBytes(t, s, count, rngSeed)

	// Every lease takes ~30ms (so the run as a whole outlives the slow
	// worker's stall — a duplicate can only be observed while the run is
	// still open; once the final lease lands, losing RPCs are cancelled).
	// Worker A additionally stalls its first generate long enough to
	// blow the TTL, then delivers anyway — the classic "not dead, just
	// slow" replica.
	pace := func(r *http.Request, d time.Duration) bool {
		select {
		case <-time.After(d):
			return true
		case <-r.Context().Done():
			return false
		}
	}
	var stalled atomic.Bool
	slow := NewWorker(testSampler(t, graphN, graphSeed))
	slowSrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathGenerate {
			d := 30 * time.Millisecond
			if stalled.CompareAndSwap(false, true) {
				d = 200 * time.Millisecond
			}
			if !pace(r, d) {
				return
			}
		}
		slow.ServeHTTP(rw, r)
	}))
	t.Cleanup(slowSrv.Close)
	fast := NewWorker(testSampler(t, graphN, graphSeed))
	fastSrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathGenerate && !pace(r, 30*time.Millisecond) {
			return
		}
		fast.ServeHTTP(rw, r)
	}))
	t.Cleanup(fastSrv.Close)

	cfg := quietConfig([]string{fastSrv.URL, slowSrv.URL})
	cfg.LeaseTTL = 60 * time.Millisecond
	coord := NewCoordinator(cfg)

	reassignedBefore := mLeasesReassigned.Value()
	localBefore := mLeasesLocal.Value()
	c := rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, count, rng.New(rngSeed), 0)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("speculative reassignment changed the merged bytes")
	}
	if c.Count() != count {
		t.Fatalf("merged %d RR sets, want %d — duplicate delivery was merged", c.Count(), count)
	}
	if mLeasesReassigned.Value() == reassignedBefore {
		t.Fatal("slow lease was never reassigned; TTL watchdog inert")
	}
	if mLeasesLocal.Value() != localBefore {
		t.Fatal("speculative reassignments burned the lease's attempt cap and forced a local fallback")
	}
}

// TestTornResponsesRetriedViaCRC: a transport that tears response bodies
// produces CRC failures, which the coordinator treats as retryable —
// the run completes with correct bytes.
func TestTornResponsesRetriedViaCRC(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 400
		rngSeed   = 17
	)
	s := testSampler(t, graphN, graphSeed)
	want := localBytes(t, s, count, rngSeed)

	cfg := quietConfig(startWorkers(t, 2, graphN, graphSeed))
	cfg.Client = &http.Client{Transport: faultinject.NewTornBodyRoundTripper(nil, 5, 0.3)}
	cfg.FailThreshold = 100 // tears are transport faults, not the workers' fault
	cfg.MaxLeaseAttempts = 50
	coord := NewCoordinator(cfg)

	failBefore := mRPCFailures.Value()
	c := rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, count, rng.New(rngSeed), 0)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("torn transfers corrupted the merged collection")
	}
	if mRPCFailures.Value() == failBefore {
		t.Fatal("no RPC failures recorded; the torn-body injector never fired")
	}
}

// TestFingerprintMismatchExcluded: a worker holding the wrong graph is
// never leased work; with only wrong workers the coordinator degrades.
func TestFingerprintMismatchExcluded(t *testing.T) {
	const count = 200
	s := testSampler(t, 300, 42)
	want := localBytes(t, s, count, 21)

	// wrongURLs workers replicate a different graph.
	wrongURLs := startWorkers(t, 2, 300, 1234)
	rightURLs := startWorkers(t, 1, 300, 42)

	t.Run("mixed-fleet-uses-only-matching", func(t *testing.T) {
		coord := NewCoordinator(quietConfig(append(append([]string{}, wrongURLs...), rightURLs...)))
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, count, rng.New(21), 0)
		if !bytes.Equal(collBytes(t, c), want) {
			t.Fatal("mixed fleet diverged")
		}
	})
	t.Run("all-mismatched-degrades", func(t *testing.T) {
		before := mDegraded.Value()
		coord := NewCoordinator(quietConfig(wrongURLs))
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, count, rng.New(21), 0)
		if !bytes.Equal(collBytes(t, c), want) {
			t.Fatal("all-mismatched fleet diverged")
		}
		if mDegraded.Value() != before+1 {
			t.Fatal("all-mismatched fleet did not degrade")
		}
	})
}

// TestWorkerRefuses412: the worker-side guard — a lease naming a foreign
// fingerprint, or the right fingerprint under the wrong diffusion model,
// is refused with 412 and no RR sets are computed.
func TestWorkerRefuses412(t *testing.T) {
	w := NewWorker(testSampler(t, 100, 7))
	srv := httptest.NewServer(w)
	defer srv.Close()

	post := func(t *testing.T, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+pathGenerate, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	t.Run("wrong-fingerprint", func(t *testing.T) {
		body := `{"fingerprint":"deadbeef","model":"IC","key0":"1","key1":"2","start_id":0,"count":10}`
		if code := post(t, body); code != http.StatusPreconditionFailed {
			t.Fatalf("status = %d, want 412", code)
		}
	})
	t.Run("wrong-model", func(t *testing.T) {
		body := `{"fingerprint":"` + w.Fingerprint() + `","model":"LT","key0":"1","key1":"2","start_id":0,"count":10}`
		if code := post(t, body); code != http.StatusPreconditionFailed {
			t.Fatalf("status = %d, want 412", code)
		}
	})
	t.Run("wrong-epoch", func(t *testing.T) {
		// Right content, wrong chain position: a coordinator one mutation
		// batch ahead of this replica must not get RR sets from it.
		body := `{"fingerprint":"` + w.Fingerprint() + `","model":"IC","epoch":1,"lineage":"deadbeef","key0":"1","key1":"2","start_id":0,"count":10}`
		if code := post(t, body); code != http.StatusPreconditionFailed {
			t.Fatalf("status = %d, want 412", code)
		}
	})
	t.Run("matching-identity-accepted", func(t *testing.T) {
		body := `{"fingerprint":"` + w.Fingerprint() + `","model":"IC","epoch":0,"lineage":"` + w.Fingerprint() + `","key0":"1","key1":"2","start_id":0,"count":10}`
		if code := post(t, body); code != http.StatusOK {
			t.Fatalf("status = %d, want 200", code)
		}
	})
}

// TestModelMismatchExcluded: a worker replicating the right graph under
// the wrong diffusion model must never be leased work — its RR sets would
// merge cleanly and silently corrupt the alpha guarantee. With only
// wrong-model workers the coordinator degrades to local sampling.
func TestModelMismatchExcluded(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 200
		rngSeed   = 23
	)
	s := testSampler(t, graphN, graphSeed) // IC
	want := localBytes(t, s, count, rngSeed)

	// Same graph, LT model: identical fingerprint, different instance.
	ltWorker := func() string {
		g, err := gen.PreferentialAttachment(graphN, 8, 0.15, graphSeed)
		if err != nil {
			t.Fatal(err)
		}
		g, err = graph.Reweight(g, graph.WeightedCascade, 0, graphSeed+1)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(rrset.NewSampler(g, diffusion.LT))
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		return srv.URL
	}

	t.Run("mixed-fleet-uses-only-matching-model", func(t *testing.T) {
		urls := append(startWorkers(t, 1, graphN, graphSeed), ltWorker())
		coord := NewCoordinator(quietConfig(urls))
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, count, rng.New(rngSeed), 0)
		if !bytes.Equal(collBytes(t, c), want) {
			t.Fatal("fleet with a wrong-model worker diverged from local generation")
		}
	})
	t.Run("all-wrong-model-degrades", func(t *testing.T) {
		before := mDegraded.Value()
		noReplicaBefore := mNoReplica.Value()
		coord := NewCoordinator(quietConfig([]string{ltWorker()}))
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, count, rng.New(rngSeed), 0)
		if !bytes.Equal(collBytes(t, c), want) {
			t.Fatal("all-wrong-model fleet diverged from local generation")
		}
		if mDegraded.Value() != before+1 {
			t.Fatal("all-wrong-model fleet did not degrade")
		}
		if mNoReplica.Value() != noReplicaBefore+1 {
			t.Fatal("degrade was not attributed to a missing replica")
		}
	})
}

// TestPermanentDegradeLogsOnce: a session whose (graph, model) no worker
// replicates is a configuration, not an incident — it degrades on every
// Generate but logs and emits the degradation only once, so a multi-graph
// daemon does not drown real outages in noise.
func TestPermanentDegradeLogsOnce(t *testing.T) {
	s := testSampler(t, 300, 42)
	wrongURLs := startWorkers(t, 1, 300, 1234) // healthy, wrong graph

	var mu sync.Mutex
	var degradedLines int
	cfg := quietConfig(wrongURLs)
	cfg.Logf = func(format string, args ...any) {
		if strings.Contains(format, "DEGRADED") {
			mu.Lock()
			degradedLines++
			mu.Unlock()
		}
	}
	coord := NewCoordinator(cfg)

	before := mDegraded.Value()
	for i := 0; i < 3; i++ {
		c := rrset.NewCollection(s.Graph().N())
		coord.Generate(c, s, 100, rng.New(uint64(i+1)), 0)
		if c.Count() != 100 {
			t.Fatalf("degraded generation %d produced %d sets", i, c.Count())
		}
	}
	if mDegraded.Value() != before+3 {
		t.Fatalf("fleet_degraded_generations_total advanced by %d, want 3", mDegraded.Value()-before)
	}
	mu.Lock()
	defer mu.Unlock()
	if degradedLines != 1 {
		t.Fatalf("DEGRADED logged %d times across 3 generations, want once", degradedLines)
	}
}

// TestGenerateReturnsPromptlyAfterLastLease: once the final lease is
// delivered, Generate must return immediately — a losing speculative RPC
// still in flight on a wedged worker is cancelled, not waited out.
func TestGenerateReturnsPromptlyAfterLastLease(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 100
		rngSeed   = 31
	)
	s := testSampler(t, graphN, graphSeed)
	want := localBytes(t, s, count, rngSeed)

	// The wedged worker registers fine but stalls every generate far
	// longer than the test is willing to wait.
	wedged := NewWorker(testSampler(t, graphN, graphSeed))
	wedgedSrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathGenerate {
			// Drain the body first: the server only watches for client
			// disconnects (cancelling r.Context()) once the request body
			// is consumed, and the coordinator's cancel must cut this
			// stall short rather than stretch the test by 10s.
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			select {
			case <-time.After(10 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		wedged.ServeHTTP(rw, r)
	}))
	t.Cleanup(wedgedSrv.Close)

	cfg := quietConfig(append(startWorkers(t, 1, graphN, graphSeed), wedgedSrv.URL))
	cfg.ChunkSize = 50
	cfg.LeaseTTL = 100 * time.Millisecond // reassign the wedged lease quickly
	coord := NewCoordinator(cfg)

	start := time.Now()
	c := rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, count, rng.New(rngSeed), 0)
	elapsed := time.Since(start)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("generation with a wedged worker diverged from local")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Generate took %v; it waited out the wedged worker's RPC instead of cancelling it", elapsed)
	}
}

// TestHeartbeatReadmitsRecoveredWorker: a worker evicted for failures is
// re-admitted by the heartbeat prober once it answers again.
func TestHeartbeatReadmitsRecoveredWorker(t *testing.T) {
	const (
		graphN    = 200
		graphSeed = 8
	)
	s := testSampler(t, graphN, graphSeed)

	var down atomic.Bool
	w := NewWorker(testSampler(t, graphN, graphSeed))
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(rw, "crashed", http.StatusServiceUnavailable)
			return
		}
		w.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	cfg := quietConfig([]string{srv.URL})
	cfg.FailThreshold = 1
	cfg.HeartbeatEvery = 20 * time.Millisecond
	coord := NewCoordinator(cfg)
	coord.Start()
	defer coord.Close()

	// Healthy first: a normal fleet generation.
	c := rrset.NewCollection(s.Graph().N())
	coord.Generate(c, s, 100, rng.New(2), 0)
	if c.Count() != 100 {
		t.Fatalf("healthy generation produced %d sets", c.Count())
	}

	// Take the worker down; the next generation evicts it and degrades.
	down.Store(true)
	evictBefore := mEvictions.Value()
	c2 := rrset.NewCollection(s.Graph().N())
	coord.Generate(c2, s, 100, rng.New(2), 0)
	if c2.Count() != 100 {
		t.Fatalf("generation against a dead worker produced %d sets", c2.Count())
	}
	if mEvictions.Value() == evictBefore {
		t.Fatal("dead worker was not evicted")
	}

	// Bring it back and wait for the prober to re-admit it.
	down.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("worker never re-admitted by heartbeat")
		}
		if len(coord.eligible(s.Graph().Fingerprint(), s.Graph().Epoch(), s.Graph().EpochLineage(), s.Model().String())) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGenerateAppendsToExistingCollection: leases must offset their seed
// ids by the collection's current count, exactly like rrset.Generate.
func TestGenerateAppendsToExistingCollection(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
	)
	s := testSampler(t, graphN, graphSeed)
	base := rng.New(11)
	local := rrset.NewCollection(s.Graph().N())
	rrset.Generate(local, s, 150, base, 0)
	rrset.Generate(local, s, 130, base, 0)
	want := collBytes(t, local)

	coord := NewCoordinator(quietConfig(startWorkers(t, 2, graphN, graphSeed)))
	c := rrset.NewCollection(s.Graph().N())
	fleetBase := rng.New(11)
	coord.Generate(c, s, 150, fleetBase, 0)
	coord.Generate(c, s, 130, fleetBase, 0)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("second fleet batch did not continue the seed-id sequence")
	}
}

// TestEpochMismatchExcluded: a worker whose replica has the same CONTENT
// as the coordinator's graph but sits at a different epoch on the
// mutation chain must never be leased work. This is the one identity gap
// a content fingerprint cannot close — insert an edge and delete it again
// and the bytes are identical while the sample stream is not (the epoch
// is folded into the graph's identity precisely because RR regeneration
// after each batch re-randomizes the invalidated sets' traces against a
// different structure mid-history). With only stale-epoch workers the
// coordinator degrades to local sampling and stays byte-identical.
func TestEpochMismatchExcluded(t *testing.T) {
	const (
		graphN    = 300
		graphSeed = 42
		count     = 200
		rngSeed   = 31
	)
	base := testSampler(t, graphN, graphSeed)

	// Round-trip a mutation: +edge then -edge. Same content fingerprint as
	// the base graph, epoch 2, different lineage.
	var pick graph.Edge
	base.Graph().Edges(func(e graph.Edge) bool { pick = e; return false })
	var from, to int32 = pick.From, pick.To
	g1, err := base.Graph().WithMutations([]graph.Mutation{{Op: graph.OpEdgeDelete, From: from, To: to}})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g1.WithMutations([]graph.Mutation{{Op: graph.OpEdgeInsert, From: from, To: to, P: pick.P}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != base.Graph().Fingerprint() {
		t.Fatal("round-trip mutation changed the content fingerprint; test premise broken")
	}
	if g2.Epoch() != 2 || g2.EpochLineage() == base.Graph().EpochLineage() {
		t.Fatalf("epoch chain not advanced: epoch %d", g2.Epoch())
	}
	s2 := rrset.NewSampler(g2, diffusion.IC)

	// Workers replicate the base (epoch-0) graph; the coordinator samples
	// the epoch-2 graph. Identical fingerprints, different epochs.
	urls := startWorkers(t, 2, graphN, graphSeed)
	before := mDegraded.Value()
	coord := NewCoordinator(quietConfig(urls))
	c := rrset.NewCollection(g2.N())
	coord.Generate(c, s2, count, rng.New(rngSeed), 0)
	if mDegraded.Value() != before+1 {
		t.Fatal("stale-epoch fleet did not degrade to local sampling")
	}

	want := localBytes(t, s2, count, rngSeed)
	if !bytes.Equal(collBytes(t, c), want) {
		t.Fatal("degraded generation diverged from local ground truth")
	}

	// Sanity: the same fleet IS eligible for the epoch-0 sampler.
	if n := len(coord.eligible(base.Graph().Fingerprint(), 0, base.Graph().EpochLineage(), "IC")); n != 2 {
		t.Fatalf("eligible for base epoch = %d, want 2", n)
	}
}
