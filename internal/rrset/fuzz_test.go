package rrset

import (
	"bytes"
	"testing"
)

// FuzzReadCollection checks the collection decoder never panics and that
// anything it accepts round-trips.
func FuzzReadCollection(f *testing.F) {
	c := NewCollection(4)
	c.Add([]int32{0, 2}, 3)
	c.Add([]int32{1}, 1)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OPIMR1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadCollection(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCollection(&out, got); err != nil {
			t.Fatalf("accepted collection failed to serialize: %v", err)
		}
		again, err := ReadCollection(&out)
		if err != nil {
			t.Fatalf("writer output rejected: %v", err)
		}
		if again.Count() != got.Count() || again.TotalSize() != got.TotalSize() {
			t.Fatal("round trip changed shape")
		}
	})
}
