// Package rrset implements reverse influence sampling (RIS) [Borgs et al.
// 2014], the substrate of every algorithm in the paper: random
// reverse-reachable (RR) set generation under the IC and LT models
// (Appendix A), and an indexed Collection that supports the coverage
// queries of Algorithm 1 and the bound computations of §§4–5.
//
// Collection construction is sharded: Generate samples RR sets on parallel
// workers into per-shard pools and merges pools, offsets and the inverted
// node→set index with parallel phase barriers, so there is no
// single-threaded merge loop between sampling and selection. The layout is
// byte-identical for every worker count (see Generate), which is the
// invariant the determinism and persistence guarantees of the whole
// library rest on.
package rrset

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
)

// Generation metrics (obs.Default(), see docs/OBSERVABILITY.md). Updated
// once per Generate call / per worker / per shard — never per RR set — so
// the cost is a handful of atomics per batch.
var (
	mGenerated      = obs.Default().Counter("rrset_generated_total")
	mNodes          = obs.Default().Counter("rrset_nodes_total")
	mEdgesExamined  = obs.Default().Counter("rrset_edges_examined_total")
	mGenerateTime   = obs.Default().Timer("rrset_generate_seconds")
	mWorkerTime     = obs.Default().Timer("rrset_worker_seconds")
	mIndexBuildTime = obs.Default().Timer("rrset_index_build_seconds")
	mIndexShardTime = obs.Default().Timer("rrset_index_shard_seconds")
	mIndexShards    = obs.Default().Counter("rrset_index_shards_total")
)

// TriggeringDistribution samples triggering sets [Kempe et al. 2003] for
// the nodes of one graph; see the trigger package, whose Distribution
// implementations satisfy this interface. It lets every RIS-based algorithm
// in this library run on any triggering model, the generality under which
// the paper states Theorem 6.4.
type TriggeringDistribution interface {
	// SampleTriggering appends a triggering set for v to buf and returns
	// the extended slice; members must be in-neighbors of v, no duplicates.
	SampleTriggering(v int32, src *rng.Source, buf []int32) []int32
}

// Sampler draws random RR sets on one graph under one diffusion model.
// A Sampler is immutable and safe for concurrent use; per-goroutine mutable
// state lives in Scratch.
type Sampler struct {
	g     *graph.Graph
	model diffusion.Model
	lt    *graph.LTSampler       // non-nil iff model == LT
	dist  TriggeringDistribution // non-nil iff built by NewSamplerTriggering
	hops  int32                  // > 0 limits reverse traversal depth
}

// NewSampler builds a Sampler for g under model. For LT it precomputes the
// per-node alias tables (O(n+m)).
func NewSampler(g *graph.Graph, model diffusion.Model) *Sampler {
	s := &Sampler{g: g, model: model}
	if model == diffusion.LT {
		s.lt = graph.NewLTSampler(g)
	}
	return s
}

// NewSamplerHops builds a Sampler whose RR sets only contain nodes within
// maxHops reverse steps of the root, so n·Λ/θ estimates the HOP-LIMITED
// spread σ_h(S) (the objective of the hop-based heuristics line the paper
// surveys in §7). All OPIM machinery applies to σ_h unchanged — it is
// monotone submodular like σ. maxHops ≤ 0 means unlimited.
func NewSamplerHops(g *graph.Graph, model diffusion.Model, maxHops int) *Sampler {
	s := NewSampler(g, model)
	if maxHops > 0 {
		s.hops = int32(maxHops)
	}
	return s
}

// NewSamplerTriggering builds a Sampler over an arbitrary triggering
// distribution. The reported edges-examined count for each RR set is the
// total size of the triggering sets drawn (the work the distribution
// exposes); Model() reports IC as a placeholder and should not be
// interpreted for such samplers.
func NewSamplerTriggering(g *graph.Graph, dist TriggeringDistribution) *Sampler {
	return &Sampler{g: g, dist: dist}
}

// Graph returns the sampler's graph.
func (s *Sampler) Graph() *graph.Graph { return s.g }

// Model returns the sampler's diffusion model.
func (s *Sampler) Model() diffusion.Model { return s.model }

// Scratch holds the per-goroutine buffers of RR-set generation.
type Scratch struct {
	mark  []uint32
	epoch uint32
	buf   []int32
	tbuf  []int32 // triggering-set buffer for generic samplers
	depth []int32 // BFS depth per queue slot, used by hop-limited samplers
}

// NewScratch returns a Scratch sized for s's graph.
func (s *Sampler) NewScratch() *Scratch {
	return &Scratch{
		mark: make([]uint32, s.g.N()),
		buf:  make([]int32, 0, 256),
	}
}

func (sc *Scratch) nextEpoch() {
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
}

// Sample draws one random RR set using src, returning the member nodes and
// the number of edges examined during construction (the γ quantity that
// Borgs et al.'s OPIM algorithm monitors). The returned slice aliases
// sc.buf and is only valid until the next Sample call on sc.
func (s *Sampler) Sample(src *rng.Source, sc *Scratch) (nodes []int32, edgesExamined int64) {
	root := src.Int31n(s.g.N())
	return s.SampleFrom(root, src, sc)
}

// SampleFrom draws one RR set rooted at the given node. Exposed for tests
// and for stratified sampling experiments.
func (s *Sampler) SampleFrom(root int32, src *rng.Source, sc *Scratch) (nodes []int32, edgesExamined int64) {
	if s.dist != nil {
		return s.sampleTriggering(root, src, sc)
	}
	switch s.model {
	case diffusion.IC:
		return s.sampleIC(root, src, sc)
	case diffusion.LT:
		return s.sampleLT(root, src, sc)
	}
	panic(fmt.Sprintf("rrset: unknown model %d", int(s.model)))
}

// sampleTriggering reverse-traverses sampled triggering sets from root —
// Appendix A's construction in its general triggering-model form.
func (s *Sampler) sampleTriggering(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	var examined int64
	for head := 0; head < len(q); head++ {
		v := q[head]
		sc.tbuf = s.dist.SampleTriggering(v, src, sc.tbuf[:0])
		examined += int64(len(sc.tbuf))
		for _, u := range sc.tbuf {
			if sc.mark[u] == sc.epoch {
				continue
			}
			sc.mark[u] = sc.epoch
			q = append(q, u)
		}
	}
	sc.buf = q
	return q, examined
}

// sampleIC performs the stochastic reverse BFS of Appendix A: starting from
// root, each incoming edge ⟨w,u⟩ is traversed with probability p(w,u). In
// the common unlimited-hops case no per-node depth bookkeeping is done; the
// random draws are identical to the hop-limited variant's, so the two paths
// produce the same RR sets when hops is effectively unlimited.
func (s *Sampler) sampleIC(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	if s.hops > 0 {
		return s.sampleICHops(root, src, sc)
	}
	sc.nextEpoch()
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	var examined int64
	for head := 0; head < len(q); head++ {
		from, p := s.g.InNeighbors(q[head])
		examined += int64(len(from))
		for i, w := range from {
			if sc.mark[w] == sc.epoch {
				continue
			}
			if src.Float64() < float64(p[i]) {
				sc.mark[w] = sc.epoch
				q = append(q, w)
			}
		}
	}
	sc.buf = q
	return q, examined
}

// sampleICHops is sampleIC with per-queue-slot depth tracking, used only
// when the sampler is hop-limited.
func (s *Sampler) sampleICHops(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	depth := sc.depth[:0]
	depth = append(depth, 0)
	var examined int64
	for head := 0; head < len(q); head++ {
		u := q[head]
		if depth[head] >= s.hops {
			continue
		}
		from, p := s.g.InNeighbors(u)
		examined += int64(len(from))
		for i, w := range from {
			if sc.mark[w] == sc.epoch {
				continue
			}
			if src.Float64() < float64(p[i]) {
				sc.mark[w] = sc.epoch
				q = append(q, w)
				depth = append(depth, depth[head]+1)
			}
		}
	}
	sc.buf = q
	sc.depth = depth
	return q, examined
}

// sampleLT performs the reverse random walk of Appendix A: at each node the
// walk stops with probability 1 − Σp(·,u), otherwise it moves to one
// in-neighbor drawn via the alias table; it also stops upon revisiting a
// node already in the set (a cycle adds nothing under LT).
func (s *Sampler) sampleLT(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	set := sc.buf[:0]
	set = append(set, root)
	sc.mark[root] = sc.epoch
	var examined int64
	u := root
	for steps := int32(0); s.hops <= 0 || steps < s.hops; steps++ {
		w, ok := s.lt.SampleInNeighbor(u, src)
		if !ok {
			break
		}
		examined++ // alias sampling inspects O(1) edges per step
		if sc.mark[w] == sc.epoch {
			break // walked into a cycle
		}
		sc.mark[w] = sc.epoch
		set = append(set, w)
		u = w
	}
	sc.buf = set
	return set, examined
}

// Collection stores RR sets in pooled form with an inverted node→set index,
// supporting the coverage computations of Algorithm 1. The zero value is an
// empty collection for a graph with 0 nodes; use NewCollection.
//
// A Collection is safe for concurrent reads; writes (Add, Generate) must
// not overlap with each other or with reads.
type Collection struct {
	n    int32
	offs []int64 // len = Count()+1; set i occupies pool[offs[i]:offs[i+1]]
	pool []int32

	// index[v] lists the ids of RR sets containing node v, ascending.
	index [][]int32

	edgesExamined int64

	// exam[id] is the edges-examined count of set id — the per-set γ that
	// Repair needs to keep the cumulative edgesExamined byte-identical to a
	// from-scratch resample after replacing individual sets. Tracking is
	// all-or-nothing: len(exam) == Count() while every set arrived with its
	// own count (Add, Generate, AppendCollection from a tracking source,
	// OPIMR3 decode); appending from a legacy source (OPIMR1/2 files) drops
	// tracking permanently (HasPerSetGamma reports false) and Repair then
	// falls back to full regeneration.
	exam []int64

	// covPool recycles CoverageScratch values for the allocation-free
	// Coverage compatibility wrapper; CoverageWith is the explicit form.
	covPool sync.Pool
}

// NewCollection returns an empty Collection for a graph with n nodes.
func NewCollection(n int32) *Collection {
	return &Collection{
		n:     n,
		offs:  []int64{0},
		index: make([][]int32, n),
	}
}

// N returns the node-universe size.
func (c *Collection) N() int32 { return c.n }

// Count returns the number of RR sets stored.
func (c *Collection) Count() int { return len(c.offs) - 1 }

// TotalSize returns Σ|R| over all stored sets.
func (c *Collection) TotalSize() int64 { return int64(len(c.pool)) }

// EdgesExamined returns the cumulative γ across all Add calls.
func (c *Collection) EdgesExamined() int64 { return c.edgesExamined }

// HasPerSetGamma reports whether every stored set carries its own
// edges-examined count (see the exam field) — the precondition for
// Repair's targeted regeneration to reproduce the cumulative γ exactly.
func (c *Collection) HasPerSetGamma() bool { return len(c.exam) == c.Count() }

// Add appends one RR set (copying nodes) and credits edgesExamined to γ.
// It returns the new set's id.
func (c *Collection) Add(nodes []int32, edgesExamined int64) int32 {
	id := int32(c.Count())
	if len(c.exam) == int(id) {
		c.exam = append(c.exam, edgesExamined)
	}
	c.pool = append(c.pool, nodes...)
	c.offs = append(c.offs, int64(len(c.pool)))
	for _, v := range nodes {
		c.index[v] = append(c.index[v], id)
	}
	c.edgesExamined += edgesExamined
	return id
}

// AppendCollection appends every set of src, in src id order, to c and
// credits src's cumulative γ — the deterministic merge step of distributed
// generation. Appending chunk collections for id ranges [0,a), [a,b), … in
// range order produces pool, offsets and index bytes identical to having
// generated the whole batch locally, no matter which process produced each
// chunk or how many times a chunk was re-produced before one copy won.
// Per-set γ tracking survives the merge when src carries it; a legacy src
// (no per-set counts) drops c's tracking.
func (c *Collection) AppendCollection(src *Collection) error {
	if src.n != c.n {
		return fmt.Errorf("rrset: appending a collection for n=%d onto n=%d", src.n, c.n)
	}
	if src.HasPerSetGamma() {
		for id := int32(0); int(id) < src.Count(); id++ {
			c.Add(src.Set(id), src.exam[id])
		}
		return nil
	}
	for id := int32(0); int(id) < src.Count(); id++ {
		c.Add(src.Set(id), 0)
	}
	c.exam = nil // tracking lost: per-set counts unknown for src's sets
	c.edgesExamined += src.edgesExamined
	return nil
}

// Set returns the member nodes of set id. The slice aliases internal
// storage and must not be modified.
func (c *Collection) Set(id int32) []int32 {
	return c.pool[c.offs[id]:c.offs[id+1]]
}

// SetsCovering returns the ids of sets containing v, ascending. The slice
// is a copy the caller owns: mutating it cannot corrupt the index, and it
// stays valid across later Add/Generate/Repair calls. Hot paths that query
// coverage lists in inner loops should use SetsCoveringShared instead.
func (c *Collection) SetsCovering(v int32) []int32 {
	ids := c.index[v]
	if len(ids) == 0 {
		return nil
	}
	out := make([]int32, len(ids))
	copy(out, ids)
	return out
}

// SetsCoveringShared is the allocation-free form of SetsCovering for hot
// read paths (the greedy kernels in maxcover). The returned slice aliases
// the live index: it is strictly read-only — writing through it corrupts
// the collection — and it is invalidated by the next write to c (Add,
// Generate, Repair); repair never mutates the array a previously returned
// slice points at, so a stale reference still reads the pre-repair ids
// rather than garbage.
func (c *Collection) SetsCoveringShared(v int32) []int32 { return c.index[v] }

// Degree returns the number of stored sets containing v, i.e. Λ({v}).
func (c *Collection) Degree(v int32) int32 { return int32(len(c.index[v])) }

// CoverageScratch is the reusable state of the epoch-marked coverage
// kernel: one mark word per RR-set id, invalidated by bumping an epoch
// counter instead of clearing, so repeated Λ(S) queries (OPIM-C's
// per-round bound checks, the Oracle's candidate scoring) cost zero
// allocations after the first call. A CoverageScratch may be reused across
// collections and across collection growth; it is not safe for concurrent
// use — keep one per goroutine.
type CoverageScratch struct {
	mark  []uint32
	epoch uint32
}

// NewCoverageScratch returns an empty scratch; it sizes itself lazily on
// first use.
func NewCoverageScratch() *CoverageScratch { return &CoverageScratch{} }

// CoverageWith returns Λ(S) like Coverage, accumulating into sc instead of
// allocating. It runs in O(Σ_{v∈S} |SetsCovering(v)|) with no allocation
// once sc has grown to the collection's set count.
func (c *Collection) CoverageWith(sc *CoverageScratch, seeds []int32) int64 {
	if count := c.Count(); len(sc.mark) < count {
		// Stale marks never collide: the epoch bump below invalidates the
		// old region and fresh zeros can never equal a live epoch.
		grown := make([]uint32, count)
		copy(grown, sc.mark)
		sc.mark = grown
	}
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
	var covered int64
	for _, v := range seeds {
		for _, id := range c.index[v] {
			if sc.mark[id] != sc.epoch {
				sc.mark[id] = sc.epoch
				covered++
			}
		}
	}
	return covered
}

// Coverage returns Λ(S): the number of stored sets intersecting the seed
// set. It is the allocation-compatible wrapper over the epoch-marked
// kernel (CoverageWith), drawing scratch from an internal pool so it stays
// safe for concurrent readers; hot paths should hold their own
// CoverageScratch instead.
func (c *Collection) Coverage(seeds []int32) int64 {
	sc, _ := c.covPool.Get().(*CoverageScratch)
	if sc == nil {
		sc = NewCoverageScratch()
	}
	covered := c.CoverageWith(sc, seeds)
	c.covPool.Put(sc)
	return covered
}

// chunk is one shard's private output of parallel generation: a local pool
// with local offsets (offs[0] == 0). Offsets are int64 — a shard whose
// pooled nodes exceed 2^31 must rebase without truncation (regression:
// these were int32 once, silently corrupting large chunks).
type chunk struct {
	pool     []int32
	offs     []int64
	exam     []int64 // per-set edges-examined, len == len(offs)-1
	examined int64
}

// Generate draws count RR sets with s and appends them to c, splitting work
// across workers (≤ 0 means GOMAXPROCS). Each RR set i is driven by the
// split stream base.Split(startID+i) where startID is the collection size
// before the call, and shard outputs are merged at deterministic positions,
// so the resulting collection — pool bytes, offsets, and inverted index —
// is byte-identical for any worker count, and growing a collection
// incrementally matches generating it in one shot.
//
// Construction is fully sharded: workers sample into per-shard pools, the
// pool/offset merge copies each shard into its pre-computed extent, and
// the node→set index is built by a two-pass counting build (count per
// shard, prefix per node partition, parallel fill) with no single-threaded
// merge loop.
func Generate(c *Collection, s *Sampler, count int, base *rng.Source, workers int) {
	GenerateAt(c, s, count, base, uint64(c.Count()), workers)
}

// GenerateAt is Generate with an explicit stream origin: RR set i of the
// batch is driven by base.Split(startID+i) regardless of how many sets c
// already holds. It is the primitive distributed generation builds on — a
// remote worker reproduces the exact sets ids [lo, hi) of a coordinator's
// batch by calling GenerateAt on an empty collection with startID+lo,
// and the coordinator merges the chunks back in id order
// (AppendCollection), yielding bytes identical to a local Generate.
// Generate(c, …) is GenerateAt(c, …, startID=c.Count()).
func GenerateAt(c *Collection, s *Sampler, count int, base *rng.Source, startID uint64, workers int) {
	if count <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t0 := time.Now()
	nodesBefore, edgesBefore := c.TotalSize(), c.EdgesExamined()
	defer func() {
		mGenerated.Add(int64(count))
		mNodes.Add(c.TotalSize() - nodesBefore)
		mEdgesExamined.Add(c.EdgesExamined() - edgesBefore)
		mGenerateTime.Observe(time.Since(t0))
	}()
	if workers == 1 || count < 64 {
		sc := s.NewScratch()
		for i := 0; i < count; i++ {
			src := base.Split(startID + uint64(i))
			nodes, examined := s.Sample(src, sc)
			c.Add(nodes, examined)
		}
		mWorkerTime.Observe(time.Since(t0))
		return
	}
	if workers > count {
		workers = count
	}

	// Phase 1 — sampling: each shard draws a contiguous id range into a
	// private chunk; no shared state, no locks.
	chunks := make([]chunk, workers)
	runShards(workers, func(w int) {
		wt0 := time.Now()
		defer func() { mWorkerTime.Observe(time.Since(wt0)) }()
		lo, hi := count*w/workers, count*(w+1)/workers
		sc := s.NewScratch()
		ck := chunk{offs: make([]int64, 1, hi-lo+1)}
		for i := lo; i < hi; i++ {
			src := base.Split(startID + uint64(i))
			nodes, examined := s.Sample(src, sc)
			ck.pool = append(ck.pool, nodes...)
			ck.offs = append(ck.offs, int64(len(ck.pool)))
			ck.exam = append(ck.exam, examined)
			ck.examined += examined
		}
		chunks[w] = ck
	})
	c.mergeChunks(chunks)
}

// mergeChunks appends the shards' sets to the collection at deterministic
// positions: shard w's sets occupy ids [Count+setBase[w], Count+setBase[w+1])
// and its pool bytes land at the matching pre-computed extent, so the
// result is identical to sequential Add calls in id order.
func (c *Collection) mergeChunks(chunks []chunk) {
	par := len(chunks)
	poolBase := make([]int64, par+1)
	setBase := make([]int, par+1)
	for w := range chunks {
		poolBase[w+1] = poolBase[w] + int64(len(chunks[w].pool))
		setBase[w+1] = setBase[w] + len(chunks[w].offs) - 1
	}
	oldPoolLen := int64(len(c.pool))
	oldCount := c.Count()

	// Phase 2 — pool and offsets: grow once, then copy each shard into its
	// disjoint extent in parallel.
	c.pool = growInt32(c.pool, poolBase[par])
	c.offs = growInt64(c.offs, int64(setBase[par]))
	runShards(par, func(w int) {
		ck := &chunks[w]
		copy(c.pool[oldPoolLen+poolBase[w]:], ck.pool)
		rebaseOffsets(c.offs[1+oldCount+setBase[w]:], oldPoolLen+poolBase[w], ck.offs)
	})
	perSet := len(c.exam) == oldCount
	for w := range chunks {
		c.edgesExamined += chunks[w].examined
		if perSet {
			c.exam = append(c.exam, chunks[w].exam...)
		}
	}

	// Phases 3–4 — inverted index, two-pass counting build:
	// (3a) per-shard occurrence counts, (3b) per-node prefix sums + slice
	// growth over a node partition, (4) parallel fill at the pre-computed
	// positions. Shard order inside each node's list equals id order, so
	// the index matches the sequential build exactly.
	it0 := time.Now()
	counts := make([][]int32, par)
	runShards(par, func(w int) {
		cnt := make([]int32, c.n)
		for _, v := range chunks[w].pool {
			cnt[v]++
		}
		counts[w] = cnt
	})
	n := int64(c.n)
	runShards(par, func(r int) {
		lo, hi := n*int64(r)/int64(par), n*int64(r+1)/int64(par)
		for v := lo; v < hi; v++ {
			var add int32
			for w := range counts {
				add += counts[w][v]
			}
			if add == 0 {
				continue
			}
			old := c.index[v]
			oldLen := len(old)
			need := oldLen + int(add)
			if cap(old) < need {
				grown := make([]int32, oldLen, need)
				copy(grown, old)
				old = grown
			}
			c.index[v] = old[:need]
			pos := int32(oldLen)
			for w := range counts {
				next := pos + counts[w][v]
				counts[w][v] = pos
				pos = next
			}
		}
	})
	runShards(par, func(w int) {
		st0 := time.Now()
		cnt := counts[w]
		ck := &chunks[w]
		id := int32(oldCount + setBase[w])
		for i := 0; i+1 < len(ck.offs); i++ {
			for _, v := range ck.pool[ck.offs[i]:ck.offs[i+1]] {
				c.index[v][cnt[v]] = id
				cnt[v]++
			}
			id++
		}
		mIndexShardTime.Observe(time.Since(st0))
	})
	mIndexBuildTime.Observe(time.Since(it0))
	mIndexShards.Add(int64(par))
}

// rebaseOffsets writes the global end-offset of each chunk set into dst:
// dst[i] = base + local[i+1], where local are chunk-local offsets starting
// at 0 and base is the chunk's global pool start. All arithmetic is int64;
// chunks whose pooled nodes exceed 2^31 rebase without truncation.
func rebaseOffsets(dst []int64, base int64, local []int64) {
	for i, o := range local[1:] {
		dst[i] = base + o
	}
}

// growInt32 extends s by extra elements (contents undefined), reallocating
// with amortized doubling so repeated batch appends stay linear.
func growInt32(s []int32, extra int64) []int32 {
	need := int64(len(s)) + extra
	if int64(cap(s)) < need {
		newCap := 2 * int64(cap(s))
		if newCap < need {
			newCap = need
		}
		grown := make([]int32, len(s), newCap)
		copy(grown, s)
		s = grown
	}
	return s[:need]
}

// growInt64 is growInt32 for []int64.
func growInt64(s []int64, extra int64) []int64 {
	need := int64(len(s)) + extra
	if int64(cap(s)) < need {
		newCap := 2 * int64(cap(s))
		if newCap < need {
			newCap = need
		}
		grown := make([]int64, len(s), newCap)
		copy(grown, s)
		s = grown
	}
	return s[:need]
}

// runShards invokes f(w) for w in [0, par) on par goroutines and waits for
// all of them — the phase-barrier primitive of sharded construction.
func runShards(par int, f func(w int)) {
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}
