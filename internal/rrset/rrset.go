// Package rrset implements reverse influence sampling (RIS) [Borgs et al.
// 2014], the substrate of every algorithm in the paper: random
// reverse-reachable (RR) set generation under the IC and LT models
// (Appendix A), and an indexed Collection that supports the coverage
// queries of Algorithm 1 and the bound computations of §§4–5.
package rrset

import (
	"fmt"
	"sync"
	"time"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
)

// Generation metrics (obs.Default(), see docs/OBSERVABILITY.md). Updated
// once per Generate call / per worker — never per RR set — so the cost is
// a handful of atomics per batch.
var (
	mGenerated     = obs.Default().Counter("rrset_generated_total")
	mNodes         = obs.Default().Counter("rrset_nodes_total")
	mEdgesExamined = obs.Default().Counter("rrset_edges_examined_total")
	mGenerateTime  = obs.Default().Timer("rrset_generate_seconds")
	mWorkerTime    = obs.Default().Timer("rrset_worker_seconds")
)

// TriggeringDistribution samples triggering sets [Kempe et al. 2003] for
// the nodes of one graph; see the trigger package, whose Distribution
// implementations satisfy this interface. It lets every RIS-based algorithm
// in this library run on any triggering model, the generality under which
// the paper states Theorem 6.4.
type TriggeringDistribution interface {
	// SampleTriggering appends a triggering set for v to buf and returns
	// the extended slice; members must be in-neighbors of v, no duplicates.
	SampleTriggering(v int32, src *rng.Source, buf []int32) []int32
}

// Sampler draws random RR sets on one graph under one diffusion model.
// A Sampler is immutable and safe for concurrent use; per-goroutine mutable
// state lives in Scratch.
type Sampler struct {
	g     *graph.Graph
	model diffusion.Model
	lt    *graph.LTSampler       // non-nil iff model == LT
	dist  TriggeringDistribution // non-nil iff built by NewSamplerTriggering
	hops  int32                  // > 0 limits reverse traversal depth
}

// NewSampler builds a Sampler for g under model. For LT it precomputes the
// per-node alias tables (O(n+m)).
func NewSampler(g *graph.Graph, model diffusion.Model) *Sampler {
	s := &Sampler{g: g, model: model}
	if model == diffusion.LT {
		s.lt = graph.NewLTSampler(g)
	}
	return s
}

// NewSamplerHops builds a Sampler whose RR sets only contain nodes within
// maxHops reverse steps of the root, so n·Λ/θ estimates the HOP-LIMITED
// spread σ_h(S) (the objective of the hop-based heuristics line the paper
// surveys in §7). All OPIM machinery applies to σ_h unchanged — it is
// monotone submodular like σ. maxHops ≤ 0 means unlimited.
func NewSamplerHops(g *graph.Graph, model diffusion.Model, maxHops int) *Sampler {
	s := NewSampler(g, model)
	if maxHops > 0 {
		s.hops = int32(maxHops)
	}
	return s
}

// NewSamplerTriggering builds a Sampler over an arbitrary triggering
// distribution. The reported edges-examined count for each RR set is the
// total size of the triggering sets drawn (the work the distribution
// exposes); Model() reports IC as a placeholder and should not be
// interpreted for such samplers.
func NewSamplerTriggering(g *graph.Graph, dist TriggeringDistribution) *Sampler {
	return &Sampler{g: g, dist: dist}
}

// Graph returns the sampler's graph.
func (s *Sampler) Graph() *graph.Graph { return s.g }

// Model returns the sampler's diffusion model.
func (s *Sampler) Model() diffusion.Model { return s.model }

// Scratch holds the per-goroutine buffers of RR-set generation.
type Scratch struct {
	mark  []uint32
	epoch uint32
	buf   []int32
	tbuf  []int32 // triggering-set buffer for generic samplers
	depth []int32 // BFS depth per queue slot, used by hop-limited samplers
}

// NewScratch returns a Scratch sized for s's graph.
func (s *Sampler) NewScratch() *Scratch {
	return &Scratch{
		mark: make([]uint32, s.g.N()),
		buf:  make([]int32, 0, 256),
	}
}

func (sc *Scratch) nextEpoch() {
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
}

// Sample draws one random RR set using src, returning the member nodes and
// the number of edges examined during construction (the γ quantity that
// Borgs et al.'s OPIM algorithm monitors). The returned slice aliases
// sc.buf and is only valid until the next Sample call on sc.
func (s *Sampler) Sample(src *rng.Source, sc *Scratch) (nodes []int32, edgesExamined int64) {
	root := src.Int31n(s.g.N())
	return s.SampleFrom(root, src, sc)
}

// SampleFrom draws one RR set rooted at the given node. Exposed for tests
// and for stratified sampling experiments.
func (s *Sampler) SampleFrom(root int32, src *rng.Source, sc *Scratch) (nodes []int32, edgesExamined int64) {
	if s.dist != nil {
		return s.sampleTriggering(root, src, sc)
	}
	switch s.model {
	case diffusion.IC:
		return s.sampleIC(root, src, sc)
	case diffusion.LT:
		return s.sampleLT(root, src, sc)
	}
	panic(fmt.Sprintf("rrset: unknown model %d", int(s.model)))
}

// sampleTriggering reverse-traverses sampled triggering sets from root —
// Appendix A's construction in its general triggering-model form.
func (s *Sampler) sampleTriggering(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	var examined int64
	for head := 0; head < len(q); head++ {
		v := q[head]
		sc.tbuf = s.dist.SampleTriggering(v, src, sc.tbuf[:0])
		examined += int64(len(sc.tbuf))
		for _, u := range sc.tbuf {
			if sc.mark[u] == sc.epoch {
				continue
			}
			sc.mark[u] = sc.epoch
			q = append(q, u)
		}
	}
	sc.buf = q
	return q, examined
}

// sampleIC performs the stochastic reverse BFS of Appendix A: starting from
// root, each incoming edge ⟨w,u⟩ is traversed with probability p(w,u).
func (s *Sampler) sampleIC(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	depth := sc.depth[:0]
	depth = append(depth, 0)
	var examined int64
	for head := 0; head < len(q); head++ {
		u := q[head]
		if s.hops > 0 && depth[head] >= s.hops {
			continue
		}
		from, p := s.g.InNeighbors(u)
		examined += int64(len(from))
		for i, w := range from {
			if sc.mark[w] == sc.epoch {
				continue
			}
			if src.Float64() < float64(p[i]) {
				sc.mark[w] = sc.epoch
				q = append(q, w)
				depth = append(depth, depth[head]+1)
			}
		}
	}
	sc.buf = q
	sc.depth = depth
	return q, examined
}

// sampleLT performs the reverse random walk of Appendix A: at each node the
// walk stops with probability 1 − Σp(·,u), otherwise it moves to one
// in-neighbor drawn via the alias table; it also stops upon revisiting a
// node already in the set (a cycle adds nothing under LT).
func (s *Sampler) sampleLT(root int32, src *rng.Source, sc *Scratch) ([]int32, int64) {
	sc.nextEpoch()
	set := sc.buf[:0]
	set = append(set, root)
	sc.mark[root] = sc.epoch
	var examined int64
	u := root
	for steps := int32(0); s.hops <= 0 || steps < s.hops; steps++ {
		w, ok := s.lt.SampleInNeighbor(u, src)
		if !ok {
			break
		}
		examined++ // alias sampling inspects O(1) edges per step
		if sc.mark[w] == sc.epoch {
			break // walked into a cycle
		}
		sc.mark[w] = sc.epoch
		set = append(set, w)
		u = w
	}
	sc.buf = set
	return set, examined
}

// Collection stores RR sets in pooled form with an inverted node→set index,
// supporting the coverage computations of Algorithm 1. The zero value is an
// empty collection for a graph with 0 nodes; use NewCollection.
type Collection struct {
	n    int32
	offs []int64 // len = Count()+1; set i occupies pool[offs[i]:offs[i+1]]
	pool []int32

	// index[v] lists the ids of RR sets containing node v.
	index [][]int32

	edgesExamined int64
}

// NewCollection returns an empty Collection for a graph with n nodes.
func NewCollection(n int32) *Collection {
	return &Collection{
		n:     n,
		offs:  []int64{0},
		index: make([][]int32, n),
	}
}

// N returns the node-universe size.
func (c *Collection) N() int32 { return c.n }

// Count returns the number of RR sets stored.
func (c *Collection) Count() int { return len(c.offs) - 1 }

// TotalSize returns Σ|R| over all stored sets.
func (c *Collection) TotalSize() int64 { return int64(len(c.pool)) }

// EdgesExamined returns the cumulative γ across all Add calls.
func (c *Collection) EdgesExamined() int64 { return c.edgesExamined }

// Add appends one RR set (copying nodes) and credits edgesExamined to γ.
// It returns the new set's id.
func (c *Collection) Add(nodes []int32, edgesExamined int64) int32 {
	id := int32(c.Count())
	c.pool = append(c.pool, nodes...)
	c.offs = append(c.offs, int64(len(c.pool)))
	for _, v := range nodes {
		c.index[v] = append(c.index[v], id)
	}
	c.edgesExamined += edgesExamined
	return id
}

// Set returns the member nodes of set id. The slice aliases internal
// storage and must not be modified.
func (c *Collection) Set(id int32) []int32 {
	return c.pool[c.offs[id]:c.offs[id+1]]
}

// SetsCovering returns the ids of sets containing v. The slice aliases
// internal storage and must not be modified.
func (c *Collection) SetsCovering(v int32) []int32 { return c.index[v] }

// Degree returns the number of stored sets containing v, i.e. Λ({v}).
func (c *Collection) Degree(v int32) int32 { return int32(len(c.index[v])) }

// Coverage returns Λ(S): the number of stored sets intersecting the seed
// set. It runs in O(Σ_{v∈S} |SetsCovering(v)|).
func (c *Collection) Coverage(seeds []int32) int64 {
	covered := make(map[int32]struct{}, 64)
	for _, v := range seeds {
		for _, id := range c.index[v] {
			covered[id] = struct{}{}
		}
	}
	return int64(len(covered))
}

// Generate draws count RR sets with s and appends them to c, splitting work
// across workers (≤ 0 means 1). Each RR set i is driven by the split stream
// base.Split(startID+i) where startID is the collection size before the
// call, so the resulting collection is byte-identical for any worker count
// and growing a collection incrementally matches generating it in one shot.
func Generate(c *Collection, s *Sampler, count int, base *rng.Source, workers int) {
	if count <= 0 {
		return
	}
	t0 := time.Now()
	nodesBefore, edgesBefore := c.TotalSize(), c.EdgesExamined()
	defer func() {
		mGenerated.Add(int64(count))
		mNodes.Add(c.TotalSize() - nodesBefore)
		mEdgesExamined.Add(c.EdgesExamined() - edgesBefore)
		mGenerateTime.Observe(time.Since(t0))
	}()
	if workers <= 1 || count < 64 {
		sc := s.NewScratch()
		start := uint64(c.Count())
		for i := 0; i < count; i++ {
			src := base.Split(start + uint64(i))
			nodes, examined := s.Sample(src, sc)
			c.Add(nodes, examined)
		}
		mWorkerTime.Observe(time.Since(t0))
		return
	}

	type chunk struct {
		pool     []int32
		offs     []int32 // local, starts at 0
		examined int64
	}
	if workers > count {
		workers = count
	}
	chunks := make([]chunk, workers)
	start := uint64(c.Count())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := count * w / workers
		hi := count * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wt0 := time.Now()
			defer func() { mWorkerTime.Observe(time.Since(wt0)) }()
			sc := s.NewScratch()
			ck := chunk{offs: make([]int32, 0, hi-lo+1)}
			ck.offs = append(ck.offs, 0)
			for i := lo; i < hi; i++ {
				src := base.Split(start + uint64(i))
				nodes, examined := s.Sample(src, sc)
				ck.pool = append(ck.pool, nodes...)
				ck.offs = append(ck.offs, int32(len(ck.pool)))
				ck.examined += examined
			}
			chunks[w] = ck
		}(w, lo, hi)
	}
	wg.Wait()
	for _, ck := range chunks {
		for i := 0; i+1 < len(ck.offs); i++ {
			c.Add(ck.pool[ck.offs[i]:ck.offs[i+1]], 0)
		}
		c.edgesExamined += ck.examined
	}
}
