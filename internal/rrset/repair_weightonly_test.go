package rrset

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

// weightOnlyBatch derives a deterministic weight-only batch over a
// minority of g's edges. Weights only shrink, so weighted-cascade graphs
// stay LT-valid (incoming sums can only decrease).
func weightOnlyBatch(t *testing.T, g *graph.Graph) []graph.Mutation {
	t.Helper()
	var ms []graph.Mutation
	i := 0
	g.Edges(func(e graph.Edge) bool {
		switch i % 13 {
		case 0:
			ms = append(ms, graph.Mutation{Op: graph.OpSetWeight, From: e.From, To: e.To, P: e.P / 2})
		case 7:
			ms = append(ms, graph.Mutation{Op: graph.OpSetWeight, From: e.From, To: e.To, P: e.P * 0.9})
		}
		i++
		return true
	})
	if !graph.IsWeightOnly(ms) {
		t.Fatal("fixture batch is not weight-only")
	}
	return ms
}

// TestRepairWeightOnlyMatchesFromScratch is the weight-only property test
// from the issue: after a weight-only batch (applied through the graph's
// structural-sharing fast path), RepairWeightOnly must be byte-identical —
// pool, offsets, index, per-set and cumulative γ, serialized frame — both
// to the general Repair path and to resampling the whole collection from
// scratch on the mutated graph, across both diffusion models and several
// worker counts.
func TestRepairWeightOnlyMatchesFromScratch(t *testing.T) {
	g := repairTestGraph(t)
	ms := weightOnlyBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	if !mg.SharesTopology(g) {
		t.Fatal("weight-only batch did not take the structural-sharing fast path")
	}
	const count = 600
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s0 := NewSampler(g, model)
		s1 := NewSampler(mg, model)
		want := NewCollection(mg.N())
		Generate(want, s1, count, rng.New(99), 4)
		for _, workers := range []int{1, 3, 8} {
			c := NewCollection(g.N())
			Generate(c, s0, count, rng.New(99), workers)
			invalid := c.InvalidatedBy(ms)
			if len(invalid) == 0 || len(invalid) >= count {
				t.Fatalf("%v: invalidation not partial: %d of %d", model, len(invalid), count)
			}
			if n := c.RepairWeightOnly(s1, rng.New(99), invalid, workers); n != len(invalid) {
				t.Fatalf("%v: RepairWeightOnly regenerated %d, want %d", model, n, len(invalid))
			}
			requireIdenticalFull(t, want, c, model.String()+"/weight-only/workers="+itoa(workers))

			// And the general path lands on the same bytes.
			general := NewCollection(g.N())
			Generate(general, s0, count, rng.New(99), workers)
			general.Repair(s1, rng.New(99), general.InvalidatedBy(ms), workers)
			requireIdenticalFull(t, general, c, model.String()+"/general-vs-weight-only/workers="+itoa(workers))
		}
	}
}

// TestRepairWeightOnlyNoOpKeepsArrays: when every invalidated set
// resamples to its existing bytes (here: a batch that rewrites weights to
// their current values — a real epoch advance with a guaranteed-identical
// outcome), the weight-only path must leave the pool and every index slice
// pointer-untouched, advancing only the unchanged-sets counter. This is
// the "reuse the trace and inverted index directly" contract.
func TestRepairWeightOnlyNoOpKeepsArrays(t *testing.T) {
	g := repairTestGraph(t)
	var ms []graph.Mutation
	i := 0
	g.Edges(func(e graph.Edge) bool {
		if i%9 == 0 {
			ms = append(ms, graph.Mutation{Op: graph.OpSetWeight, From: e.From, To: e.To, P: e.P})
		}
		i++
		return true
	})
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 500
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(42), 4)
	invalid := c.InvalidatedBy(ms)
	if len(invalid) == 0 {
		t.Fatal("fixture invalidated nothing")
	}
	poolPtr := &c.pool[0]
	idxPtrs := make(map[int32]*int32)
	for v := int32(0); v < c.N(); v++ {
		if len(c.index[v]) > 0 {
			idxPtrs[v] = &c.index[v][0]
		}
	}
	unch0 := mRepairUnchanged.Value()
	c.RepairWeightOnly(NewSampler(mg, diffusion.IC), rng.New(42), invalid, 4)
	if d := mRepairUnchanged.Value() - unch0; d != int64(len(invalid)) {
		t.Fatalf("rrset_repair_unchanged_total advanced by %d, want %d", d, len(invalid))
	}
	if &c.pool[0] != poolPtr {
		t.Fatal("pool reallocated although no set changed")
	}
	for v, p := range idxPtrs {
		if &c.index[v][0] != p {
			t.Fatalf("index slice for node %d reallocated although no set changed", v)
		}
	}
	// Still byte-identical to a from-scratch run on the mutated graph.
	want := NewCollection(mg.N())
	Generate(want, NewSampler(mg, diffusion.IC), count, rng.New(42), 4)
	requireIdenticalFull(t, want, c, "no-op weight-only repair")
}

// TestRepairWeightOnlyMultiBatchCatchUp: a collection that missed several
// weight-only epochs catches up with one weight-only repair, exactly like
// the general multi-batch contract.
func TestRepairWeightOnlyMultiBatchCatchUp(t *testing.T) {
	g := repairTestGraph(t)
	ms1 := weightOnlyBatch(t, g)
	g1, err := g.WithMutations(ms1)
	if err != nil {
		t.Fatal(err)
	}
	ms2 := weightOnlyBatch(t, g1)
	g2, err := g1.WithMutations(ms2)
	if err != nil {
		t.Fatal(err)
	}
	const count = 500
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.LT), count, rng.New(5), 4)
	invalid := c.InvalidatedBy(ms1, ms2)
	c.RepairWeightOnly(NewSampler(g2, diffusion.LT), rng.New(5), invalid, 4)
	want := NewCollection(g2.N())
	Generate(want, NewSampler(g2, diffusion.LT), count, rng.New(5), 4)
	requireIdenticalFull(t, want, c, "weight-only two-batch catch-up")
}

// TestRepairWeightOnlyWidensWithoutPerSetGamma mirrors the general path's
// widening rule: without per-set γ a partial weight-only repair cannot
// patch the cumulative count, so it regenerates everything and restores
// tracking.
func TestRepairWeightOnlyWidensWithoutPerSetGamma(t *testing.T) {
	g := repairTestGraph(t)
	ms := weightOnlyBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 400
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(21), 3)
	c.exam = nil // simulate a legacy load
	invalid := c.InvalidatedBy(ms)
	if len(invalid) >= count {
		t.Fatalf("invalidation not partial: %d of %d", len(invalid), count)
	}
	if n := c.RepairWeightOnly(NewSampler(mg, diffusion.IC), rng.New(21), invalid, 3); n != count {
		t.Fatalf("RepairWeightOnly regenerated %d, want full %d", n, count)
	}
	if !c.HasPerSetGamma() {
		t.Fatal("full regeneration did not restore per-set gamma tracking")
	}
	want := NewCollection(mg.N())
	Generate(want, NewSampler(mg, diffusion.IC), count, rng.New(21), 3)
	requireIdenticalFull(t, want, c, "widened weight-only repair")
}
