package rrset

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/trigger"
)

func TestTriggeringSamplerMatchesBuiltins(t *testing.T) {
	// A Sampler over trigger.NewIC / trigger.NewLT must match the
	// distribution of the specialized IC/LT samplers: compare per-node RR
	// membership frequencies.
	g, err := gen.PreferentialAttachment(300, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 40000
	cases := []struct {
		name    string
		special *Sampler
		generic *Sampler
	}{
		{"IC", NewSampler(g, diffusion.IC), NewSamplerTriggering(g, trigger.NewIC(g))},
		{"LT", NewSampler(g, diffusion.LT), NewSamplerTriggering(g, trigger.NewLT(g))},
	}
	for _, tc := range cases {
		degOf := func(s *Sampler, seed uint64) []float64 {
			c := NewCollection(g.N())
			Generate(c, s, draws, rng.New(seed), 4)
			out := make([]float64, g.N())
			for v := int32(0); v < g.N(); v++ {
				out[v] = float64(c.Degree(v)) / draws
			}
			return out
		}
		a := degOf(tc.special, 3)
		b := degOf(tc.generic, 4)
		for v := int32(0); v < g.N(); v++ {
			// Binomial std of each frequency.
			std := math.Sqrt(a[v]/draws) + math.Sqrt(b[v]/draws) + 1e-4
			if math.Abs(a[v]-b[v]) > 6*std {
				t.Fatalf("%s node %d: specialized freq %v vs triggering freq %v", tc.name, v, a[v], b[v])
			}
		}
	}
}

func TestTriggeringSamplerCountsWork(t *testing.T) {
	g, err := gen.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSamplerTriggering(g, trigger.NewIC(g))
	sc := s.NewScratch()
	nodes, examined := s.SampleFrom(2, rng.New(1), sc)
	if len(nodes) != 3 {
		t.Fatalf("RR set = %v", nodes)
	}
	// T(2)={1}, T(1)={0}, T(0)=∅ → 2 triggering members drawn.
	if examined != 2 {
		t.Fatalf("examined = %d, want 2", examined)
	}
}

func TestTriggeringSamplerDeterministicParallel(t *testing.T) {
	g, err := gen.PreferentialAttachment(400, 5, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSamplerTriggering(g, trigger.NewLT(g))
	a := NewCollection(g.N())
	Generate(a, s, 400, rng.New(7), 1)
	b := NewCollection(g.N())
	Generate(b, s, 400, rng.New(7), 8)
	if a.TotalSize() != b.TotalSize() {
		t.Fatalf("sizes differ: %d vs %d", a.TotalSize(), b.TotalSize())
	}
	for i := int32(0); i < 400; i++ {
		sa, sb := a.Set(i), b.Set(i)
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
}
