package rrset

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func oracleFixture(t *testing.T) (*graph.Graph, *Oracle) {
	t.Helper()
	g, err := gen.PreferentialAttachment(500, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, diffusion.IC)
	c := NewCollection(g.N())
	Generate(c, s, 40000, rng.New(3), 4)
	return g, NewOracle(c)
}

func TestOracleIntervalBracketsTruth(t *testing.T) {
	g, o := oracleFixture(t)
	// Seeds chosen independently of the oracle's RR sets.
	for _, seeds := range [][]int32{{0}, {1, 2, 3}, {10, 20, 30, 40, 50}} {
		iv := o.Spread(seeds, 0.01)
		mc := diffusion.EstimateSpread(g, diffusion.IC, seeds, 40000, 9, 0)
		if iv.Lower > mc.Spread+4*mc.StdErr {
			t.Fatalf("seeds %v: oracle lower %v above MC %v", seeds, iv.Lower, mc)
		}
		if iv.Upper < mc.Spread-4*mc.StdErr {
			t.Fatalf("seeds %v: oracle upper %v below MC %v", seeds, iv.Upper, mc)
		}
		if iv.Lower > iv.Estimate || iv.Estimate > iv.Upper {
			t.Fatalf("interval disordered: %v", iv)
		}
		if math.Abs(iv.Estimate-mc.Spread) > 0.1*mc.Spread+4*mc.StdErr+1 {
			t.Fatalf("seeds %v: point estimate %v far from MC %v", seeds, iv.Estimate, mc)
		}
	}
}

func TestOracleIntervalShrinksWithSamples(t *testing.T) {
	g, err := gen.PreferentialAttachment(300, 5, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 5)
	s := NewSampler(g, diffusion.IC)
	widths := make([]float64, 0, 2)
	for _, count := range []int{2000, 50000} {
		c := NewCollection(g.N())
		Generate(c, s, count, rng.New(6), 4)
		iv := NewOracle(c).Spread([]int32{0, 1}, 0.05)
		widths = append(widths, iv.Upper-iv.Lower)
	}
	if widths[1] >= widths[0] {
		t.Fatalf("interval did not shrink: %v", widths)
	}
}

func TestOracleEmptyCollection(t *testing.T) {
	o := NewOracle(NewCollection(10))
	iv := o.Spread([]int32{0}, 0.1)
	if iv.Lower != 0 || iv.Upper != 10 || iv.Estimate != 0 {
		t.Fatalf("empty oracle interval = %v", iv)
	}
}

func TestOracleRank(t *testing.T) {
	// Handcrafted collection with known coverages:
	// node 0 covers 3 sets, node 1 covers 2, node 2 covers 1, node 3 none.
	c := NewCollection(4)
	c.Add([]int32{0}, 0)
	c.Add([]int32{0, 1}, 0)
	c.Add([]int32{0, 1}, 0)
	c.Add([]int32{2}, 0)
	o := NewOracle(c)
	candidates := [][]int32{
		{3},    // coverage 0
		{0, 2}, // coverage 4
		{1},    // coverage 2
		{3},    // duplicate tie with candidate 0 — keeps input order
	}
	order := o.Rank(candidates)
	want := []int{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOracleIntervalString(t *testing.T) {
	iv := Interval{Estimate: 10, Lower: 8, Upper: 12}
	if iv.String() == "" {
		t.Fatal("empty string")
	}
}
