package rrset

import (
	"fmt"

	"github.com/reprolab/opim/internal/bound"
)

// Oracle answers expected-spread queries for MANY candidate seed sets from
// one fixed collection of RR sets — the workflow of a campaign planner
// comparing hand-picked seed alternatives. Each estimate costs
// O(Σ_{v∈S} |index(v)|) instead of a fresh Monte-Carlo run, and comes with
// a two-sided confidence interval from the same martingale bounds the OPIM
// guarantees use (eq. 5 for the lower side, its mirror for the upper).
//
// IMPORTANT: the bounds are valid for seed sets chosen INDEPENDENTLY of
// the oracle's RR sets (the paper's nominator/judge separation). Scoring a
// seed set that was optimized against this same collection biases the
// estimate upward, exactly as §4.2's discussion warns.
//
// An Oracle holds a persistent CoverageScratch so back-to-back queries
// allocate nothing; it is therefore NOT safe for concurrent use — create
// one Oracle per goroutine (they may share the Collection).
type Oracle struct {
	c  *Collection
	sc *CoverageScratch
}

// NewOracle wraps a collection (which must not be modified afterwards).
func NewOracle(c *Collection) *Oracle { return &Oracle{c: c, sc: NewCoverageScratch()} }

// Interval is a spread estimate with a (1−δ)-confidence interval.
type Interval struct {
	// Estimate is the unbiased point estimate n·Λ(S)/θ.
	Estimate float64
	// Lower and Upper bracket σ(S), each one-sided at δ/2.
	Lower, Upper float64
	// Coverage is Λ(S); Theta is the collection size.
	Coverage int64
	Theta    int64
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("%.1f [%.1f, %.1f]", iv.Estimate, iv.Lower, iv.Upper)
}

// Spread estimates σ(seeds) with a (1−δ)-confidence interval.
func (o *Oracle) Spread(seeds []int32, delta float64) Interval {
	theta := int64(o.c.Count())
	lam := o.c.CoverageWith(o.sc, seeds)
	n := o.c.N()
	iv := Interval{Coverage: lam, Theta: theta}
	if theta == 0 {
		iv.Upper = float64(n)
		return iv
	}
	iv.Estimate = float64(n) * float64(lam) / float64(theta)
	iv.Lower = bound.SigmaLower(float64(lam), n, theta, delta/2)
	// Upper side via the exact binomial limit (always valid for fixed θ).
	iv.Upper = bound.SigmaUpperExact(float64(lam), theta, n, delta/2)
	if iv.Upper < iv.Estimate {
		iv.Upper = iv.Estimate
	}
	return iv
}

// Rank orders candidate seed sets by estimated spread (descending),
// returning indices into candidates. Ties keep input order.
func (o *Oracle) Rank(candidates [][]int32) []int {
	type scored struct {
		idx int
		lam int64
	}
	s := make([]scored, len(candidates))
	for i, c := range candidates {
		s[i] = scored{idx: i, lam: o.c.CoverageWith(o.sc, c)}
	}
	// Insertion sort: candidate lists are short.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].lam > s[j-1].lam; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = v.idx
	}
	return out
}
