package rrset

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func repairTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(300, 4, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mutationBatch derives a deterministic batch touching a minority of g's
// edges: deletes, weight halvings, and inserts that recycle a deleted
// edge's freed in-probability (so weighted-cascade graphs stay LT-valid —
// every node's incoming sum stays ≤ 1).
func mutationBatch(t *testing.T, g *graph.Graph) []graph.Mutation {
	t.Helper()
	var edges []graph.Edge
	g.Edges(func(e graph.Edge) bool { edges = append(edges, e); return true })
	have := make(map[int64]bool, len(edges))
	key := func(f, to int32) int64 { return int64(f)<<32 | int64(uint32(to)) }
	for _, e := range edges {
		have[key(e.From, e.To)] = true
	}
	var ms []graph.Mutation
	for i, e := range edges {
		switch i % 19 {
		case 0:
			ms = append(ms, graph.Mutation{Op: graph.OpEdgeDelete, From: e.From, To: e.To})
			nf := (e.From + 7) % g.N()
			if nf != e.To && nf != e.From && !have[key(nf, e.To)] {
				ms = append(ms, graph.Mutation{Op: graph.OpEdgeInsert, From: nf, To: e.To, P: e.P})
				have[key(nf, e.To)] = true
			}
		case 5:
			ms = append(ms, graph.Mutation{Op: graph.OpSetWeight, From: e.From, To: e.To, P: e.P / 2})
		}
	}
	if len(ms) == 0 {
		t.Fatal("mutation batch came out empty")
	}
	return ms
}

// requireIdenticalFull is requireIdentical plus the per-set γ block — the
// full byte-identity Repair promises, including serialized form.
func requireIdenticalFull(t *testing.T, want, got *Collection, label string) {
	t.Helper()
	requireIdentical(t, want, got, label)
	if !reflect.DeepEqual(want.exam, got.exam) {
		t.Fatalf("%s: per-set gamma differs", label)
	}
	var a, b bytes.Buffer
	if err := WriteCollection(&a, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteCollection(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s: serialized bytes differ", label)
	}
}

// TestRepairMatchesFromScratch is the repair property test: after a random
// mutation batch, invalidate-and-regenerate must be byte-identical — pool,
// offsets, index, cumulative γ, serialized frame — to resampling the whole
// collection from scratch on the mutated graph with the same seed keys,
// across both diffusion models and several worker counts.
func TestRepairMatchesFromScratch(t *testing.T) {
	g := repairTestGraph(t)
	ms := mutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 600
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s0 := NewSampler(g, model)
		s1 := NewSampler(mg, model)
		want := NewCollection(mg.N())
		Generate(want, s1, count, rng.New(99), 4)
		for _, workers := range []int{1, 3, 8} {
			c := NewCollection(g.N())
			Generate(c, s0, count, rng.New(99), workers)
			invalid := c.InvalidatedBy(ms)
			if len(invalid) == 0 || len(invalid) >= count {
				t.Fatalf("%v: invalidation not partial: %d of %d", model, len(invalid), count)
			}
			if n := c.Repair(s1, rng.New(99), invalid, workers); n != len(invalid) {
				t.Fatalf("%v: Repair regenerated %d, want %d", model, n, len(invalid))
			}
			requireIdenticalFull(t, want, c, model.String()+"/workers="+itoa(workers))
		}
	}
}

// TestRepairMultiBatchCatchUp: a collection that missed several mutation
// batches catches up with ONE repair — the invalidation union computed
// against its stale membership, regenerated on the final graph — because a
// set no batch invalidated is bitwise stable across every intermediate
// epoch.
func TestRepairMultiBatchCatchUp(t *testing.T) {
	g := repairTestGraph(t)
	ms1 := mutationBatch(t, g)
	g1, err := g.WithMutations(ms1)
	if err != nil {
		t.Fatal(err)
	}
	ms2 := mutationBatch(t, g1)
	g2, err := g1.WithMutations(ms2)
	if err != nil {
		t.Fatal(err)
	}
	const count = 500
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(5), 4)
	invalid := c.InvalidatedBy(ms1, ms2)
	c.Repair(NewSampler(g2, diffusion.IC), rng.New(5), invalid, 4)
	want := NewCollection(g2.N())
	Generate(want, NewSampler(g2, diffusion.IC), count, rng.New(5), 4)
	requireIdenticalFull(t, want, c, "two-batch catch-up")
}

// TestRepairNodeAddInvalidatesAll: adding a node changes the root draw of
// every set, so the batch invalidates everything and the repaired
// collection matches a from-scratch run on the grown graph — including
// index entries for the new node.
func TestRepairNodeAddInvalidatesAll(t *testing.T) {
	g := repairTestGraph(t)
	ms := []graph.Mutation{
		{Op: graph.OpAddNode},
		{Op: graph.OpEdgeInsert, From: g.N(), To: 0, P: 0.5},
	}
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 300
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(13), 2)
	invalid := c.InvalidatedBy(ms)
	if len(invalid) != count {
		t.Fatalf("node add invalidated %d of %d sets", len(invalid), count)
	}
	c.Repair(NewSampler(mg, diffusion.IC), rng.New(13), invalid, 2)
	if c.N() != mg.N() {
		t.Fatalf("collection universe %d, want %d", c.N(), mg.N())
	}
	want := NewCollection(mg.N())
	Generate(want, NewSampler(mg, diffusion.IC), count, rng.New(13), 2)
	requireIdenticalFull(t, want, c, "node add")
}

// TestRepairWidensWithoutPerSetGamma: a collection that lost per-set γ
// tracking (legacy OPIMR1/2 load) cannot patch the cumulative count for a
// partial repair, so Repair silently widens to a full regeneration — and
// tracking is restored afterwards.
func TestRepairWidensWithoutPerSetGamma(t *testing.T) {
	g := repairTestGraph(t)
	ms := mutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 400
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(21), 3)
	c.exam = nil // simulate a legacy load
	if c.HasPerSetGamma() {
		t.Fatal("fixture still tracks per-set gamma")
	}
	invalid := c.InvalidatedBy(ms)
	if len(invalid) >= count {
		t.Fatalf("invalidation not partial: %d of %d", len(invalid), count)
	}
	if n := c.Repair(NewSampler(mg, diffusion.IC), rng.New(21), invalid, 3); n != count {
		t.Fatalf("Repair regenerated %d, want full %d", n, count)
	}
	if !c.HasPerSetGamma() {
		t.Fatal("full regeneration did not restore per-set gamma tracking")
	}
	want := NewCollection(mg.N())
	Generate(want, NewSampler(mg, diffusion.IC), count, rng.New(21), 3)
	requireIdenticalFull(t, want, c, "widened repair")
}

// TestRepairCostProportionalToInvalidated pins the O(f·θ) acceptance bound
// through the metrics: repairing after a batch that invalidates f% of θ
// sets advances rrset_regenerated_total by f·θ — not by θ — while a
// from-scratch rebuild would advance rrset_generated_total by the full θ.
func TestRepairCostProportionalToInvalidated(t *testing.T) {
	g := repairTestGraph(t)
	ms := mutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	const count = 800
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), count, rng.New(31), 4)
	invalid := c.InvalidatedBy(ms)
	if len(invalid) == 0 || len(invalid) >= count {
		t.Fatalf("invalidation not partial: %d of %d", len(invalid), count)
	}
	inv0, reg0 := mInvalidated.Value(), mRegenerated.Value()
	c.Repair(NewSampler(mg, diffusion.IC), rng.New(31), invalid, 4)
	if d := mInvalidated.Value() - inv0; d != int64(len(invalid)) {
		t.Fatalf("rrset_invalidated_total advanced by %d, want %d", d, len(invalid))
	}
	if d := mRegenerated.Value() - reg0; d != int64(len(invalid)) {
		t.Fatalf("rrset_regenerated_total advanced by %d, want %d (f·θ, not θ=%d)", d, len(invalid), count)
	}
}

// TestSetsCoveringStableAcrossRepair is the aliasing regression test:
// SetsCovering hands out a caller-owned copy (mutating it cannot corrupt
// the index, and it survives a later Repair unchanged), and a stale
// SetsCoveringShared slice still reads the pre-repair ids — never garbage —
// because repair allocates fresh per-node arrays instead of mutating them.
func TestSetsCoveringStableAcrossRepair(t *testing.T) {
	g := repairTestGraph(t)
	ms := mutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(g.N())
	Generate(c, NewSampler(g, diffusion.IC), 500, rng.New(77), 2)

	// A node guaranteed to be invalidated: the target of the batch's first
	// edge op.
	v := ms[0].To
	if c.Degree(v) == 0 {
		t.Fatalf("fixture: node %d covers no sets", v)
	}
	snapshot := append([]int32(nil), c.index[v]...)

	// Mutating the owned copy must not corrupt the index.
	owned := c.SetsCovering(v)
	for i := range owned {
		owned[i] = -999
	}
	if !reflect.DeepEqual(c.SetsCovering(v), snapshot) {
		t.Fatal("mutating a SetsCovering copy corrupted the index")
	}

	held := c.SetsCovering(v)         // caller-held copy across the repair
	shared := c.SetsCoveringShared(v) // stale shared reference across the repair
	c.Repair(NewSampler(mg, diffusion.IC), rng.New(77), c.InvalidatedBy(ms), 2)

	if !reflect.DeepEqual(held, snapshot) {
		t.Fatal("caller-held SetsCovering copy changed under repair")
	}
	if !reflect.DeepEqual(shared, snapshot) {
		t.Fatal("stale SetsCoveringShared slice no longer reads pre-repair ids")
	}

	// The post-repair lists are the ground truth of the repaired pool.
	for u := int32(0); u < c.N(); u++ {
		var want []int32
		for id := int32(0); int(id) < c.Count(); id++ {
			for _, m := range c.Set(id) {
				if m == u {
					want = append(want, id)
					break
				}
			}
		}
		if !reflect.DeepEqual(c.SetsCovering(u), want) {
			t.Fatalf("post-repair index wrong at node %d", u)
		}
	}
}

// TestSerializePerSetGamma: the OPIMR3 frame round-trips per-set γ, and a
// collection without tracking falls back to the OPIMR2 frame.
func TestSerializePerSetGamma(t *testing.T) {
	c, _ := sampleCollection(t)
	if !c.HasPerSetGamma() {
		t.Fatal("generated collection lost per-set gamma")
	}
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("OPIMR3\n")) {
		t.Fatalf("tracking collection wrote magic %q", buf.Bytes()[:7])
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPerSetGamma() || !reflect.DeepEqual(got.exam, c.exam) {
		t.Fatal("per-set gamma did not round-trip")
	}

	c.exam = nil
	buf.Reset()
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("OPIMR2\n")) {
		t.Fatalf("legacy collection wrote magic %q", buf.Bytes()[:7])
	}
	got, err = ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasPerSetGamma() {
		t.Fatal("V2 frame decoded with per-set gamma")
	}
}
