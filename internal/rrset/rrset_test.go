package rrset

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func build(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.P)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleContainsRoot(t *testing.T) {
	g, _ := gen.Line(10, 0.5)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := NewSampler(g, model)
		sc := s.NewScratch()
		src := rng.New(1)
		for i := 0; i < 100; i++ {
			nodes, _ := s.Sample(src, sc)
			if len(nodes) == 0 {
				t.Fatalf("%v: empty RR set", model)
			}
			root := nodes[0]
			if root < 0 || root >= 10 {
				t.Fatalf("%v: root %d out of range", model, root)
			}
		}
	}
}

func TestSampleNoDuplicates(t *testing.T) {
	g, _ := gen.PreferentialAttachment(500, 6, 0.1, 2)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := NewSampler(g, model)
		sc := s.NewScratch()
		src := rng.New(3)
		for i := 0; i < 200; i++ {
			nodes, _ := s.Sample(src, sc)
			seen := make(map[int32]bool, len(nodes))
			for _, v := range nodes {
				if seen[v] {
					t.Fatalf("%v: duplicate node %d in RR set", model, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestSampleFromLineIC(t *testing.T) {
	// Reverse BFS from node 2 on the line 0→1→2 with p=0.5: node 1 joins
	// with probability 0.5, node 0 with 0.25.
	g, _ := gen.Line(3, 0.5)
	s := NewSampler(g, diffusion.IC)
	sc := s.NewScratch()
	src := rng.New(4)
	const draws = 100000
	c1, c0 := 0, 0
	for i := 0; i < draws; i++ {
		nodes, _ := s.SampleFrom(2, src, sc)
		for _, v := range nodes {
			switch v {
			case 1:
				c1++
			case 0:
				c0++
			}
		}
	}
	if p := float64(c1) / draws; math.Abs(p-0.5) > 0.01 {
		t.Fatalf("P(1 ∈ R) = %v, want ≈ 0.5", p)
	}
	if p := float64(c0) / draws; math.Abs(p-0.25) > 0.01 {
		t.Fatalf("P(0 ∈ R) = %v, want ≈ 0.25", p)
	}
}

func TestSampleFromLineLT(t *testing.T) {
	// LT behaves identically to IC on in-degree-1 graphs.
	g, _ := gen.Line(3, 0.5)
	s := NewSampler(g, diffusion.LT)
	sc := s.NewScratch()
	src := rng.New(5)
	const draws = 100000
	c0 := 0
	for i := 0; i < draws; i++ {
		nodes, _ := s.SampleFrom(2, src, sc)
		for _, v := range nodes {
			if v == 0 {
				c0++
			}
		}
	}
	if p := float64(c0) / draws; math.Abs(p-0.25) > 0.01 {
		t.Fatalf("P(0 ∈ R) = %v, want ≈ 0.25", p)
	}
}

func TestLTWalkTerminatesOnCycle(t *testing.T) {
	// 0 ⇄ 1 with both weights 1: the reverse walk must stop when it
	// revisits a node rather than looping forever.
	g := build(t, 2, []graph.Edge{{From: 0, To: 1, P: 1}, {From: 1, To: 0, P: 1}})
	s := NewSampler(g, diffusion.LT)
	sc := s.NewScratch()
	src := rng.New(6)
	for i := 0; i < 100; i++ {
		nodes, _ := s.Sample(src, sc)
		if len(nodes) != 2 {
			t.Fatalf("cycle RR set has %d nodes, want 2", len(nodes))
		}
	}
}

func TestLemma31Unbiasedness(t *testing.T) {
	// Lemma 3.1: σ({u}) = n · Pr[u ∈ R]. Cross-validate the RIS estimate
	// n·Degree(u)/θ against forward Monte-Carlo simulation.
	g, _ := gen.PreferentialAttachment(300, 5, 0.2, 7)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := NewSampler(g, model)
		c := NewCollection(g.N())
		Generate(c, s, 60000, rng.New(8), 4)
		for _, u := range []int32{0, 1, 5, 100} {
			ris := float64(g.N()) * float64(c.Degree(u)) / float64(c.Count())
			mc := diffusion.EstimateSpread(g, model, []int32{u}, 60000, 9, 0)
			// Binomial noise of the RIS estimator itself:
			// std ≈ n·√(θ·p̂)/θ with p̂ = Degree/θ.
			risStd := float64(g.N()) * math.Sqrt(float64(c.Degree(u))+1) / float64(c.Count())
			tol := 4*mc.StdErr + 4*risStd + 0.05*mc.Spread + 0.05
			if math.Abs(ris-mc.Spread) > tol {
				t.Fatalf("%v node %d: RIS estimate %v vs MC %v (tol %v)", model, u, ris, mc, tol)
			}
		}
	}
}

func TestEdgesExaminedIC(t *testing.T) {
	// On the line graph every visited node's full in-edge list is examined.
	g, _ := gen.Line(2, 1) // 0→1
	s := NewSampler(g, diffusion.IC)
	sc := s.NewScratch()
	src := rng.New(10)
	nodes, examined := s.SampleFrom(1, src, sc)
	if len(nodes) != 2 {
		t.Fatalf("RR set = %v", nodes)
	}
	if examined != 1 {
		t.Fatalf("edges examined = %d, want 1", examined)
	}
}

func TestCollectionBasics(t *testing.T) {
	c := NewCollection(5)
	if c.Count() != 0 || c.TotalSize() != 0 {
		t.Fatal("new collection not empty")
	}
	id := c.Add([]int32{1, 2}, 3)
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	c.Add([]int32{2, 3}, 4)
	if c.Count() != 2 || c.TotalSize() != 4 || c.EdgesExamined() != 7 {
		t.Fatalf("count=%d size=%d γ=%d", c.Count(), c.TotalSize(), c.EdgesExamined())
	}
	if got := c.Set(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Set(0) = %v", got)
	}
	if got := c.SetsCovering(2); len(got) != 2 {
		t.Fatalf("SetsCovering(2) = %v", got)
	}
	if c.Degree(2) != 2 || c.Degree(0) != 0 {
		t.Fatalf("degrees wrong: %d %d", c.Degree(2), c.Degree(0))
	}
}

func TestCollectionCoverage(t *testing.T) {
	c := NewCollection(5)
	c.Add([]int32{0, 1}, 0)
	c.Add([]int32{1, 2}, 0)
	c.Add([]int32{3}, 0)
	if got := c.Coverage([]int32{1}); got != 2 {
		t.Fatalf("Λ({1}) = %d, want 2", got)
	}
	if got := c.Coverage([]int32{0, 2}); got != 2 {
		t.Fatalf("Λ({0,2}) = %d, want 2", got)
	}
	if got := c.Coverage([]int32{0, 1, 3}); got != 3 {
		t.Fatalf("Λ({0,1,3}) = %d, want 3", got)
	}
	if got := c.Coverage([]int32{4}); got != 0 {
		t.Fatalf("Λ({4}) = %d, want 0", got)
	}
}

func TestGenerateZeroOrNegativeCount(t *testing.T) {
	g, _ := gen.Line(3, 0.5)
	s := NewSampler(g, diffusion.IC)
	c := NewCollection(g.N())
	Generate(c, s, 0, rng.New(1), 4)
	Generate(c, s, -5, rng.New(1), 4)
	if c.Count() != 0 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestEdgesExaminedAccumulatesParallel(t *testing.T) {
	g, _ := gen.PreferentialAttachment(500, 5, 0.1, 15)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.IC)
	a := NewCollection(g.N())
	Generate(a, s, 400, rng.New(16), 1)
	b := NewCollection(g.N())
	Generate(b, s, 400, rng.New(16), 8)
	if a.EdgesExamined() == 0 {
		t.Fatal("γ = 0 after generation")
	}
	if a.EdgesExamined() != b.EdgesExamined() {
		t.Fatalf("γ differs across workers: %d vs %d", a.EdgesExamined(), b.EdgesExamined())
	}
}

func TestInvertedIndexConsistency(t *testing.T) {
	g, _ := gen.PreferentialAttachment(300, 5, 0.1, 17)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.LT)
	c := NewCollection(g.N())
	Generate(c, s, 500, rng.New(18), 4)
	// Every membership listed in the index must appear in the set, and
	// total index size must equal total pool size.
	var indexed int64
	for v := int32(0); v < g.N(); v++ {
		for _, id := range c.SetsCovering(v) {
			indexed++
			found := false
			for _, u := range c.Set(id) {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("index lists node %d in set %d but set lacks it", v, id)
			}
		}
	}
	if indexed != c.TotalSize() {
		t.Fatalf("index size %d != pool size %d", indexed, c.TotalSize())
	}
}

func BenchmarkSampleIC(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.IC)
	sc := s.NewScratch()
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(src, sc)
	}
}

func BenchmarkSampleLT(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.LT)
	sc := s.NewScratch()
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(src, sc)
	}
}

func BenchmarkGenerate1kParallel(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.IC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCollection(g.N())
		Generate(c, s, 1000, rng.New(uint64(i)), 0)
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	// Regression for the Split seeding bug: collections generated with
	// different base seeds must differ.
	g, _ := gen.PreferentialAttachment(500, 6, 0.1, 30)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewSampler(g, diffusion.IC)
	a := NewCollection(g.N())
	Generate(a, s, 500, rng.New(1), 2)
	b := NewCollection(g.N())
	Generate(b, s, 500, rng.New(2), 2)
	identical := 0
	for i := int32(0); i < 500; i++ {
		sa, sb := a.Set(i), b.Set(i)
		if len(sa) == len(sb) {
			same := true
			for j := range sa {
				if sa[j] != sb[j] {
					same = false
					break
				}
			}
			if same {
				identical++
			}
		}
	}
	// Singleton sets can coincide by chance; wholesale equality cannot.
	if identical > 400 {
		t.Fatalf("%d/500 RR sets identical across different seeds", identical)
	}
}

func TestHopLimitedSamplerLemma31(t *testing.T) {
	// Hop-limited RIS must estimate the hop-limited spread: cross-validate
	// n·Degree/θ against forward RunHops Monte-Carlo on both models.
	g, _ := gen.PreferentialAttachment(300, 5, 0.2, 50)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	const h = 2
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := NewSamplerHops(g, model, h)
		c := NewCollection(g.N())
		Generate(c, s, 60000, rng.New(51), 4)
		sim := diffusion.NewSimulator(g)
		src := rng.New(52)
		for _, u := range []int32{100, 200, 299} {
			const runs = 60000
			var sum float64
			for i := 0; i < runs; i++ {
				sum += float64(sim.RunHops(model, []int32{u}, h, src))
			}
			mc := sum / runs
			ris := float64(g.N()) * float64(c.Degree(u)) / float64(c.Count())
			risStd := float64(g.N()) * math.Sqrt(float64(c.Degree(u))+1) / float64(c.Count())
			if math.Abs(ris-mc) > 4*risStd+0.05*mc+0.1 {
				t.Fatalf("%v node %d: hop-limited RIS %v vs MC %v", model, u, ris, mc)
			}
		}
	}
}

func TestHopLimitedSetsSmaller(t *testing.T) {
	g, _ := gen.PreferentialAttachment(2000, 8, 0.15, 53)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	unlimited := NewCollection(g.N())
	Generate(unlimited, NewSampler(g, diffusion.IC), 5000, rng.New(54), 4)
	oneHop := NewCollection(g.N())
	Generate(oneHop, NewSamplerHops(g, diffusion.IC, 1), 5000, rng.New(54), 4)
	if oneHop.TotalSize() >= unlimited.TotalSize() {
		t.Fatalf("1-hop total %d not below unlimited %d", oneHop.TotalSize(), unlimited.TotalSize())
	}
}

func TestHopLimitedLTWalkLength(t *testing.T) {
	// LT on a long line with weight 1 walks forever until the source; a
	// 3-hop limit caps RR sets at 4 nodes.
	g, _ := gen.Line(50, 1)
	s := NewSamplerHops(g, diffusion.LT, 3)
	sc := s.NewScratch()
	src := rng.New(55)
	for i := 0; i < 100; i++ {
		set, _ := s.Sample(src, sc)
		if len(set) > 4 {
			t.Fatalf("3-hop LT RR set has %d nodes", len(set))
		}
	}
}
