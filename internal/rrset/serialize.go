package rrset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary collection format (little-endian): magic "OPIMR1\n", int32 n,
// int64 count, int64 poolLen, int64 edgesExamined, count+1 int64 offsets,
// poolLen int32 node ids. The inverted index is rebuilt on load.

const collectionMagic = "OPIMR1\n"

// ErrBadCollection reports a malformed serialized collection.
var ErrBadCollection = errors.New("rrset: bad collection format")

// WriteCollection serializes c.
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(collectionMagic); err != nil {
		return err
	}
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.n))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(c.Count()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(c.pool)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(c.edgesExamined))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var b8 [8]byte
	for _, off := range c.offs {
		binary.LittleEndian.PutUint64(b8[:], uint64(off))
		if _, err := bw.Write(b8[:]); err != nil {
			return err
		}
	}
	var b4 [4]byte
	for _, v := range c.pool {
		binary.LittleEndian.PutUint32(b4[:], uint32(v))
		if _, err := bw.Write(b4[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCollection deserializes a collection, rebuilding the inverted index.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(collectionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadCollection, err)
	}
	if string(magic) != collectionMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadCollection, magic)
	}
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCollection, err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:4]))
	count := int64(binary.LittleEndian.Uint64(hdr[4:12]))
	poolLen := int64(binary.LittleEndian.Uint64(hdr[12:20]))
	gamma := int64(binary.LittleEndian.Uint64(hdr[20:28]))
	if n < 0 || count < 0 || poolLen < 0 || gamma < 0 || n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d count=%d pool=%d", ErrBadCollection, n, count, poolLen)
	}

	// Grow incrementally so a forged header cannot force a huge up-front
	// allocation: capacity hints are clamped and appends track real bytes.
	clamp := func(v int64) int {
		if v > 1<<20 {
			return 1 << 20
		}
		return int(v)
	}
	c := &Collection{
		n:             n,
		offs:          make([]int64, 0, clamp(count+1)),
		pool:          make([]int32, 0, clamp(poolLen)),
		index:         make([][]int32, n),
		edgesExamined: gamma,
	}
	var b8 [8]byte
	for i := int64(0); i <= count; i++ {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: short offsets: %v", ErrBadCollection, err)
		}
		off := int64(binary.LittleEndian.Uint64(b8[:]))
		if i == 0 && off != 0 {
			return nil, fmt.Errorf("%w: first offset %d != 0", ErrBadCollection, off)
		}
		if i > 0 && off < c.offs[i-1] {
			return nil, fmt.Errorf("%w: offsets not monotone", ErrBadCollection)
		}
		c.offs = append(c.offs, off)
	}
	if c.offs[count] != poolLen {
		return nil, fmt.Errorf("%w: inconsistent offsets", ErrBadCollection)
	}
	var b4 [4]byte
	for i := int64(0); i < poolLen; i++ {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("%w: short pool: %v", ErrBadCollection, err)
		}
		v := int32(binary.LittleEndian.Uint32(b4[:]))
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadCollection, v, n)
		}
		c.pool = append(c.pool, v)
	}
	// Rebuild the inverted index.
	for id := int64(0); id < count; id++ {
		for _, v := range c.pool[c.offs[id]:c.offs[id+1]] {
			c.index[v] = append(c.index[v], int32(id))
		}
	}
	return c, nil
}
