package rrset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Binary collection format (little-endian): magic "OPIMR3\n", int32 n,
// int64 count, int64 poolLen, int64 edgesExamined, count+1 int64 offsets,
// poolLen int32 node ids, count int64 per-set edges-examined values, then a
// uint32 CRC-32C of every byte between the magic and the trailer. The
// inverted index is rebuilt on load.
//
// The per-set γ block is what distinguishes OPIMR3 from OPIMR2: it is the
// state Repair needs to patch the cumulative edges-examined count exactly
// when individual RR sets are regenerated after a graph mutation. A
// collection that lost tracking (appended from a legacy source) writes V2 —
// same frame minus the block — and a V1/V2 load yields HasPerSetGamma()
// false, making Repair fall back to full regeneration. The CRC trailer is
// what distinguishes V2 from V1: the V1 frame detects truncation (every
// field is length-checked) but an in-range bit flip in the pool passes
// silently — intolerable once collections travel over a network between
// fleet workers and their coordinator, or sit in checkpoints for days.
// All three versions remain readable.

const (
	collectionMagic   = "OPIMR3\n"
	collectionMagicV2 = "OPIMR2\n"
	collectionMagicV1 = "OPIMR1\n"
)

// crcTable is Castagnoli, hardware-accelerated on both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadCollection reports a malformed serialized collection.
var ErrBadCollection = errors.New("rrset: bad collection format")

// WriteCollection serializes c: OPIMR3 when per-set γ tracking is intact,
// OPIMR2 otherwise.
func WriteCollection(w io.Writer, c *Collection) error {
	perSet := c.HasPerSetGamma()
	magic := collectionMagic
	if !perSet {
		magic = collectionMagicV2
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	// Everything between magic and trailer runs through the CRC.
	sum := crc32.New(crcTable)
	body := io.MultiWriter(bw, sum)
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.n))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(c.Count()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(c.pool)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(c.edgesExamined))
	if _, err := body.Write(hdr[:]); err != nil {
		return err
	}
	var b8 [8]byte
	for _, off := range c.offs {
		binary.LittleEndian.PutUint64(b8[:], uint64(off))
		if _, err := body.Write(b8[:]); err != nil {
			return err
		}
	}
	var b4 [4]byte
	for _, v := range c.pool {
		binary.LittleEndian.PutUint32(b4[:], uint32(v))
		if _, err := body.Write(b4[:]); err != nil {
			return err
		}
	}
	if perSet {
		for _, e := range c.exam {
			binary.LittleEndian.PutUint64(b8[:], uint64(e))
			if _, err := body.Write(b8[:]); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(b4[:], sum.Sum32())
	if _, err := bw.Write(b4[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCollection deserializes a collection, rebuilding the inverted index.
// It accepts OPIMR3 (per-set γ block + CRC-32C trailer), OPIMR2 (CRC only —
// a flipped bit anywhere in header, offsets or pool is ErrBadCollection)
// and legacy OPIMR1 (no trailer, truncation-checked only). It reads exactly
// the collection's bytes from r beyond any internal buffering shared with
// the caller, so collections embedded in a larger stream (session
// checkpoints) decode back to back.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(collectionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadCollection, err)
	}
	perSet := false
	var sum hash.Hash32
	var body io.Reader = br
	switch string(magic) {
	case collectionMagic:
		perSet = true
		sum = crc32.New(crcTable)
		body = io.TeeReader(br, sum)
	case collectionMagicV2:
		sum = crc32.New(crcTable)
		body = io.TeeReader(br, sum)
	case collectionMagicV1:
		// Legacy: no trailer, nothing to verify.
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadCollection, magic)
	}
	var hdr [28]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCollection, err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:4]))
	count := int64(binary.LittleEndian.Uint64(hdr[4:12]))
	poolLen := int64(binary.LittleEndian.Uint64(hdr[12:20]))
	gamma := int64(binary.LittleEndian.Uint64(hdr[20:28]))
	if n < 0 || count < 0 || poolLen < 0 || gamma < 0 || n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d count=%d pool=%d", ErrBadCollection, n, count, poolLen)
	}

	// Grow incrementally so a forged header cannot force a huge up-front
	// allocation: capacity hints are clamped and appends track real bytes.
	clamp := func(v int64) int {
		if v > 1<<20 {
			return 1 << 20
		}
		return int(v)
	}
	c := &Collection{
		n:             n,
		offs:          make([]int64, 0, clamp(count+1)),
		pool:          make([]int32, 0, clamp(poolLen)),
		index:         make([][]int32, n),
		edgesExamined: gamma,
	}
	var b8 [8]byte
	for i := int64(0); i <= count; i++ {
		if _, err := io.ReadFull(body, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: short offsets: %v", ErrBadCollection, err)
		}
		off := int64(binary.LittleEndian.Uint64(b8[:]))
		if i == 0 && off != 0 {
			return nil, fmt.Errorf("%w: first offset %d != 0", ErrBadCollection, off)
		}
		if i > 0 && off < c.offs[i-1] {
			return nil, fmt.Errorf("%w: offsets not monotone", ErrBadCollection)
		}
		c.offs = append(c.offs, off)
	}
	if c.offs[count] != poolLen {
		return nil, fmt.Errorf("%w: inconsistent offsets", ErrBadCollection)
	}
	var b4 [4]byte
	for i := int64(0); i < poolLen; i++ {
		if _, err := io.ReadFull(body, b4[:]); err != nil {
			return nil, fmt.Errorf("%w: short pool: %v", ErrBadCollection, err)
		}
		v := int32(binary.LittleEndian.Uint32(b4[:]))
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadCollection, v, n)
		}
		c.pool = append(c.pool, v)
	}
	if perSet {
		c.exam = make([]int64, 0, clamp(count))
		var total int64
		for i := int64(0); i < count; i++ {
			if _, err := io.ReadFull(body, b8[:]); err != nil {
				return nil, fmt.Errorf("%w: short per-set gamma block: %v", ErrBadCollection, err)
			}
			e := int64(binary.LittleEndian.Uint64(b8[:]))
			if e < 0 {
				return nil, fmt.Errorf("%w: negative per-set gamma %d", ErrBadCollection, e)
			}
			total += e
			c.exam = append(c.exam, e)
		}
		if total != gamma {
			return nil, fmt.Errorf("%w: per-set gamma sums to %d, header says %d", ErrBadCollection, total, gamma)
		}
	}
	if sum != nil {
		want := sum.Sum32() // finalize before the trailer read (it is not CRC'd)
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("%w: short CRC trailer: %v", ErrBadCollection, err)
		}
		if got := binary.LittleEndian.Uint32(b4[:]); got != want {
			return nil, fmt.Errorf("%w: CRC mismatch: stored %08x, computed %08x (corrupt payload)", ErrBadCollection, got, want)
		}
	}
	// Rebuild the inverted index.
	for id := int64(0); id < count; id++ {
		for _, v := range c.pool[c.offs[id]:c.offs[id+1]] {
			c.index[v] = append(c.index[v], int32(id))
		}
	}
	return c, nil
}
