package rrset

import (
	"reflect"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func shardTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(400, 5, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireIdentical asserts two collections are byte-identical: same offsets,
// same pool, same inverted index, same γ.
func requireIdentical(t *testing.T, want, got *Collection, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.offs, got.offs) {
		t.Fatalf("%s: offsets differ", label)
	}
	if !reflect.DeepEqual(want.pool, got.pool) {
		t.Fatalf("%s: pools differ", label)
	}
	if want.edgesExamined != got.edgesExamined {
		t.Fatalf("%s: edgesExamined %d != %d", label, got.edgesExamined, want.edgesExamined)
	}
	if len(want.index) != len(got.index) {
		t.Fatalf("%s: index sized %d != %d", label, len(got.index), len(want.index))
	}
	for v := range want.index {
		w, g := want.index[v], got.index[v]
		if len(w) == 0 && len(g) == 0 {
			continue
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: index[%d] = %v, want %v", label, v, g, w)
		}
	}
}

// TestGenerateDeterministicAcrossWorkers is the determinism property test:
// for any worker count the sharded construction must produce a collection
// byte-identical to the sequential one — pool, offsets, inverted index and
// edgesExamined all match. Runs under -race in CI, which also exercises the
// phase barriers of the parallel index build.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	g := shardTestGraph(t)
	const count = 700 // above the parallel-path threshold
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := NewSampler(g, model)
		ref := NewCollection(g.N())
		Generate(ref, s, count, rng.New(42), 1)
		if ref.Count() != count {
			t.Fatalf("%v: reference has %d sets, want %d", model, ref.Count(), count)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			c := NewCollection(g.N())
			Generate(c, s, count, rng.New(42), workers)
			requireIdentical(t, ref, c, model.String()+"/workers="+itoa(workers))
		}
	}
}

// TestGenerateIncrementalMatchesOneShot checks the other half of the
// determinism invariant: growing a collection in several parallel batches is
// byte-identical to generating it in one shot, because RR set i is always
// driven by Split(startID+i) of the same base source.
func TestGenerateIncrementalMatchesOneShot(t *testing.T) {
	g := shardTestGraph(t)
	s := NewSampler(g, diffusion.IC)

	oneShot := NewCollection(g.N())
	Generate(oneShot, s, 600, rng.New(7), 4)

	grown := NewCollection(g.N())
	base := rng.New(7)
	for _, batch := range []int{100, 37, 263, 200} { // mix of sequential and parallel paths
		Generate(grown, s, batch, base, 4)
	}
	requireIdentical(t, oneShot, grown, "incremental")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRebaseOffsetsInt64Overflow is the regression test for the chunk-offset
// truncation bug: a mocked chunk whose local offsets and global pool base
// both exceed 2³¹ must rebase exactly. With int32 chunk offsets these values
// wrapped negative and corrupted the merged collection.
func TestRebaseOffsetsInt64Overflow(t *testing.T) {
	const base = int64(1)<<31 + 17 // global pool start past int32 range
	local := []int64{0, 5, 1 << 30, 1<<31 + 9, 1<<32 + 3}
	dst := make([]int64, len(local)-1)
	rebaseOffsets(dst, base, local)
	want := []int64{base + 5, base + 1<<30, base + 1<<31 + 9, base + 1<<32 + 3}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("rebaseOffsets = %v, want %v", dst, want)
	}
	for i, o := range dst {
		if o != base+local[i+1] {
			t.Fatalf("offset %d truncated: got %d, want %d", i, o, base+local[i+1])
		}
		if int64(int32(o)) == o {
			t.Fatalf("offset %d = %d fits int32; test no longer exercises the overflow", i, o)
		}
	}
}

// coverageBrute is the reference Λ(S): the map-based computation the old
// Coverage implementation performed on every call.
func coverageBrute(c *Collection, seeds []int32) int64 {
	covered := make(map[int32]struct{})
	for _, v := range seeds {
		for _, id := range c.SetsCovering(v) {
			covered[id] = struct{}{}
		}
	}
	return int64(len(covered))
}

func TestCoverageWithMatchesBruteForce(t *testing.T) {
	src := rng.New(9)
	sc := NewCoverageScratch()
	for trial := 0; trial < 50; trial++ {
		raw := make([]uint8, src.Intn(128))
		for i := range raw {
			raw[i] = uint8(src.Intn(256))
		}
		c := randomCollection(raw, 16)
		seeds := make([]int32, src.Intn(8))
		for i := range seeds {
			seeds[i] = int32(src.Intn(16))
		}
		want := coverageBrute(c, seeds)
		if got := c.CoverageWith(sc, seeds); got != want {
			t.Fatalf("trial %d: CoverageWith = %d, want %d", trial, got, want)
		}
		if got := c.Coverage(seeds); got != want {
			t.Fatalf("trial %d: Coverage wrapper = %d, want %d", trial, got, want)
		}
	}
}

// TestCoverageScratchSurvivesCollectionGrowth reuses one scratch across a
// growing collection and across distinct collections — the Oracle's usage
// pattern — and checks every query against the brute-force reference.
func TestCoverageScratchSurvivesCollectionGrowth(t *testing.T) {
	g := shardTestGraph(t)
	s := NewSampler(g, diffusion.IC)
	c := NewCollection(g.N())
	sc := NewCoverageScratch()
	base := rng.New(3)
	seeds := []int32{0, 7, 42, 111}
	for step := 0; step < 4; step++ {
		Generate(c, s, 150, base, 2)
		want := coverageBrute(c, seeds)
		if got := c.CoverageWith(sc, seeds); got != want {
			t.Fatalf("step %d: CoverageWith = %d, want %d", step, got, want)
		}
	}
	// Same scratch against a different, smaller collection.
	small := randomCollection([]uint8{1, 2, 3, 4, 5, 6}, 16)
	if got, want := small.CoverageWith(sc, []int32{1, 3}), coverageBrute(small, []int32{1, 3}); got != want {
		t.Fatalf("cross-collection reuse: CoverageWith = %d, want %d", got, want)
	}
}

// TestCoverageScratchEpochWraparound drives the epoch counter through the
// uint32 wraparound, where stale marks from epoch 2³²−1 must not be
// confused with the re-issued epoch values.
func TestCoverageScratchEpochWraparound(t *testing.T) {
	c := randomCollection([]uint8{0, 1, 1, 2, 2, 3, 3, 4, 0, 5}, 16)
	seeds := []int32{1, 3}
	want := coverageBrute(c, seeds)
	sc := NewCoverageScratch()
	if got := c.CoverageWith(sc, seeds); got != want {
		t.Fatalf("pre-wrap: got %d, want %d", got, want)
	}
	sc.epoch = ^uint32(0) - 1 // next two calls hit max epoch, then wrap to 0→1
	for call := 0; call < 4; call++ {
		if got := c.CoverageWith(sc, seeds); got != want {
			t.Fatalf("wrap call %d (epoch now %d): got %d, want %d", call, sc.epoch, got, want)
		}
	}
	if sc.epoch == 0 {
		t.Fatal("epoch left at 0; wraparound must re-seed to 1")
	}
}
