package rrset

// Incremental RR maintenance under graph mutations (the dynamic-IM repair
// of Peng: fix only the samples whose traces touch a changed edge).
//
// The dependency rule: an RR set's sampled trace consumes randomness only
// from the in-edge data of its member nodes. Under IC the reverse BFS
// examines every in-edge of every dequeued node, and only members are
// dequeued; under LT each walk step draws from the alias table (and
// stopping probability) of the current node, and the walk's positions are
// exactly the members. So a mutation of edge ⟨u,v⟩ — insert, delete or
// reweight, each of which perturbs v's in-row content or order — can change
// the outcome of set R iff v ∈ R, and the inverted index locates those sets
// in O(|index[v]|). Adding a node changes the root draw Int31n(n) of every
// set, so a node add invalidates everything. Invalidation is exact, not
// just conservative: a set no batch touches resamples to identical bytes
// on the mutated graph.
//
// Because set id i of a collection built through Generate is driven by
// base.Split(i) — a position-independent stream — an invalidated set is
// lazily regenerated from its original seed position against the mutated
// graph, and the repaired collection (pool, offsets, index, cumulative γ)
// is byte-identical to a from-scratch resample of every id with the same
// base. That identity is what keeps checkpoints, fleet chunk merges and
// bound derivations oblivious to whether a collection was repaired or
// rebuilt; rrset's property tests pin it across models and worker counts.

import (
	"math/bits"
	"runtime"
	"time"

	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
)

// Repair metrics (obs.Default(), see docs/OBSERVABILITY.md). A mutation
// invalidating f% of θ sets costs O(f·θ) sampling work:
// rrset_regenerated_total advances by f·θ, not θ.
var (
	mInvalidated = obs.Default().Counter("rrset_invalidated_total")
	mRegenerated = obs.Default().Counter("rrset_regenerated_total")
	mRepairTime  = obs.Default().Timer("rrset_repair_seconds")
	// mRepairUnchanged counts regenerated sets whose bytes came out
	// identical, so the weight-only path touched neither pool nor index
	// for them.
	mRepairUnchanged = obs.Default().Counter("rrset_repair_unchanged_total")
)

// InvalidatedBy returns the ascending ids of every stored set whose trace
// could depend on any mutation in the given batches — the sets Repair must
// regenerate after the batches are applied to the sampling graph. Batches
// are the ones applied since this collection was last consistent; computing
// the union against the current (pre-repair) membership is exact even
// across multiple batches, because a set's membership only changes when
// some batch invalidates it. Any node-add widens to every id.
func (c *Collection) InvalidatedBy(batches ...[]graph.Mutation) []int32 {
	count := c.Count()
	if count == 0 {
		return nil
	}
	for _, ms := range batches {
		for _, m := range ms {
			if m.Op == graph.OpAddNode {
				return c.allIDs()
			}
		}
	}
	words := make([]uint64, (count+63)/64)
	marked := 0
	for _, ms := range batches {
		for _, m := range ms {
			if m.To < 0 || m.To >= c.n {
				continue // edge into a node no stored set can contain
			}
			for _, id := range c.index[m.To] {
				w, b := id>>6, uint64(1)<<(uint(id)&63)
				if words[w]&b == 0 {
					words[w] |= b
					marked++
				}
			}
		}
	}
	if marked == 0 {
		return nil
	}
	out := make([]int32, 0, marked)
	for w, word := range words {
		for word != 0 {
			out = append(out, int32(w)<<6+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// Repair regenerates the given sets (ascending, unique ids) against s —
// a sampler over the mutated graph — drawing set id from base.Split(id),
// the same stream position Generate used when the set was first sampled.
// base must be the source the collection was generated from (set ids
// starting at 0). The node universe follows s's graph (a node add grows
// the index), pool/offsets/γ are rebuilt so the collection is
// byte-identical to a from-scratch resample, and the inverted index is
// repaired incrementally: only nodes appearing in an old or new version of
// a regenerated set get a freshly allocated list — arrays previously
// handed out via SetsCoveringShared are never written.
//
// Sampling work is O(len(invalid)·cost-per-set) across workers (≤ 0 means
// GOMAXPROCS); a collection without per-set γ (HasPerSetGamma false, a
// legacy OPIMR1/2 load) silently widens to a full regeneration, which
// restores tracking. Returns the number of sets regenerated.
func (c *Collection) Repair(s *Sampler, base *rng.Source, invalid []int32, workers int) int {
	t0 := time.Now()
	defer func() { mRepairTime.Observe(time.Since(t0)) }()
	mInvalidated.Add(int64(len(invalid)))

	// The node universe tracks the sampler's graph (node adds only grow it).
	if newN := s.Graph().N(); newN > c.n {
		grown := make([][]int32, newN)
		copy(grown, c.index)
		c.index = grown
		c.n = newN
	}
	count := c.Count()
	if len(invalid) == 0 {
		return 0
	}
	if !c.HasPerSetGamma() && len(invalid) < count {
		// Without per-set γ the cumulative count cannot be patched exactly;
		// widen to a full regeneration (correct, and tracking is restored).
		invalid = c.allIDs()
	}
	mRegenerated.Add(int64(len(invalid)))

	// Per-node removal lists from the old membership, captured before the
	// pool is rebuilt. Ids append in ascending order by construction.
	rem := make(map[int32][]int32)
	for _, id := range invalid {
		for _, v := range c.Set(id) {
			rem[v] = append(rem[v], id)
		}
	}

	// Resample the invalidated ids on parallel shards; shard outputs
	// concatenate to (regenPool, regenOffs, regenExam) in invalid order.
	regenPool, regenOffs, regenExam := resampleIDs(s, base, invalid, workers)

	// Per-node addition lists from the new membership (ascending ids).
	add := make(map[int32][]int32)
	for k, id := range invalid {
		for _, v := range regenPool[regenOffs[k]:regenOffs[k+1]] {
			add[v] = append(add[v], id)
		}
	}

	// Rebuild pool, offsets and γ: valid sets keep their bytes, regenerated
	// sets splice in at their id position — the layout a from-scratch
	// resample of all ids would produce.
	var invalidOldSize int64
	for _, id := range invalid {
		invalidOldSize += c.offs[id+1] - c.offs[id]
	}
	newPool := make([]int32, 0, int64(len(c.pool))-invalidOldSize+int64(len(regenPool)))
	newOffs := make([]int64, 1, count+1)
	full := len(invalid) == count
	if full {
		c.edgesExamined = 0
		c.exam = c.exam[:0]
	}
	k := 0
	for id := int32(0); int(id) < count; id++ {
		if k < len(invalid) && id == invalid[k] {
			newPool = append(newPool, regenPool[regenOffs[k]:regenOffs[k+1]]...)
			if full {
				c.exam = append(c.exam, regenExam[k])
				c.edgesExamined += regenExam[k]
			} else {
				c.edgesExamined += regenExam[k] - c.exam[id]
				c.exam[id] = regenExam[k]
			}
			k++
		} else {
			newPool = append(newPool, c.pool[c.offs[id]:c.offs[id+1]]...)
		}
		newOffs = append(newOffs, int64(len(newPool)))
	}
	c.pool, c.offs = newPool, newOffs

	c.mergeIndexDeltas(rem, add)
	return len(invalid)
}

// mergeIndexDeltas repairs the inverted index from per-node removal and
// addition lists: for each node whose coverage list changed, merge (old
// minus removals) with additions into a fresh slice. Removal and addition
// lists are ascending and — after removals — disjoint, so a linear merge
// reproduces the ascending id order of a from-scratch index build. Nodes
// in neither map keep their existing (possibly shared) slices untouched.
func (c *Collection) mergeIndexDeltas(rem, add map[int32][]int32) {
	touched := make(map[int32]struct{}, len(rem)+len(add))
	for v := range rem {
		touched[v] = struct{}{}
	}
	for v := range add {
		touched[v] = struct{}{}
	}
	for v := range touched {
		old, rm, ad := c.index[v], rem[v], add[v]
		merged := make([]int32, 0, len(old)-len(rm)+len(ad))
		i, j, k := 0, 0, 0
		for i < len(old) || k < len(ad) {
			// Skip removed ids from the old list; the skip can exhaust
			// both inputs, so re-check before indexing.
			for i < len(old) && j < len(rm) && old[i] == rm[j] {
				i++
				j++
			}
			if i == len(old) && k == len(ad) {
				break
			}
			switch {
			case i == len(old):
				merged = append(merged, ad[k])
				k++
			case k == len(ad):
				merged = append(merged, old[i])
				i++
			case old[i] < ad[k]:
				merged = append(merged, old[i])
				i++
			default:
				merged = append(merged, ad[k])
				k++
			}
		}
		if len(merged) == 0 {
			merged = nil
		}
		c.index[v] = merged
	}
}

// RepairWeightOnly is Repair specialized to weight-only mutation batches
// (graph.IsWeightOnly): the node universe and the edge set are unchanged,
// so the index never grows, and any invalidated set that resamples to the
// exact bytes it already holds — the common case when a learning round
// nudges thousands of weights by a little — leaves the pool bytes and the
// inverted-index lists of its nodes completely untouched. Only sets whose
// membership actually changed pay the splice-and-merge of the general
// path. The repaired collection is byte-identical to what Repair (and a
// from-scratch resample of every id) produces; the weight-only property
// test pins this across models and worker counts.
//
// The caller is responsible for only routing weight-only batches here; a
// batch with a node add or edge insert/delete must go through Repair.
// Returns the number of sets regenerated.
func (c *Collection) RepairWeightOnly(s *Sampler, base *rng.Source, invalid []int32, workers int) int {
	t0 := time.Now()
	defer func() { mRepairTime.Observe(time.Since(t0)) }()
	mInvalidated.Add(int64(len(invalid)))
	count := c.Count()
	if len(invalid) == 0 {
		return 0
	}
	if !c.HasPerSetGamma() && len(invalid) < count {
		// Same widening as Repair: without per-set γ the cumulative count
		// cannot be patched exactly.
		invalid = c.allIDs()
	}
	mRegenerated.Add(int64(len(invalid)))

	regenPool, regenOffs, regenExam := resampleIDs(s, base, invalid, workers)

	// Partition the regenerated ids: a set whose new bytes equal its stored
	// bytes needs no pool or index work at all (its trace, and therefore its
	// members in trace order, came out identical).
	changed := make([]bool, len(invalid))
	numChanged := 0
	for k, id := range invalid {
		if !equalInt32(c.pool[c.offs[id]:c.offs[id+1]], regenPool[regenOffs[k]:regenOffs[k+1]]) {
			changed[k] = true
			numChanged++
		}
	}
	mRepairUnchanged.Add(int64(len(invalid) - numChanged))

	// γ tracking always refreshes from the regenerated counts (for an
	// unchanged set the trace is identical, so this is a no-op in value).
	if full := len(invalid) == count; full {
		c.edgesExamined = 0
		c.exam = c.exam[:0]
		for k := range invalid {
			c.exam = append(c.exam, regenExam[k])
			c.edgesExamined += regenExam[k]
		}
	} else {
		for k, id := range invalid {
			c.edgesExamined += regenExam[k] - c.exam[id]
			c.exam[id] = regenExam[k]
		}
	}
	if numChanged == 0 {
		// Every invalidated set resampled to its existing bytes: the pool,
		// offsets and index are already exactly what a from-scratch resample
		// would produce. Nothing moves.
		return len(invalid)
	}

	// Removal lists from the old membership of changed sets only, captured
	// before the pool is rebuilt.
	rem := make(map[int32][]int32)
	for k, id := range invalid {
		if !changed[k] {
			continue
		}
		for _, v := range c.Set(id) {
			rem[v] = append(rem[v], id)
		}
	}

	// Splice the pool: valid and unchanged sets keep their bytes, changed
	// sets substitute their regenerated bytes at their id position.
	var oldSz, newSz int64
	for k, id := range invalid {
		if changed[k] {
			oldSz += c.offs[id+1] - c.offs[id]
			newSz += regenOffs[k+1] - regenOffs[k]
		}
	}
	newPool := make([]int32, 0, int64(len(c.pool))-oldSz+newSz)
	newOffs := make([]int64, 1, count+1)
	k := 0
	for id := int32(0); int(id) < count; id++ {
		if k < len(invalid) && id == invalid[k] {
			if changed[k] {
				newPool = append(newPool, regenPool[regenOffs[k]:regenOffs[k+1]]...)
			} else {
				newPool = append(newPool, c.pool[c.offs[id]:c.offs[id+1]]...)
			}
			k++
		} else {
			newPool = append(newPool, c.pool[c.offs[id]:c.offs[id+1]]...)
		}
		newOffs = append(newOffs, int64(len(newPool)))
	}
	c.pool, c.offs = newPool, newOffs

	// Addition lists from the new membership of changed sets; unchanged
	// sets contribute to neither map, so their nodes' index slices (possibly
	// shared with callers via SetsCoveringShared) are never reallocated.
	add := make(map[int32][]int32)
	for k, id := range invalid {
		if !changed[k] {
			continue
		}
		for _, v := range regenPool[regenOffs[k]:regenOffs[k+1]] {
			add[v] = append(add[v], id)
		}
	}
	c.mergeIndexDeltas(rem, add)
	return len(invalid)
}

// equalInt32 reports whether two int32 slices hold identical elements.
func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resampleIDs regenerates the given set ids on parallel shards, each id
// driven by base.Split(id) — the stream position Generate used originally.
// Outputs concatenate in invalid order: regenOffs[k]..regenOffs[k+1] frames
// id invalid[k]'s nodes in regenPool, regenExam[k] its examined-edge count.
func resampleIDs(s *Sampler, base *rng.Source, invalid []int32, workers int) (regenPool []int32, regenOffs, regenExam []int64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(invalid) {
		workers = len(invalid)
	}
	shards := make([]chunk, workers)
	runShards(workers, func(w int) {
		lo, hi := len(invalid)*w/workers, len(invalid)*(w+1)/workers
		sc := s.NewScratch()
		sh := chunk{offs: make([]int64, 1, hi-lo+1)}
		for _, id := range invalid[lo:hi] {
			src := base.Split(uint64(id))
			nodes, examined := s.Sample(src, sc)
			sh.pool = append(sh.pool, nodes...)
			sh.offs = append(sh.offs, int64(len(sh.pool)))
			sh.exam = append(sh.exam, examined)
			sh.examined += examined
		}
		shards[w] = sh
	})
	regenOffs = make([]int64, 1, len(invalid)+1)
	regenExam = make([]int64, 0, len(invalid))
	for _, sh := range shards {
		off := int64(len(regenPool))
		regenPool = append(regenPool, sh.pool...)
		for _, o := range sh.offs[1:] {
			regenOffs = append(regenOffs, off+o)
		}
		regenExam = append(regenExam, sh.exam...)
	}
	return regenPool, regenOffs, regenExam
}

// allIDs returns the full id range of c, the widest invalidation set.
func (c *Collection) allIDs() []int32 {
	ids := make([]int32, c.Count())
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// AllIDs is the exported form of allIDs for callers (core's epoch catch-up)
// that must force a full regeneration, e.g. after a node add or when a
// legacy checkpoint lost per-set γ tracking.
func (c *Collection) AllIDs() []int32 { return c.allIDs() }
