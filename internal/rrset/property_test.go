package rrset

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/reprolab/opim/internal/rng"
)

// randomCollection builds a collection from fuzz bytes: every pair of
// bytes (a, b) becomes a set {a%n, b%n} (deduplicated).
func randomCollection(raw []uint8, n int32) *Collection {
	c := NewCollection(n)
	for i := 0; i+1 < len(raw); i += 2 {
		a := int32(raw[i]) % n
		b := int32(raw[i+1]) % n
		if a == b {
			c.Add([]int32{a}, 1)
		} else {
			c.Add([]int32{a, b}, 1)
		}
	}
	return c
}

func TestCoverageUpperBoundedByCountProperty(t *testing.T) {
	f := func(raw []uint8, seedRaw []uint8) bool {
		c := randomCollection(raw, 16)
		seeds := make([]int32, 0, len(seedRaw))
		for _, s := range seedRaw {
			seeds = append(seeds, int32(s)%16)
		}
		cov := c.Coverage(seeds)
		return cov >= 0 && cov <= int64(c.Count())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageMonotoneUnderSupersetProperty(t *testing.T) {
	f := func(raw []uint8, a, b uint8) bool {
		c := randomCollection(raw, 16)
		s1 := []int32{int32(a) % 16}
		s2 := []int32{int32(a) % 16, int32(b) % 16}
		return c.Coverage(s2) >= c.Coverage(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageSubadditiveProperty(t *testing.T) {
	// Λ(A ∪ B) ≤ Λ(A) + Λ(B).
	f := func(raw []uint8, a, b uint8) bool {
		c := randomCollection(raw, 16)
		sa := []int32{int32(a) % 16}
		sb := []int32{int32(b) % 16}
		union := append(append([]int32{}, sa...), sb...)
		return c.Coverage(union) <= c.Coverage(sa)+c.Coverage(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumEqualsTotalSizeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		c := randomCollection(raw, 16)
		var sum int64
		for v := int32(0); v < 16; v++ {
			sum += int64(c.Degree(v))
		}
		return sum == c.TotalSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFullSeedSetCoversEverythingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		c := randomCollection(raw, 16)
		all := make([]int32, 16)
		for i := range all {
			all[i] = int32(i)
		}
		return c.Coverage(all) == int64(c.Count())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationRoundTripProperty(t *testing.T) {
	// Any randomly built collection survives a write/read cycle.
	src := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		raw := make([]uint8, src.Intn(64))
		for i := range raw {
			raw[i] = uint8(src.Intn(256))
		}
		c := randomCollection(raw, 16)
		var buf bytes.Buffer
		if err := WriteCollection(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCollection(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != c.Count() || got.TotalSize() != c.TotalSize() {
			t.Fatalf("trial %d: shape changed", trial)
		}
	}
}
