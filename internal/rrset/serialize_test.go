package rrset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func sampleCollection(t *testing.T) (*Collection, *Sampler) {
	t.Helper()
	g, err := gen.PreferentialAttachment(200, 5, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, diffusion.IC)
	c := NewCollection(g.N())
	Generate(c, s, 300, rng.New(3), 2)
	return c, s
}

func TestCollectionRoundTrip(t *testing.T) {
	c, _ := sampleCollection(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.Count() != c.Count() || got.TotalSize() != c.TotalSize() || got.EdgesExamined() != c.EdgesExamined() {
		t.Fatal("shape changed in round trip")
	}
	for i := int32(0); i < int32(c.Count()); i++ {
		a, b := c.Set(i), got.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d length differs", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d element %d differs", i, j)
			}
		}
	}
	for v := int32(0); v < c.N(); v++ {
		if c.Degree(v) != got.Degree(v) {
			t.Fatalf("rebuilt index wrong at node %d", v)
		}
	}
}

func TestCollectionRoundTripEmpty(t *testing.T) {
	c := NewCollection(7)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 7 || got.Count() != 0 {
		t.Fatalf("empty round trip: n=%d count=%d", got.N(), got.Count())
	}
}

func TestReadCollectionBadMagic(t *testing.T) {
	if _, err := ReadCollection(strings.NewReader("NOPE and more bytes to be sure")); !errors.Is(err, ErrBadCollection) {
		t.Fatalf("error = %v", err)
	}
}

func TestReadCollectionTruncated(t *testing.T) {
	c, _ := sampleCollection(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 10, 40, len(full) / 2, len(full) - 2} {
		if _, err := ReadCollection(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadCollection) {
			t.Errorf("truncation at %d: error = %v", cut, err)
		}
	}
}

func TestReadCollectionCorruptNode(t *testing.T) {
	c := NewCollection(4)
	c.Add([]int32{1, 2}, 5)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The final pool entry sits just before the 4-byte CRC trailer;
	// overwrite it with an out-of-range node id (the range guard fires
	// before the CRC is even checked).
	raw[len(raw)-8] = 0xFF
	raw[len(raw)-7] = 0xFF
	raw[len(raw)-6] = 0xFF
	raw[len(raw)-5] = 0x7F
	if _, err := ReadCollection(bytes.NewReader(raw)); !errors.Is(err, ErrBadCollection) {
		t.Fatalf("corrupt node id accepted: %v", err)
	}
}

func TestSamplerAccessors(t *testing.T) {
	_, s := sampleCollection(t)
	if s.Graph() == nil {
		t.Fatal("Graph() nil")
	}
	if s.Model() != diffusion.IC {
		t.Fatalf("Model() = %v", s.Model())
	}
	c := NewCollection(5)
	if c.N() != 5 {
		t.Fatalf("N() = %d", c.N())
	}
}

func TestScratchEpochWraparound(t *testing.T) {
	_, s := sampleCollection(t)
	sc := s.NewScratch()
	sc.epoch = ^uint32(0) - 1
	src := rng.New(9)
	for i := 0; i < 5; i++ {
		nodes, _ := s.Sample(src, sc)
		seen := map[int32]bool{}
		for _, v := range nodes {
			if seen[v] {
				t.Fatal("duplicate after epoch wrap")
			}
			seen[v] = true
		}
	}
}

// writeCollectionV1 emits the legacy OPIMR1 frame (no CRC trailer), so the
// compat and corruption tests can exercise exactly what old checkpoints
// contain.
func writeCollectionV1(t *testing.T, c *Collection) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("OPIMR1\n")
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.n))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(c.Count()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(c.pool)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(c.edgesExamined))
	buf.Write(hdr[:])
	var b8 [8]byte
	for _, off := range c.offs {
		binary.LittleEndian.PutUint64(b8[:], uint64(off))
		buf.Write(b8[:])
	}
	var b4 [4]byte
	for _, v := range c.pool {
		binary.LittleEndian.PutUint32(b4[:], uint32(v))
		buf.Write(b4[:])
	}
	return buf.Bytes()
}

// TestReadCollectionV1Compat: OPIMR1 streams (old checkpoints) must stay
// readable even though the writer now emits OPIMR2.
func TestReadCollectionV1Compat(t *testing.T) {
	c, _ := sampleCollection(t)
	got, err := ReadCollection(bytes.NewReader(writeCollectionV1(t, c)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != c.Count() || got.TotalSize() != c.TotalSize() || got.EdgesExamined() != c.EdgesExamined() {
		t.Fatal("V1 stream decoded to a different shape")
	}
	for i := int32(0); int(i) < c.Count(); i++ {
		a, b := c.Set(i), got.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d length differs", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d element %d differs", i, j)
			}
		}
	}
}

// TestCRCDetectsInRangeBitFlip is the reason OPIMR2 exists: a single bit
// flip in the pool that keeps every node id in range passes every V1
// structural check, and must be caught by the CRC trailer.
func TestCRCDetectsInRangeBitFlip(t *testing.T) {
	c, _ := sampleCollection(t)
	if c.TotalSize() == 0 {
		t.Fatal("fixture pooled no nodes")
	}
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// First pool entry: after magic (7), header (28) and count+1 offsets.
	poolOff := 7 + 28 + 8*(c.Count()+1)
	raw[poolOff] ^= 1 // v^1 stays within [0, n) for every v < n with n even
	flipped := int32(binary.LittleEndian.Uint32(raw[poolOff : poolOff+4]))
	if flipped < 0 || flipped >= c.N() {
		t.Fatalf("test premise broken: flipped node %d out of range", flipped)
	}
	if _, err := ReadCollection(bytes.NewReader(raw)); !errors.Is(err, ErrBadCollection) {
		t.Fatalf("in-range bit flip accepted: %v", err)
	}
	// Sanity: the same flip on a V1 stream IS silently accepted — the gap
	// OPIMR2 closes. (Documents the motivation; V1 only detects truncation.)
	v1 := writeCollectionV1(t, c)
	v1[poolOff] ^= 1
	if _, err := ReadCollection(bytes.NewReader(v1)); err != nil {
		t.Fatalf("V1 unexpectedly rejected the flip (update this test): %v", err)
	}
}

// TestReadCollectionTruncationAtEveryBoundary truncates a valid OPIMR3
// stream at (and just inside) every frame boundary — magic, header,
// offsets, pool, per-set γ block, CRC trailer — and requires a wrapped
// ErrBadCollection every time: never a panic, never a silently short
// collection.
func TestReadCollectionTruncationAtEveryBoundary(t *testing.T) {
	c, _ := sampleCollection(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	magicEnd := 7
	headerEnd := magicEnd + 28
	offsEnd := headerEnd + 8*(c.Count()+1)
	poolEnd := offsEnd + 4*int(c.TotalSize())
	gammaEnd := poolEnd + 8*c.Count()
	trailerEnd := gammaEnd + 4
	if trailerEnd != len(full) {
		t.Fatalf("frame arithmetic wrong: computed %d, stream has %d", trailerEnd, len(full))
	}
	boundaries := []struct {
		name string
		end  int
	}{
		{"magic", magicEnd},
		{"header", headerEnd},
		{"offsets", offsEnd},
		{"pool", poolEnd},
		{"gamma", gammaEnd},
		{"trailer", trailerEnd},
	}
	for _, b := range boundaries {
		// Cut exactly at the start of the frame, mid-frame, and one byte
		// short of its end; a cut at trailerEnd is the whole valid stream.
		cuts := []int{b.end - 1}
		if prev := b.end - 4; prev > 0 {
			cuts = append(cuts, prev)
		}
		for _, cut := range cuts {
			if cut >= trailerEnd || cut < 0 {
				continue
			}
			got, err := ReadCollection(bytes.NewReader(full[:cut]))
			if !errors.Is(err, ErrBadCollection) {
				t.Errorf("truncation inside %s frame (cut=%d): collection=%v err=%v", b.name, cut, got != nil, err)
			}
		}
	}
	// And the untruncated stream still decodes.
	if _, err := ReadCollection(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestGenerateAtMatchesGenerate: GenerateAt with an explicit origin must
// reproduce the id range of a local Generate exactly — the worker-side
// primitive of distributed generation.
func TestGenerateAtMatchesGenerate(t *testing.T) {
	c, s := sampleCollection(t) // 300 sets, base rng.New(3), startID 0
	base := rng.New(3)
	lo, hi := 120, 240
	cc := NewCollection(c.N())
	GenerateAt(cc, s, hi-lo, base, uint64(lo), 3)
	for i := lo; i < hi; i++ {
		a, b := c.Set(int32(i)), cc.Set(int32(i-lo))
		if len(a) != len(b) {
			t.Fatalf("set %d length differs: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d element %d differs", i, j)
			}
		}
	}
}

// TestAppendCollectionByteIdentical: chunked generate + AppendCollection
// merge must serialize byte-identically to one local Generate — the
// coordinator-side merge invariant.
func TestAppendCollectionByteIdentical(t *testing.T) {
	c, s := sampleCollection(t)
	var want bytes.Buffer
	if err := WriteCollection(&want, c); err != nil {
		t.Fatal(err)
	}
	base := rng.New(3)
	merged := NewCollection(c.N())
	for _, r := range [][2]int{{0, 77}, {77, 150}, {150, 300}} {
		cc := NewCollection(c.N())
		GenerateAt(cc, s, r[1]-r[0], base, uint64(r[0]), 2)
		// Round-trip the chunk through the wire format, as the fleet does.
		var wire bytes.Buffer
		if err := WriteCollection(&wire, cc); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadCollection(&wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.AppendCollection(decoded); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := WriteCollection(&got, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("chunked merge not byte-identical to local generation")
	}
	if merged.AppendCollection(NewCollection(c.N()+1)) == nil {
		t.Fatal("mismatched n accepted")
	}
}
