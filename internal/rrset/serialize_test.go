package rrset

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func sampleCollection(t *testing.T) (*Collection, *Sampler) {
	t.Helper()
	g, err := gen.PreferentialAttachment(200, 5, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, diffusion.IC)
	c := NewCollection(g.N())
	Generate(c, s, 300, rng.New(3), 2)
	return c, s
}

func TestCollectionRoundTrip(t *testing.T) {
	c, _ := sampleCollection(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.Count() != c.Count() || got.TotalSize() != c.TotalSize() || got.EdgesExamined() != c.EdgesExamined() {
		t.Fatal("shape changed in round trip")
	}
	for i := int32(0); i < int32(c.Count()); i++ {
		a, b := c.Set(i), got.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d length differs", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d element %d differs", i, j)
			}
		}
	}
	for v := int32(0); v < c.N(); v++ {
		if c.Degree(v) != got.Degree(v) {
			t.Fatalf("rebuilt index wrong at node %d", v)
		}
	}
}

func TestCollectionRoundTripEmpty(t *testing.T) {
	c := NewCollection(7)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 7 || got.Count() != 0 {
		t.Fatalf("empty round trip: n=%d count=%d", got.N(), got.Count())
	}
}

func TestReadCollectionBadMagic(t *testing.T) {
	if _, err := ReadCollection(strings.NewReader("NOPE and more bytes to be sure")); !errors.Is(err, ErrBadCollection) {
		t.Fatalf("error = %v", err)
	}
}

func TestReadCollectionTruncated(t *testing.T) {
	c, _ := sampleCollection(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 10, 40, len(full) / 2, len(full) - 2} {
		if _, err := ReadCollection(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadCollection) {
			t.Errorf("truncation at %d: error = %v", cut, err)
		}
	}
}

func TestReadCollectionCorruptNode(t *testing.T) {
	c := NewCollection(4)
	c.Add([]int32{1, 2}, 5)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The last 4 bytes are the final pool entry; overwrite with an
	// out-of-range node id.
	raw[len(raw)-4] = 0xFF
	raw[len(raw)-3] = 0xFF
	raw[len(raw)-2] = 0xFF
	raw[len(raw)-1] = 0x7F
	if _, err := ReadCollection(bytes.NewReader(raw)); !errors.Is(err, ErrBadCollection) {
		t.Fatalf("corrupt node id accepted: %v", err)
	}
}

func TestSamplerAccessors(t *testing.T) {
	_, s := sampleCollection(t)
	if s.Graph() == nil {
		t.Fatal("Graph() nil")
	}
	if s.Model() != diffusion.IC {
		t.Fatalf("Model() = %v", s.Model())
	}
	c := NewCollection(5)
	if c.N() != 5 {
		t.Fatalf("N() = %d", c.N())
	}
}

func TestScratchEpochWraparound(t *testing.T) {
	_, s := sampleCollection(t)
	sc := s.NewScratch()
	sc.epoch = ^uint32(0) - 1
	src := rng.New(9)
	for i := 0; i < 5; i++ {
		nodes, _ := s.Sample(src, sc)
		seen := map[int32]bool{}
		for _, v := range nodes {
			if seen[v] {
				t.Fatal("duplicate after epoch wrap")
			}
			seen[v] = true
		}
	}
}
