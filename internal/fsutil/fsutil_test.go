package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/reprolab/opim/internal/faultinject"
)

func writeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	n, err := WriteAtomic(path, writeBytes([]byte("generation-1")))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("generation-1")) {
		t.Fatalf("bytes written = %d", n)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "generation-1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + tmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	// No previous generation before the second write.
	if _, err := os.Stat(path + PrevSuffix); !os.IsNotExist(err) {
		t.Fatalf("prev generation exists before rotation: %v", err)
	}
}

func TestWriteAtomicRotatesPreviousGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if _, err := WriteAtomic(path, writeBytes([]byte("one"))); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteAtomic(path, writeBytes([]byte("two"))); err != nil {
		t.Fatal(err)
	}
	cur, _ := os.ReadFile(path)
	prev, err := os.ReadFile(path + PrevSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != "two" || string(prev) != "one" {
		t.Fatalf("cur=%q prev=%q", cur, prev)
	}
}

func TestWriteAtomicTornWriteKeepsCurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if _, err := WriteAtomic(path, writeBytes([]byte("good"))); err != nil {
		t.Fatal(err)
	}
	// A write that tears after 2 bytes must not touch the current file.
	_, err := WriteAtomic(path, func(w io.Writer) error {
		_, err := faultinject.TornWriter(w, 2).Write([]byte("evil-payload"))
		return err
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write error = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good" {
		t.Fatalf("current generation clobbered by torn write: %q", got)
	}
	if _, err := os.Stat(path + tmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind after failed write: %v", err)
	}
}

func TestWriteAtomicWriteErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	boom := errors.New("boom")
	if _, err := WriteAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed first write created the file: %v", err)
	}
}
