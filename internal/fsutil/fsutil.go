// Package fsutil provides the crash-safe file primitives the daemon's
// checkpointer builds on: atomic generational writes that never leave a
// torn file where a reader can find it. A write either lands completely
// (tmp file + fsync + rename) or not at all, and the previous generation
// of the file is kept, so a reader always has a good copy to fall back to
// even when the current one was corrupted after the fact.
package fsutil

import (
	"io"
	"os"
	"path/filepath"
)

// PrevSuffix is appended to path to name the previous generation kept by
// WriteAtomic.
const PrevSuffix = ".prev"

// tmpSuffix names the in-progress temporary file. A crash mid-write can
// leave it behind; it is truncated and reused by the next write and never
// read back.
const tmpSuffix = ".tmp"

// WriteAtomic atomically replaces path with the bytes produced by write,
// returning the number of bytes written. The protocol is:
//
//  1. write everything to path.tmp and fsync it;
//  2. rotate the existing path (if any) to path.prev;
//  3. rename path.tmp to path;
//  4. fsync the directory so both renames are durable.
//
// If write (or the fsync) fails, the temporary file is removed and the
// current generation at path is left untouched — a torn write can never
// clobber the last good copy. A crash between steps 2 and 3 leaves no
// current file but a good path.prev, which is why readers must fall back
// to the previous generation (see server.LoadCheckpoint).
func WriteAtomic(path string, write func(io.Writer) error) (int64, error) {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return cw.n, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return cw.n, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return cw.n, err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSuffix); err != nil {
			os.Remove(tmp)
			return cw.n, err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return cw.n, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		// The data itself is durable (the file was fsynced); only the
		// renames could be lost on power failure. Report it.
		return cw.n, err
	}
	return cw.n, nil
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
