package faultinject

import (
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/reprolab/opim/internal/rng"
)

// This file extends the Writer family to the HTTP layer: round-trippers
// that drop, delay, or tear requests in flight, for chaos-testing the
// fleet transport (worker RPCs and their retry/reassignment machinery).
// Like the writers, every injector draws its faults from a seed-keyed
// rng.Source or a fixed call count — never wall clock or global
// randomness — so a failing chaos test replays identically. Unlike the
// writers, round-trippers must be safe for concurrent use (the
// http.Client contract), so the seeded draws are mutex-guarded.

// FlakyRoundTripper fails each request outright with probability p —
// the connection refused, the packet lost, the proxy resetting. Failed
// requests never reach the underlying transport.
type FlakyRoundTripper struct {
	// Next is the underlying transport; nil means http.DefaultTransport.
	Next http.RoundTripper

	mu  sync.Mutex
	src *rng.Source
	p   float64
}

// NewFlakyRoundTripper returns a FlakyRoundTripper whose failure draws
// come from a source keyed by seed.
func NewFlakyRoundTripper(next http.RoundTripper, seed uint64, p float64) *FlakyRoundTripper {
	return &FlakyRoundTripper{Next: next, src: rng.New(seed), p: p}
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	fail := t.src.Float64() < t.p
	t.mu.Unlock()
	if fail {
		// The request may carry a body; close it like a real transport
		// failure would, so callers relying on Body cleanup don't leak.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, ErrInjected
	}
	return transport(t.Next).RoundTrip(req)
}

// SlowRoundTripper sleeps before forwarding each request — cross-AZ
// latency, a GC-paused worker, a congested link. Combined with a short
// client timeout it exercises deadline and lease-reassignment paths.
type SlowRoundTripper struct {
	// Next is the underlying transport; nil means http.DefaultTransport.
	Next http.RoundTripper
	// Delay is the sleep before each request is forwarded.
	Delay time.Duration
}

// RoundTrip implements http.RoundTripper.
func (t *SlowRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Delay > 0 {
		select {
		case <-time.After(t.Delay):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	return transport(t.Next).RoundTrip(req)
}

// TornBodyRoundTripper lets requests through but tears the response
// body: with probability p the body is truncated after a seed-chosen
// fraction of reads and the next read returns ErrInjected — the TCP
// connection dying mid-response. The status line and headers arrive
// intact, so only integrity checks on the payload (the OPIMR2 CRC
// trailer, say) can tell a torn delivery from a complete one.
type TornBodyRoundTripper struct {
	// Next is the underlying transport; nil means http.DefaultTransport.
	Next http.RoundTripper

	mu  sync.Mutex
	src *rng.Source
	p   float64
}

// NewTornBodyRoundTripper returns a TornBodyRoundTripper tearing
// response bodies with probability p, keyed by seed.
func NewTornBodyRoundTripper(next http.RoundTripper, seed uint64, p float64) *TornBodyRoundTripper {
	return &TornBodyRoundTripper{Next: next, src: rng.New(seed), p: p}
}

// RoundTrip implements http.RoundTripper.
func (t *TornBodyRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := transport(t.Next).RoundTrip(req)
	if err != nil {
		return resp, err
	}
	t.mu.Lock()
	tear := t.src.Float64() < t.p
	frac := t.src.Float64() // drawn unconditionally to keep the stream aligned
	t.mu.Unlock()
	if tear {
		resp.Body = &tornBody{rc: resp.Body, remaining: tornReadBudget(resp.ContentLength, frac)}
	}
	return resp, nil
}

// tornReadBudget picks how many payload bytes survive before the tear.
// With a known Content-Length the cut lands strictly inside the payload;
// for chunked responses it falls back to a fraction of a nominal window.
func tornReadBudget(contentLength int64, frac float64) int64 {
	if contentLength > 0 {
		return int64(frac * float64(contentLength))
	}
	const nominal = 64 << 10
	return int64(frac * nominal)
}

// tornBody forwards reads until the budget is exhausted, then returns
// ErrInjected. A torn final read still delivers its prefix, mirroring
// TornWriter's partial-prefix semantics.
type tornBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining > 0 {
		// The true body ended before the budget: pass EOF through
		// untouched — this response happened not to be torn after all.
		return n, io.EOF
	}
	if err == nil && b.remaining <= 0 {
		return n, ErrInjected
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }

func transport(t http.RoundTripper) http.RoundTripper {
	if t != nil {
		return t
	}
	return http.DefaultTransport
}
