package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/rng"
)

func TestTornWriterTearsAtBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := TornWriter(&buf, 5)
	n, err := w.Write([]byte("ab"))
	if n != 2 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	// Crosses the 5-byte boundary: 3 more bytes land, then ErrInjected.
	n, err = w.Write([]byte("cdefg"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %d, %v", n, err)
	}
	if got := buf.String(); got != "abcde" {
		t.Fatalf("underlying bytes %q, want the 5-byte prefix", got)
	}
	// Every subsequent write fails without writing.
	if n, err = w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write: %d, %v", n, err)
	}
}

func TestFlakyWriterDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		var buf bytes.Buffer
		w := FlakyWriter(&buf, seed, 0.3)
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := w.Write([]byte("x"))
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flaky pattern diverged at write %d for the same seed", i)
		}
	}
	var failures int
	for _, ok := range a {
		if !ok {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("flaky writer failed %d/%d writes; want a mix", failures, len(a))
	}
}

func TestSlowWriterDelays(t *testing.T) {
	var buf bytes.Buffer
	w := SlowWriter(&buf, 10*time.Millisecond)
	start := time.Now()
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥ 10ms", el)
	}
	if buf.String() != "abc" {
		t.Fatalf("bytes lost: %q", buf.String())
	}
}

// fixedDist returns a constant triggering set, counting rng draws to prove
// SlowDist forwards the source untouched.
type fixedDist struct{ calls int }

func (d *fixedDist) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	d.calls++
	_ = src.Uint64()
	return append(buf[:0], v)
}

func TestSlowDistPreservesSamples(t *testing.T) {
	inner := &fixedDist{}
	slow := &SlowDist{Dist: inner, Delay: time.Millisecond}
	srcA, srcB := rng.New(1), rng.New(1)
	got := slow.SampleTriggering(3, srcA, nil)
	want := (&fixedDist{}).SampleTriggering(3, srcB, nil)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("wrapped sample %v, inner sample %v", got, want)
	}
	if srcA.Uint64() != srcB.Uint64() {
		t.Fatal("SlowDist consumed extra randomness")
	}
	if inner.calls != 1 {
		t.Fatalf("inner called %d times", inner.calls)
	}
}
