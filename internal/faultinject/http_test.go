package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func newPayloadServer(t *testing.T, payload []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Declare the length explicitly: large bodies otherwise go out
		// chunked, and the torn-body injector can only guarantee an
		// in-payload cut when Content-Length is known.
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		w.Write(payload)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestFlakyRoundTripperDeterministic(t *testing.T) {
	srv := newPayloadServer(t, []byte("ok"))

	run := func(seed uint64) []bool {
		client := &http.Client{Transport: NewFlakyRoundTripper(nil, seed, 0.4)}
		outcomes := make([]bool, 0, 32)
		for i := 0; i < 32; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("request %d: unexpected error %v", i, err)
				}
				outcomes = append(outcomes, false)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes = append(outcomes, true)
		}
		return outcomes
	}

	a, b := run(7), run(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.4 over %d requests produced %d failures; injector not mixing", len(a), fails)
	}
}

func TestSlowRoundTripperDelaysAndHonorsContext(t *testing.T) {
	srv := newPayloadServer(t, []byte("ok"))

	client := &http.Client{Transport: &SlowRoundTripper{Delay: 30 * time.Millisecond}}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request completed in %v, injected delay not applied", d)
	}

	// A context that expires during the injected delay must cancel the
	// request instead of sleeping through it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	slow := &http.Client{Transport: &SlowRoundTripper{Delay: 5 * time.Second}}
	start = time.Now()
	if _, err := slow.Do(req); err == nil {
		t.Fatal("expected context cancellation")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %v; injector slept through the deadline", d)
	}
}

func TestTornBodyRoundTripperTearsMidPayload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 8192)
	srv := newPayloadServer(t, payload)

	client := &http.Client{Transport: NewTornBodyRoundTripper(nil, 3, 1.0)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; torn injector must not touch the status line", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("read %d of %d bytes; body was not torn", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("torn prefix differs from the true payload prefix")
	}
}

func TestTornBodyRoundTripperDeterministicPattern(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1024)
	srv := newPayloadServer(t, payload)

	run := func() []int {
		client := &http.Client{Transport: NewTornBodyRoundTripper(nil, 99, 0.5)}
		lens := make([]int, 0, 16)
		for i := 0; i < 16; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lens = append(lens, len(got))
		}
		return lens
	}

	a, b := run(), run()
	torn := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d bytes", i, a[i], b[i])
		}
		if a[i] < len(payload) {
			torn++
		}
	}
	if torn == 0 || torn == len(a) {
		t.Fatalf("p=0.5 over %d responses tore %d; injector not mixing", len(a), torn)
	}
}

func TestTornBodyPassThroughWhenDisabled(t *testing.T) {
	payload := []byte("intact payload")
	srv := newPayloadServer(t, payload)

	client := &http.Client{Transport: NewTornBodyRoundTripper(nil, 1, 0)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("p=0 altered the response: %q, %v", got, err)
	}
}
