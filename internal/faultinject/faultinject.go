// Package faultinject provides deterministic, seed-keyed fault injectors
// for chaos-testing the daemon's robustness layer: torn and flaky writers
// for exercising checkpoint recovery, and latency injectors (for writers
// and for the RR-set sampler via a triggering-distribution wrapper) for
// exercising request deadlines and cancellation.
//
// Every injector is deterministic: faults are scheduled by byte offset,
// call count, or a seed-keyed rng.Source, never by wall clock or global
// randomness, so a chaos test that fails replays identically.
package faultinject

import (
	"errors"
	"io"
	"time"

	"github.com/reprolab/opim/internal/rng"
)

// ErrInjected is the error returned by every injected fault, so tests can
// distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Writer wraps an io.Writer with deterministic faults. The zero value
// (no fault configured) passes writes through unchanged. Writer is not
// safe for concurrent use, matching the io.Writer contract of the
// checkpoint path it wraps.
type Writer struct {
	w io.Writer

	failAfter int64 // fail once this many total bytes have been written; <0 = never
	written   int64

	flaky *rng.Source // per-write failure draws, nil = disabled
	p     float64     // per-write failure probability for flaky writers

	delay time.Duration // sleep before each write, 0 = disabled
}

// TornWriter returns a Writer that writes through until failAfter total
// bytes have been written, then tears the write crossing the boundary:
// the prefix up to failAfter lands in the underlying writer and the call
// returns ErrInjected, as does every subsequent call. This is the disk
// running out, the process dying mid-write, or the kernel dropping dirty
// pages — a partial prefix of the intended bytes.
func TornWriter(w io.Writer, failAfter int64) *Writer {
	return &Writer{w: w, failAfter: failAfter}
}

// FlakyWriter returns a Writer that fails each Write call (writing
// nothing) with probability p, drawn from a seed-keyed source, so the
// failure pattern is deterministic for a fixed seed.
func FlakyWriter(w io.Writer, seed uint64, p float64) *Writer {
	return &Writer{w: w, failAfter: -1, flaky: rng.New(seed), p: p}
}

// SlowWriter returns a Writer that sleeps delay before every write —
// a slow disk or a saturated NFS mount.
func SlowWriter(w io.Writer, delay time.Duration) *Writer {
	return &Writer{w: w, failAfter: -1, delay: delay}
}

// Write implements io.Writer with the configured faults.
func (fw *Writer) Write(p []byte) (int, error) {
	if fw.delay > 0 {
		time.Sleep(fw.delay)
	}
	if fw.flaky != nil && fw.flaky.Float64() < fw.p {
		return 0, ErrInjected
	}
	if fw.failAfter >= 0 {
		if fw.written >= fw.failAfter {
			return 0, ErrInjected
		}
		if rem := fw.failAfter - fw.written; int64(len(p)) > rem {
			n, err := fw.w.Write(p[:rem])
			fw.written += int64(n)
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
	}
	n, err := fw.w.Write(p)
	fw.written += int64(n)
	return n, err
}

// TriggeringDistribution mirrors rrset.TriggeringDistribution
// structurally, so SlowDist can wrap any triggering model without this
// package importing rrset.
type TriggeringDistribution interface {
	SampleTriggering(v int32, src *rng.Source, buf []int32) []int32
}

// SlowDist wraps a triggering distribution with a fixed latency per
// sampled triggering set, slowing RR-set generation without changing a
// single random draw: the wrapped distribution produces byte-identical
// samples. Chaos tests use it to make generation slow enough that
// cancellation and deadline paths are actually exercised. Safe for
// concurrent use iff the wrapped distribution is.
type SlowDist struct {
	// Dist is the wrapped distribution.
	Dist TriggeringDistribution
	// Delay is the sleep before each triggering-set sample.
	Delay time.Duration
}

// SampleTriggering implements the triggering-distribution contract.
func (d *SlowDist) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d.Dist.SampleTriggering(v, src, buf)
}
