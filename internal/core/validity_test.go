package core

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// TestGuaranteeValidityStatistical verifies the paper's central claim
// empirically: across many independent OPIM runs on an instance with a
// KNOWN optimum, the fraction of runs whose reported bounds are violated
// stays within the failure budget δ.
//
// Instance: a star with hub 0 and 399 leaves at p = 0.25 under IC, k = 1.
// The optimal seed is the hub with σ(S°) = 1 + 399·0.25 = 100.75 exactly,
// and the greedy always selects it once any RR sets are drawn, so
// σ(S*) = σ(S°) is known in closed form. A run fails iff
// σˡ(S*) > σ(S*) or σᵘ(S°) < σ(S°).
func TestGuaranteeValidityStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	g, err := gen.Star(400, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	trueOpt := 1 + 399*0.25
	sampler := rrset.NewSampler(g, diffusion.IC)

	const (
		trials = 400
		delta  = 0.2 // loose δ so violations are observable if bounds were wrong
	)
	violations := 0
	for trial := 0; trial < trials; trial++ {
		o, err := NewOnline(sampler, Options{K: 1, Delta: delta, Variant: Plus, Seed: uint64(1000 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		o.Advance(3000)
		snap := o.Snapshot()
		if snap.Seeds[0] != 0 {
			// Greedy picked a leaf (possible only with pathological samples);
			// count as a failure of the overall guarantee.
			violations++
			continue
		}
		if snap.SigmaLower > trueOpt || snap.SigmaUpper < trueOpt {
			violations++
		}
	}
	rate := float64(violations) / trials
	// The bound is conservative (Lemma 4.2/4.3 are not tight), so the
	// observed rate should be well under δ; flag anything above it.
	if rate > delta {
		t.Fatalf("guarantee violated in %.1f%% of runs, budget δ = %.0f%%", 100*rate, 100*delta)
	}
	t.Logf("violation rate %.2f%% (budget %.0f%%)", 100*rate, 100*delta)
}

// TestAlphaSoundAgainstExhaustiveOptimum checks the end-to-end guarantee on
// instances small enough to brute-force: σ(S*) ≥ α·σ(S°) must hold for the
// measured spreads (with Monte-Carlo tolerance).
func TestAlphaSoundAgainstExhaustiveOptimum(t *testing.T) {
	g, err := gen.PreferentialAttachment(60, 4, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(sampler, Options{K: 2, Delta: 0.05, Variant: Plus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(20000)
	snap := o.Snapshot()

	// Brute-force σ(S°) over all pairs by Monte-Carlo.
	var best float64
	n := g.N()
	for a := int32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			est := diffusion.EstimateSpread(g, diffusion.IC, []int32{a, b}, 3000, 11, 0)
			if est.Spread > best {
				best = est.Spread
			}
		}
	}
	got := diffusion.EstimateSpread(g, diffusion.IC, snap.Seeds, 30000, 13, 0)
	if got.Spread+5*got.StdErr < snap.Alpha*best {
		t.Fatalf("σ(S*) = %v below α·σ(S°) = %.3f·%.3f", got, snap.Alpha, best)
	}
	if snap.SigmaUpper < best*0.95 {
		t.Fatalf("σᵘ = %v below brute-force optimum %v", snap.SigmaUpper, best)
	}
}
