package core

import (
	"fmt"
	"math"
	"time"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// CResult is the outcome of one OPIM-C run (Algorithm 2).
type CResult struct {
	// Seeds is the returned size-k seed set.
	Seeds []int32
	// Alpha is the guarantee certified in the stopping round; when the
	// algorithm exhausts i_max rounds it still returns a valid
	// (1−1/e−ε)-approximation via Lemma 6.1, and Alpha carries the last
	// computed value.
	Alpha float64
	// Certified reports whether the α ≥ 1−1/e−ε early-stop condition fired
	// (as opposed to exiting on the i_max-th round's Lemma 6.1 fallback).
	Certified bool
	// Rounds is the number of doubling rounds executed (1-based).
	Rounds int
	// MaxRounds is i_max = ⌈log2(θmax/θ0)⌉.
	MaxRounds int
	// RRGenerated counts RR sets across both halves.
	RRGenerated int64
	// Theta1, Theta2 are the final half sizes.
	Theta1, Theta2 int64
	// SigmaLower, SigmaUpper are the final bounds.
	SigmaLower, SigmaUpper float64
	// Target is 1−1/e−ε.
	Target float64
}

// String implements fmt.Stringer.
func (r *CResult) String() string {
	return fmt.Sprintf("k=%d α=%.4f target=%.4f rounds=%d/%d θ=%d+%d certified=%v",
		len(r.Seeds), r.Alpha, r.Target, r.Rounds, r.MaxRounds, r.Theta1, r.Theta2, r.Certified)
}

// Maximize runs OPIM-C (Algorithm 2): conventional influence maximization
// returning a (1−1/e−ε)-approximate seed set with probability ≥ 1−δ.
//
// eps must lie in (0, 1); per the paper's footnote, eps ≥ 1−1/e simply
// makes the guarantee vacuous and the algorithm stops after its first
// round. opts.Delta and opts.UnionBudget are ignored in favour of the
// explicit delta parameter and Algorithm 2's δ/(3·i_max) per-round budget.
func Maximize(sampler *rrset.Sampler, k int, eps, delta float64, opts Options) (*CResult, error) {
	g := sampler.Graph()
	n := g.N()
	opts.K = k
	opts.Delta = delta
	if err := opts.validate(n); err != nil {
		return nil, err
	}
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("core: ε = %v outside (0, 1)", eps)
	}

	// Line 1: θmax by eq. (16), θ0 by eq. (17).
	thetaMax := bound.ThetaMax(n, k, eps, delta)
	theta0 := bound.Theta0(n, k, eps, delta)
	imax := bound.ImaxRounds(thetaMax, theta0)
	perRoundDelta := delta / (3 * float64(imax))

	root := rng.New(opts.Seed)
	base1, base2 := root.Split(1), root.Split(2)
	r1 := rrset.NewCollection(n)
	r2 := rrset.NewCollection(n)

	// Line 2: |R1| = |R2| = θ0.
	size := int64(math.Ceil(theta0))
	if size < 1 {
		size = 1
	}
	target := bound.OneMinusInvE - eps
	start := time.Now()
	scratch := newSnapScratch() // selection/coverage buffers shared by all rounds

	res := &CResult{MaxRounds: imax, Target: target}
	for i := 1; ; i++ {
		if i == imax {
			// Final round: Lemma 6.1's fallback needs |R1| ≥ θmax, but pure
			// doubling from θ0 can land at θmax/2 when θmax/θ0 is not a
			// power of two; top the last round up to the cap.
			if cap := int64(math.Ceil(thetaMax)); size < cap {
				size = cap
			}
		}
		rrset.Generate(r1, sampler, int(size-int64(r1.Count())), base1, opts.Workers)
		rrset.Generate(r2, sampler, int(size-int64(r2.Count())), base2, opts.Workers)

		// Lines 5–7: greedy on R1, bounds with δ1 = δ2 = δ/(3·i_max).
		snap := deriveSnapshotBase(r1, r2, k, 2*perRoundDelta, opts.Variant, opts.Exact, opts.BaseSeeds, scratch)
		mRounds.Inc()
		recordSnapshotGauges(snap)
		obs.Emit(opts.Events, "round", snapshotFields(snap, map[string]any{
			"round":           i,
			"max_rounds":      imax,
			"target":          target,
			"elapsed_seconds": time.Since(start).Seconds(),
		}))
		if opts.OnRound != nil {
			opts.OnRound(i, snap)
		}

		res.Seeds = snap.Seeds
		res.Alpha = snap.Alpha
		res.Rounds = i
		res.Theta1, res.Theta2 = snap.Theta1, snap.Theta2
		res.SigmaLower, res.SigmaUpper = snap.SigmaLower, snap.SigmaUpper
		res.RRGenerated = snap.Theta1 + snap.Theta2

		// Line 8: stop on certification or on the final round (where
		// |R1| ≥ θmax makes Lemma 6.1 guarantee the approximation).
		if snap.Alpha >= target {
			res.Certified = true
			emitMaximizeDone(opts.Events, res, start)
			return res, nil
		}
		if i >= imax {
			emitMaximizeDone(opts.Events, res, start)
			return res, nil
		}
		// Line 9: double both halves.
		size *= 2
	}
}

// emitMaximizeDone emits the final "maximize" summary event of one OPIM-C
// run.
func emitMaximizeDone(sink obs.Sink, res *CResult, start time.Time) {
	obs.Emit(sink, "maximize", map[string]any{
		"k":               len(res.Seeds),
		"alpha":           res.Alpha,
		"target":          res.Target,
		"certified":       res.Certified,
		"rounds":          res.Rounds,
		"max_rounds":      res.MaxRounds,
		"rr_generated":    res.RRGenerated,
		"theta1":          res.Theta1,
		"theta2":          res.Theta2,
		"sigma_lower":     res.SigmaLower,
		"sigma_upper":     res.SigmaUpper,
		"elapsed_seconds": time.Since(start).Seconds(),
	})
}
