package core

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

func eventsTestSampler(t *testing.T) *rrset.Sampler {
	t.Helper()
	g, err := gen.PreferentialAttachment(300, 5, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rrset.NewSampler(g, diffusion.IC)
}

// TestSnapshotEmitsEvents asserts each Snapshot call produces one
// "snapshot" event whose fields match the returned value.
func TestSnapshotEmitsEvents(t *testing.T) {
	sink := &obs.MemorySink{}
	o, err := NewOnline(eventsTestSampler(t), Options{
		K: 3, Delta: 0.1, Variant: Plus, Seed: 7, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(1000)
	s1 := o.Snapshot()
	o.Advance(1000)
	s2 := o.Snapshot()

	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for i, want := range []*Snapshot{s1, s2} {
		ev := evs[i]
		if ev.Event != "snapshot" {
			t.Fatalf("event %d = %q", i, ev.Event)
		}
		if ev.Fields["alpha"] != want.Alpha {
			t.Fatalf("event %d alpha = %v, want %v", i, ev.Fields["alpha"], want.Alpha)
		}
		if ev.Fields["sigma_lower"] != want.SigmaLower || ev.Fields["sigma_upper"] != want.SigmaUpper {
			t.Fatalf("event %d bounds = %v/%v", i, ev.Fields["sigma_lower"], ev.Fields["sigma_upper"])
		}
		if ev.Fields["theta1"] != want.Theta1 || ev.Fields["theta2"] != want.Theta2 {
			t.Fatalf("event %d thetas = %v/%v", i, ev.Fields["theta1"], ev.Fields["theta2"])
		}
		if ev.Fields["lambda1"] != want.CoverageR1 || ev.Fields["lambda2"] != want.CoverageR2 {
			t.Fatalf("event %d coverages = %v/%v", i, ev.Fields["lambda1"], ev.Fields["lambda2"])
		}
		if ev.Fields["variant"] != "OPIM+" || ev.Fields["query"] != i+1 {
			t.Fatalf("event %d meta = %+v", i, ev.Fields)
		}
		if _, ok := ev.Fields["elapsed_seconds"].(float64); !ok {
			t.Fatalf("event %d missing elapsed_seconds", i)
		}
	}
}

// TestSnapshotEventsUpdateGauges asserts the core_last_* gauges track the
// latest snapshot, which is what opimd's /metrics reports.
func TestSnapshotEventsUpdateGauges(t *testing.T) {
	o, err := NewOnline(eventsTestSampler(t), Options{K: 3, Delta: 0.1, Variant: Plus, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(2000)
	snap := o.Snapshot()
	m := obs.Default().Snapshot()
	if got := m.Gauges["core_last_alpha"]; got != snap.Alpha {
		t.Fatalf("core_last_alpha = %v, want %v", got, snap.Alpha)
	}
	if got := m.Gauges["core_last_theta1"]; got != float64(snap.Theta1) {
		t.Fatalf("core_last_theta1 = %v, want %v", got, snap.Theta1)
	}
	if m.Counters["core_snapshots_total"] < 1 {
		t.Fatal("core_snapshots_total not incremented")
	}
}

// TestMaximizeEmitsRoundEvents asserts a Maximize run emits one "round"
// event per doubling round and a final "maximize" summary that matches
// the returned result.
func TestMaximizeEmitsRoundEvents(t *testing.T) {
	sink := &obs.MemorySink{}
	res, err := Maximize(eventsTestSampler(t), 3, 0.3, 0.1, Options{
		Variant: Plus, Seed: 5, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) != res.Rounds+1 {
		t.Fatalf("got %d events for %d rounds", len(evs), res.Rounds)
	}
	for i := 0; i < res.Rounds; i++ {
		if evs[i].Event != "round" || evs[i].Fields["round"] != i+1 {
			t.Fatalf("event %d = %q %v", i, evs[i].Event, evs[i].Fields["round"])
		}
		if evs[i].Fields["max_rounds"] != res.MaxRounds {
			t.Fatalf("event %d max_rounds = %v", i, evs[i].Fields["max_rounds"])
		}
	}
	last := evs[len(evs)-1]
	if last.Event != "maximize" {
		t.Fatalf("final event = %q", last.Event)
	}
	if last.Fields["alpha"] != res.Alpha || last.Fields["certified"] != res.Certified {
		t.Fatalf("maximize event %+v vs result %+v", last.Fields, res)
	}
	if last.Fields["rounds"] != res.Rounds || last.Fields["rr_generated"] != res.RRGenerated {
		t.Fatalf("maximize event %+v vs result %+v", last.Fields, res)
	}
	// The round trajectory's final α must equal the returned α.
	if evs[res.Rounds-1].Fields["alpha"] != res.Alpha {
		t.Fatalf("last round alpha %v != result alpha %v", evs[res.Rounds-1].Fields["alpha"], res.Alpha)
	}
}

// TestEventsDoNotPerturbResults asserts instrumentation is passive: the
// same seed with and without a sink yields identical snapshots.
func TestEventsDoNotPerturbResults(t *testing.T) {
	run := func(sink obs.Sink) *Snapshot {
		o, err := NewOnline(eventsTestSampler(t), Options{K: 3, Delta: 0.1, Variant: Plus, Seed: 13, Events: sink})
		if err != nil {
			t.Fatal(err)
		}
		o.Advance(1500)
		return o.Snapshot()
	}
	a, b := run(nil), run(&obs.MemorySink{})
	if a.Alpha != b.Alpha || a.SigmaLower != b.SigmaLower || a.SigmaUpper != b.SigmaUpper {
		t.Fatalf("sink perturbed results: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed sets differ: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}
