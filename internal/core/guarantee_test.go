package core

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/exact"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// TestOPIMCGuaranteeStatistical verifies Algorithm 2's headline claim on an
// instance small enough for the EXACT oracle: across many independent runs
// with failure budget δ, the fraction whose returned seed set falls below
// (1−1/e−ε)·σ(S°) must stay within δ. Spreads are computed in closed form
// (live-edge enumeration), so there is no evaluation noise at all.
func TestOPIMCGuaranteeStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// A 7-node, 9-edge instance with asymmetric influence structure.
	b := graph.NewBuilder(7, 9)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, P: 0.7}, {From: 0, To: 2, P: 0.4}, {From: 1, To: 3, P: 0.5},
		{From: 2, To: 3, P: 0.3}, {From: 3, To: 4, P: 0.8}, {From: 5, To: 4, P: 0.2},
		{From: 5, To: 6, P: 0.9}, {From: 6, To: 0, P: 0.1}, {From: 2, To: 6, P: 0.2},
	} {
		b.AddEdge(e.From, e.To, e.P)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const (
		k      = 2
		eps    = 0.2
		delta  = 0.25
		trials = 120
	)
	_, opt, err := exact.OptimalSeedSet(g, diffusion.IC, k)
	if err != nil {
		t.Fatal(err)
	}
	target := (1 - 1/2.718281828459045) - eps

	sampler := rrset.NewSampler(g, diffusion.IC)
	violations := 0
	for trial := 0; trial < trials; trial++ {
		res, err := Maximize(sampler, k, eps, delta, Options{Variant: Plus, Seed: uint64(5000 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := exact.Spread(g, diffusion.IC, res.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		if got < target*opt-1e-12 {
			violations++
		}
	}
	rate := float64(violations) / trials
	if rate > delta {
		t.Fatalf("OPIM-C guarantee violated in %.1f%% of runs (budget δ = %.0f%%)", 100*rate, 100*delta)
	}
	t.Logf("violation rate %.2f%% (budget %.0f%%), exact OPT = %.4f", 100*rate, 100*delta, opt)
}

// TestOPIMCAllVariantsMeetGuaranteeExact spot-checks all three variants and
// the exact-bound option against the closed-form optimum on one instance.
func TestOPIMCAllVariantsMeetGuaranteeExact(t *testing.T) {
	b := graph.NewBuilder(6, 7)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, P: 0.6}, {From: 1, To: 2, P: 0.5}, {From: 3, To: 2, P: 0.4},
		{From: 3, To: 4, P: 0.7}, {From: 4, To: 5, P: 0.5}, {From: 0, To: 5, P: 0.2},
		{From: 2, To: 4, P: 0.1},
	} {
		b.AddEdge(e.From, e.To, e.P)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const (
		k     = 2
		eps   = 0.15
		delta = 0.05
	)
	_, opt, err := exact.OptimalSeedSet(g, diffusion.IC, k)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rrset.NewSampler(g, diffusion.IC)
	for _, opts := range []Options{
		{Variant: Vanilla, Seed: 11},
		{Variant: Plus, Seed: 11},
		{Variant: Prime, Seed: 11},
		{Variant: Plus, Seed: 11, Exact: true},
	} {
		res, err := Maximize(sampler, k, eps, delta, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exact.Spread(g, diffusion.IC, res.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		if got < res.Target*opt-1e-12 {
			t.Fatalf("%v (exact=%v): spread %.4f below target %.4f·%.4f", opts.Variant, opts.Exact, got, res.Target, opt)
		}
	}
}
