package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/rrset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t, 500, 40)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 7, Delta: 0.05, Variant: Prime, Seed: 41, Workers: 2, UnionBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(1500)
	o.Snapshot() // consume one union-budget query

	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumRR() != o.NumRR() || restored.EdgesExamined() != o.EdgesExamined() {
		t.Fatalf("restored counts differ: rr %d/%d γ %d/%d",
			restored.NumRR(), o.NumRR(), restored.EdgesExamined(), o.EdgesExamined())
	}
	a, b := o.Snapshot(), restored.Snapshot()
	if a.Alpha != b.Alpha || a.DeltaSpent != b.DeltaSpent {
		t.Fatalf("snapshots differ after restore: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	// save → load → Advance must be byte-identical to never pausing.
	g := testGraph(t, 400, 42)
	s := rrset.NewSampler(g, diffusion.LT)

	uninterrupted, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted.Advance(3000)
	want := uninterrupted.Snapshot()

	paused, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	paused.Advance(1000)
	var buf bytes.Buffer
	if err := SaveSession(&buf, paused); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadSession(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Advance(2000)
	got := resumed.Snapshot()

	if got.Alpha != want.Alpha || got.SigmaLower != want.SigmaLower || got.SigmaUpper != want.SigmaUpper {
		t.Fatalf("resumed session diverged: %v vs %v", got, want)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestLoadSessionWrongGraph(t *testing.T) {
	g := testGraph(t, 300, 44)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(100)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	other := rrset.NewSampler(testGraph(t, 301, 46), diffusion.IC)
	if _, err := LoadSession(&buf, other); !errors.Is(err, ErrBadSession) {
		t.Fatalf("wrong-graph load error = %v", err)
	}
}

func TestLoadSessionCorrupt(t *testing.T) {
	g := testGraph(t, 200, 47)
	s := rrset.NewSampler(g, diffusion.IC)
	if _, err := LoadSession(strings.NewReader("garbage data here"), s); !errors.Is(err, ErrBadSession) {
		t.Fatalf("garbage load error = %v", err)
	}

	o, _ := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 48})
	o.Advance(200)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 20, len(full) / 2, len(full) - 3} {
		if _, err := LoadSession(bytes.NewReader(full[:cut]), s); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCollectionSerializationRoundTrip(t *testing.T) {
	g := testGraph(t, 300, 49)
	s := rrset.NewSampler(g, diffusion.IC)
	o, _ := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 50})
	o.Advance(500)
	var buf bytes.Buffer
	if err := rrset.WriteCollection(&buf, o.r1); err != nil {
		t.Fatal(err)
	}
	c, err := rrset.ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != o.r1.Count() || c.TotalSize() != o.r1.TotalSize() || c.EdgesExamined() != o.r1.EdgesExamined() {
		t.Fatal("collection round trip changed shape")
	}
	for i := int32(0); i < int32(c.Count()); i++ {
		a, b := c.Set(i), o.r1.Set(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
	// Index rebuilt correctly: degrees match.
	for v := int32(0); v < c.N(); v++ {
		if c.Degree(v) != o.r1.Degree(v) {
			t.Fatalf("degree(%d) differs after reload", v)
		}
	}
}
