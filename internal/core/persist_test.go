package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/rrset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t, 500, 40)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 7, Delta: 0.05, Variant: Prime, Seed: 41, Workers: 2, UnionBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(1500)
	o.Snapshot() // consume one union-budget query

	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumRR() != o.NumRR() || restored.EdgesExamined() != o.EdgesExamined() {
		t.Fatalf("restored counts differ: rr %d/%d γ %d/%d",
			restored.NumRR(), o.NumRR(), restored.EdgesExamined(), o.EdgesExamined())
	}
	a, b := o.Snapshot(), restored.Snapshot()
	if a.Alpha != b.Alpha || a.DeltaSpent != b.DeltaSpent {
		t.Fatalf("snapshots differ after restore: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	// save → load → Advance must be byte-identical to never pausing.
	g := testGraph(t, 400, 42)
	s := rrset.NewSampler(g, diffusion.LT)

	uninterrupted, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted.Advance(3000)
	want := uninterrupted.Snapshot()

	paused, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	paused.Advance(1000)
	var buf bytes.Buffer
	if err := SaveSession(&buf, paused); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadSession(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Advance(2000)
	got := resumed.Snapshot()

	if got.Alpha != want.Alpha || got.SigmaLower != want.SigmaLower || got.SigmaUpper != want.SigmaUpper {
		t.Fatalf("resumed session diverged: %v vs %v", got, want)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

// TestSaveLoadRoundTripBaseSeedsExact is the OPIMS2 regression: BaseSeeds
// and Exact must survive persistence. Under OPIMS1 a resumed augmentation
// session silently became a plain session (non-residual σˡ/σᵘ/α) and an
// Exact session fell back to martingale bounds.
func TestSaveLoadRoundTripBaseSeedsExact(t *testing.T) {
	g := testGraph(t, 400, 51)
	s := rrset.NewSampler(g, diffusion.IC)
	opts := Options{
		K: 4, Delta: 0.05, Variant: Plus, Seed: 52,
		UnionBudget: true, Exact: true, BaseSeeds: []int32{7, 19, 3},
	}
	o, err := NewOnline(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(1200)

	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Options()
	if !got.Exact {
		t.Fatal("Exact lost through save/load")
	}
	if len(got.BaseSeeds) != 3 || got.BaseSeeds[0] != 7 || got.BaseSeeds[1] != 19 || got.BaseSeeds[2] != 3 {
		t.Fatalf("BaseSeeds lost through save/load: %v", got.BaseSeeds)
	}

	// Resume must continue the same stream AND the same residual/exact
	// derivation: snapshots after equal growth are identical.
	uninterrupted, err := NewOnline(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted.Advance(2000)
	want := uninterrupted.Snapshot()
	restored.Advance(800)
	snap := restored.Snapshot()
	if snap.Alpha != want.Alpha || snap.SigmaLower != want.SigmaLower ||
		snap.SigmaUpper != want.SigmaUpper || snap.DeltaSpent != want.DeltaSpent {
		t.Fatalf("resumed OPIMS2 session diverged: %v vs %v", snap, want)
	}
	for i := range want.Seeds {
		if snap.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
	// And the serialized state itself is byte-identical.
	var a, b bytes.Buffer
	if err := SaveSession(&a, restored); err != nil {
		t.Fatal(err)
	}
	if err := SaveSession(&b, uninterrupted); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed session state is not byte-identical to the uninterrupted run")
	}
}

// saveSessionV1 writes the legacy OPIMS1 format (no Exact, no BaseSeeds),
// byte-for-byte what the previous SaveSession produced — the fixture for
// backward-compatibility reads.
func saveSessionV1(t *testing.T, o *Online) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("OPIMS1\n")
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(o.sampler.Graph().N()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(o.opts.K))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(o.opts.Delta))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(o.opts.Variant))
	binary.LittleEndian.PutUint64(hdr[24:32], o.opts.Seed)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(o.opts.Workers))
	if o.opts.UnionBudget {
		hdr[36] = 1
	}
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(o.queries))
	buf.Write(hdr[:])
	if err := rrset.WriteCollection(&buf, o.r1); err != nil {
		t.Fatal(err)
	}
	if err := rrset.WriteCollection(&buf, o.r2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadSessionReadsOPIMS1 proves checkpoints written before the format
// bump still resume, with the fields OPIMS1 could not carry at their
// legacy values.
func TestLoadSessionReadsOPIMS1(t *testing.T) {
	g := testGraph(t, 300, 53)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 54, UnionBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(800)
	o.Snapshot()

	restored, err := LoadSession(bytes.NewReader(saveSessionV1(t, o)), s)
	if err != nil {
		t.Fatalf("OPIMS1 no longer loads: %v", err)
	}
	got := restored.Options()
	if got.Exact || got.BaseSeeds != nil {
		t.Fatalf("OPIMS1 load invented Exact=%v BaseSeeds=%v", got.Exact, got.BaseSeeds)
	}
	if restored.Queries() != 1 || restored.NumRR() != 800 {
		t.Fatalf("OPIMS1 load: queries=%d num_rr=%d", restored.Queries(), restored.NumRR())
	}
	a, b := o.Snapshot(), restored.Snapshot()
	if a.Alpha != b.Alpha || a.DeltaSpent != b.DeltaSpent {
		t.Fatalf("snapshots differ after OPIMS1 restore: %v vs %v", a, b)
	}
}

func TestLoadSessionWrongGraph(t *testing.T) {
	g := testGraph(t, 300, 44)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(100)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	other := rrset.NewSampler(testGraph(t, 301, 46), diffusion.IC)
	if _, err := LoadSession(&buf, other); !errors.Is(err, ErrBadSession) {
		t.Fatalf("wrong-graph load error = %v", err)
	}
}

func TestLoadSessionCorrupt(t *testing.T) {
	g := testGraph(t, 200, 47)
	s := rrset.NewSampler(g, diffusion.IC)
	if _, err := LoadSession(strings.NewReader("garbage data here"), s); !errors.Is(err, ErrBadSession) {
		t.Fatalf("garbage load error = %v", err)
	}

	o, _ := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 48})
	o.Advance(200)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 20, len(full) / 2, len(full) - 3} {
		if _, err := LoadSession(bytes.NewReader(full[:cut]), s); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCollectionSerializationRoundTrip(t *testing.T) {
	g := testGraph(t, 300, 49)
	s := rrset.NewSampler(g, diffusion.IC)
	o, _ := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 50})
	o.Advance(500)
	var buf bytes.Buffer
	if err := rrset.WriteCollection(&buf, o.r1); err != nil {
		t.Fatal(err)
	}
	c, err := rrset.ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != o.r1.Count() || c.TotalSize() != o.r1.TotalSize() || c.EdgesExamined() != o.r1.EdgesExamined() {
		t.Fatal("collection round trip changed shape")
	}
	for i := int32(0); i < int32(c.Count()); i++ {
		a, b := c.Set(i), o.r1.Set(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
	// Index rebuilt correctly: degrees match.
	for v := int32(0); v < c.N(); v++ {
		if c.Degree(v) != o.r1.Degree(v) {
			t.Fatalf("degree(%d) differs after reload", v)
		}
	}
}
