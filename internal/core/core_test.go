package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// testGraph returns a mid-sized heavy-tailed WC-weighted graph.
func testGraph(t testing.TB, n int32, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 8, 0.15, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptionsValidation(t *testing.T) {
	g := testGraph(t, 100, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	bad := []Options{
		{K: 0, Delta: 0.1},
		{K: 101, Delta: 0.1},
		{K: 5, Delta: 0},
		{K: 5, Delta: 1},
		{K: 5, Delta: 0.1, Variant: Variant(9)},
	}
	for i, o := range bad {
		if _, err := NewOnline(s, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
	if _, err := NewOnline(s, Options{K: 5, Delta: 0.1}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestOptionsValidateBaseSeeds table-tests the base-seed rejections that
// used to slip through: duplicate members and K + |B| > n (selection picks
// K nodes disjoint from the base, so the graph cannot satisfy it).
func TestOptionsValidateBaseSeeds(t *testing.T) {
	g := testGraph(t, 100, 1) // n = 100
	s := rrset.NewSampler(g, diffusion.IC)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{
			name: "duplicate base seed",
			opts: Options{K: 5, Delta: 0.1, Variant: Plus, BaseSeeds: []int32{3, 7, 3}},
			want: "core: duplicate base seed 3",
		},
		{
			name: "k plus base exceeds n",
			opts: Options{K: 99, Delta: 0.1, Variant: Plus, BaseSeeds: []int32{0, 1, 2}},
			want: "core: k + len(BaseSeeds) = 102 exceeds n = 100",
		},
		{
			name: "out of range base seed",
			opts: Options{K: 5, Delta: 0.1, Variant: Plus, BaseSeeds: []int32{100}},
			want: "core: base seed 100 outside [0, n=100)",
		},
		{
			name: "prime with base seeds",
			opts: Options{K: 5, Delta: 0.1, Variant: Prime, BaseSeeds: []int32{1}},
			want: "core: the Prime variant does not support BaseSeeds; use Plus or Vanilla",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewOnline(s, c.opts)
			if err == nil {
				t.Fatalf("options accepted: %+v", c.opts)
			}
			if err.Error() != c.want {
				t.Fatalf("error = %q, want %q", err, c.want)
			}
		})
	}
	// The boundary case K + |B| = n stays valid.
	if _, err := NewOnline(s, Options{K: 97, Delta: 0.1, Variant: Plus, BaseSeeds: []int32{0, 1, 2}}); err != nil {
		t.Fatalf("K+|B| = n rejected: %v", err)
	}
}

func TestOnlineAdvanceSplitsEvenly(t *testing.T) {
	g := testGraph(t, 200, 2)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(101)
	if o.NumRR() != 101 {
		t.Fatalf("NumRR = %d", o.NumRR())
	}
	snap := o.Snapshot()
	if snap.Theta1 != 51 || snap.Theta2 != 50 {
		t.Fatalf("θ1=%d θ2=%d, want 51/50", snap.Theta1, snap.Theta2)
	}
	o.AdvanceTo(1000)
	if o.NumRR() != 1000 {
		t.Fatalf("AdvanceTo: NumRR = %d", o.NumRR())
	}
	o.AdvanceTo(500) // no-op backwards
	if o.NumRR() != 1000 {
		t.Fatal("AdvanceTo shrank the session")
	}
	if o.EdgesExamined() <= 0 {
		t.Fatal("EdgesExamined not tracked")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := testGraph(t, 500, 3)
	s := rrset.NewSampler(g, diffusion.LT)
	mk := func() *Snapshot {
		o, err := NewOnline(s, Options{K: 10, Delta: 0.01, Variant: Plus, Seed: 77, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		o.Advance(2000)
		return o.Snapshot()
	}
	a, b := mk(), mk()
	if a.Alpha != b.Alpha || a.SigmaLower != b.SigmaLower || a.SigmaUpper != b.SigmaUpper {
		t.Fatalf("snapshots differ: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestAlphaImprovesWithSamples(t *testing.T) {
	g := testGraph(t, 2000, 4)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 20, Delta: 0.01, Variant: Plus, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(500)
	first := o.Snapshot().Alpha
	o.AdvanceTo(32000)
	last := o.Snapshot().Alpha
	if last <= first {
		t.Fatalf("α did not improve: %v → %v", first, last)
	}
	if last <= 0.5 {
		t.Fatalf("α = %v after 32k RR sets, expected a tight guarantee", last)
	}
	if last > 1 {
		t.Fatalf("α = %v > 1", last)
	}
}

func TestPlusNeverWorseThanVanilla(t *testing.T) {
	// Lemma 5.2: Λ1ᵘ(S°) ≤ Λ1(S*)/(1−1/e), so with identical collections
	// OPIM⁺'s α is ≥ OPIM⁰'s.
	g := testGraph(t, 1000, 6)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := rrset.NewSampler(g, model)
		run := func(v Variant) float64 {
			o, err := NewOnline(s, Options{K: 10, Delta: 0.01, Variant: v, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			o.Advance(4000)
			return o.Snapshot().Alpha
		}
		van, plus := run(Vanilla), run(Plus)
		if plus < van {
			t.Fatalf("%v: OPIM⁺ α=%v below OPIM⁰ α=%v", model, plus, van)
		}
	}
}

func TestSigmaLowerBelowTrueSpread(t *testing.T) {
	// With probability ≥ 1−δ2, σˡ(S*) ≤ σ(S*); verify against Monte-Carlo.
	g := testGraph(t, 800, 8)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 5, Delta: 0.001, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(8000)
	snap := o.Snapshot()
	mc := diffusion.EstimateSpread(g, diffusion.IC, snap.Seeds, 20000, 10, 0)
	if snap.SigmaLower > mc.Spread+4*mc.StdErr {
		t.Fatalf("σˡ = %v above true spread %v", snap.SigmaLower, mc)
	}
	// And σᵘ must upper-bound σ(S*) too (σ(S*) ≤ σ(S°) ≤ σᵘ).
	if snap.SigmaUpper < mc.Spread-4*mc.StdErr {
		t.Fatalf("σᵘ = %v below achieved spread %v", snap.SigmaUpper, mc)
	}
}

func TestStarPicksHub(t *testing.T) {
	g, err := gen.Star(500, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 1, Delta: 0.01, Variant: Plus, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(20000)
	snap := o.Snapshot()
	if snap.Seeds[0] != 0 {
		t.Fatalf("seed = %d, want hub 0", snap.Seeds[0])
	}
	// True σ(S°) = 1 + 499·0.2 = 100.8; bounds must bracket it.
	if snap.SigmaLower > 100.8*1.05 {
		t.Fatalf("σˡ = %v above σ(S°)", snap.SigmaLower)
	}
	if snap.SigmaUpper < 100.8*0.95 {
		t.Fatalf("σᵘ = %v below σ(S°)", snap.SigmaUpper)
	}
}

func TestUnionBudgetSchedule(t *testing.T) {
	g := testGraph(t, 300, 12)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 5, Delta: 0.08, UnionBudget: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(1000)
	s1 := o.Snapshot()
	s2 := o.Snapshot()
	if math.Abs(s1.DeltaSpent-0.04) > 1e-12 {
		t.Fatalf("first query spent %v, want δ/2", s1.DeltaSpent)
	}
	if math.Abs(s2.DeltaSpent-0.02) > 1e-12 {
		t.Fatalf("second query spent %v, want δ/4", s2.DeltaSpent)
	}
	// Tighter budget ⇒ weaker or equal guarantee on the same data.
	if s2.Alpha > s1.Alpha {
		t.Fatalf("α grew despite shrinking budget: %v → %v", s1.Alpha, s2.Alpha)
	}
	// Without UnionBudget each query spends δ.
	o2, _ := NewOnline(s, Options{K: 5, Delta: 0.08, Seed: 13})
	o2.Advance(1000)
	if got := o2.Snapshot().DeltaSpent; got != 0.08 {
		t.Fatalf("plain session spent %v, want δ", got)
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{Vanilla: "OPIM0", Plus: "OPIM+", Prime: "OPIM'", Variant(7): "Variant(7)"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	g := testGraph(t, 100, 14)
	s := rrset.NewSampler(g, diffusion.IC)
	o, _ := NewOnline(s, Options{K: 2, Delta: 0.1})
	o.Advance(100)
	if str := o.Snapshot().String(); str == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestMaximizeBasic(t *testing.T) {
	g := testGraph(t, 1000, 15)
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Maximize(s, 10, 0.3, 0.05, Options{Variant: Plus, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("returned %d seeds", len(res.Seeds))
	}
	if res.Rounds < 1 || res.Rounds > res.MaxRounds {
		t.Fatalf("rounds = %d / %d", res.Rounds, res.MaxRounds)
	}
	if res.Certified && res.Alpha < res.Target {
		t.Fatalf("certified but α=%v < target=%v", res.Alpha, res.Target)
	}
	if res.RRGenerated != res.Theta1+res.Theta2 {
		t.Fatal("RRGenerated inconsistent")
	}
}

func TestMaximizeQualityVsGreedyOracle(t *testing.T) {
	// On a star, OPIM-C must pick the hub and its spread equals the optimum.
	g, err := gen.Star(300, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Maximize(s, 1, 0.2, 0.05, Options{Variant: Plus, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("OPIM-C picked %d, want hub", res.Seeds[0])
	}
}

func TestMaximizeSpreadNearOptimal(t *testing.T) {
	// The certified guarantee must hold against the best spread we can find.
	g := testGraph(t, 1500, 18)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := rrset.NewSampler(g, model)
		res, err := Maximize(s, 20, 0.1, 0.01, Options{Variant: Plus, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		got := diffusion.EstimateSpread(g, model, res.Seeds, 20000, 20, 0)
		// σ(S*) ≥ α·σ(S°) ≥ α·σᵘ⁻¹… we can't know σ(S°), but σᵘ is a valid
		// upper bound with prob 1−δ, so check σ(S*) ≥ Target·true-optimum
		// proxy: compare against the spread of OPIM-C's own upper bound.
		if got.Spread < res.Target*res.SigmaLower {
			t.Fatalf("%v: spread %v below target×σˡ", model, got)
		}
		if got.Spread+4*got.StdErr < res.SigmaLower {
			t.Fatalf("%v: measured spread %v below certified lower bound %v", model, got, res.SigmaLower)
		}
	}
}

func TestMaximizePlusNoMoreRRThanVanilla(t *testing.T) {
	// The tightened bound can only certify earlier (Lemma 5.2), so OPIM-C⁺
	// never generates more RR sets than OPIM-C⁰ under identical streams.
	g := testGraph(t, 1000, 21)
	s := rrset.NewSampler(g, diffusion.IC)
	van, err := Maximize(s, 10, 0.1, 0.05, Options{Variant: Vanilla, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := Maximize(s, 10, 0.1, 0.05, Options{Variant: Plus, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if plus.RRGenerated > van.RRGenerated {
		t.Fatalf("OPIM-C⁺ used %d RR sets, OPIM-C⁰ used %d", plus.RRGenerated, van.RRGenerated)
	}
}

func TestMaximizeErrors(t *testing.T) {
	g := testGraph(t, 100, 23)
	s := rrset.NewSampler(g, diffusion.IC)
	if _, err := Maximize(s, 5, 0, 0.1, Options{}); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := Maximize(s, 5, 1, 0.1, Options{}); err == nil {
		t.Error("ε=1 accepted")
	}
	if _, err := Maximize(s, 0, 0.1, 0.1, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Maximize(s, 5, 0.1, 0, Options{}); err == nil {
		t.Error("δ=0 accepted")
	}
}

func TestMaximizeDeterministic(t *testing.T) {
	g := testGraph(t, 600, 24)
	s := rrset.NewSampler(g, diffusion.LT)
	a, err := Maximize(s, 8, 0.2, 0.05, Options{Variant: Plus, Seed: 25, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Maximize(s, 8, 0.2, 0.05, Options{Variant: Plus, Seed: 25, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha != b.Alpha || a.RRGenerated != b.RRGenerated {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestMaximizeCertifiedAboveTarget(t *testing.T) {
	g := testGraph(t, 800, 26)
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Maximize(s, 10, 0.4, 0.05, Options{Variant: Plus, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("loose ε=0.4 run not certified: %v", res)
	}
	if res.Alpha < bound.OneMinusInvE-0.4 {
		t.Fatalf("α=%v below target", res.Alpha)
	}
}

func TestCResultString(t *testing.T) {
	r := &CResult{Seeds: []int32{1, 2}, Alpha: 0.5, Target: 0.53, Rounds: 2, MaxRounds: 9}
	if r.String() == "" {
		t.Fatal("empty CResult string")
	}
}

func TestMaximizeOnRoundCallback(t *testing.T) {
	g := testGraph(t, 600, 30)
	s := rrset.NewSampler(g, diffusion.IC)
	var rounds []int
	var alphas []float64
	res, err := Maximize(s, 8, 0.2, 0.05, Options{
		Variant: Plus,
		Seed:    31,
		OnRound: func(round int, snap *Snapshot) {
			rounds = append(rounds, round)
			alphas = append(alphas, snap.Alpha)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != res.Rounds {
		t.Fatalf("callback fired %d times, Rounds = %d", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("round sequence %v", rounds)
		}
	}
	if alphas[len(alphas)-1] != res.Alpha {
		t.Fatalf("last callback α %v != result α %v", alphas[len(alphas)-1], res.Alpha)
	}
}

func TestExactBoundsOption(t *testing.T) {
	g := testGraph(t, 800, 32)
	s := rrset.NewSampler(g, diffusion.IC)
	run := func(exact bool) *Snapshot {
		o, err := NewOnline(s, Options{K: 10, Delta: 0.01, Variant: Plus, Seed: 33, Exact: exact})
		if err != nil {
			t.Fatal(err)
		}
		o.Advance(4000)
		return o.Snapshot()
	}
	martingale := run(false)
	exact := run(true)
	// Identical collections ⇒ identical seeds; only the bounds differ.
	for i := range martingale.Seeds {
		if martingale.Seeds[i] != exact.Seeds[i] {
			t.Fatalf("seed %d differs between bound methods", i)
		}
	}
	if exact.Alpha <= 0 || exact.Alpha > 1 {
		t.Fatalf("exact α = %v", exact.Alpha)
	}
	// The Clopper–Pearson interval is typically tighter; at minimum the two
	// methods must agree within a modest factor.
	if exact.Alpha < 0.7*martingale.Alpha {
		t.Fatalf("exact α=%v far below martingale α=%v", exact.Alpha, martingale.Alpha)
	}
	// Both lower bounds stay below the point estimate; both uppers above it.
	point2 := float64(g.N()) * float64(exact.CoverageR2) / float64(exact.Theta2)
	if exact.SigmaLower > point2 {
		t.Fatalf("exact σˡ=%v above point estimate %v", exact.SigmaLower, point2)
	}
	if exact.SigmaUpper < exact.SigmaLower {
		t.Fatalf("exact bounds inverted: %v > %v", exact.SigmaLower, exact.SigmaUpper)
	}
}

func TestExactBoundsValidity(t *testing.T) {
	// Star with known optimum: the exact bounds must bracket σ(S°) too.
	g, err := gen.Star(400, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	trueOpt := 1 + 399*0.25
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 1, Delta: 0.01, Variant: Plus, Seed: 34, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(20000)
	snap := o.Snapshot()
	if snap.SigmaLower > trueOpt*1.03 {
		t.Fatalf("exact σˡ=%v above σ(S°)=%v", snap.SigmaLower, trueOpt)
	}
	if snap.SigmaUpper < trueOpt*0.97 {
		t.Fatalf("exact σᵘ=%v below σ(S°)=%v", snap.SigmaUpper, trueOpt)
	}
}

func TestMaximizeExactCertifiesNoLater(t *testing.T) {
	// A tighter bound can only certify at the same round or earlier under
	// identical sample streams.
	g := testGraph(t, 800, 35)
	s := rrset.NewSampler(g, diffusion.IC)
	plain, err := Maximize(s, 10, 0.15, 0.05, Options{Variant: Plus, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Maximize(s, 10, 0.15, 0.05, Options{Variant: Plus, Seed: 36, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.RRGenerated > plain.RRGenerated {
		t.Fatalf("exact bounds needed MORE samples: %d vs %d", exact.RRGenerated, plain.RRGenerated)
	}
}

func TestAdvanceFor(t *testing.T) {
	g := testGraph(t, 500, 60)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 5, Delta: 0.1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	generated := o.AdvanceFor(150 * time.Millisecond)
	elapsed := time.Since(start)
	if generated <= 0 {
		t.Fatal("AdvanceFor generated nothing")
	}
	if generated != o.NumRR() {
		t.Fatalf("returned %d but NumRR = %d", generated, o.NumRR())
	}
	if elapsed < 150*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("overshot deadline grossly: %v", elapsed)
	}
	// The snapshot path still works after time-based advancing.
	if snap := o.Snapshot(); len(snap.Seeds) != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestMaximizeFinalRoundReachesThetaMax(t *testing.T) {
	// When no round certifies, the final round must hold |R1| ≥ θmax so the
	// Lemma 6.1 fallback applies. Force exhaustion with a tiny ε on a tiny
	// graph (α can never reach 1−1/e−ε because σᵘ's additive terms dominate
	// at small n... use a graph with weak structure instead).
	g := testGraph(t, 60, 70)
	s := rrset.NewSampler(g, diffusion.IC)
	eps, delta := 0.05, 0.1
	res, err := Maximize(s, 3, eps, delta, Options{Variant: Vanilla, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Skip("run certified early; fallback path not reached")
	}
	thetaMax := bound.ThetaMax(g.N(), 3, eps, delta)
	if float64(res.Theta1) < thetaMax {
		t.Fatalf("final round θ1 = %d below θmax = %.0f", res.Theta1, thetaMax)
	}
}

func TestOnlineAugmentation(t *testing.T) {
	g := testGraph(t, 1000, 80)
	s := rrset.NewSampler(g, diffusion.IC)

	// First campaign: pick 5 seeds the normal way.
	first, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	first.Advance(8000)
	base := first.Snapshot().Seeds

	// Second campaign: augment with 5 more.
	aug, err := NewOnline(s, Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 82, BaseSeeds: base})
	if err != nil {
		t.Fatal(err)
	}
	aug.Advance(8000)
	snap := aug.Snapshot()
	if len(snap.Seeds) != 5 {
		t.Fatalf("augmentation returned %d seeds", len(snap.Seeds))
	}
	for _, v := range snap.Seeds {
		for _, b := range base {
			if v == b {
				t.Fatalf("augmentation reselected base seed %d", v)
			}
		}
	}
	if snap.Alpha <= 0 || snap.Alpha > 1 {
		t.Fatalf("residual α = %v", snap.Alpha)
	}
	// The certified residual lower bound must be consistent with measured
	// residual spread.
	both := append(append([]int32{}, base...), snap.Seeds...)
	withAug := diffusion.EstimateSpread(g, diffusion.IC, both, 20000, 83, 0)
	baseOnly := diffusion.EstimateSpread(g, diffusion.IC, base, 20000, 83, 0)
	residual := withAug.Spread - baseOnly.Spread
	if snap.SigmaLower > residual+4*(withAug.StdErr+baseOnly.StdErr)+1 {
		t.Fatalf("residual σˡ = %v above measured residual %v", snap.SigmaLower, residual)
	}
}

func TestOptionsBaseSeedsValidation(t *testing.T) {
	g := testGraph(t, 100, 84)
	s := rrset.NewSampler(g, diffusion.IC)
	if _, err := NewOnline(s, Options{K: 3, Delta: 0.1, BaseSeeds: []int32{200}}); err == nil {
		t.Fatal("out-of-range base seed accepted")
	}
	if _, err := NewOnline(s, Options{K: 3, Delta: 0.1, Variant: Prime, BaseSeeds: []int32{1}}); err == nil {
		t.Fatal("Prime with BaseSeeds accepted")
	}
}

func TestMaximizeWithBaseSeeds(t *testing.T) {
	g := testGraph(t, 800, 85)
	s := rrset.NewSampler(g, diffusion.IC)
	base := []int32{0, 1}
	res, err := Maximize(s, 5, 0.3, 0.05, Options{Variant: Plus, Seed: 86, BaseSeeds: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	for _, v := range res.Seeds {
		if v == 0 || v == 1 {
			t.Fatalf("base reselected: %v", res.Seeds)
		}
	}
}

// countingGenerator wraps local generation, recording batch sizes — proof
// that Advance routes every RR set through the configured Generator.
type countingGenerator struct {
	calls  int
	rrSets int
}

func (g *countingGenerator) Generate(c *rrset.Collection, s *rrset.Sampler, count int, base *rng.Source, workers int) {
	g.calls++
	g.rrSets += count
	rrset.Generate(c, s, count, base, workers)
}

func TestGeneratorThreadedThroughAdvance(t *testing.T) {
	g := testGraph(t, 200, 11)
	s := rrset.NewSampler(g, diffusion.IC)
	cg := &countingGenerator{}
	o, err := NewOnline(s, Options{K: 2, Delta: 0.1, Seed: 5, Generator: cg})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(101)
	if cg.calls != 2 || cg.rrSets != 101 {
		t.Fatalf("generator saw calls=%d rrSets=%d, want 2/101", cg.calls, cg.rrSets)
	}
	// A conforming generator is invisible in the results: same seeds and
	// bound as a purely local session.
	local, err := NewOnline(s, Options{K: 2, Delta: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	local.Advance(101)
	a, b := o.Snapshot(), local.Snapshot()
	if fmt.Sprint(a.Seeds) != fmt.Sprint(b.Seeds) || a.Alpha != b.Alpha {
		t.Fatalf("generator changed results: %v/%v vs %v/%v", a.Seeds, a.Alpha, b.Seeds, b.Alpha)
	}
	// SetGenerator(nil) resets to local sampling mid-session without
	// perturbing the stream.
	o.SetGenerator(nil)
	o.Advance(50)
	local.Advance(50)
	if o.NumRR() != local.NumRR() || o.EdgesExamined() != local.EdgesExamined() {
		t.Fatal("switching generators mid-session changed the stream")
	}
}
