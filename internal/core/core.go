// Package core implements the paper's contribution: online processing of
// influence maximization (OPIM, §§4–5) and its extension to conventional
// influence maximization (OPIM-C, Algorithm 2 in §6).
//
// The Online type is the streaming engine: it continuously generates random
// RR sets, split evenly between two disjoint collections — R1, the
// "nominators" used to select the seed set with Algorithm 1, and R2, the
// "judges" used to lower-bound the selected set's spread. At any pause
// point Snapshot derives a seed set S* and an instance-specific
// approximation guarantee α = σˡ(S*)/σᵘ(S°) that holds with probability at
// least 1−δ.
//
// Three guarantee variants mirror the paper's OPIM⁰ / OPIM⁺ / OPIM′:
//
//	Vanilla — σᵘ from eq. (8) via Λ1(S*)/(1−1/e)
//	Plus    — σᵘ from eq. (13) via the tightened Λ1ᵘ(S°) of eq. (10)
//	Prime   — σᵘ from eq. (15) via the Leskovec-style Λ1⋄(S°)
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/maxcover"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// Guarantee-derivation metrics (obs.Default(), see docs/OBSERVABILITY.md).
// The core_last_* gauges always hold the most recent snapshot's paper
// quantities, which is what opimd's GET /metrics reports without spending
// any δ budget.
var (
	mSnapshots  = obs.Default().Counter("core_snapshots_total")
	mRounds     = obs.Default().Counter("core_rounds_total")
	mLastAlpha  = obs.Default().Gauge("core_last_alpha")
	mLastSigmaL = obs.Default().Gauge("core_last_sigma_lower")
	mLastSigmaU = obs.Default().Gauge("core_last_sigma_upper")
	mLastTheta1 = obs.Default().Gauge("core_last_theta1")
	mLastTheta2 = obs.Default().Gauge("core_last_theta2")
)

// Variant selects how the upper bound σᵘ(S°) is derived.
type Variant int

const (
	// Vanilla is OPIM⁰: σᵘ from Λ1(S*)/(1−1/e), eq. (8).
	Vanilla Variant = iota
	// Plus is OPIM⁺: σᵘ from Λ1ᵘ(S°) (eq. 10), the paper's recommended
	// variant, never worse than Vanilla (Lemma 5.2).
	Plus
	// Prime is OPIM′: σᵘ from the Leskovec-style Λ1⋄(S°) (eq. 15); tighter
	// than Vanilla on many instances but not always (§5).
	Prime
)

// String implements fmt.Stringer using the paper's names.
func (v Variant) String() string {
	switch v {
	case Vanilla:
		return "OPIM0"
	case Plus:
		return "OPIM+"
	case Prime:
		return "OPIM'"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Generator abstracts where a session's RR sets are produced. The default
// (LocalGenerator) samples in-process via rrset.Generate; a distributed
// implementation (internal/fleet's Coordinator) farms seed ranges out to
// worker processes. Implementations MUST be complete and deterministic:
// Generate appends exactly count sets to c, with set i of the batch driven
// by base.Split(startID+i) where startID is c's size at call time, so the
// resulting collection is byte-identical to rrset.Generate no matter where
// (or how many times, after retries) each range was actually sampled.
// There is no error return by design — an implementation that cannot reach
// its backends must degrade to local sampling rather than fail, because
// Advance sits under serving paths that promise progress.
type Generator interface {
	Generate(c *rrset.Collection, s *rrset.Sampler, count int, base *rng.Source, workers int)
}

// LocalGenerator is the default Generator: in-process sharded sampling.
type LocalGenerator struct{}

// Generate implements Generator via rrset.Generate.
func (LocalGenerator) Generate(c *rrset.Collection, s *rrset.Sampler, count int, base *rng.Source, workers int) {
	rrset.Generate(c, s, count, base, workers)
}

// Options configures an Online session or a Maximize call.
type Options struct {
	// K is the seed-set size (required, 1 ≤ K ≤ n).
	K int
	// Delta is the failure probability δ ∈ (0, 1). Each Snapshot's reported
	// α holds with probability ≥ 1−Delta.
	Delta float64
	// Variant selects the σᵘ derivation. Default Vanilla (the zero value);
	// Plus is recommended.
	Variant Variant
	// Seed drives all randomness; a fixed Seed reproduces results exactly.
	Seed uint64
	// Workers bounds the parallelism of RR-set generation (≤ 0 means
	// GOMAXPROCS via the rrset package's Generate).
	Workers int
	// UnionBudget, when set, makes the i-th Snapshot spend failure budget
	// δ/2^i instead of δ, so that ALL returned seed sets meet their
	// guarantees simultaneously with probability ≥ 1−δ (the union-bound
	// schedule discussed at the end of §4.2).
	UnionBudget bool
	// OnRound, when non-nil, is invoked by Maximize after each doubling
	// round with the round number (1-based) and that round's snapshot —
	// the offline algorithm's window into the online progress. It must not
	// retain the snapshot's Seeds slice across calls.
	OnRound func(round int, snap *Snapshot)
	// Exact replaces the paper's martingale bounds (eqs. 5/8/13/15) with
	// exact Clopper–Pearson binomial limits. Valid because each snapshot
	// conditions on a FIXED sample count, making coverage exactly
	// binomial; typically a slightly tighter α at small sample counts.
	// Experimental extension — see bound.SigmaLowerExact/SigmaUpperExact.
	Exact bool
	// Events, when non-nil, receives one structured event per derived
	// snapshot ("snapshot") and, in Maximize, per doubling round ("round")
	// plus a final "maximize" summary — each carrying the paper quantities
	// (θ1, θ2, Λ1, Λ2, σˡ, σᵘ, α) at that instant. Wire an obs.JSONLSink
	// here to make a run replayable; see docs/OBSERVABILITY.md. Sinks are
	// not persisted by SaveSession; reattach with SetEvents after
	// LoadSession.
	Events obs.Sink
	// Generator, when non-nil, produces the session's RR sets (a fleet
	// coordinator, say) in place of in-process sampling. It must honor the
	// Generator determinism contract; results are then independent of where
	// sampling ran. Not persisted by SaveSession — the process that resumes
	// a session re-injects its own (SetGenerator), since a checkpoint must
	// not capture another deployment's fleet topology.
	Generator Generator
	// BaseSeeds, when non-empty, switches the session to the AUGMENTATION
	// problem: the base set is already committed, selection picks K
	// additional nodes maximizing the residual spread σ(B∪S) − σ(B), and
	// every reported quantity (σˡ, σᵘ, α) refers to the residual. The
	// residual of a monotone submodular function is monotone submodular,
	// so all guarantees carry over unchanged.
	BaseSeeds []int32
}

func (o Options) validate(n int32) error {
	if o.K < 1 || int64(o.K) > int64(n) {
		return fmt.Errorf("core: k = %d outside [1, n=%d]", o.K, n)
	}
	if !(o.Delta > 0 && o.Delta < 1) {
		return fmt.Errorf("core: δ = %v outside (0, 1)", o.Delta)
	}
	switch o.Variant {
	case Vanilla, Plus, Prime:
	default:
		return fmt.Errorf("core: unknown variant %d", int(o.Variant))
	}
	seen := make(map[int32]struct{}, len(o.BaseSeeds))
	for _, v := range o.BaseSeeds {
		if v < 0 || v >= n {
			return fmt.Errorf("core: base seed %d outside [0, n=%d)", v, n)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("core: duplicate base seed %d", v)
		}
		seen[v] = struct{}{}
	}
	// Selection picks K nodes disjoint from the base, so the graph must
	// hold K + |B| distinct nodes.
	if total := int64(o.K) + int64(len(o.BaseSeeds)); total > int64(n) {
		return fmt.Errorf("core: k + len(BaseSeeds) = %d exceeds n = %d", total, n)
	}
	if len(o.BaseSeeds) > 0 && o.Variant == Prime {
		return fmt.Errorf("core: the Prime variant does not support BaseSeeds; use Plus or Vanilla")
	}
	return nil
}

// Online is a pausable OPIM session. It is not safe for concurrent use;
// drive it from one goroutine (RR generation itself parallelizes
// internally).
type Online struct {
	sampler *rrset.Sampler
	opts    Options
	r1, r2  *rrset.Collection
	base1   *rng.Source
	base2   *rng.Source
	queries int
	start   time.Time    // session epoch, for event elapsed_seconds
	scratch *snapScratch // persistent selection/coverage buffers, reused per snapshot

	// graphName/graphSpec label which catalog graph this session runs on;
	// SaveSession records them (with the graph's fingerprint) in OPIMS3 so a
	// restarted daemon can re-resolve — and verify — the exact instance.
	// Empty on sessions created outside a catalog (plain library use).
	graphName string
	graphSpec string

	// ext is the OPIMS5 opaque extension blob: application state that must
	// ride along with every checkpoint of this session (opimd keeps its
	// per-session learner there). Core never interprets it; SaveSession
	// writes it and LoadSession restores it.
	ext []byte
}

// NewOnline starts an OPIM session on the sampler's graph.
func NewOnline(sampler *rrset.Sampler, opts Options) (*Online, error) {
	if err := opts.validate(sampler.Graph().N()); err != nil {
		return nil, err
	}
	root := rng.New(opts.Seed)
	return &Online{
		sampler: sampler,
		opts:    opts,
		r1:      rrset.NewCollection(sampler.Graph().N()),
		r2:      rrset.NewCollection(sampler.Graph().N()),
		base1:   root.Split(1),
		base2:   root.Split(2),
		start:   time.Now(),
		scratch: newSnapScratch(),
	}, nil
}

// SetEvents attaches (or replaces, or with nil detaches) the session's
// event sink. Needed after LoadSession, which cannot restore one.
func (o *Online) SetEvents(s obs.Sink) { o.opts.Events = s }

// SetGraphIdentity labels the session with the catalog name and GraphSpec
// string of the graph it runs on; SaveSession persists both (plus the
// graph's content fingerprint) so resume/adopt can verify it is handed the
// same instance. LoadSession restores the labels automatically.
func (o *Online) SetGraphIdentity(name, spec string) {
	o.graphName = name
	o.graphSpec = spec
}

// GraphIdentity returns the labels set by SetGraphIdentity (or restored by
// LoadSession); both are empty for sessions never attached to a catalog.
func (o *Online) GraphIdentity() (name, spec string) {
	return o.graphName, o.graphSpec
}

// SetExtension attaches (or with nil clears) the session's opaque
// extension blob, persisted verbatim by SaveSession in the OPIMS5 frame.
// The caller keeps ownership of b's semantics but must not mutate it after
// handing it over; replace it wholesale when the state changes.
func (o *Online) SetExtension(b []byte) { o.ext = b }

// Extension returns the session's opaque extension blob as restored by
// LoadSession or set by SetExtension (nil when absent). The returned slice
// must not be mutated.
func (o *Online) Extension() []byte { return o.ext }

// Sampler returns the sampler this session draws RR sets from. Multiple
// sessions may share one sampler (it is immutable); this is how a server
// hosting many sessions creates new ones next to an existing session.
func (o *Online) Sampler() *rrset.Sampler { return o.sampler }

// Options returns a copy of the session's configuration (BaseSeeds
// cloned, so the caller cannot corrupt the session through the slice).
func (o *Online) Options() Options {
	opts := o.opts
	if len(opts.BaseSeeds) > 0 {
		opts.BaseSeeds = append([]int32(nil), opts.BaseSeeds...)
	}
	return opts
}

// Queries returns how many snapshots this session has served — the i that
// determines the next δ/2^(i+1) spend under Options.UnionBudget.
func (o *Online) Queries() int { return o.queries }

// NumRR returns the total number of RR sets generated so far (both halves).
func (o *Online) NumRR() int64 {
	return int64(o.r1.Count()) + int64(o.r2.Count())
}

// EdgesExamined returns the cumulative γ across both halves, comparable to
// the quantity Borgs et al.'s algorithm monitors.
func (o *Online) EdgesExamined() int64 {
	return o.r1.EdgesExamined() + o.r2.EdgesExamined()
}

// SetGenerator installs (or with nil resets to local) the session's RR-set
// Generator. Needed after LoadSession, which never restores one — the
// resuming process decides its own sampling topology. Because conforming
// generators are byte-identical to local sampling, switching generators
// mid-session (a fleet scaling up, or degrading away) never perturbs the
// sample stream.
func (o *Online) SetGenerator(g Generator) { o.opts.Generator = g }

// generator returns the configured Generator, defaulting to local.
func (o *Online) generator() Generator {
	if o.opts.Generator != nil {
		return o.opts.Generator
	}
	return LocalGenerator{}
}

// Advance generates count additional RR sets, split evenly between R1 and
// R2 (odd counts give the extra set to R1).
func (o *Online) Advance(count int) {
	if count <= 0 {
		return
	}
	half := count / 2
	gen := o.generator()
	gen.Generate(o.r1, o.sampler, count-half, o.base1, o.opts.Workers)
	gen.Generate(o.r2, o.sampler, half, o.base2, o.opts.Workers)
}

// maxAdvanceChunk caps the per-chunk RR-set count of AdvanceContext. It
// is even — see AdvanceContext's parity invariant.
const maxAdvanceChunk = 1 << 16

// AdvanceContext is Advance with cancellation: it generates count RR sets
// in chunks, checking ctx between chunks, and returns the number actually
// generated together with ctx.Err() when it stopped early. Generated sets
// are kept — cancelling an advance loses no work, it only pauses sooner.
//
// Chunking never changes the sample stream: every chunk except the last
// is even, so the R1/R2 split (odd counts give R1 the extra set) matches
// a single Advance(count) call exactly and the resulting collections are
// byte-identical. The chunk size adapts to the observed sampling rate,
// aiming at ~25ms per chunk, so cancellation latency stays near 25ms on
// any graph.
func (o *Online) AdvanceContext(ctx context.Context, count int) (int, error) {
	generated := 0
	chunk := 64
	for generated < count {
		if err := ctx.Err(); err != nil {
			return generated, err
		}
		c := chunk
		if rem := count - generated; c > rem {
			c = rem
		}
		t0 := time.Now()
		o.Advance(c)
		generated += c
		if el := time.Since(t0); el > 0 {
			next := int(float64(c) * float64(25*time.Millisecond) / float64(el))
			next &^= 1 // keep chunks even so the R1/R2 split is unchanged
			if next < 64 {
				next = 64
			}
			if next > 4*chunk {
				next = 4 * chunk
			}
			if next > maxAdvanceChunk {
				next = maxAdvanceChunk
			}
			chunk = next
		}
	}
	return generated, nil
}

// AdvanceTo grows the session until NumRR() ≥ totalRR. The delta is walked
// in maxAdvanceChunk pieces, so an int64 target neither truncates through
// int on 32-bit platforms nor turns into one uninterruptible multi-minute
// Advance. Every chunk except the last is even, so — like AdvanceContext —
// the R1/R2 split and the resulting sample stream are byte-identical to a
// single Advance call.
func (o *Online) AdvanceTo(totalRR int64) {
	for {
		d := totalRR - o.NumRR()
		if d <= 0 {
			return
		}
		c := int64(maxAdvanceChunk)
		if d < c {
			c = d
		}
		o.Advance(int(c))
	}
}

// AdvanceFor generates RR sets in batches until roughly d of wall-clock
// time has elapsed — the paper's timestamp-driven pause points (§2.2)
// made literal. The batch size adapts to the observed sampling rate so
// the overshoot past the deadline stays near one batch (~50ms of work).
// It returns the number of RR sets generated.
func (o *Online) AdvanceFor(d time.Duration) int64 {
	start := time.Now()
	before := o.NumRR()
	batch := 256
	for time.Since(start) < d {
		t0 := time.Now()
		o.Advance(batch)
		if el := time.Since(t0); el > 0 {
			// Aim each batch at ~50ms.
			next := int(float64(batch) * float64(50*time.Millisecond) / float64(el))
			if next < 64 {
				next = 64
			}
			if next > 4*batch {
				next = 4 * batch
			}
			batch = next
		}
	}
	return o.NumRR() - before
}

// Snapshot is the answer to one user pause: a seed set and its guarantee.
type Snapshot struct {
	// Seeds is the greedy seed set S* derived from R1.
	Seeds []int32
	// Alpha is the reported approximation guarantee σˡ(S*)/σᵘ(S°), valid
	// with probability ≥ 1−δ (or the union-budget share when enabled).
	Alpha float64
	// SigmaLower is σˡ(S*) per eq. (5).
	SigmaLower float64
	// SigmaUpper is σᵘ(S°) per eq. (8), (13) or (15) depending on Variant.
	SigmaUpper float64
	// CoverageR1 is Λ1(S*); CoverageR2 is Λ2(S*).
	CoverageR1, CoverageR2 int64
	// Theta1, Theta2 are |R1| and |R2|.
	Theta1, Theta2 int64
	// DeltaSpent is the failure budget this snapshot consumed.
	DeltaSpent float64
	// Variant that produced SigmaUpper.
	Variant Variant
}

// Snapshot pauses the stream and derives (S*, α) from the RR sets generated
// so far. It can be called repeatedly as the session advances; with
// Options.UnionBudget the i-th call uses failure budget δ/2^i.
func (o *Online) Snapshot() *Snapshot {
	o.queries++
	delta := o.opts.Delta
	if o.opts.UnionBudget {
		delta = o.opts.Delta / math.Pow(2, float64(o.queries))
	}
	snap := deriveSnapshotBase(o.r1, o.r2, o.opts.K, delta, o.opts.Variant, o.opts.Exact, o.opts.BaseSeeds, o.scratch)
	mSnapshots.Inc()
	recordSnapshotGauges(snap)
	obs.Emit(o.opts.Events, "snapshot", snapshotFields(snap, map[string]any{
		"query":             o.queries,
		"elapsed_seconds":   time.Since(o.start).Seconds(),
		"graph_fingerprint": o.sampler.Graph().Fingerprint(),
	}))
	return snap
}

// recordSnapshotGauges publishes a snapshot's paper quantities as the
// core_last_* gauges.
func recordSnapshotGauges(s *Snapshot) {
	mLastAlpha.Set(s.Alpha)
	mLastSigmaL.Set(s.SigmaLower)
	mLastSigmaU.Set(s.SigmaUpper)
	mLastTheta1.Set(float64(s.Theta1))
	mLastTheta2.Set(float64(s.Theta2))
}

// snapshotFields merges a snapshot's paper quantities into extra (which it
// mutates and returns).
func snapshotFields(s *Snapshot, extra map[string]any) map[string]any {
	extra["theta1"] = s.Theta1
	extra["theta2"] = s.Theta2
	extra["lambda1"] = s.CoverageR1
	extra["lambda2"] = s.CoverageR2
	extra["sigma_lower"] = s.SigmaLower
	extra["sigma_upper"] = s.SigmaUpper
	extra["alpha"] = s.Alpha
	extra["delta_spent"] = s.DeltaSpent
	extra["variant"] = s.Variant.String()
	extra["k"] = len(s.Seeds)
	return extra
}

// snapScratch bundles the reusable buffers one snapshot derivation needs:
// the greedy-selection scratch (marginals, epoch-marked covered/chosen
// flags, quickselect buffer) and the epoch-marked coverage kernel used for
// the Λ2 queries. One snapScratch per session (or per Maximize run) means
// repeated snapshots allocate only their Result; it is not safe for
// concurrent use, matching Online's single-driver contract.
type snapScratch struct {
	sel  *maxcover.Scratch
	cov  *rrset.CoverageScratch
	both []int32 // base∪seeds buffer for the augmentation Λ2 query
}

func newSnapScratch() *snapScratch {
	return &snapScratch{sel: maxcover.NewScratch(), cov: rrset.NewCoverageScratch()}
}

// deriveSnapshot implements §4.1's three steps on explicit halves: greedy
// on R1, lower bound from R2, upper bound from R1.
func deriveSnapshot(r1, r2 *rrset.Collection, k int, delta float64, variant Variant, exact bool) *Snapshot {
	return deriveSnapshotBase(r1, r2, k, delta, variant, exact, nil, nil)
}

// deriveSnapshotBase additionally supports the augmentation problem: with
// a non-empty base, selection and all coverages refer to the residual
// function Λ(B∪·) − Λ(B). A nil sc allocates fresh buffers.
func deriveSnapshotBase(r1, r2 *rrset.Collection, k int, delta float64, variant Variant, exact bool, base []int32, sc *snapScratch) *Snapshot {
	if sc == nil {
		sc = newSnapScratch()
	}
	n := r1.N()
	theta1 := int64(r1.Count())
	theta2 := int64(r2.Count())
	delta1 := delta / 2
	delta2 := delta / 2

	var sel *maxcover.Result
	switch {
	case len(base) > 0 && variant == Vanilla:
		sel = sc.sel.GreedyAugment(r1, base, k)
	case len(base) > 0:
		sel = sc.sel.GreedyAugmentWithBounds(r1, base, k)
	case variant == Vanilla:
		sel = sc.sel.Greedy(r1, k)
	case variant == Prime:
		// Table 1: OPIM′ only needs Λ1⋄, at O(n + Σ|R|).
		sel = sc.sel.GreedyWithDiamond(r1, k)
	default:
		sel = sc.sel.GreedyWithBounds(r1, k)
	}

	lambda2 := r2.CoverageWith(sc.cov, sel.Seeds)
	if len(base) > 0 {
		// Residual coverage in R2: sets covered by base∪S but not by base.
		sc.both = append(append(sc.both[:0], base...), sel.Seeds...)
		lambda2 = r2.CoverageWith(sc.cov, sc.both) - r2.CoverageWith(sc.cov, base)
	}
	var lambdaUpper float64
	switch variant {
	case Vanilla:
		lambdaUpper = float64(sel.Coverage) / bound.OneMinusInvE
	case Plus:
		lambdaUpper = float64(sel.LambdaU)
	case Prime:
		lambdaUpper = float64(sel.LambdaDiamond)
	}
	var sigmaL, sigmaU float64
	if exact {
		sigmaL = bound.SigmaLowerExact(lambda2, theta2, n, delta2)
		sigmaU = bound.SigmaUpperExact(lambdaUpper, theta1, n, delta1)
	} else {
		sigmaL = bound.SigmaLower(float64(lambda2), n, theta2, delta2)
		sigmaU = bound.SigmaUpper(lambdaUpper, n, theta1, delta1)
	}

	return &Snapshot{
		Seeds:      sel.Seeds,
		Alpha:      bound.Alpha(sigmaL, sigmaU),
		SigmaLower: sigmaL,
		SigmaUpper: sigmaU,
		CoverageR1: sel.Coverage,
		CoverageR2: lambda2,
		Theta1:     theta1,
		Theta2:     theta2,
		DeltaSpent: delta,
		Variant:    variant,
	}
}

// String implements fmt.Stringer with a one-line progress summary.
func (s *Snapshot) String() string {
	return fmt.Sprintf("α=%.4f (σˡ=%.1f σᵘ=%.1f, θ1=%d θ2=%d, %v)",
		s.Alpha, s.SigmaLower, s.SigmaUpper, s.Theta1, s.Theta2, s.Variant)
}
