package core

// OPIMS3 coverage: the graph-identity block must round-trip, legacy
// formats must load as "unverified", and a checkpoint forged against a
// reweighted graph — same node count, different probabilities — must be
// refused with ErrGraphMismatch instead of resuming into garbage
// guarantees.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

func TestSaveSessionRoundTripsGraphIdentity(t *testing.T) {
	g := testGraph(t, 300, 61)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 4, Delta: 0.1, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	o.SetGraphIdentity("campaigns", "model=IC&profile=synth-pokec&seed=62")
	o.Advance(400)

	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, meta, err := LoadSessionResolve(&buf, func(m *SessionMeta) (*rrset.Sampler, error) {
		if m.GraphName != "campaigns" {
			t.Fatalf("resolver saw graph name %q", m.GraphName)
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != 5 || !meta.Verified() {
		t.Fatalf("meta = %+v, want verified format 5", meta)
	}
	if meta.GraphFingerprint != g.Fingerprint() {
		t.Fatalf("fingerprint %s round-tripped as %s", g.Fingerprint(), meta.GraphFingerprint)
	}
	name, spec := restored.GraphIdentity()
	if name != "campaigns" || spec != "model=IC&profile=synth-pokec&seed=62" {
		t.Fatalf("identity lost: name=%q spec=%q", name, spec)
	}
}

func TestLoadSessionRejectsReweightedGraph(t *testing.T) {
	g := testGraph(t, 300, 63)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 4, Delta: 0.1, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(300)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}

	// Same dataset, same n — but uniform-reweighted. Before OPIMS3 this
	// loaded silently; now it must be a loud, typed refusal.
	forged, err := graph.Reweight(g, graph.Uniform, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrong := rrset.NewSampler(forged, diffusion.IC)
	_, err = LoadSession(bytes.NewReader(buf.Bytes()), wrong)
	if !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("reweighted-graph load error = %v, want ErrGraphMismatch", err)
	}
	// The right graph still loads.
	if _, err := LoadSession(bytes.NewReader(buf.Bytes()), s); err != nil {
		t.Fatal(err)
	}
}

// saveSessionV2 writes the legacy OPIMS2 format byte-for-byte — the
// fixture proving pre-OPIMS3 checkpoints still load, flagged unverified.
func saveSessionV2(t *testing.T, o *Online) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("OPIMS2\n")
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(o.sampler.Graph().N()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(o.opts.K))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(o.opts.Delta))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(o.opts.Variant))
	binary.LittleEndian.PutUint64(hdr[24:32], o.opts.Seed)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(o.opts.Workers))
	if o.opts.UnionBudget {
		hdr[36] = 1
	}
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(o.queries))
	buf.Write(hdr[:])
	var ext [5]byte
	if o.opts.Exact {
		ext[0] = 1
	}
	binary.LittleEndian.PutUint32(ext[1:5], uint32(len(o.opts.BaseSeeds)))
	buf.Write(ext[:])
	for _, v := range o.opts.BaseSeeds {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		buf.Write(b[:])
	}
	if err := rrset.WriteCollection(&buf, o.r1); err != nil {
		t.Fatal(err)
	}
	if err := rrset.WriteCollection(&buf, o.r2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadSessionReadsOPIMS2Unverified(t *testing.T) {
	g := testGraph(t, 300, 65)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 5, Delta: 0.05, Seed: 66, Exact: true, BaseSeeds: []int32{2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(600)

	restored, meta, err := LoadSessionResolve(bytes.NewReader(saveSessionV2(t, o)),
		func(m *SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if err != nil {
		t.Fatalf("OPIMS2 no longer loads: %v", err)
	}
	if meta.Format != 2 || meta.Verified() {
		t.Fatalf("meta = %+v, want unverified format 2", meta)
	}
	got := restored.Options()
	if !got.Exact || len(got.BaseSeeds) != 2 {
		t.Fatalf("OPIMS2 fields lost: %+v", got)
	}

	// After one save the legacy session upgrades to OPIMS3 with a real
	// fingerprint.
	var buf bytes.Buffer
	if err := SaveSession(&buf, restored); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := LoadSessionResolve(&buf, func(m *SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Format != 5 || meta2.GraphFingerprint != g.Fingerprint() {
		t.Fatalf("resave did not upgrade: %+v", meta2)
	}
}

func TestLoadSessionResolveError(t *testing.T) {
	g := testGraph(t, 200, 67)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 68})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(100)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("no such graph")
	_, meta, err := LoadSessionResolve(&buf, func(m *SessionMeta) (*rrset.Sampler, error) {
		return nil, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("resolver error = %v", err)
	}
	if meta == nil || meta.Format != 5 {
		t.Fatalf("resolver failure should still return the meta, got %+v", meta)
	}
}

// TestAdvanceToChunked: AdvanceTo must produce the exact sample stream of
// one Advance call even when the delta spans multiple maxAdvanceChunk
// chunks (the int64-truncation fix).
func TestAdvanceToChunked(t *testing.T) {
	g := testGraph(t, 200, 69)
	s := rrset.NewSampler(g, diffusion.IC)
	const target = maxAdvanceChunk + 12345 // forces one full chunk + odd remainder

	a, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	a.Advance(target)

	b, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	b.AdvanceTo(target)

	if b.NumRR() != int64(target) || b.NumRR() != a.NumRR() {
		t.Fatalf("AdvanceTo reached %d, want %d", b.NumRR(), target)
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := SaveSession(&wantBuf, a); err != nil {
		t.Fatal(err)
	}
	if err := SaveSession(&gotBuf, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("chunked AdvanceTo diverged from a single Advance call")
	}
}
