package core

// Epoch catch-up: rebasing a session onto a mutated graph. A session's R1
// and R2 halves are repaired independently (each has its own base source),
// invalidating only the sets whose traces touch a mutated edge, and the
// session's bounds are re-derived from the repaired collections on the
// next Snapshot — there is no cached bound state to patch. See
// rrset.Repair for the byte-identity argument.

import (
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// RepairForMutations rebases the session onto sampler — built over the
// graph obtained by applying the given batches, in order, to the graph the
// session's RR sets were sampled on — regenerating exactly the RR sets the
// batches invalidated. Afterwards the session is indistinguishable from
// one that ran on the mutated graph from the start: the same Advance calls
// produce the same sample stream, Snapshot derives bounds valid for the
// mutated graph, and SaveSession emits the bytes a never-mutated run would
// have. Multiple missed batches catch up in this single call; passing no
// batches just rebinds the sampler (a same-content reload).
//
// The caller is responsible for the lineage bookkeeping: batches must be
// the exact mutation history between the session's graph and sampler's
// (the server verifies this through the graph's epoch chain before
// calling). Returns the number of RR sets regenerated across both halves.
func (o *Online) RepairForMutations(sampler *rrset.Sampler, batches ...[]graph.Mutation) int {
	regen := 0
	if len(batches) > 0 {
		// Weight-only histories (a learning round's realizations, say) take
		// the repair path that reuses the trace/inverted index directly;
		// any topology change routes through the general path.
		weightOnly := true
		for _, ms := range batches {
			if !graph.IsWeightOnly(ms) {
				weightOnly = false
				break
			}
		}
		if weightOnly {
			regen += o.r1.RepairWeightOnly(sampler, o.base1, o.r1.InvalidatedBy(batches...), o.opts.Workers)
			regen += o.r2.RepairWeightOnly(sampler, o.base2, o.r2.InvalidatedBy(batches...), o.opts.Workers)
		} else {
			regen += o.r1.Repair(sampler, o.base1, o.r1.InvalidatedBy(batches...), o.opts.Workers)
			regen += o.r2.Repair(sampler, o.base2, o.r2.InvalidatedBy(batches...), o.opts.Workers)
		}
	}
	o.sampler = sampler
	// Selection/coverage scratch is sized for the old universe and holds
	// epoch-marked state tied to the old collections; start fresh.
	o.scratch = newSnapScratch()
	return regen
}
