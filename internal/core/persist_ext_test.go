package core

// OPIMS5 coverage: the opaque extension blob must round-trip byte-for-byte
// (it carries opimd's learner state across kill −9), an OPIMS4 file must
// still load — with an empty blob — and a corrupt extension length must be
// refused instead of driving a huge allocation.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/rrset"
)

func TestSaveSessionRoundTripsExtension(t *testing.T) {
	g := testGraph(t, 200, 91)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(200)
	blob := []byte("LEARN1\x00\x01\x02\xff posterior state bytes")
	o.SetExtension(blob)

	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, meta, err := LoadSessionResolve(bytes.NewReader(buf.Bytes()), func(m *SessionMeta) (*rrset.Sampler, error) {
		if !bytes.Equal(m.Ext, blob) {
			t.Fatalf("resolver saw ext %q, want %q", m.Ext, blob)
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != 5 {
		t.Fatalf("format = %d, want 5", meta.Format)
	}
	if !bytes.Equal(restored.Extension(), blob) {
		t.Fatalf("extension round-tripped as %q, want %q", restored.Extension(), blob)
	}

	// And a save→load→save cycle reproduces identical bytes: the blob is
	// part of the byte-identity contract eviction's serialize-then-verify
	// relies on.
	var buf2 bytes.Buffer
	if err := SaveSession(&buf2, restored); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("resave after load produced different bytes")
	}
}

func TestSaveSessionEmptyExtension(t *testing.T) {
	g := testGraph(t, 200, 93)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(100)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	restored, meta, err := LoadSessionResolve(bytes.NewReader(buf.Bytes()), func(*SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if meta.Ext != nil || restored.Extension() != nil {
		t.Fatalf("empty extension loaded as %v / %v, want nil", meta.Ext, restored.Extension())
	}
}

// TestLoadSessionReadsOPIMS4 keeps the previous on-disk generation
// loadable: a V4 file is a V5 file minus the extension block, so rewriting
// the magic and splicing out the blob yields a valid OPIMS4 checkpoint
// that must load with Format 4 and an empty extension.
func TestLoadSessionReadsOPIMS4(t *testing.T) {
	g := testGraph(t, 200, 95)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(100)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Locate the extension length field: it sits right before the first
	// collection frame ("OPIMR3\n").
	idx := bytes.Index(raw, []byte("OPIMR"))
	if idx < 4 {
		t.Fatal("collection frame not found")
	}
	if got := binary.LittleEndian.Uint32(raw[idx-4 : idx]); got != 0 {
		t.Fatalf("extension length = %d, want 0", got)
	}
	v4 := append([]byte("OPIMS4\n"), raw[len("OPIMS5\n"):idx-4]...)
	v4 = append(v4, raw[idx:]...)
	restored, meta, err := LoadSessionResolve(bytes.NewReader(v4), func(*SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != 4 || restored.Extension() != nil {
		t.Fatalf("V4 load: format=%d ext=%v, want 4/nil", meta.Format, restored.Extension())
	}
	if restored.NumRR() != o.NumRR() {
		t.Fatalf("V4 load lost RR sets: %d vs %d", restored.NumRR(), o.NumRR())
	}
}

func TestLoadSessionRefusesOversizedExtension(t *testing.T) {
	g := testGraph(t, 200, 97)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	idx := bytes.Index(raw, []byte("OPIMR"))
	if idx < 4 {
		t.Fatal("collection frame not found")
	}
	binary.LittleEndian.PutUint32(raw[idx-4:idx], 1<<30) // corrupt length
	_, _, err = LoadSessionResolve(bytes.NewReader(raw), func(*SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if !errors.Is(err, ErrBadSession) {
		t.Fatalf("oversized extension load error = %v, want ErrBadSession", err)
	}
}
