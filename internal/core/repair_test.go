package core

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// coreMutationBatch mirrors rrset's test batch builder: deletes, weight
// halvings, and LT-safe inserts over a minority of edges.
func coreMutationBatch(t *testing.T, g *graph.Graph) []graph.Mutation {
	t.Helper()
	var edges []graph.Edge
	g.Edges(func(e graph.Edge) bool { edges = append(edges, e); return true })
	have := make(map[int64]bool, len(edges))
	key := func(f, to int32) int64 { return int64(f)<<32 | int64(uint32(to)) }
	for _, e := range edges {
		have[key(e.From, e.To)] = true
	}
	var ms []graph.Mutation
	for i, e := range edges {
		switch i % 23 {
		case 0:
			ms = append(ms, graph.Mutation{Op: graph.OpEdgeDelete, From: e.From, To: e.To})
			nf := (e.From + 11) % g.N()
			if nf != e.To && nf != e.From && !have[key(nf, e.To)] {
				ms = append(ms, graph.Mutation{Op: graph.OpEdgeInsert, From: nf, To: e.To, P: e.P})
				have[key(nf, e.To)] = true
			}
		case 7:
			ms = append(ms, graph.Mutation{Op: graph.OpSetWeight, From: e.From, To: e.To, P: e.P / 2})
		}
	}
	if len(ms) == 0 {
		t.Fatal("mutation batch came out empty")
	}
	return ms
}

// TestRepairForMutationsMatchesFreshSession is the end-to-end byte-identity
// check at the session level: advance on the original graph, mutate, repair
// — then further advances, snapshots and checkpoints must be
// indistinguishable from a session that ran on the mutated graph from the
// start.
func TestRepairForMutationsMatchesFreshSession(t *testing.T) {
	g := testGraph(t, 400, 81)
	ms := coreMutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 5, Delta: 0.1, Seed: 82, Workers: 3}

	repaired, err := NewOnline(rrset.NewSampler(g, diffusion.IC), opts)
	if err != nil {
		t.Fatal(err)
	}
	repaired.Advance(900)
	regen := repaired.RepairForMutations(rrset.NewSampler(mg, diffusion.IC), ms)
	if regen <= 0 || regen >= 900 {
		t.Fatalf("repair regenerated %d of 900 sets; want a partial repair", regen)
	}
	if repaired.Sampler().Graph() != mg {
		t.Fatal("sampler not rebound to the mutated graph")
	}

	fresh, err := NewOnline(rrset.NewSampler(mg, diffusion.IC), opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Advance(900)

	// The streams continue identically after the repair.
	repaired.Advance(300)
	fresh.Advance(300)

	snapA, snapB := repaired.Snapshot(), fresh.Snapshot()
	if !reflect.DeepEqual(snapA.Seeds, snapB.Seeds) || snapA.Alpha != snapB.Alpha ||
		snapA.CoverageR1 != snapB.CoverageR1 || snapA.CoverageR2 != snapB.CoverageR2 {
		t.Fatalf("snapshots diverge:\nrepaired: %v\nfresh:    %v", snapA, snapB)
	}
	if repaired.EdgesExamined() != fresh.EdgesExamined() {
		t.Fatalf("cumulative gamma diverges: %d vs %d", repaired.EdgesExamined(), fresh.EdgesExamined())
	}

	var a, b bytes.Buffer
	if err := SaveSession(&a, repaired); err != nil {
		t.Fatal(err)
	}
	if err := SaveSession(&b, fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repaired session checkpoint differs from a never-mutated run")
	}
}

// TestSaveSessionRecordsEpoch: OPIMS4 carries the sampler graph's epoch and
// lineage, so a resuming daemon can tell how many mutation batches the
// checkpoint has seen.
func TestSaveSessionRecordsEpoch(t *testing.T) {
	g := testGraph(t, 300, 83)
	ms := coreMutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(mg, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 84})
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(200)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	_, meta, err := LoadSessionResolve(&buf, func(m *SessionMeta) (*rrset.Sampler, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 1 || meta.Lineage != mg.EpochLineage() {
		t.Fatalf("epoch block = (%d, %s), want (1, %s)", meta.Epoch, meta.Lineage, mg.EpochLineage())
	}
}

// TestAcceptStaleResumeAcrossMutation: a checkpoint taken at epoch 0 loads
// onto an epoch-1 sampler when the resolver opts in with AcceptStale, and
// one RepairForMutations call brings it to the exact state of a session
// that never left the mutated graph. Without AcceptStale the same load is
// the hard ErrGraphMismatch.
func TestAcceptStaleResumeAcrossMutation(t *testing.T) {
	g := testGraph(t, 300, 85)
	ms := coreMutationBatch(t, g)
	mg, err := g.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 4, Delta: 0.1, Seed: 86}
	o, err := NewOnline(rrset.NewSampler(g, diffusion.IC), opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Advance(500)
	var buf bytes.Buffer
	if err := SaveSession(&buf, o); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	newSampler := rrset.NewSampler(mg, diffusion.IC)
	if _, _, err := LoadSessionResolve(bytes.NewReader(saved),
		func(m *SessionMeta) (*rrset.Sampler, error) { return newSampler, nil }); err == nil {
		t.Fatal("stale checkpoint loaded onto mutated graph without AcceptStale")
	}

	restored, meta, err := LoadSessionResolve(bytes.NewReader(saved),
		func(m *SessionMeta) (*rrset.Sampler, error) {
			m.AcceptStale = true
			return newSampler, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 0 {
		t.Fatalf("checkpoint epoch = %d, want 0", meta.Epoch)
	}
	restored.RepairForMutations(newSampler, ms)

	fresh, err := NewOnline(rrset.NewSampler(mg, diffusion.IC), opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Advance(500)
	var a, b bytes.Buffer
	if err := SaveSession(&a, restored); err != nil {
		t.Fatal(err)
	}
	if err := SaveSession(&b, fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stale-resume + repair differs from a never-mutated run")
	}
}
