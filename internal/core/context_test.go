package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
	"github.com/reprolab/opim/internal/trigger"
)

// TestAdvanceContextMatchesAdvance asserts the chunked, cancellable
// advance is byte-identical to a single Advance call — the invariant the
// whole checkpoint/resume story depends on (persist.go).
func TestAdvanceContextMatchesAdvance(t *testing.T) {
	for _, count := range []int{1, 63, 1000, 4999} {
		g := testGraph(t, 400, 60)
		s := rrset.NewSampler(g, diffusion.IC)
		opts := Options{K: 5, Delta: 0.05, Variant: Plus, Seed: 61}

		plain, err := NewOnline(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		plain.Advance(count)

		chunked, err := NewOnline(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		n, err := chunked.AdvanceContext(context.Background(), count)
		if err != nil || n != count {
			t.Fatalf("AdvanceContext(%d) = %d, %v", count, n, err)
		}

		var a, b bytes.Buffer
		if err := SaveSession(&a, plain); err != nil {
			t.Fatal(err)
		}
		if err := SaveSession(&b, chunked); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("count=%d: chunked advance diverged from plain advance", count)
		}
	}
}

func TestAdvanceContextAlreadyCancelled(t *testing.T) {
	g := testGraph(t, 300, 62)
	s := rrset.NewSampler(g, diffusion.IC)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := o.AdvanceContext(ctx, 10000)
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("AdvanceContext on cancelled ctx = %d, %v", n, err)
	}
	if o.NumRR() != 0 {
		t.Fatalf("cancelled advance still generated %d RR sets", o.NumRR())
	}
}

func TestAdvanceContextDeadlineStopsEarly(t *testing.T) {
	g := testGraph(t, 300, 64)
	// A triggering sampler whose draws are real but slow, so the deadline
	// fires mid-advance. 200µs per triggering set bounds each adaptive
	// chunk at ~125 sets, keeping cancellation latency near one chunk.
	slow := &slowTrigger{dist: trigger.NewIC(g), delay: 200 * time.Microsecond}
	s := rrset.NewSamplerTriggering(g, slow)
	o, err := NewOnline(s, Options{K: 3, Delta: 0.1, Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := o.AdvanceContext(ctx, 1<<20)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if n <= 0 || n >= 1<<20 {
		t.Fatalf("generated %d RR sets before the deadline", n)
	}
	if int64(n) != o.NumRR() {
		t.Fatalf("reported %d but session holds %d — partial progress must be kept", n, o.NumRR())
	}
	if elapsed > 3*time.Second {
		t.Fatalf("advance returned %v after a 100ms deadline", elapsed)
	}
}

// slowTrigger delays each triggering-set draw without changing it
// (a local stand-in for faultinject.SlowDist, which the server chaos
// tests use; core avoids the extra test dependency).
type slowTrigger struct {
	dist  *trigger.IC
	delay time.Duration
}

func (d *slowTrigger) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	time.Sleep(d.delay)
	return d.dist.SampleTriggering(v, src, buf)
}
