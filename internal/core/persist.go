package core

// Session persistence: an Online session can be saved to disk and resumed
// later — the natural complement to the online-processing paradigm, where
// a user may pause for hours between quality checks. Because RR-set
// generation derives stream i of each half from Split(i) of a seed-keyed
// source, a resumed session continues the exact sample stream the original
// would have produced: save → load → Advance is byte-identical to a
// never-paused session.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// sessionMagic is the current OPIMS5 format: the OPIMS4 layout plus one
// length-prefixed opaque extension blob between the epoch block and the
// RR collections. The blob is owned by the embedding application (opimd
// stores per-session learner state there — Beta posteriors and the
// campaign round machine); core round-trips it without interpretation, so
// the learning subsystem can evolve without another container version.
// OPIMS4 files (which predate the extension, so they load with an empty
// blob), OPIMS3 files (which predate the epoch block, so they load as
// epoch 0), OPIMS2 files (which predate the identity block) and OPIMS1
// files (which predate Exact and BaseSeeds) are still readable; V1/V2
// carry no fingerprint, so loading one cannot verify the graph — callers
// should surface that as an "unverified graph" warning (the daemon does;
// see docs/ROBUSTNESS.md).
const (
	sessionMagic   = "OPIMS5\n"
	sessionMagicV4 = "OPIMS4\n"
	sessionMagicV3 = "OPIMS3\n"
	sessionMagicV2 = "OPIMS2\n"
	sessionMagicV1 = "OPIMS1\n"
)

// maxSessionExt bounds the OPIMS5 extension blob (64 MiB): far beyond any
// realistic posterior table, small enough that a corrupted length field
// cannot drive the loader into a multi-gigabyte allocation.
const maxSessionExt = 64 << 20

// ErrBadSession reports a malformed serialized session.
var ErrBadSession = errors.New("core: bad session format")

// ErrGraphMismatch reports an OPIMS3 session whose recorded graph
// fingerprint does not match the sampler's graph — the same dataset
// reweighted, a different scale, or simply the wrong file. Resuming would
// silently produce guarantees that hold for nothing, so loading refuses.
var ErrGraphMismatch = errors.New("core: session graph fingerprint mismatch")

// SessionMeta is the graph-identity header of a serialized session,
// readable without deserializing the RR collections. LoadSessionResolve
// hands it to the caller so a multi-graph server can pick (or register)
// the right sampler before committing to the expensive part of the load.
type SessionMeta struct {
	// Format is the container version: 1, 2 (no graph identity), 3 (no
	// epoch block) or 4.
	Format int
	// N is the node count recorded in the header.
	N int32
	// GraphFingerprint is graph.Fingerprint() at save time; empty for
	// OPIMS1/2 files.
	GraphFingerprint string
	// GraphSpec is the cliutil.GraphSpec string the graph was loaded from;
	// empty for OPIMS1/2 files or sessions without SetGraphIdentity.
	GraphSpec string
	// GraphName is the catalog name the session referenced; empty outside
	// a catalog.
	GraphName string
	// Epoch is the graph's mutation-batch count at save time, and Lineage
	// its epoch-chain hash (graph.EpochLineage). Zero/empty for pre-OPIMS4
	// files, which always describe an epoch-0 graph.
	Epoch   int64
	Lineage string
	// Ext is the OPIMS5 opaque extension blob (nil for earlier formats or
	// sessions without one). It is also restored onto the loaded Online
	// (Extension); the meta copy lets a resolver inspect application state
	// before committing to the load.
	Ext []byte

	// AcceptStale is set by the LoadSessionResolve resolver (never by the
	// decoder) to accept a sampler whose graph content differs from the
	// file's because mutation batches were applied after the save. The
	// resolver takes on the obligation to verify — through the graph's
	// epoch chain — that the sampler's graph descends from the recorded
	// (fingerprint, epoch), and to call RepairForMutations with the missed
	// batches after the load. With AcceptStale the fingerprint check is
	// skipped and the node count may have grown (node adds); without it a
	// content mismatch is still the hard ErrGraphMismatch.
	AcceptStale bool
}

// Verified reports whether the file carries a graph fingerprint, i.e.
// whether LoadSessionResolve can prove the sampler's graph is the one the
// session was generated on.
func (m *SessionMeta) Verified() bool { return m.GraphFingerprint != "" }

// SaveSession serializes o in OPIMS3 form, recording the sampler graph's
// content fingerprint plus the session's SetGraphIdentity labels.
// LoadSession must be given a sampler equivalent to the original (same
// graph, same model); the fingerprint makes "same graph" checkable instead
// of trusted.
func SaveSession(w io.Writer, o *Online) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sessionMagic); err != nil {
		return err
	}
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(o.sampler.Graph().N()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(o.opts.K))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(o.opts.Delta))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(o.opts.Variant))
	binary.LittleEndian.PutUint64(hdr[24:32], o.opts.Seed)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(o.opts.Workers))
	if o.opts.UnionBudget {
		hdr[36] = 1
	}
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(o.queries))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// OPIMS2 extension: Exact flag + base-seed set. Without these a resumed
	// augmentation session would silently report non-residual σˡ/σᵘ/α and a
	// resumed Exact session would fall back to martingale bounds.
	var ext [5]byte
	if o.opts.Exact {
		ext[0] = 1
	}
	binary.LittleEndian.PutUint32(ext[1:5], uint32(len(o.opts.BaseSeeds)))
	if _, err := bw.Write(ext[:]); err != nil {
		return err
	}
	for _, v := range o.opts.BaseSeeds {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	// OPIMS3 extension: the graph-identity block. The fingerprint is always
	// present (recomputed from the live sampler, so even a session resumed
	// from a legacy file upgrades on its next save); name and spec are
	// whatever SetGraphIdentity recorded, possibly empty.
	for _, s := range []string{o.sampler.Graph().Fingerprint(), o.graphSpec, o.graphName} {
		if err := writeString16(bw, s); err != nil {
			return err
		}
	}
	// OPIMS4 extension: the epoch block, read straight off the sampler's
	// graph — a session repaired onto epoch k checkpoints as epoch k.
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], uint64(o.sampler.Graph().Epoch()))
	if _, err := bw.Write(eb[:]); err != nil {
		return err
	}
	if err := writeString16(bw, o.sampler.Graph().EpochLineage()); err != nil {
		return err
	}
	// OPIMS5 extension: the opaque application blob (length 0 when unset).
	if len(o.ext) > maxSessionExt {
		return fmt.Errorf("core: session extension of %d bytes exceeds format limit", len(o.ext))
	}
	var xl [4]byte
	binary.LittleEndian.PutUint32(xl[:], uint32(len(o.ext)))
	if _, err := bw.Write(xl[:]); err != nil {
		return err
	}
	if _, err := bw.Write(o.ext); err != nil {
		return err
	}
	if err := rrset.WriteCollection(bw, o.r1); err != nil {
		return err
	}
	if err := rrset.WriteCollection(bw, o.r2); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSession restores a session saved by SaveSession onto sampler, which
// must be built over the same graph and diffusion model as the original.
// OPIMS3 files carry the source graph's fingerprint, and a sampler over a
// different graph is refused with ErrGraphMismatch; legacy OPIMS1/2 files
// load with only the node-count guard (use LoadSessionResolve to learn
// whether the graph was actually verified).
func LoadSession(r io.Reader, sampler *rrset.Sampler) (*Online, error) {
	o, _, err := LoadSessionResolve(r, func(*SessionMeta) (*rrset.Sampler, error) {
		return sampler, nil
	})
	return o, err
}

// LoadSessionResolve restores a serialized session, letting the caller
// choose the sampler after seeing the file's graph identity: resolve
// receives the SessionMeta (format version, node count, graph fingerprint/
// spec/name) and returns the sampler to load onto — this is how a
// multi-graph server routes each checkpoint to its own graph, or registers
// a missing one from the recorded spec. An error from resolve aborts the
// load unchanged.
//
// After resolution the sampler's graph is checked against the recorded
// node count (ErrBadSession) and, when the file is OPIMS3, its content
// fingerprint (ErrGraphMismatch) — a reweighted or re-scaled graph loads
// as a hard error, never as silently wrong guarantees.
func LoadSessionResolve(r io.Reader, resolve func(*SessionMeta) (*rrset.Sampler, error)) (*Online, *SessionMeta, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sessionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("%w: short magic: %v", ErrBadSession, err)
	}
	meta := &SessionMeta{}
	switch string(magic) {
	case sessionMagic:
		meta.Format = 5
	case sessionMagicV4:
		meta.Format = 4
	case sessionMagicV3:
		meta.Format = 3
	case sessionMagicV2:
		meta.Format = 2
	case sessionMagicV1:
		meta.Format = 1
	default:
		return nil, nil, fmt.Errorf("%w: magic %q", ErrBadSession, magic)
	}
	var hdr [45]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: short header: %v", ErrBadSession, err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:4]))
	meta.N = n
	opts := Options{
		K:           int(binary.LittleEndian.Uint64(hdr[4:12])),
		Delta:       math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
		Variant:     Variant(binary.LittleEndian.Uint32(hdr[20:24])),
		Seed:        binary.LittleEndian.Uint64(hdr[24:32]),
		Workers:     int(int32(binary.LittleEndian.Uint32(hdr[32:36]))),
		UnionBudget: hdr[36] == 1,
	}
	queries := int(binary.LittleEndian.Uint64(hdr[37:45]))
	if meta.Format >= 2 {
		var ext [5]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: short OPIMS2 extension: %v", ErrBadSession, err)
		}
		opts.Exact = ext[0] == 1
		nBase := binary.LittleEndian.Uint32(ext[1:5])
		if int64(nBase) > int64(n) {
			return nil, nil, fmt.Errorf("%w: %d base seeds on a graph of n=%d", ErrBadSession, nBase, n)
		}
		if nBase > 0 {
			raw := make([]byte, 4*nBase)
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, nil, fmt.Errorf("%w: short base-seed block: %v", ErrBadSession, err)
			}
			opts.BaseSeeds = make([]int32, nBase)
			for i := range opts.BaseSeeds {
				opts.BaseSeeds[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	if meta.Format >= 3 {
		var err error
		if meta.GraphFingerprint, err = readString16(br, "graph fingerprint"); err != nil {
			return nil, nil, err
		}
		if meta.GraphSpec, err = readString16(br, "graph spec"); err != nil {
			return nil, nil, err
		}
		if meta.GraphName, err = readString16(br, "graph name"); err != nil {
			return nil, nil, err
		}
	}
	if meta.Format >= 4 {
		var eb [8]byte
		if _, err := io.ReadFull(br, eb[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: short epoch block: %v", ErrBadSession, err)
		}
		meta.Epoch = int64(binary.LittleEndian.Uint64(eb[:]))
		var err error
		if meta.Lineage, err = readString16(br, "epoch lineage"); err != nil {
			return nil, nil, err
		}
		if meta.Epoch < 0 {
			return nil, nil, fmt.Errorf("%w: negative epoch %d", ErrBadSession, meta.Epoch)
		}
	}
	if meta.Format >= 5 {
		var xl [4]byte
		if _, err := io.ReadFull(br, xl[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: short extension length: %v", ErrBadSession, err)
		}
		extLen := binary.LittleEndian.Uint32(xl[:])
		if extLen > maxSessionExt {
			return nil, nil, fmt.Errorf("%w: extension blob of %d bytes exceeds format limit", ErrBadSession, extLen)
		}
		if extLen > 0 {
			meta.Ext = make([]byte, extLen)
			if _, err := io.ReadFull(br, meta.Ext); err != nil {
				return nil, nil, fmt.Errorf("%w: short extension blob: %v", ErrBadSession, err)
			}
		}
	}

	sampler, err := resolve(meta)
	if err != nil {
		return nil, meta, err
	}
	if got := sampler.Graph().N(); got != n && !(meta.AcceptStale && got > n) {
		return nil, meta, fmt.Errorf("%w: session is for n=%d, sampler has n=%d", ErrBadSession, n, got)
	}
	if meta.Verified() && !meta.AcceptStale {
		if got := sampler.Graph().Fingerprint(); got != meta.GraphFingerprint {
			return nil, meta, fmt.Errorf("%w: session was saved on graph %s, sampler has %s",
				ErrGraphMismatch, meta.GraphFingerprint, got)
		}
	}
	if err := opts.validate(n); err != nil {
		return nil, meta, fmt.Errorf("%w: %v", ErrBadSession, err)
	}

	r1, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, meta, err
	}
	r2, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, meta, err
	}
	if r1.N() != n || r2.N() != n {
		return nil, meta, fmt.Errorf("%w: collections sized for a different graph", ErrBadSession)
	}

	root := rng.New(opts.Seed)
	return &Online{
		sampler:   sampler,
		opts:      opts,
		r1:        r1,
		r2:        r2,
		base1:     root.Split(1),
		base2:     root.Split(2),
		queries:   queries,
		start:     time.Now(),
		scratch:   newSnapScratch(),
		graphName: meta.GraphName,
		graphSpec: meta.GraphSpec,
		ext:       meta.Ext,
	}, meta, nil
}

// writeString16 writes a uint16-length-prefixed string (the graph-identity
// block's encoding; 64KB is far beyond any fingerprint, spec or name).
func writeString16(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("core: identity string of %d bytes exceeds format limit", len(s))
	}
	var lb [2]byte
	binary.LittleEndian.PutUint16(lb[:], uint16(len(s)))
	if _, err := w.Write(lb[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readString16 reads a uint16-length-prefixed string, labeling errors with
// what the string was supposed to be.
func readString16(r io.Reader, what string) (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", fmt.Errorf("%w: short %s length: %v", ErrBadSession, what, err)
	}
	n := binary.LittleEndian.Uint16(lb[:])
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: short %s: %v", ErrBadSession, what, err)
	}
	return string(buf), nil
}
