package core

// Session persistence: an Online session can be saved to disk and resumed
// later — the natural complement to the online-processing paradigm, where
// a user may pause for hours between quality checks. Because RR-set
// generation derives stream i of each half from Split(i) of a seed-keyed
// source, a resumed session continues the exact sample stream the original
// would have produced: save → load → Advance is byte-identical to a
// never-paused session.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// sessionMagic is the current OPIMS2 format: the OPIMS1 header plus the
// Options.Exact flag and the BaseSeeds set. OPIMS1 files (which predate
// both fields) are still readable; resuming one yields Exact=false and no
// base seeds, matching what OPIMS1 could express.
const (
	sessionMagic   = "OPIMS2\n"
	sessionMagicV1 = "OPIMS1\n"
)

// ErrBadSession reports a malformed serialized session.
var ErrBadSession = errors.New("core: bad session format")

// SaveSession serializes o. The graph and diffusion model are NOT saved;
// LoadSession must be given a sampler equivalent to the original (same
// graph, same model) — it checks the node count as a cheap guard.
func SaveSession(w io.Writer, o *Online) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sessionMagic); err != nil {
		return err
	}
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(o.sampler.Graph().N()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(o.opts.K))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(o.opts.Delta))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(o.opts.Variant))
	binary.LittleEndian.PutUint64(hdr[24:32], o.opts.Seed)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(o.opts.Workers))
	if o.opts.UnionBudget {
		hdr[36] = 1
	}
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(o.queries))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// OPIMS2 extension: Exact flag + base-seed set. Without these a resumed
	// augmentation session would silently report non-residual σˡ/σᵘ/α and a
	// resumed Exact session would fall back to martingale bounds.
	var ext [5]byte
	if o.opts.Exact {
		ext[0] = 1
	}
	binary.LittleEndian.PutUint32(ext[1:5], uint32(len(o.opts.BaseSeeds)))
	if _, err := bw.Write(ext[:]); err != nil {
		return err
	}
	for _, v := range o.opts.BaseSeeds {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	if err := rrset.WriteCollection(bw, o.r1); err != nil {
		return err
	}
	if err := rrset.WriteCollection(bw, o.r2); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSession restores a session saved by SaveSession onto sampler, which
// must be built over the same graph and diffusion model as the original.
// Both the current OPIMS2 format and the legacy OPIMS1 format load.
func LoadSession(r io.Reader, sampler *rrset.Sampler) (*Online, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sessionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadSession, err)
	}
	if string(magic) != sessionMagic && string(magic) != sessionMagicV1 {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSession, magic)
	}
	var hdr [45]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSession, err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:4]))
	if n != sampler.Graph().N() {
		return nil, fmt.Errorf("%w: session is for n=%d, sampler has n=%d", ErrBadSession, n, sampler.Graph().N())
	}
	opts := Options{
		K:           int(binary.LittleEndian.Uint64(hdr[4:12])),
		Delta:       math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
		Variant:     Variant(binary.LittleEndian.Uint32(hdr[20:24])),
		Seed:        binary.LittleEndian.Uint64(hdr[24:32]),
		Workers:     int(int32(binary.LittleEndian.Uint32(hdr[32:36]))),
		UnionBudget: hdr[36] == 1,
	}
	queries := int(binary.LittleEndian.Uint64(hdr[37:45]))
	if string(magic) == sessionMagic {
		var ext [5]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return nil, fmt.Errorf("%w: short OPIMS2 extension: %v", ErrBadSession, err)
		}
		opts.Exact = ext[0] == 1
		nBase := binary.LittleEndian.Uint32(ext[1:5])
		if int64(nBase) > int64(n) {
			return nil, fmt.Errorf("%w: %d base seeds on a graph of n=%d", ErrBadSession, nBase, n)
		}
		if nBase > 0 {
			raw := make([]byte, 4*nBase)
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, fmt.Errorf("%w: short base-seed block: %v", ErrBadSession, err)
			}
			opts.BaseSeeds = make([]int32, nBase)
			for i := range opts.BaseSeeds {
				opts.BaseSeeds[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	if err := opts.validate(n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
	}

	r1, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, err
	}
	r2, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, err
	}
	if r1.N() != n || r2.N() != n {
		return nil, fmt.Errorf("%w: collections sized for a different graph", ErrBadSession)
	}

	root := rng.New(opts.Seed)
	return &Online{
		sampler: sampler,
		opts:    opts,
		r1:      r1,
		r2:      r2,
		base1:   root.Split(1),
		base2:   root.Split(2),
		queries: queries,
		start:   time.Now(),
		scratch: newSnapScratch(),
	}, nil
}
