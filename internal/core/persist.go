package core

// Session persistence: an Online session can be saved to disk and resumed
// later — the natural complement to the online-processing paradigm, where
// a user may pause for hours between quality checks. Because RR-set
// generation derives stream i of each half from Split(i) of a seed-keyed
// source, a resumed session continues the exact sample stream the original
// would have produced: save → load → Advance is byte-identical to a
// never-paused session.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

const sessionMagic = "OPIMS1\n"

// ErrBadSession reports a malformed serialized session.
var ErrBadSession = errors.New("core: bad session format")

// SaveSession serializes o. The graph and diffusion model are NOT saved;
// LoadSession must be given a sampler equivalent to the original (same
// graph, same model) — it checks the node count as a cheap guard.
func SaveSession(w io.Writer, o *Online) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sessionMagic); err != nil {
		return err
	}
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(o.sampler.Graph().N()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(o.opts.K))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(o.opts.Delta))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(o.opts.Variant))
	binary.LittleEndian.PutUint64(hdr[24:32], o.opts.Seed)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(o.opts.Workers))
	if o.opts.UnionBudget {
		hdr[36] = 1
	}
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(o.queries))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := rrset.WriteCollection(bw, o.r1); err != nil {
		return err
	}
	if err := rrset.WriteCollection(bw, o.r2); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSession restores a session saved by SaveSession onto sampler, which
// must be built over the same graph and diffusion model as the original.
func LoadSession(r io.Reader, sampler *rrset.Sampler) (*Online, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sessionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadSession, err)
	}
	if string(magic) != sessionMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSession, magic)
	}
	var hdr [45]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSession, err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:4]))
	if n != sampler.Graph().N() {
		return nil, fmt.Errorf("%w: session is for n=%d, sampler has n=%d", ErrBadSession, n, sampler.Graph().N())
	}
	opts := Options{
		K:           int(binary.LittleEndian.Uint64(hdr[4:12])),
		Delta:       math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
		Variant:     Variant(binary.LittleEndian.Uint32(hdr[20:24])),
		Seed:        binary.LittleEndian.Uint64(hdr[24:32]),
		Workers:     int(int32(binary.LittleEndian.Uint32(hdr[32:36]))),
		UnionBudget: hdr[36] == 1,
	}
	if err := opts.validate(n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
	}
	queries := int(binary.LittleEndian.Uint64(hdr[37:45]))

	r1, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, err
	}
	r2, err := rrset.ReadCollection(br)
	if err != nil {
		return nil, err
	}
	if r1.N() != n || r2.N() != n {
		return nil, fmt.Errorf("%w: collections sized for a different graph", ErrBadSession)
	}

	root := rng.New(opts.Seed)
	return &Online{
		sampler: sampler,
		opts:    opts,
		r1:      r1,
		r2:      r2,
		base1:   root.Split(1),
		base2:   root.Split(2),
		queries: queries,
		start:   time.Now(),
		scratch: newSnapScratch(),
	}, nil
}
