package maxcover

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

func TestGreedyAugmentEmptyBaseMatchesGreedy(t *testing.T) {
	c := collect(5, [][]int32{{0, 1}, {0}, {1, 2}, {3}, {4, 0}})
	a := Greedy(c, 3)
	b := GreedyAugment(c, nil, 3)
	if a.Coverage != b.Coverage {
		t.Fatalf("coverage %d vs %d", a.Coverage, b.Coverage)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs: %v vs %v", i, a.Seeds, b.Seeds)
		}
	}
}

func TestGreedyAugmentExcludesBase(t *testing.T) {
	c := collect(4, [][]int32{{0}, {0}, {0}, {1}, {2}})
	// Node 0 dominates but is already committed: augmentation must pick
	// from the rest and count only residual coverage.
	r := GreedyAugment(c, []int32{0}, 2)
	for _, s := range r.Seeds {
		if s == 0 {
			t.Fatalf("base node reselected: %v", r.Seeds)
		}
	}
	if r.Coverage != 2 { // sets {1} and {2}
		t.Fatalf("residual coverage = %d, want 2", r.Coverage)
	}
}

func TestGreedyAugmentResidualSemantics(t *testing.T) {
	c := collect(4, [][]int32{{0, 1}, {1}, {2}, {2, 3}})
	// Base {1} covers sets 0 and 1. Residual marginals: node 2 → 2, node 3 → 1.
	r := GreedyAugment(c, []int32{1}, 1)
	if len(r.Seeds) != 1 || r.Seeds[0] != 2 {
		t.Fatalf("seeds = %v, want [2]", r.Seeds)
	}
	if r.Coverage != 2 {
		t.Fatalf("coverage = %d, want 2", r.Coverage)
	}
}

func TestGreedyAugmentKClamp(t *testing.T) {
	c := collect(3, [][]int32{{0}, {1}})
	r := GreedyAugment(c, []int32{0, 0, 1}, 5) // duplicates in base
	if len(r.Seeds) != 1 || r.Seeds[0] != 2 {
		t.Fatalf("seeds = %v, want just node 2", r.Seeds)
	}
}

func TestGreedyAugmentBoundsResidualUniverse(t *testing.T) {
	c := collect(4, [][]int32{{0}, {0}, {1}, {2}, {3}})
	r := GreedyAugmentWithBounds(c, []int32{0}, 2)
	// Residual universe: 3 uncovered sets; bounds must be capped by it.
	if r.LambdaU > 3 || r.LambdaDiamond > 3 {
		t.Fatalf("bounds exceed residual universe: Λᵘ=%d Λ⋄=%d", r.LambdaU, r.LambdaDiamond)
	}
	if r.LambdaU < r.Coverage {
		t.Fatalf("Λᵘ=%d below achieved residual coverage %d", r.LambdaU, r.Coverage)
	}
}

func TestGreedyAugmentOnRealCollection(t *testing.T) {
	g, _ := gen.PreferentialAttachment(600, 6, 0.15, 3)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 4000, rng.New(4), 4)
	base := Greedy(c, 5).Seeds
	aug := GreedyAugmentWithBounds(c, base, 5)
	// Residual gain must equal Λ(base∪aug) − Λ(base) exactly.
	both := append(append([]int32{}, base...), aug.Seeds...)
	want := c.Coverage(both) - c.Coverage(base)
	if aug.Coverage != want {
		t.Fatalf("residual coverage %d, direct computation %d", aug.Coverage, want)
	}
	// Augmentation after the first 5 greedy picks should equal picks 6–10
	// of a single 10-seed greedy run (greedy is order-consistent).
	full := Greedy(c, 10)
	for i := 0; i < 5; i++ {
		if full.Seeds[5+i] != aug.Seeds[i] {
			t.Fatalf("augment diverged from greedy continuation at %d: %v vs %v", i, full.Seeds[5:], aug.Seeds)
		}
	}
}
