package maxcover

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// randomCollection builds a synthetic collection of count RR sets over n
// nodes where each node joins each set independently with probability
// density — direct control over the regime that drives kernel selection.
func randomCollection(t testing.TB, n int32, count int, density float64, seed int64) *rrset.Collection {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	c := rrset.NewCollection(n)
	var nodes []int32
	for i := 0; i < count; i++ {
		nodes = nodes[:0]
		for v := int32(0); v < n; v++ {
			if r.Float64() < density {
				nodes = append(nodes, v)
			}
		}
		// Keep at least the root node so no set is empty.
		if len(nodes) == 0 {
			nodes = append(nodes, r.Int31n(n))
		}
		c.Add(nodes, int64(len(nodes)))
	}
	return c
}

// requireEqualResults fails unless a and b agree on every Result field.
func requireEqualResults(t *testing.T, ctx string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: kernels disagree:\n counting: %+v\n bitset:   %+v", ctx, a, b)
	}
}

// TestKernelsIdenticalProperty is the property test pinning the tentpole
// invariant: the packed-bitset kernel and the counting greedy return
// byte-identical Results — seeds, Coverage, PrefixCoverage, Λ1ᵘ, Λ1⋄ —
// across random densities, node counts crossing word boundaries, and k
// values, in all three bounds modes.
func TestKernelsIdenticalProperty(t *testing.T) {
	counting, bitset := NewScratch(), NewScratch()
	counting.SetKernel(KernelCounting)
	bitset.SetKernel(KernelBitset)

	cases := 0
	for _, n := range []int32{1, 7, 63, 64, 65, 200} {
		for _, count := range []int{1, 63, 64, 65, 129, 1000} {
			for _, density := range []float64{0.01, 0.05, 0.25, 0.7} {
				c := randomCollection(t, n, count, density, int64(n)*10007+int64(count)*31+int64(density*100))
				for _, k := range []int{0, 1, 3, int(n), int(n) + 5} {
					ctx := fmt.Sprintf("n=%d count=%d density=%.2f k=%d", n, count, density, k)
					requireEqualResults(t, ctx+" plain", counting.Greedy(c, k), bitset.Greedy(c, k))
					requireEqualResults(t, ctx+" bounds", counting.GreedyWithBounds(c, k), bitset.GreedyWithBounds(c, k))
					requireEqualResults(t, ctx+" diamond", counting.GreedyWithDiamond(c, k), bitset.GreedyWithDiamond(c, k))
					cases++
				}
			}
		}
	}
	t.Logf("verified %d cases", cases)
}

// TestKernelsIdenticalOnSampledCollections repeats the identity check on
// genuinely sampled RR collections (IC and LT on a preferential-attachment
// graph), the distributional regime the daemon actually serves, including
// incremental growth between runs — the session snapshot pattern.
func TestKernelsIdenticalOnSampledCollections(t *testing.T) {
	g, err := gen.PreferentialAttachment(300, 6, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	counting, bitset := NewScratch(), NewScratch()
	counting.SetKernel(KernelCounting)
	bitset.SetKernel(KernelBitset)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := rrset.NewSampler(g, model)
		c := rrset.NewCollection(g.N())
		for _, grow := range []int{500, 1500, 6000} {
			rrset.Generate(c, s, grow, rng.New(42), 4)
			for _, k := range []int{1, 10, 50} {
				ctx := fmt.Sprintf("model=%v count=%d k=%d", model, c.Count(), k)
				requireEqualResults(t, ctx, counting.GreedyWithBounds(c, k), bitset.GreedyWithBounds(c, k))
				requireEqualResults(t, ctx+" diamond", counting.GreedyWithDiamond(c, k), bitset.GreedyWithDiamond(c, k))
			}
		}
	}
}

// TestChooseKernel pins the decision rule's edges: degenerate inputs fall
// back to counting, dense-and-small picks bitset, and the memory cap wins
// over density.
func TestChooseKernel(t *testing.T) {
	dense := randomCollection(t, 512, 2048, 0.5, 1)
	if got := ChooseKernel(dense, 20); got != KernelBitset {
		t.Errorf("dense collection: ChooseKernel = %v, want bitset", got)
	}
	sparse := randomCollection(t, 512, 2048, 0.002, 2)
	if got := ChooseKernel(sparse, 200); got != KernelCounting {
		t.Errorf("sparse collection: ChooseKernel = %v, want counting", got)
	}
	if got := ChooseKernel(rrset.NewCollection(512), 20); got != KernelCounting {
		t.Errorf("empty collection: ChooseKernel = %v, want counting", got)
	}
	if got := ChooseKernel(dense, 0); got != KernelCounting {
		t.Errorf("k=0: ChooseKernel = %v, want counting", got)
	}
}

// TestScratchKernelReuse runs both kernels interleaved on one Scratch pair
// across collections of different shapes, catching stale-state bugs in the
// reused row/uncovered buffers.
func TestScratchKernelReuse(t *testing.T) {
	counting, bitset := NewScratch(), NewScratch()
	counting.SetKernel(KernelCounting)
	bitset.SetKernel(KernelBitset)
	shapes := []struct {
		n       int32
		count   int
		density float64
	}{{100, 500, 0.3}, {40, 2000, 0.1}, {150, 64, 0.8}, {100, 500, 0.3}}
	for i, sh := range shapes {
		c := randomCollection(t, sh.n, sh.count, sh.density, int64(i))
		requireEqualResults(t, fmt.Sprintf("reuse step %d", i),
			counting.GreedyWithBounds(c, 10), bitset.GreedyWithBounds(c, 10))
	}
}

// BenchmarkGreedyKernels is the tracked hot-path benchmark behind the
// BENCH_opim.json trajectory (docs/PERFORMANCE.md): counting vs bitset
// GreedyWithBounds on a dense RR collection. CI hard-fails when the
// bitset/counting ratio drops below 1.5× (cmd/benchjson -ratio).
func BenchmarkGreedyKernels(b *testing.B) {
	c := randomCollection(b, 2048, 16384, 0.5, 1)
	for _, kern := range []Kernel{KernelCounting, KernelBitset} {
		b.Run(kern.String(), func(b *testing.B) {
			sc := NewScratch()
			sc.SetKernel(kern)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := sc.GreedyWithBounds(c, 50); len(res.Seeds) != 50 {
					b.Fatalf("got %d seeds", len(res.Seeds))
				}
			}
		})
	}
}

// BenchmarkGreedyKernelsSparse is the counterpoint workload: a sparse
// collection where ChooseKernel must keep routing to the counting walk.
// Tracked so the auto rule's break-even stays honest over time.
func BenchmarkGreedyKernelsSparse(b *testing.B) {
	c := randomCollection(b, 8192, 8192, 0.004, 1)
	for _, kern := range []Kernel{KernelCounting, KernelBitset} {
		b.Run(kern.String(), func(b *testing.B) {
			sc := NewScratch()
			sc.SetKernel(kern)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.GreedyWithBounds(c, 50)
			}
		})
	}
}
