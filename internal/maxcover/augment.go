package maxcover

import "github.com/reprolab/opim/internal/rrset"

// GreedyAugment runs Algorithm 1 on the RESIDUAL coverage function given a
// base seed set that is already committed: it returns the k nodes that
// greedily maximize Λ(base ∪ S) − Λ(base). The residual of a monotone
// submodular function is itself monotone submodular, so the (1−1/e)
// guarantee — and therefore the whole OPIM bound machinery — applies to
// the augmentation problem unchanged. This is the "grow an existing
// campaign" workflow: the base nodes are excluded from selection and their
// covered RR sets contribute nothing to marginals.
//
// The returned Result's Coverage and bound fields are all with respect to
// the residual function; PrefixCoverage[0] = 0 still.
func GreedyAugment(c *rrset.Collection, base []int32, k int) *Result {
	return NewScratch().GreedyAugment(c, base, k)
}

// GreedyAugmentWithBounds additionally computes the residual-function
// versions of Λ1ᵘ (eq. 10) and Λ1⋄.
func GreedyAugmentWithBounds(c *rrset.Collection, base []int32, k int) *Result {
	return NewScratch().GreedyAugmentWithBounds(c, base, k)
}

// GreedyAugment is the scratch-reusing form of the package-level
// GreedyAugment.
func (sc *Scratch) GreedyAugment(c *rrset.Collection, base []int32, k int) *Result {
	return sc.runAugment(c, base, k, boundsNone)
}

// GreedyAugmentWithBounds is the scratch-reusing form of
// GreedyAugmentWithBounds.
func (sc *Scratch) GreedyAugmentWithBounds(c *rrset.Collection, base []int32, k int) *Result {
	return sc.runAugment(c, base, k, boundsAll)
}

func (sc *Scratch) runAugment(c *rrset.Collection, base []int32, k int, mode boundsMode) *Result {
	n := int(c.N())
	count := c.Count()
	sc.reset(n, count)

	// Commit the base: mark its sets covered and its nodes unselectable.
	free := n
	for _, v := range base {
		if sc.chosen[v] != sc.epoch {
			sc.chosen[v] = sc.epoch
			free--
		}
		for _, id := range c.SetsCoveringShared(v) {
			sc.covered[id] = sc.epoch
		}
	}
	if k > free {
		k = free
	}
	if k < 0 {
		k = 0
	}

	// cov[v] = residual marginal coverage of v.
	cov := sc.cov[:n]
	for v := 0; v < n; v++ {
		cov[v] = 0
		if sc.chosen[v] == sc.epoch {
			continue
		}
		for _, id := range c.SetsCoveringShared(int32(v)) {
			if sc.covered[id] != sc.epoch {
				cov[v]++
			}
		}
	}

	res := &Result{
		Seeds:          make([]int32, 0, k),
		PrefixCoverage: make([]int64, 1, k+1),
	}
	var top []int64
	if mode != boundsNone {
		top = sc.top[:n]
		res.HasBounds = true
		res.LambdaU = int64(1) << 62
	}

	var total int64
	residualUniverse := int64(0)
	for id := 0; id < count; id++ {
		if sc.covered[id] != sc.epoch {
			residualUniverse++
		}
	}
	for i := 0; i < k; i++ {
		if mode == boundsAll {
			if cand := total + topKSum(cov, top, k); cand < res.LambdaU {
				res.LambdaU = cand
			}
		}
		best := -1
		var bestCov int64 = -1
		for v := 0; v < n; v++ {
			if sc.chosen[v] != sc.epoch && cov[v] > bestCov {
				best = v
				bestCov = cov[v]
			}
		}
		if best < 0 {
			break
		}
		sc.chosen[best] = sc.epoch
		res.Seeds = append(res.Seeds, int32(best))
		total += bestCov
		for _, id := range c.SetsCoveringShared(int32(best)) {
			if sc.covered[id] == sc.epoch {
				continue
			}
			sc.covered[id] = sc.epoch
			for _, w := range c.Set(id) {
				cov[w]--
			}
		}
		res.PrefixCoverage = append(res.PrefixCoverage, total)
	}
	res.Coverage = total

	if mode != boundsNone {
		topSum := topKSum(cov, top, k)
		if cand := total + topSum; cand < res.LambdaU {
			res.LambdaU = cand
		}
		res.LambdaDiamond = total + topSum
		if res.LambdaU > residualUniverse {
			res.LambdaU = residualUniverse
		}
		if res.LambdaDiamond > residualUniverse {
			res.LambdaDiamond = residualUniverse
		}
	}
	return res
}
