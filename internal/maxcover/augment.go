package maxcover

import "github.com/reprolab/opim/internal/rrset"

// GreedyAugment runs Algorithm 1 on the RESIDUAL coverage function given a
// base seed set that is already committed: it returns the k nodes that
// greedily maximize Λ(base ∪ S) − Λ(base). The residual of a monotone
// submodular function is itself monotone submodular, so the (1−1/e)
// guarantee — and therefore the whole OPIM bound machinery — applies to
// the augmentation problem unchanged. This is the "grow an existing
// campaign" workflow: the base nodes are excluded from selection and their
// covered RR sets contribute nothing to marginals.
//
// The returned Result's Coverage and bound fields are all with respect to
// the residual function; PrefixCoverage[0] = 0 still.
func GreedyAugment(c *rrset.Collection, base []int32, k int) *Result {
	return runAugment(c, base, k, boundsNone)
}

// GreedyAugmentWithBounds additionally computes the residual-function
// versions of Λ1ᵘ (eq. 10) and Λ1⋄.
func GreedyAugmentWithBounds(c *rrset.Collection, base []int32, k int) *Result {
	return runAugment(c, base, k, boundsAll)
}

func runAugment(c *rrset.Collection, base []int32, k int, mode boundsMode) *Result {
	n := int(c.N())
	count := c.Count()

	covered := make([]bool, count)
	chosen := make([]bool, n)
	// Commit the base: mark its sets covered and its nodes unselectable.
	for _, v := range base {
		chosen[v] = true
		for _, id := range c.SetsCovering(v) {
			covered[id] = true
		}
	}
	free := n - distinct(base)
	if k > free {
		k = free
	}
	if k < 0 {
		k = 0
	}

	// cov[v] = residual marginal coverage of v.
	cov := make([]int64, n)
	for v := 0; v < n; v++ {
		if chosen[v] {
			continue
		}
		for _, id := range c.SetsCovering(int32(v)) {
			if !covered[id] {
				cov[v]++
			}
		}
	}

	res := &Result{
		Seeds:          make([]int32, 0, k),
		PrefixCoverage: make([]int64, 1, k+1),
	}
	var scratch []int64
	if mode != boundsNone {
		scratch = make([]int64, n)
		res.HasBounds = true
		res.LambdaU = int64(1) << 62
	}

	var total int64
	residualUniverse := int64(0)
	for id := 0; id < count; id++ {
		if !covered[id] {
			residualUniverse++
		}
	}
	for i := 0; i < k; i++ {
		if mode == boundsAll {
			if cand := total + topKSum(cov, scratch, k); cand < res.LambdaU {
				res.LambdaU = cand
			}
		}
		best := -1
		var bestCov int64 = -1
		for v := 0; v < n; v++ {
			if !chosen[v] && cov[v] > bestCov {
				best = v
				bestCov = cov[v]
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		res.Seeds = append(res.Seeds, int32(best))
		total += bestCov
		for _, id := range c.SetsCovering(int32(best)) {
			if covered[id] {
				continue
			}
			covered[id] = true
			for _, w := range c.Set(id) {
				cov[w]--
			}
		}
		res.PrefixCoverage = append(res.PrefixCoverage, total)
	}
	res.Coverage = total

	if mode != boundsNone {
		top := topKSum(cov, scratch, k)
		if cand := total + top; cand < res.LambdaU {
			res.LambdaU = cand
		}
		res.LambdaDiamond = total + top
		if res.LambdaU > residualUniverse {
			res.LambdaU = residualUniverse
		}
		if res.LambdaDiamond > residualUniverse {
			res.LambdaDiamond = residualUniverse
		}
	}
	return res
}

func distinct(s []int32) int {
	seen := make(map[int32]struct{}, len(s))
	for _, v := range s {
		seen[v] = struct{}{}
	}
	return len(seen)
}
