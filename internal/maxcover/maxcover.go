// Package maxcover implements Algorithm 1 of the paper — the greedy
// maximum-coverage seed selection over a collection of RR sets — together
// with the per-prefix coverage traces that §5's tightened upper bounds
// need:
//
//   - Λ1(S_i*) for every greedy prefix S_i* (i = 0 … k),
//   - Λ1ᵘ(S°) of eq. (10): min_i ( Λ1(S_i*) + Σ_{v∈maxMC(S_i*,k)} Λ1(v|S_i*) ),
//   - Λ1⋄(S°), the Leskovec-style bound used by the OPIM′ variant.
//
// Two selection kernels produce provably identical Results (bitset.go):
// the counting variant maintains the marginal coverage of every node and,
// when a node is selected, walks the newly covered RR sets decrementing
// their members' marginals — O(Σ_{R∈R1} |R|) total; on dense collections a
// packed-bitset kernel instead updates marginals word-parallel via
// popcounts over per-node membership rows. ChooseKernel picks per run
// (density-gated, memory-capped); each maxMC top-k sum is an O(n)
// quickselect either way, adding the O(kn) term of Table 1.
//
// All selection state (marginal arrays, epoch-marked covered/chosen flags,
// the quickselect buffer, the CELF heap) lives in a reusable Scratch so a
// long-lived session pays zero selection allocations per snapshot beyond
// the returned Result. The package-level functions are compatibility
// wrappers that allocate a fresh Scratch per call.
package maxcover

import "github.com/reprolab/opim/internal/rrset"

// Result carries the greedy seed set and every coverage statistic the
// bound computations consume.
type Result struct {
	// Seeds is S* in selection order (size min(k, n)).
	Seeds []int32
	// Coverage is Λ1(S*), the number of RR sets covered by the full seed set.
	Coverage int64
	// PrefixCoverage[i] is Λ1(S_i*), i = 0 … len(Seeds); PrefixCoverage[0] = 0.
	PrefixCoverage []int64
	// LambdaU is Λ1ᵘ(S°) per eq. (10); 0 unless computed with WithBounds.
	LambdaU int64
	// LambdaDiamond is Λ1⋄(S°) (Leskovec bound); 0 unless WithBounds.
	LambdaDiamond int64
	// HasBounds reports whether LambdaU/LambdaDiamond were computed.
	HasBounds bool
}

// boundsMode selects which §5 upper bounds run computes alongside the
// greedy selection.
type boundsMode int

const (
	boundsNone    boundsMode = iota // plain Algorithm 1
	boundsAll                       // Λ1ᵘ (eq. 10, O(kn) extra) and Λ1⋄
	boundsDiamond                   // Λ1⋄ only (O(n) extra) — Table 1's OPIM′ row
)

// Scratch holds the reusable buffers of greedy selection. The covered and
// chosen flags are epoch-marked, so reuse costs one counter bump instead
// of clearing count- and n-sized arrays; the marginal and quickselect
// arrays are overwritten in full each run. A Scratch adapts to whatever
// collection size and node count it is handed (growing monotonically) and
// may be reused across collections; it is not safe for concurrent use —
// keep one per goroutine or session.
type Scratch struct {
	cov     []int64  // marginal coverage per node
	covered []uint32 // epoch mark per RR-set id
	chosen  []uint32 // epoch mark per node
	top     []int64  // quickselect buffer for topKSum
	heap    lazyHeap // CELF heap storage (GreedyLazy only)
	epoch   uint32

	// Packed-bitset kernel state (bitset.go); sized lazily, only when
	// ChooseKernel routes a run to the word-parallel path. rows is cached
	// across runs keyed on (rowsC, rowsN): a same-pointer collection that
	// grew since the last run only encodes its new sets (Collections are
	// append-only), which also pins rowsC against address reuse.
	kernel    Kernel            // sticky preference; KernelAuto decides per run
	rows      []uint64          // n × stride packed RR-membership rows
	rowsC     *rrset.Collection // collection rows currently mirror (nil = cold)
	rowsN     int               // node count rows were laid out for
	rowsCount int               // sets encoded in rows
	stride    int               // words per row (power of two ≥ needed words)
	uncov     []uint64          // uncovered-set bitset, words long
	dbuf      []uint64          // newly-covered word deltas of the latest selection
	dnz       []int32           // indices of nonzero dbuf words
}

// NewScratch returns an empty Scratch; buffers are sized lazily on first
// use.
func NewScratch() *Scratch { return &Scratch{} }

// reset sizes the buffers for a run over n nodes and count sets and opens
// a fresh epoch. Freshly allocated zero marks can never equal a live epoch,
// so growth needs no copying of stale marks.
func (sc *Scratch) reset(n, count int) {
	if len(sc.cov) < n {
		sc.cov = make([]int64, n)
		sc.chosen = make([]uint32, n)
		sc.top = make([]int64, n)
	}
	if len(sc.covered) < count {
		sc.covered = make([]uint32, count)
	}
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.covered {
			sc.covered[i] = 0
		}
		for i := range sc.chosen {
			sc.chosen[i] = 0
		}
		sc.epoch = 1
	}
}

// Greedy runs Algorithm 1 on c for a size-k seed set. Ties are broken by
// smallest node id, so the result is deterministic.
func Greedy(c *rrset.Collection, k int) *Result {
	return NewScratch().Greedy(c, k)
}

// GreedyWithBounds runs Algorithm 1 and additionally computes the §5 upper
// bounds Λ1ᵘ(S°) (eq. 10) and Λ1⋄(S°). This costs an extra O(kn) on top of
// plain selection, exactly as Table 1 states.
func GreedyWithBounds(c *rrset.Collection, k int) *Result {
	return NewScratch().GreedyWithBounds(c, k)
}

// GreedyWithDiamond runs Algorithm 1 and computes only the Leskovec-style
// bound Λ1⋄(S°) (one O(n) top-k selection at the final prefix), matching
// Table 1's O(n + Σ|R|) complexity for the OPIM′ variant. LambdaU is left 0.
func GreedyWithDiamond(c *rrset.Collection, k int) *Result {
	return NewScratch().GreedyWithDiamond(c, k)
}

// Greedy is the scratch-reusing form of the package-level Greedy.
func (sc *Scratch) Greedy(c *rrset.Collection, k int) *Result {
	return sc.run(c, k, boundsNone)
}

// GreedyWithBounds is the scratch-reusing form of GreedyWithBounds.
func (sc *Scratch) GreedyWithBounds(c *rrset.Collection, k int) *Result {
	return sc.run(c, k, boundsAll)
}

// GreedyWithDiamond is the scratch-reusing form of GreedyWithDiamond.
func (sc *Scratch) GreedyWithDiamond(c *rrset.Collection, k int) *Result {
	return sc.run(c, k, boundsDiamond)
}

func (sc *Scratch) run(c *rrset.Collection, k int, mode boundsMode) *Result {
	kern := sc.kernel
	if kern == KernelAuto {
		kern = ChooseKernel(c, k)
	}
	if kern == KernelBitset {
		return sc.runBitset(c, k, mode)
	}
	n := int(c.N())
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	count := c.Count()
	sc.reset(n, count)

	// cov[v] = Λ1(v | S_i*): marginal coverage given the current prefix.
	cov := sc.cov[:n]
	for v := 0; v < n; v++ {
		cov[v] = int64(c.Degree(int32(v)))
	}

	res := &Result{
		Seeds:          make([]int32, 0, k),
		PrefixCoverage: make([]int64, 1, k+1),
	}

	var top []int64
	if mode != boundsNone {
		top = sc.top[:n]
		res.HasBounds = true
		res.LambdaU = int64(1) << 62
	}

	var total int64
	for i := 0; i < k; i++ {
		if mode == boundsAll {
			// Bound candidate for prefix S_i* (before selecting node i+1):
			// Λ1(S_i*) + Σ of the k largest marginals.
			cand := total + topKSum(cov, top, k)
			if cand < res.LambdaU {
				res.LambdaU = cand
			}
		}

		// argmax_v cov[v] over unchosen nodes, smallest id wins ties.
		best := -1
		var bestCov int64 = -1
		for v := 0; v < n; v++ {
			if sc.chosen[v] != sc.epoch && cov[v] > bestCov {
				best = v
				bestCov = cov[v]
			}
		}
		if best < 0 {
			break
		}
		sc.chosen[best] = sc.epoch
		res.Seeds = append(res.Seeds, int32(best))
		total += bestCov

		// Mark best's uncovered sets covered and update marginals.
		for _, id := range c.SetsCoveringShared(int32(best)) {
			if sc.covered[id] == sc.epoch {
				continue
			}
			sc.covered[id] = sc.epoch
			for _, w := range c.Set(id) {
				cov[w]--
			}
		}
		res.PrefixCoverage = append(res.PrefixCoverage, total)
	}
	res.Coverage = total

	if mode != boundsNone {
		// Final prefix S_k* contributes both the last eq. (10) candidate and
		// the Leskovec bound Λ1⋄(S°).
		topSum := topKSum(cov, top, k)
		if cand := total + topSum; cand < res.LambdaU {
			res.LambdaU = cand
		}
		res.LambdaDiamond = total + topSum
		if res.LambdaU > int64(count) {
			res.LambdaU = int64(count) // Λ1(S°) can never exceed |R1|
		}
		if res.LambdaDiamond > int64(count) {
			res.LambdaDiamond = int64(count)
		}
		if mode == boundsDiamond {
			res.LambdaU = 0 // not computed in the O(n + Σ|R|) mode
		}
	}
	return res
}

// topKSum returns the sum of the k largest values in vals, copying them
// into scratch and running an average-O(n) quickselect. vals is not
// modified. k ≥ len(vals) sums everything.
func topKSum(vals, scratch []int64, k int) int64 {
	n := len(vals)
	if k <= 0 {
		return 0
	}
	if k >= n {
		var s int64
		for _, v := range vals {
			s += v
		}
		return s
	}
	s := scratch[:n]
	copy(s, vals)
	selectTopK(s, k)
	var sum int64
	for _, v := range s[:k] {
		sum += v
	}
	return sum
}

// selectTopK partitions s so that its k largest elements occupy s[:k]
// (in arbitrary order). Average O(len(s)); falls back to insertion-style
// behaviour only on tiny ranges.
func selectTopK(s []int64, k int) {
	lo, hi := 0, len(s)
	for hi-lo > 1 {
		// Median-of-three pivot for deterministic, adversary-resistant
		// behaviour on sorted or constant inputs.
		mid := lo + (hi-lo)/2
		p := median3(s[lo], s[mid], s[hi-1])
		// Partition descending: [lo, i) > p, [i, j) == p, [j, hi) < p.
		i, j, l := lo, lo, hi
		for j < l {
			switch {
			case s[j] > p:
				s[i], s[j] = s[j], s[i]
				i++
				j++
			case s[j] < p:
				l--
				s[j], s[l] = s[l], s[j]
			default:
				j++
			}
		}
		switch {
		case k <= i:
			hi = i
		case k >= j:
			lo = j
		default:
			return // boundary falls inside the == p run
		}
	}
}

func median3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
