package maxcover

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

func TestGreedyLazyMatchesCountingOnFixtures(t *testing.T) {
	cases := []struct {
		n    int32
		sets [][]int32
		k    int
	}{
		{4, [][]int32{{0, 1}, {0}, {1, 2}, {3}}, 2},
		{3, [][]int32{{0}, {0}, {1}, {2}}, 3},
		{5, [][]int32{}, 3},
		{4, [][]int32{{2}, {1}, {3}}, 2},
		{6, [][]int32{{0, 1, 2}, {3, 4, 5}, {0, 3}, {1, 4}, {2, 5}}, 4},
	}
	for i, tc := range cases {
		c := collect(tc.n, tc.sets)
		a := Greedy(c, tc.k)
		b := GreedyLazy(c, tc.k)
		if a.Coverage != b.Coverage {
			t.Fatalf("case %d: coverage %d vs %d", i, a.Coverage, b.Coverage)
		}
		if len(a.Seeds) != len(b.Seeds) {
			t.Fatalf("case %d: seed counts %d vs %d", i, len(a.Seeds), len(b.Seeds))
		}
		for j := range a.Seeds {
			if a.Seeds[j] != b.Seeds[j] {
				t.Fatalf("case %d: seed %d differs: %d vs %d", i, j, a.Seeds[j], b.Seeds[j])
			}
		}
	}
}

func TestGreedyLazyMatchesCountingOnRandomCollections(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		n := int32(5 + src.Intn(30))
		numSets := src.Intn(60)
		c := rrset.NewCollection(n)
		for i := 0; i < numSets; i++ {
			size := 1 + src.Intn(4)
			seen := map[int32]bool{}
			for len(seen) < size {
				seen[src.Int31n(n)] = true
			}
			var set []int32
			for v := int32(0); v < n; v++ {
				if seen[v] {
					set = append(set, v)
				}
			}
			c.Add(set, 0)
		}
		k := 1 + src.Intn(6)
		a := Greedy(c, k)
		b := GreedyLazy(c, k)
		if a.Coverage != b.Coverage {
			t.Fatalf("trial %d: coverage %d vs %d", trial, a.Coverage, b.Coverage)
		}
		for j := range a.Seeds {
			if a.Seeds[j] != b.Seeds[j] {
				t.Fatalf("trial %d: seeds differ at %d: %v vs %v", trial, j, a.Seeds, b.Seeds)
			}
		}
		for j := range a.PrefixCoverage {
			if a.PrefixCoverage[j] != b.PrefixCoverage[j] {
				t.Fatalf("trial %d: prefix %d differs", trial, j)
			}
		}
	}
}

func TestGreedyLazyOnRealRRSets(t *testing.T) {
	g, _ := gen.PreferentialAttachment(1000, 8, 0.15, 5)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 5000, rng.New(6), 4)
	a := Greedy(c, 25)
	b := GreedyLazy(c, 25)
	if a.Coverage != b.Coverage {
		t.Fatalf("coverage %d vs %d", a.Coverage, b.Coverage)
	}
	for j := range a.Seeds {
		if a.Seeds[j] != b.Seeds[j] {
			t.Fatalf("seeds differ at %d", j)
		}
	}
}

func TestGreedyLazyEdgeCases(t *testing.T) {
	c := collect(3, [][]int32{{0}})
	if r := GreedyLazy(c, 0); len(r.Seeds) != 0 || r.Coverage != 0 {
		t.Fatalf("k=0: %v", r)
	}
	if r := GreedyLazy(c, 10); len(r.Seeds) != 3 {
		t.Fatalf("k>n seeds = %v", r.Seeds)
	}
}

// BenchmarkGreedyCountingVsLazy is the design-choice ablation DESIGN.md
// calls out: counting greedy (used by the library, O(kn+Σ|R|)) versus CELF
// lazy greedy on the same RR collections.
func BenchmarkGreedyCountingVsLazy(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 16000, rng.New(2), 0)
	for _, k := range []int{10, 100} {
		b.Run("counting-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Greedy(c, k)
			}
		})
		b.Run("lazy-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GreedyLazy(c, k)
			}
		})
	}
}

func itoa(k int) string {
	if k == 10 {
		return "10"
	}
	return "100"
}
