package maxcover

import (
	"math/bits"

	"github.com/reprolab/opim/internal/rrset"
)

// Packed-bitset coverage kernel. On dense RR collections — sets that each
// touch a large fraction of the nodes — the counting greedy's marginal
// maintenance is Σ|R| scattered read-modify-writes over the cov array. This
// kernel instead materializes per-node RR membership as packed bitset rows
// (one bit per RR-set id) and performs marginal updates word-parallel:
// selecting a node computes the newly-covered word deltas
// D = row[best] AND uncovered once, then every node's marginal drops by
// popcount(row[v] AND D), 64 sets per instruction, touching only the words
// where D is nonzero. Dense collections saturate coverage after a handful
// of selections, so the per-round nonzero-delta region collapses quickly
// and total update work is far below Σ|R|.
//
// The row matrix is cached on the Scratch and keyed on the collection:
// when the same collection comes back grown (the session-snapshot and
// OPIM-C-round pattern — Collections are append-only), only the new sets
// are encoded, so across a session's lifetime the build does O(total Σ|R|)
// work once rather than per snapshot. A different collection, node count,
// or a word-stride overflow triggers a full rebuild.
//
// The kernel is selection-identical to the counting greedy by construction:
// both maintain the exact marginal vector cov[v] = Λ1(v|S_i*) at every
// prefix (the bitset path derives the same integer decrements via
// popcounts), both run the same smallest-id-wins argmax, and the §5 bound
// traces (PrefixCoverage, Λ1ᵘ via topKSum, Λ1⋄) are computed from those
// identical cov arrays by the shared code. TestKernelsIdenticalProperty
// pins Result equality across models, densities and k.

// Kernel selects the marginal-coverage engine behind the greedy.
type Kernel int

const (
	// KernelAuto picks per run via ChooseKernel (the default).
	KernelAuto Kernel = iota
	// KernelCounting forces the counting greedy (O(Σ|R|) walks).
	KernelCounting
	// KernelBitset forces the packed-bitset word-parallel kernel.
	KernelBitset
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelCounting:
		return "counting"
	case KernelBitset:
		return "bitset"
	}
	return "unknown"
}

// BitsetMaxBytes caps the packed row matrix (n rows × row stride words).
// Beyond it ChooseKernel always answers KernelCounting, so huge sparse
// instances never trade their working set for a quadratic bitmap.
const BitsetMaxBytes = 256 << 20

// bitsetCostRatio is the measured steady-state advantage of one sequential
// 64-bit popcount word op over one scattered counting update (a
// data-dependent cov[w]-- through the inverted index), folding in how
// coverage saturation shrinks the per-round nonzero-delta region on dense
// inputs. Calibrated against BenchmarkGreedyKernels* sweeps — see
// docs/PERFORMANCE.md, "Measuring the density threshold".
const bitsetCostRatio = 4

// ChooseKernel reports which kernel KernelAuto resolves to for a greedy
// run over c with seed-set size k. The rule compares steady-state
// selection cost — (k+1) marginal-update passes of n·words sequential
// word operations against the counting walk's Σ|R| scattered updates at
// the measured cost ratio — and requires the row matrix to fit
// BitsetMaxBytes. Equivalently, the collection's density Σ|R|/(n·count)
// must exceed ≈ (k+1)/(64·bitsetCostRatio).
//
// The rule deliberately ignores the one-time row build (O(Σ|R|), amortized
// across a session's snapshots by the Scratch row cache): a one-shot caller
// on a dense instance pays it once, repeated callers — the hot path — do
// not. See docs/PERFORMANCE.md for the measurement behind the constant.
func ChooseKernel(c *rrset.Collection, k int) Kernel {
	n := int64(c.N())
	count := int64(c.Count())
	if n == 0 || count == 0 || k <= 0 {
		return KernelCounting
	}
	words := (count + 63) / 64
	if n*nextPow2(words) > BitsetMaxBytes/8 {
		return KernelCounting
	}
	updateOps := (int64(k) + 1) * n * words
	countingOps := c.TotalSize()
	if updateOps < countingOps*bitsetCostRatio {
		return KernelBitset
	}
	return KernelCounting
}

// SetKernel fixes the kernel used by this Scratch's Greedy* methods.
// KernelAuto (the default) re-evaluates ChooseKernel on every run, which is
// what long-lived sessions want as their collections grow and densify;
// explicit values exist for tests, ablations and benchmarks.
func (sc *Scratch) SetKernel(k Kernel) { sc.kernel = k }

// nextPow2 rounds v up to a power of two (row-stride planning: a stride
// with slack means collection growth extends rows in place instead of
// relayouting the whole matrix).
func nextPow2(v int64) int64 {
	p := int64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// prepareRows brings sc.rows in sync with c: bit id of row v ⇔ set id
// contains v. If the cached matrix already mirrors a prefix of this exact
// collection (same pointer, same n, stride still fits — Collections are
// append-only, so a grown same-pointer collection is a strict superset),
// only sets [cached, count) are encoded; otherwise the matrix is rebuilt
// from the inverted index, row by row so each row's writes stay in cache.
func (sc *Scratch) prepareRows(c *rrset.Collection, n, count, words int) {
	if sc.rowsC == c && sc.rowsN == n && words <= sc.stride && count >= sc.rowsCount {
		stride := sc.stride
		rows := sc.rows
		for id := sc.rowsCount; id < count; id++ {
			w := int(uint(id) >> 6)
			bit := uint64(1) << (uint(id) & 63)
			for _, v := range c.Set(int32(id)) {
				rows[int(v)*stride+w] |= bit
			}
		}
		sc.rowsCount = count
		return
	}
	stride := int(nextPow2(int64(words)))
	need := n * stride
	if cap(sc.rows) < need {
		sc.rows = make([]uint64, need)
	} else {
		sc.rows = sc.rows[:need]
		clear(sc.rows)
	}
	rows := sc.rows
	for v := 0; v < n; v++ {
		row := rows[v*stride : v*stride+words]
		for _, id := range c.SetsCoveringShared(int32(v)) {
			row[id>>6] |= uint64(1) << (uint(id) & 63)
		}
	}
	sc.rowsC, sc.rowsN, sc.rowsCount, sc.stride = c, n, count, stride
}

// resetBitset sizes the uncovered bitset (all count bits set) and the
// delta buffers for one run.
func (sc *Scratch) resetBitset(count, words int) {
	if cap(sc.uncov) < words {
		sc.uncov = make([]uint64, words)
		sc.dbuf = make([]uint64, words)
		sc.dnz = make([]int32, 0, words)
	}
	sc.uncov = sc.uncov[:words]
	sc.dbuf = sc.dbuf[:words]
	for w := range sc.uncov {
		sc.uncov[w] = ^uint64(0)
	}
	if tail := uint(count) & 63; tail != 0 {
		sc.uncov[words-1] = (uint64(1) << tail) - 1
	}
}

// runBitset is run() on the packed-bitset kernel. It mirrors the counting
// path statement for statement — same cov initialization, same argmax and
// tie-break, same bound hooks — replacing only how cov is maintained after
// each selection.
func (sc *Scratch) runBitset(c *rrset.Collection, k int, mode boundsMode) *Result {
	n := int(c.N())
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	count := c.Count()
	sc.reset(n, count)
	words := (count + 63) / 64
	sc.prepareRows(c, n, count, words)
	sc.resetBitset(count, words)
	rows, stride, uncov := sc.rows, sc.stride, sc.uncov

	// cov[v] = Λ1(v | S_i*), exactly as in the counting path.
	cov := sc.cov[:n]
	for v := 0; v < n; v++ {
		cov[v] = int64(c.Degree(int32(v)))
	}

	res := &Result{
		Seeds:          make([]int32, 0, k),
		PrefixCoverage: make([]int64, 1, k+1),
	}

	var top []int64
	if mode != boundsNone {
		top = sc.top[:n]
		res.HasBounds = true
		res.LambdaU = int64(1) << 62
	}

	var total int64
	for i := 0; i < k; i++ {
		if mode == boundsAll {
			cand := total + topKSum(cov, top, k)
			if cand < res.LambdaU {
				res.LambdaU = cand
			}
		}

		// argmax_v cov[v] over unchosen nodes, smallest id wins ties.
		best := -1
		var bestCov int64 = -1
		for v := 0; v < n; v++ {
			if sc.chosen[v] != sc.epoch && cov[v] > bestCov {
				best = v
				bestCov = cov[v]
			}
		}
		if best < 0 {
			break
		}
		sc.chosen[best] = sc.epoch
		res.Seeds = append(res.Seeds, int32(best))
		total += bestCov

		// D = row[best] AND uncovered: the newly covered sets, as word
		// deltas. Clear them from uncovered and remember the nonzero words
		// so the marginal update skips silent regions.
		row := rows[best*stride : best*stride+words]
		dnz := sc.dnz[:0]
		dbuf := sc.dbuf
		for w := 0; w < words; w++ {
			if d := row[w] & uncov[w]; d != 0 {
				dbuf[w] = d
				uncov[w] &^= d
				dnz = append(dnz, int32(w))
			}
		}
		sc.dnz = dnz

		// Word-parallel marginal update: cov[v] -= |row[v] ∩ D|. This is
		// the same integer the counting walk subtracts one decrement at a
		// time (each newly covered set containing v lowers its marginal by
		// exactly one), so cov stays byte-identical between kernels — which
		// also keeps topKSum's bound traces identical.
		if len(dnz) > 0 {
			for v, base := 0, 0; v < n; v, base = v+1, base+stride {
				vrow := rows[base : base+words : base+words]
				var dec int
				for _, w := range dnz {
					dec += bits.OnesCount64(vrow[w] & dbuf[w])
				}
				cov[v] -= int64(dec)
			}
		}
		res.PrefixCoverage = append(res.PrefixCoverage, total)
	}
	res.Coverage = total

	if mode != boundsNone {
		topSum := topKSum(cov, top, k)
		if cand := total + topSum; cand < res.LambdaU {
			res.LambdaU = cand
		}
		res.LambdaDiamond = total + topSum
		if res.LambdaU > int64(count) {
			res.LambdaU = int64(count)
		}
		if res.LambdaDiamond > int64(count) {
			res.LambdaDiamond = int64(count)
		}
		if mode == boundsDiamond {
			res.LambdaU = 0
		}
	}
	return res
}
