package maxcover

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// collect builds a Collection over n nodes from explicit sets.
func collect(n int32, sets [][]int32) *rrset.Collection {
	c := rrset.NewCollection(n)
	for _, s := range sets {
		c.Add(s, 0)
	}
	return c
}

func TestGreedyPicksLargestFirst(t *testing.T) {
	c := collect(4, [][]int32{{0, 1}, {0}, {1, 2}, {3}})
	r := Greedy(c, 2)
	if len(r.Seeds) != 2 {
		t.Fatalf("seeds = %v", r.Seeds)
	}
	if r.Seeds[0] != 0 { // node 0 covers 2 sets
		t.Fatalf("first seed = %d, want 0", r.Seeds[0])
	}
	// After covering {0,1} and {0}, marginals: 1→1 (set {1,2}), 2→1, 3→1.
	// Smallest id wins the tie.
	if r.Seeds[1] != 1 {
		t.Fatalf("second seed = %d, want 1", r.Seeds[1])
	}
	if r.Coverage != 3 {
		t.Fatalf("coverage = %d, want 3", r.Coverage)
	}
}

func TestGreedyPrefixCoverage(t *testing.T) {
	c := collect(3, [][]int32{{0}, {0}, {1}, {2}})
	r := Greedy(c, 3)
	want := []int64{0, 2, 3, 4}
	if len(r.PrefixCoverage) != len(want) {
		t.Fatalf("PrefixCoverage = %v", r.PrefixCoverage)
	}
	for i := range want {
		if r.PrefixCoverage[i] != want[i] {
			t.Fatalf("PrefixCoverage[%d] = %d, want %d", i, r.PrefixCoverage[i], want[i])
		}
	}
	if r.Coverage != r.PrefixCoverage[len(r.PrefixCoverage)-1] {
		t.Fatal("Coverage != last prefix")
	}
}

func TestGreedyKLargerThanN(t *testing.T) {
	c := collect(3, [][]int32{{0}, {1}})
	r := Greedy(c, 10)
	if len(r.Seeds) != 3 {
		t.Fatalf("seeds = %v, want all 3 nodes", r.Seeds)
	}
	if r.Coverage != 2 {
		t.Fatalf("coverage = %d", r.Coverage)
	}
}

func TestGreedyKZero(t *testing.T) {
	c := collect(3, [][]int32{{0}})
	r := Greedy(c, 0)
	if len(r.Seeds) != 0 || r.Coverage != 0 {
		t.Fatalf("k=0 gave %v / %d", r.Seeds, r.Coverage)
	}
	if len(r.PrefixCoverage) != 1 || r.PrefixCoverage[0] != 0 {
		t.Fatalf("PrefixCoverage = %v", r.PrefixCoverage)
	}
}

func TestGreedyEmptyCollection(t *testing.T) {
	c := rrset.NewCollection(5)
	r := Greedy(c, 3)
	if r.Coverage != 0 {
		t.Fatalf("coverage = %d on empty collection", r.Coverage)
	}
	if len(r.Seeds) != 3 {
		// Zero-gain nodes are still selected, matching Algorithm 1 which
		// always returns a size-k set.
		t.Fatalf("seeds = %v, want 3 (zero-marginal) seeds", r.Seeds)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	c := collect(4, [][]int32{{2}, {1}, {3}})
	r := Greedy(c, 2)
	if r.Seeds[0] != 1 || r.Seeds[1] != 2 {
		t.Fatalf("tie-break order = %v, want [1 2]", r.Seeds)
	}
}

// bruteForceOpt computes the true optimal coverage over all size-k subsets
// of a tiny universe.
func bruteForceOpt(c *rrset.Collection, k int) int64 {
	n := int(c.N())
	var best int64
	idx := make([]int32, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			if cov := c.Coverage(idx); cov > best {
				best = cov
			}
			return
		}
		for v := start; v < n; v++ {
			idx[depth] = int32(v)
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

func TestGreedyApproximationOnRandomInstances(t *testing.T) {
	// Λ1(S*) ≥ (1−1/e)·Λ1(S°) on every instance (eq. 6), and the eq. (10)
	// bound sandwiches the true optimum: Λ1(S°) ≤ Λ1ᵘ(S°) ≤ Λ1(S*)/(1−1/e)
	// (Lemmas 5.1 and 5.2).
	src := rng.New(33)
	for trial := 0; trial < 50; trial++ {
		n := int32(4 + src.Intn(5))
		numSets := 1 + src.Intn(12)
		sets := make([][]int32, numSets)
		for i := range sets {
			size := 1 + src.Intn(3)
			seen := map[int32]bool{}
			for len(seen) < size {
				seen[src.Int31n(n)] = true
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
			sort.Slice(sets[i], func(a, b int) bool { return sets[i][a] < sets[i][b] })
		}
		k := 1 + src.Intn(3)
		c := collect(n, sets)
		r := GreedyWithBounds(c, k)
		opt := bruteForceOpt(c, min(k, int(n)))
		if float64(r.Coverage) < (1-1/math.E)*float64(opt)-1e-9 {
			t.Fatalf("trial %d: greedy %d below (1−1/e)·OPT=%v", trial, r.Coverage, float64(opt)*(1-1/math.E))
		}
		if r.LambdaU < opt {
			t.Fatalf("trial %d: Λ1ᵘ = %d < OPT = %d (Lemma 5.1 violated)", trial, r.LambdaU, opt)
		}
		kk := min(k, int(n))
		ub := float64(r.Coverage) / (1 - math.Pow(1-1/float64(kk), float64(kk)))
		if float64(r.LambdaU) > ub+1e-9 {
			t.Fatalf("trial %d: Λ1ᵘ = %d exceeds Λ1(S*)/(1−(1−1/k)^k) = %v (Lemma 5.2 violated)", trial, r.LambdaU, ub)
		}
		if r.LambdaDiamond < r.Coverage {
			t.Fatalf("trial %d: Λ1⋄ = %d below greedy coverage %d", trial, r.LambdaDiamond, r.Coverage)
		}
	}
}

func TestLambdaUAtMostDiamond(t *testing.T) {
	// Λ1ᵘ minimizes over all prefixes including the final one, whose
	// candidate equals Λ1⋄, so Λ1ᵘ ≤ Λ1⋄ always.
	g, _ := gen.PreferentialAttachment(400, 5, 0.1, 3)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 2000, rng.New(4), 4)
	r := GreedyWithBounds(c, 10)
	if r.LambdaU > r.LambdaDiamond {
		t.Fatalf("Λ1ᵘ = %d > Λ1⋄ = %d", r.LambdaU, r.LambdaDiamond)
	}
	if !r.HasBounds {
		t.Fatal("HasBounds not set")
	}
}

func TestBoundsCappedByCollectionSize(t *testing.T) {
	c := collect(3, [][]int32{{0}, {1}})
	r := GreedyWithBounds(c, 3)
	if r.LambdaU > int64(c.Count()) {
		t.Fatalf("Λ1ᵘ = %d exceeds |R| = %d", r.LambdaU, c.Count())
	}
	if r.LambdaDiamond > int64(c.Count()) {
		t.Fatalf("Λ1⋄ = %d exceeds |R| = %d", r.LambdaDiamond, c.Count())
	}
}

func TestGreedyMatchesCollectionCoverage(t *testing.T) {
	g, _ := gen.PreferentialAttachment(300, 5, 0.1, 5)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.LT)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 1500, rng.New(6), 4)
	r := Greedy(c, 8)
	if got := c.Coverage(r.Seeds); got != r.Coverage {
		t.Fatalf("greedy reports Λ = %d, Collection.Coverage = %d", r.Coverage, got)
	}
}

func TestGreedyNoDuplicateSeeds(t *testing.T) {
	c := rrset.NewCollection(4) // empty: all marginals zero
	r := Greedy(c, 4)
	seen := map[int32]bool{}
	for _, v := range r.Seeds {
		if seen[v] {
			t.Fatalf("duplicate seed %d in %v", v, r.Seeds)
		}
		seen[v] = true
	}
}

func TestTopKSumAgainstSort(t *testing.T) {
	f := func(raw []int16, kRaw uint8) bool {
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		k := int(kRaw%16) + 1
		scratch := make([]int64, len(vals))
		got := topKSum(vals, scratch, k)
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		var want int64
		for i := 0; i < k && i < len(sorted); i++ {
			want += sorted[i]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSumEdgeCases(t *testing.T) {
	scratch := make([]int64, 8)
	if got := topKSum(nil, scratch, 3); got != 0 {
		t.Fatalf("empty topKSum = %d", got)
	}
	if got := topKSum([]int64{5, 2, 9}, scratch, 0); got != 0 {
		t.Fatalf("k=0 topKSum = %d", got)
	}
	if got := topKSum([]int64{5, 2, 9}, scratch, 10); got != 16 {
		t.Fatalf("k>n topKSum = %d", got)
	}
	if got := topKSum([]int64{7, 7, 7, 7}, scratch, 2); got != 14 {
		t.Fatalf("constant topKSum = %d", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkGreedyK50(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 8000, rng.New(2), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(c, 50)
	}
}

func BenchmarkGreedyWithBoundsK50(b *testing.B) {
	g, _ := gen.PreferentialAttachment(20000, 15, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 8000, rng.New(2), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyWithBounds(c, 50)
	}
}

func TestGreedyWithDiamondMatchesFullBounds(t *testing.T) {
	g, _ := gen.PreferentialAttachment(400, 5, 0.1, 7)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := rrset.NewSampler(g, diffusion.IC)
	c := rrset.NewCollection(g.N())
	rrset.Generate(c, s, 2000, rng.New(8), 4)
	full := GreedyWithBounds(c, 10)
	diamond := GreedyWithDiamond(c, 10)
	if diamond.LambdaDiamond != full.LambdaDiamond {
		t.Fatalf("Λ1⋄ differs: %d vs %d", diamond.LambdaDiamond, full.LambdaDiamond)
	}
	if diamond.Coverage != full.Coverage {
		t.Fatalf("coverage differs: %d vs %d", diamond.Coverage, full.Coverage)
	}
	if diamond.LambdaU != 0 {
		t.Fatalf("diamond mode computed Λ1ᵘ = %d", diamond.LambdaU)
	}
	if !diamond.HasBounds {
		t.Fatal("HasBounds not set in diamond mode")
	}
	for i := range full.Seeds {
		if full.Seeds[i] != diamond.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}
