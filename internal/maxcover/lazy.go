package maxcover

import (
	"container/heap"

	"github.com/reprolab/opim/internal/rrset"
)

// GreedyLazy is Algorithm 1 implemented with CELF-style lazy evaluation
// [Leskovec et al. 2007]: marginal coverages are kept in a max-heap and
// only recomputed when a node reaches the top, which is sound because
// coverage is submodular (marginals only shrink as the seed set grows).
//
// It selects exactly the same seeds as Greedy (ties broken by smallest node
// id) — the heap orders by (gain desc, id asc), and a popped entry whose
// stored gain is still current is the true argmax. GreedyLazy exists as the
// ablation partner of the counting greedy: it wins when k is small relative
// to the number of nodes whose marginals ever change, and loses when the
// counting pass would have touched each RR set once anyway. See
// BenchmarkGreedyCountingVsLazy.
//
// GreedyLazy does not compute the §5 bound traces; use GreedyWithBounds
// when Λ1ᵘ/Λ1⋄ are needed.
func GreedyLazy(c *rrset.Collection, k int) *Result {
	return NewScratch().GreedyLazy(c, k)
}

// GreedyLazy is the scratch-reusing form of the package-level GreedyLazy:
// the covered flags and the heap's backing array come from sc.
func (sc *Scratch) GreedyLazy(c *rrset.Collection, k int) *Result {
	n := int(c.N())
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	sc.reset(n, c.Count())

	res := &Result{
		Seeds:          make([]int32, 0, k),
		PrefixCoverage: make([]int64, 1, k+1),
	}

	h := sc.heap[:0]
	for v := 0; v < n; v++ {
		h = append(h, lazyEntry{node: int32(v), gain: int64(c.Degree(int32(v)))})
	}
	heap.Init(&h)

	var total int64
	for len(res.Seeds) < k && h.Len() > 0 {
		top := h[0]
		// Recompute the stored gain: count this node's uncovered sets.
		var fresh int64
		for _, id := range c.SetsCoveringShared(top.node) {
			if sc.covered[id] != sc.epoch {
				fresh++
			}
		}
		if fresh != top.gain {
			// Stale: reinsert with the true (smaller) gain.
			h[0].gain = fresh
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		res.Seeds = append(res.Seeds, top.node)
		total += fresh
		res.PrefixCoverage = append(res.PrefixCoverage, total)
		for _, id := range c.SetsCoveringShared(top.node) {
			sc.covered[id] = sc.epoch
		}
	}
	sc.heap = h[:cap(h)][:0] // retain the backing array for reuse
	// Pad with zero-gain nodes if the heap ran dry before k (cannot happen
	// while h covers all nodes, but keep the contract explicit).
	res.Coverage = total
	return res
}

type lazyEntry struct {
	node int32
	gain int64
}

// lazyHeap is a max-heap on (gain, then smallest node id).
type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].node < h[j].node
}
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
