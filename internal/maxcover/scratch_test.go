package maxcover

import (
	"reflect"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// TestScratchReuseMatchesFresh runs every selection variant through one
// reused Scratch across collections of different shapes and sizes — the
// OPIM-C doubling-round usage pattern — and requires results identical to a
// fresh package-level call every time. This pins the epoch-marked flag
// reuse: a stale covered/chosen mark or an unzeroed cov entry from a
// previous round would change a selection.
func TestScratchReuseMatchesFresh(t *testing.T) {
	g, err := gen.PreferentialAttachment(300, 5, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)

	variants := []struct {
		name  string
		fresh func(c *rrset.Collection, k int) *Result
		reuse func(sc *Scratch, c *rrset.Collection, k int) *Result
	}{
		{"Greedy", Greedy, (*Scratch).Greedy},
		{"GreedyWithBounds", GreedyWithBounds, (*Scratch).GreedyWithBounds},
		{"GreedyWithDiamond", GreedyWithDiamond, (*Scratch).GreedyWithDiamond},
		{"GreedyLazy", GreedyLazy, (*Scratch).GreedyLazy},
		{"GreedyAugment", func(c *rrset.Collection, k int) *Result {
			return GreedyAugment(c, []int32{0, 17, 42}, k)
		}, func(sc *Scratch, c *rrset.Collection, k int) *Result {
			return sc.GreedyAugment(c, []int32{0, 17, 42}, k)
		}},
		{"GreedyAugmentWithBounds", func(c *rrset.Collection, k int) *Result {
			return GreedyAugmentWithBounds(c, []int32{0, 17, 42}, k)
		}, func(sc *Scratch, c *rrset.Collection, k int) *Result {
			return sc.GreedyAugmentWithBounds(c, []int32{0, 17, 42}, k)
		}},
	}

	sc := NewScratch() // ONE scratch across all variants, rounds and sizes
	base := rng.New(5)
	c := rrset.NewCollection(g.N())
	for round, add := range []int{80, 200, 400} { // grows the set universe
		rrset.Generate(c, s, add, base, 2)
		for _, k := range []int{1, 3, 10} {
			for _, v := range variants {
				want := v.fresh(c, k)
				got := v.reuse(sc, c, k)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d k=%d %s: reused scratch diverged\n got %+v\nwant %+v",
						round, k, v.name, got, want)
				}
			}
		}
	}
}
