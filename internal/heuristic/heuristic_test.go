package heuristic

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
)

func build(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.P)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopDegree(t *testing.T) {
	g := build(t, 5, []graph.Edge{
		{From: 1, To: 0, P: 1}, {From: 1, To: 2, P: 1}, {From: 1, To: 3, P: 1},
		{From: 2, To: 0, P: 1}, {From: 2, To: 3, P: 1},
		{From: 4, To: 0, P: 1},
	})
	got := TopDegree(g, 3)
	want := []int32{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopDegree = %v, want %v", got, want)
		}
	}
}

func TestTopDegreeTieBreak(t *testing.T) {
	g := build(t, 4, []graph.Edge{
		{From: 2, To: 0, P: 1}, {From: 1, To: 0, P: 1},
	})
	got := TopDegree(g, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("tie-break order = %v", got)
	}
}

func TestTopDegreeEdgeCases(t *testing.T) {
	g := build(t, 3, nil)
	if got := TopDegree(g, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if got := TopDegree(g, 10); len(got) != 3 {
		t.Fatalf("k>n: %v", got)
	}
}

func TestDegreeDiscountPrefersSpreadOut(t *testing.T) {
	// Two hubs whose neighborhoods overlap completely vs one independent
	// hub: after picking hub A, hub B (same neighbors) is discounted below
	// the independent hub C.
	edges := []graph.Edge{}
	// Hub 0 and hub 1 both point to nodes 3..12.
	for v := int32(3); v < 13; v++ {
		edges = append(edges, graph.Edge{From: 0, To: v, P: 1}, graph.Edge{From: 1, To: v, P: 1})
	}
	// Hub 2 points to its own nodes 13..20 (8 targets — fewer than 0/1).
	for v := int32(13); v < 21; v++ {
		edges = append(edges, graph.Edge{From: 2, To: v, P: 1})
	}
	// Hubs point at each other so the discount applies.
	edges = append(edges, graph.Edge{From: 0, To: 1, P: 1}, graph.Edge{From: 1, To: 0, P: 1})
	g := build(t, 21, edges)
	seeds := DegreeDiscount(g, 2, 0.5)
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want hub 0", seeds[0])
	}
	if seeds[1] != 2 {
		t.Fatalf("second seed = %d, want independent hub 2 (got overlapping hub?)", seeds[1])
	}
}

func TestDegreeDiscountEdgeCases(t *testing.T) {
	g := build(t, 3, nil)
	if got := DegreeDiscount(g, 0, 0.1); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if got := DegreeDiscount(g, 5, 0.1); len(got) != 3 {
		t.Fatalf("k>n: %v", got)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every node has identical PageRank 1/n.
	b := graph.NewBuilder(5, 5)
	for v := int32(0); v < 5; v++ {
		b.AddEdge(v, (v+1)%5, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0.85, 100, 1e-12)
	for i, p := range pr {
		if math.Abs(p-0.2) > 1e-9 {
			t.Fatalf("pr[%d] = %v, want 0.2", i, p)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := gen.PreferentialAttachment(500, 5, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0.85, 100, 1e-10)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v", sum)
	}
}

func TestPageRankSinkAttractsMass(t *testing.T) {
	// 0→2, 1→2: node 2 must outrank its parents.
	g := build(t, 3, []graph.Edge{{From: 0, To: 2, P: 1}, {From: 1, To: 2, P: 1}})
	pr := PageRank(g, 0.85, 100, 1e-12)
	if pr[2] <= pr[0] || pr[2] <= pr[1] {
		t.Fatalf("sink PageRank %v not largest: %v", pr[2], pr)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pr := PageRank(g, 0.85, 10, 1e-9); pr != nil {
		t.Fatalf("empty graph PageRank = %v", pr)
	}
}

func TestTopPageRank(t *testing.T) {
	// The preferential-attachment hub structure: node 0 collects most
	// in-links, so its PageRank is the largest.
	g, err := gen.PreferentialAttachment(1000, 5, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	top := TopPageRank(g, 5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	pr := PageRank(g, 0.85, 100, 1e-9)
	// Verify ordering is by PageRank.
	for i := 0; i+1 < len(top); i++ {
		if pr[top[i]] < pr[top[i+1]] {
			t.Fatalf("TopPageRank not sorted: %v", top)
		}
	}
	if got := TopPageRank(g, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
}

func TestTopReversePageRankFindsSpreaders(t *testing.T) {
	// Star: the hub points at all leaves. Forward PageRank ranks the
	// leaves (authority); reverse PageRank must rank the hub first.
	g, err := gen.Star(50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := TopReversePageRank(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] != 0 {
		t.Fatalf("reverse PageRank top = %d, want hub 0", rev[0])
	}
	fwd := TopPageRank(g, 1)
	if fwd[0] == 0 {
		t.Fatalf("forward PageRank unexpectedly ranked the hub first")
	}
}
