// Package heuristic provides the classical guarantee-free seed-selection
// baselines that the influence-maximization literature (surveyed in the
// paper's §7) measures sampling algorithms against: top out-degree,
// DegreeDiscount [Chen et al. 2009], and PageRank. They are useful as
// cheap competitor seed sets in tests and examples — a sampling algorithm
// whose spread falls below these is broken.
package heuristic

import (
	"sort"

	"github.com/reprolab/opim/internal/graph"
)

// TopDegree returns the k nodes with the largest out-degree (ties broken by
// smallest id).
func TopDegree(g *graph.Graph, k int) []int32 {
	n := int(g.N())
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.OutDegree(ids[a]), g.OutDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return append([]int32(nil), ids[:k]...)
}

// DegreeDiscount implements the IC-model degree-discount heuristic of Chen,
// Wang and Yang (KDD 2009) with a single probability p: repeatedly pick the
// node with the highest discounted degree
//
//	dd(v) = d(v) − 2·t(v) − (d(v) − t(v))·t(v)·p,
//
// where t(v) counts v's already-selected in-neighbors. Ties break by
// smallest id.
func DegreeDiscount(g *graph.Graph, k int, p float64) []int32 {
	n := int(g.N())
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	deg := make([]float64, n)
	tv := make([]float64, n)
	dd := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.OutDegree(int32(v)))
		dd[v] = deg[v]
	}
	chosen := make([]bool, n)
	seeds := make([]int32, 0, k)
	for len(seeds) < k {
		best, bestDD := -1, -1.0
		for v := 0; v < n; v++ {
			if !chosen[v] && dd[v] > bestDD {
				best, bestDD = v, dd[v]
			}
		}
		chosen[best] = true
		seeds = append(seeds, int32(best))
		// Discount the out-neighbors of the chosen node.
		to, _ := g.OutNeighbors(int32(best))
		for _, u := range to {
			if chosen[u] {
				continue
			}
			tv[u]++
			dd[u] = deg[u] - 2*tv[u] - (deg[u]-tv[u])*tv[u]*p
		}
	}
	return seeds
}

// PageRank computes the PageRank vector of g with the given damping factor,
// iterating until the L1 change drops below tol or iters passes elapse.
// Dangling nodes distribute their mass uniformly.
func PageRank(g *graph.Graph, damping float64, iters int, tol float64) []float64 {
	n := int(g.N())
	if n == 0 {
		return nil
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range pr {
		pr[i] = inv
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			d := g.OutDegree(int32(u))
			if d == 0 {
				dangling += pr[u]
				continue
			}
			share := pr[u] / float64(d)
			to, _ := g.OutNeighbors(int32(u))
			for _, v := range to {
				next[v] += share
			}
		}
		var diff float64
		base := (1-damping)*inv + damping*dangling*inv
		for i := range next {
			next[i] = base + damping*next[i]
			if d := next[i] - pr[i]; d >= 0 {
				diff += d
			} else {
				diff -= d
			}
		}
		pr, next = next, pr
		if diff < tol {
			break
		}
	}
	return pr
}

// TopReversePageRank returns the k nodes with the largest PageRank on the
// TRANSPOSED graph — the influence-relevant variant: forward PageRank
// measures authority (being pointed at), which is useless for seeding;
// reverse PageRank measures reach (pointing at well-connected nodes).
func TopReversePageRank(g *graph.Graph, k int) ([]int32, error) {
	tr, err := graph.Transpose(g)
	if err != nil {
		return nil, err
	}
	return TopPageRank(tr, k), nil
}

// TopPageRank returns the k nodes with the largest PageRank (ties by
// smallest id), using damping 0.85 and up to 100 iterations. Note this
// ranks authority; for seed selection prefer TopReversePageRank.
func TopPageRank(g *graph.Graph, k int) []int32 {
	n := int(g.N())
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	pr := PageRank(g, 0.85, 100, 1e-9)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if pr[ids[a]] != pr[ids[b]] {
			return pr[ids[a]] > pr[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return append([]int32(nil), ids[:k]...)
}
