package trigger

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

func wcGraph(t testing.TB, n int32, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 6, 0.15, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidateBuiltins(t *testing.T) {
	g := wcGraph(t, 500, 1)
	if err := Validate(g, NewIC(g), 2000, 2); err != nil {
		t.Fatalf("IC: %v", err)
	}
	if err := Validate(g, NewLT(g), 2000, 3); err != nil {
		t.Fatalf("LT: %v", err)
	}
}

// badDist returns non-in-neighbors to exercise Validate.
type badDist struct{ g *graph.Graph }

func (d badDist) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	return append(buf, (v+1)%d.g.N()) // usually not an in-neighbor
}

// dupDist returns duplicates.
type dupDist struct{ g *graph.Graph }

func (d dupDist) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	from, _ := d.g.InNeighbors(v)
	if len(from) > 0 {
		buf = append(buf, from[0], from[0])
	}
	return buf
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	g := wcGraph(t, 100, 4)
	if err := Validate(g, badDist{g}, 500, 5); err == nil {
		t.Fatal("non-in-neighbor member accepted")
	}
	if err := Validate(g, dupDist{g}, 500, 6); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestICTriggeringMatchesSpecializedSimulator(t *testing.T) {
	// The triggering-model simulator under NewIC must produce the same
	// expected spread as the specialized diffusion.IC simulator.
	g := wcGraph(t, 600, 7)
	seeds := []int32{0, 1, 2}
	const runs = 40000

	sim := NewSimulator(g, NewIC(g))
	src := rng.New(8)
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(sim.Run(seeds, src))
	}
	got := sum / runs

	want := diffusion.EstimateSpread(g, diffusion.IC, seeds, runs, 9, 0)
	if math.Abs(got-want.Spread) > 5*want.StdErr+0.05*want.Spread {
		t.Fatalf("triggering-IC spread %v vs specialized %v", got, want)
	}
}

func TestLTTriggeringMatchesSpecializedSimulator(t *testing.T) {
	g := wcGraph(t, 600, 10)
	seeds := []int32{0, 5}
	const runs = 40000

	sim := NewSimulator(g, NewLT(g))
	src := rng.New(11)
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(sim.Run(seeds, src))
	}
	got := sum / runs

	want := diffusion.EstimateSpread(g, diffusion.LT, seeds, runs, 12, 0)
	if math.Abs(got-want.Spread) > 5*want.StdErr+0.05*want.Spread {
		t.Fatalf("triggering-LT spread %v vs specialized %v", got, want)
	}
}

func TestRRSamplerLemma31(t *testing.T) {
	// Under the generic RR sampler, n·Pr[u ∈ R] must estimate σ({u})
	// (Lemma 3.1 holds for any triggering model).
	g := wcGraph(t, 300, 13)
	for name, dist := range map[string]Distribution{"IC": NewIC(g), "LT": NewLT(g)} {
		s := NewRRSampler(g, dist)
		sc := s.NewScratch()
		src := rng.New(14)
		const draws = 50000
		deg := make(map[int32]int)
		for i := 0; i < draws; i++ {
			for _, v := range s.Sample(src, sc) {
				deg[v]++
			}
		}
		var model diffusion.Model
		if name == "LT" {
			model = diffusion.LT
		}
		for _, u := range []int32{1, 10, 50} {
			ris := float64(g.N()) * float64(deg[u]) / draws
			mc := diffusion.EstimateSpread(g, model, []int32{u}, 50000, 15, 0)
			risStd := float64(g.N()) * math.Sqrt(float64(deg[u])+1) / draws
			tol := 4*mc.StdErr + 4*risStd + 0.05*mc.Spread + 0.05
			if math.Abs(ris-mc.Spread) > tol {
				t.Fatalf("%s node %d: RIS %v vs MC %v (tol %v)", name, u, ris, mc, tol)
			}
		}
	}
}

func TestRRSamplerNoDuplicates(t *testing.T) {
	g := wcGraph(t, 300, 16)
	s := NewRRSampler(g, NewIC(g))
	sc := s.NewScratch()
	src := rng.New(17)
	for i := 0; i < 500; i++ {
		set := s.Sample(src, sc)
		seen := make(map[int32]bool, len(set))
		for _, v := range set {
			if seen[v] {
				t.Fatalf("duplicate %d in RR set", v)
			}
			seen[v] = true
		}
	}
}

func TestSimulatorDuplicateSeeds(t *testing.T) {
	g := wcGraph(t, 100, 18)
	sim := NewSimulator(g, NewIC(g))
	src := rng.New(19)
	a := sim.Run([]int32{3, 3, 3}, src)
	if a < 1 {
		t.Fatalf("spread = %d", a)
	}
}

func TestTriggeringSetDrawnOncePerCascade(t *testing.T) {
	// Node 2 has two in-edges (from 0 and 1) with p=0.5 each. Under IC the
	// two chances are independent: P(activate | both active) = 0.75. If the
	// triggering set were redrawn per contact this would still hold, but if
	// membership were rechecked against a single draw it must also be 0.75;
	// the distinguishing case is LT: P = p0 + p1 = 1 with a single draw,
	// NOT 1 − (1−p0)(1−p1).
	b := graph.NewBuilder(3, 2)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(1, 2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const runs = 50000
	src := rng.New(20)

	simLT := NewSimulator(g, NewLT(g))
	hits := 0
	for i := 0; i < runs; i++ {
		if simLT.Run([]int32{0, 1}, src) == 3 {
			hits++
		}
	}
	if p := float64(hits) / runs; p < 0.999 {
		t.Fatalf("LT triggering with both parents active: P = %v, want 1", p)
	}

	simIC := NewSimulator(g, NewIC(g))
	hits = 0
	for i := 0; i < runs; i++ {
		if simIC.Run([]int32{0, 1}, src) == 3 {
			hits++
		}
	}
	if p := float64(hits) / runs; math.Abs(p-0.75) > 0.01 {
		t.Fatalf("IC triggering with both parents active: P = %v, want 0.75", p)
	}
}

func BenchmarkTriggeringCascadeIC(b *testing.B) {
	g, _ := gen.PreferentialAttachment(10000, 10, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	sim := NewSimulator(g, NewIC(g))
	src := rng.New(1)
	seeds := []int32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(seeds, src)
	}
}

func BenchmarkTriggeringRRSample(b *testing.B) {
	g, _ := gen.PreferentialAttachment(10000, 10, 0.1, 1)
	g, _ = graph.Reweight(g, graph.WeightedCascade, 0, 1)
	s := NewRRSampler(g, NewIC(g))
	sc := s.NewScratch()
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(src, sc)
	}
}
