// Package trigger implements the triggering model [Kempe et al. 2003],
// the generalization of IC and LT under which the paper states its
// complexity results (Theorem 6.4 and Appendix A): every node v
// independently draws a random triggering set T(v) from a distribution
// over subsets of its in-neighbors; an inactive v activates at step t+1
// iff some node of T(v) is active at step t.
//
//   - IC is the triggering model where each in-neighbor u joins T(v)
//     independently with probability p(u,v).
//   - LT is the triggering model where T(v) holds at most one in-neighbor,
//     u with probability p(u,v) (and ∅ with probability 1 − Σp).
//
// The package provides forward cascade simulation and random RR-set
// generation for ANY Distribution, plus the two built-ins. The built-ins
// are sampled with the same primitives as the specialized code in
// diffusion/rrset, so distributional equivalence is testable.
package trigger

import (
	"fmt"

	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

// Distribution samples triggering sets for the nodes of one graph.
// Implementations must be safe for concurrent use; per-goroutine state
// belongs to the caller's rng.Source and buffer.
type Distribution interface {
	// SampleTriggering appends a triggering set for v to buf and returns
	// the extended slice. Members must be in-neighbors of v, without
	// duplicates.
	SampleTriggering(v int32, src *rng.Source, buf []int32) []int32
}

// IC is the independent-cascade triggering distribution for one graph.
type IC struct {
	g *graph.Graph
}

// NewIC returns the IC triggering distribution of g.
func NewIC(g *graph.Graph) *IC { return &IC{g: g} }

// SampleTriggering implements Distribution: each in-neighbor joins
// independently with its edge probability.
func (d *IC) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	from, p := d.g.InNeighbors(v)
	for i, u := range from {
		if src.Float64() < float64(p[i]) {
			buf = append(buf, u)
		}
	}
	return buf
}

// LT is the linear-threshold triggering distribution for one graph: at
// most one in-neighbor, drawn proportionally to edge weight via the
// graph's alias tables.
type LT struct {
	s *graph.LTSampler
}

// NewLT returns the LT triggering distribution of g (O(n+m) preprocessing).
func NewLT(g *graph.Graph) *LT { return &LT{s: graph.NewLTSampler(g)} }

// SampleTriggering implements Distribution.
func (d *LT) SampleTriggering(v int32, src *rng.Source, buf []int32) []int32 {
	if u, ok := d.s.SampleInNeighbor(v, src); ok {
		buf = append(buf, u)
	}
	return buf
}

// Simulator runs forward cascades under an arbitrary triggering
// distribution. Not safe for concurrent use; create one per goroutine.
type Simulator struct {
	g    *graph.Graph
	dist Distribution

	active  []uint32 // epoch-stamped activation marks
	sampled []uint32 // epoch-stamped "T(v) already drawn" marks
	trig    [][]int32
	epoch   uint32
	queue   []int32
}

// NewSimulator returns a Simulator for g under dist.
func NewSimulator(g *graph.Graph, dist Distribution) *Simulator {
	n := g.N()
	return &Simulator{
		g:       g,
		dist:    dist,
		active:  make([]uint32, n),
		sampled: make([]uint32, n),
		trig:    make([][]int32, n),
	}
}

func (s *Simulator) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.active {
			s.active[i] = 0
			s.sampled[i] = 0
		}
		s.epoch = 1
	}
}

// Run simulates one cascade from seeds and returns the number of activated
// nodes. Each node's triggering set is drawn at most once per cascade (on
// first contact), exactly matching the model's semantics.
func (s *Simulator) Run(seeds []int32, src *rng.Source) int {
	s.nextEpoch()
	q := s.queue[:0]
	activated := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		q = append(q, v)
		activated++
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		to, _ := s.g.OutNeighbors(u)
		for _, v := range to {
			if s.active[v] == s.epoch {
				continue
			}
			if s.sampled[v] != s.epoch {
				s.sampled[v] = s.epoch
				s.trig[v] = s.dist.SampleTriggering(v, src, s.trig[v][:0])
			}
			if contains(s.trig[v], u) {
				s.active[v] = s.epoch
				q = append(q, v)
				activated++
			}
		}
	}
	s.queue = q
	return activated
}

func contains(set []int32, u int32) bool {
	for _, w := range set {
		if w == u {
			return true
		}
	}
	return false
}

// RRSampler generates random RR sets under an arbitrary triggering
// distribution: reverse-traverse sampled triggering sets from a random
// root (Appendix A's construction in its general form). Immutable; use one
// Scratch per goroutine.
type RRSampler struct {
	g    *graph.Graph
	dist Distribution
}

// NewRRSampler returns an RRSampler for g under dist.
func NewRRSampler(g *graph.Graph, dist Distribution) *RRSampler {
	return &RRSampler{g: g, dist: dist}
}

// Scratch holds the per-goroutine buffers of RR generation.
type Scratch struct {
	mark  []uint32
	epoch uint32
	buf   []int32
	tbuf  []int32
}

// NewScratch returns a Scratch sized for the sampler's graph.
func (s *RRSampler) NewScratch() *Scratch {
	return &Scratch{mark: make([]uint32, s.g.N())}
}

// Sample draws one random RR set. The returned slice aliases scratch
// storage valid until the next call.
func (s *RRSampler) Sample(src *rng.Source, sc *Scratch) []int32 {
	root := src.Int31n(s.g.N())
	return s.SampleFrom(root, src, sc)
}

// SampleFrom draws one RR set rooted at root.
func (s *RRSampler) SampleFrom(root int32, src *rng.Source, sc *Scratch) []int32 {
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
	q := sc.buf[:0]
	q = append(q, root)
	sc.mark[root] = sc.epoch
	for head := 0; head < len(q); head++ {
		v := q[head]
		sc.tbuf = s.dist.SampleTriggering(v, src, sc.tbuf[:0])
		for _, u := range sc.tbuf {
			if sc.mark[u] == sc.epoch {
				continue
			}
			sc.mark[u] = sc.epoch
			q = append(q, u)
		}
	}
	sc.buf = q
	return q
}

// Validate checks that dist produces legal triggering sets for every node
// of g over `trials` draws: members are in-neighbors, no duplicates. It is
// a development aid for user-supplied distributions.
func Validate(g *graph.Graph, dist Distribution, trials int, seed uint64) error {
	src := rng.New(seed)
	buf := make([]int32, 0, 64)
	for t := 0; t < trials; t++ {
		v := src.Int31n(g.N())
		buf = dist.SampleTriggering(v, src, buf[:0])
		seen := make(map[int32]bool, len(buf))
		for _, u := range buf {
			if seen[u] {
				return fmt.Errorf("trigger: duplicate member %d in T(%d)", u, v)
			}
			seen[u] = true
			from, _ := g.InNeighbors(v)
			ok := false
			for _, w := range from {
				if w == u {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("trigger: %d ∈ T(%d) is not an in-neighbor", u, v)
			}
		}
	}
	return nil
}
