package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/faultinject"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
	"github.com/reprolab/opim/internal/trigger"
)

// newSlowServer builds a server whose RR generation is deliberately slow
// (a faultinject.SlowDist around the real IC triggering model), so that
// deadline and cancellation paths are actually exercised mid-advance.
func newSlowServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sampler := robustSampler(t)
	slow := rrset.NewSamplerTriggering(sampler.Graph(),
		&faultinject.SlowDist{Dist: trigger.NewIC(sampler.Graph()), Delay: 200 * time.Microsecond})
	session, err := core.NewOnline(slow, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(session, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		ts.Close()
	})
	return srv, ts
}

// TestChaosAdvanceClientCancel: a client that walks away mid-/advance
// must get control back promptly, and the server must stop generating at
// the next chunk boundary instead of burning the session mutex for the
// full requested count.
func TestChaosAdvanceClientCancel(t *testing.T) {
	_, ts := newSlowServer(t, Config{Batch: 500})
	c := NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.AdvanceContext(ctx, 1<<20)
	if err == nil {
		t.Fatal("cancelled advance returned no error")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled advance returned after %v", el)
	}

	// The server noticed: generation freezes at the aborted point.
	time.Sleep(500 * time.Millisecond)
	a := getJSON[Status](t, ts.URL+"/status")
	time.Sleep(300 * time.Millisecond)
	b := getJSON[Status](t, ts.URL+"/status")
	if a.NumRR != b.NumRR {
		t.Fatalf("server kept generating after client cancel: %d → %d", a.NumRR, b.NumRR)
	}
	if a.NumRR <= 0 || a.NumRR >= 1<<20 {
		t.Fatalf("cancelled advance left num_rr=%d; want partial progress kept", a.NumRR)
	}
}

// TestChaosAdvanceDeadline503: the -request-timeout deadline turns an
// over-long advance into a prompt 503 with Retry-After, keeping partial
// progress.
func TestChaosAdvanceDeadline503(t *testing.T) {
	before := obs.Default().Snapshot()
	_, ts := newSlowServer(t, Config{Batch: 500, RequestTimeout: 150 * time.Millisecond})

	start := time.Now()
	resp, err := http.Post(ts.URL+"/advance?count=1048576", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline advance returned after %v", el)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if !strings.Contains(string(body[:n]), "progress kept") {
		t.Fatalf("503 body %q does not explain that progress is kept", body[:n])
	}
	if st := getJSON[Status](t, ts.URL+"/status"); st.NumRR <= 0 {
		t.Fatal("partial progress was discarded")
	}
	after := obs.Default().Snapshot()
	if d := after.Counters["server_advance_deadline_total"] - before.Counters["server_advance_deadline_total"]; d != 1 {
		t.Fatalf("server_advance_deadline_total advanced by %d, want 1", d)
	}
}

// TestChaosInflightCap: with MaxInflight=1 and the admission queue
// disabled, a long advance in flight sheds every other request with 429 +
// Retry-After; capacity returns once the advance finishes.
func TestChaosInflightCap(t *testing.T) {
	_, ts := newSlowServer(t, Config{Batch: 500, MaxInflight: 1, MaxQueue: -1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		c := NewClient(ts.URL)
		c.AdvanceContext(ctx, 1<<20)
	}()

	// While the advance occupies the only slot, /status must be shed.
	deadline := time.Now().Add(5 * time.Second)
	var got429 bool
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Fatal("shed response missing Retry-After")
			}
			got429 = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !got429 {
		t.Fatal("inflight cap never shed a request while an advance was in flight")
	}

	cancel()
	<-advDone
	// Capacity comes back.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never recovered capacity after the advance was cancelled")
}

// TestClientRetriesAfterInflight503: idempotent client calls retry shed
// requests with backoff instead of surfacing the 503.
func TestClientRetriesAfterInflight503(t *testing.T) {
	var mu sync.Mutex
	rejections := 0
	inner, ts := newSlowServer(t, Config{Batch: 500})
	_ = inner
	// A front handler that sheds the first two requests like the old hard
	// limiter would, then proxies — deterministic 503-then-success. No
	// Retry-After hint: this pins the pure-backoff retry path (the
	// hint-floor path is pinned by TestRetryAfterIsFloorNotOverride).
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rejections++
		shed := rejections <= 2
		mu.Unlock()
		if shed {
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			return
		}
		resp, err := http.Get(ts.URL + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer front.Close()

	c := NewClient(front.URL)
	c.RetryBase = 5 * time.Millisecond
	if _, err := c.Status(); err != nil {
		t.Fatalf("status with retries: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if rejections != 3 {
		t.Fatalf("%d attempts reached the front, want 3 (two shed + one served)", rejections)
	}
}

// TestClientNeverRetriesSemanticFailures: a 400 must surface immediately,
// not be replayed.
func TestClientNeverRetriesSemanticFailures(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	if _, err := c.Status(); err == nil {
		t.Fatal("400 surfaced as success")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("semantic failure retried: %d calls", calls)
	}
}

// TestClientNeverRetriesAdvanceOnTransportError: /advance is not
// idempotent — an ambiguous connection error must surface, not replay.
func TestClientNeverRetriesAdvanceOnTransportError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	c.RetryBase = time.Millisecond
	start := time.Now()
	if _, err := c.Advance(100); err == nil {
		t.Fatal("unreachable server accepted")
	}
	// No backoff cycles: a single failed attempt returns immediately.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("non-idempotent call spent %v, suggesting retries", el)
	}
}

// TestStopAlwaysWaitsForLoopExit is the regression test for the
// Stop-vs-budget-exhaustion race: when the loop self-terminates, a
// concurrent Stop used to return before the loop goroutine exited.
func TestStopAlwaysWaitsForLoopExit(t *testing.T) {
	srv, ts := newTestServer(t, 600)
	// Exhaust the budget so every restarted loop self-terminates on its
	// first iteration — the exact window of the race.
	postJSON[Status](t, ts.URL+"/advance?count=600")
	for i := 0; i < 200; i++ {
		postJSON[Status](t, ts.URL+"/start")
		srv.Stop()
		srv.loopMu.Lock()
		done := srv.done
		srv.loopMu.Unlock()
		select {
		case <-done:
		default:
			t.Fatalf("iteration %d: Stop returned before the loop exited", i)
		}
	}
}

// TestRecovererTurnsPanicInto500: the panic-recovery middleware contains
// a handler panic, counts it, and records the stack in the event sink.
func TestRecovererTurnsPanicInto500(t *testing.T) {
	sink := &obs.MemorySink{}
	srv := New(robustSession(t, robustSampler(t)), Config{Events: sink})
	h := srv.recoverer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	before := obs.Default().Snapshot()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic status %d, want 500", rec.Code)
	}
	after := obs.Default().Snapshot()
	if d := after.Counters["server_panics_total"] - before.Counters["server_panics_total"]; d != 1 {
		t.Fatalf("server_panics_total advanced by %d, want 1", d)
	}
	events := sink.Events()
	if len(events) != 1 || events[0].Event != "server_panic" {
		t.Fatalf("events = %+v", events)
	}
	if stack, _ := events[0].Fields["stack"].(string); !strings.Contains(stack, "ServeHTTP") {
		t.Fatalf("panic event carries no stack: %q", stack)
	}
	// And the full handler chain keeps serving after a panic.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if st := getJSON[Status](t, ts.URL+"/status"); st.NumRR != 0 {
		t.Fatalf("status after recovered panic: %+v", st)
	}
}

// TestWriteJSONEncodeErrorCounted: an encode failure after the header is
// out cannot be turned into an http.Error (that would be a silent no-op);
// it must be counted instead.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	before := obs.Default().Snapshot()
	rec := httptest.NewRecorder()
	writeJSON(rec, math.NaN()) // json: unsupported value
	after := obs.Default().Snapshot()
	if d := after.Counters["server_encode_errors_total"] - before.Counters["server_encode_errors_total"]; d != 1 {
		t.Fatalf("server_encode_errors_total advanced by %d, want 1", d)
	}
	if rec.Code == http.StatusInternalServerError {
		t.Fatal("writeJSON attempted http.Error after a partial body")
	}
}

// TestStressConcurrentRequests hammers every endpoint from many
// goroutines under -race: counters must stay consistent, the budget must
// hold, and no request may hang past its deadline.
func TestStressConcurrentRequests(t *testing.T) {
	const maxRR = 200000
	srv, ts := newTestServer(t, maxRR)
	before := obs.Default().Snapshot()

	const goroutines = 8
	const iters = 25
	var statusCalls atomic64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	client := &http.Client{Timeout: 10 * time.Second}
	for gID := 0; gID < goroutines; gID++ {
		wg.Add(1)
		go func(gID int) {
			defer wg.Done()
			paths := []string{"/status", "/advance?count=200", "/snapshot", "/start", "/metrics", "/stop"}
			for i := 0; i < iters; i++ {
				p := paths[(gID+i)%len(paths)]
				method := http.MethodGet
				if strings.HasPrefix(p, "/advance") || p == "/start" || p == "/stop" {
					method = http.MethodPost
				}
				req, _ := http.NewRequest(method, ts.URL+p, nil)
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if el := time.Since(start); el > 15*time.Second {
					errs <- errors.New("request exceeded its deadline: " + p)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable &&
					resp.StatusCode != http.StatusTooManyRequests {
					errs <- errors.New(p + ": unexpected status " + resp.Status)
					return
				}
				if p == "/status" && resp.StatusCode == http.StatusOK {
					statusCalls.add(1)
				}
			}
		}(gID)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	srv.Stop()

	st := getJSON[Status](t, ts.URL+"/status")
	if st.NumRR < 0 || st.NumRR > maxRR {
		t.Fatalf("budget violated: num_rr=%d, max_rr=%d", st.NumRR, maxRR)
	}
	after := obs.Default().Snapshot()
	if d := after.Counters["server_status_requests_total"] - before.Counters["server_status_requests_total"]; d < statusCalls.load() {
		t.Fatalf("status counter advanced by %d, but %d OK requests were served", d, statusCalls.load())
	}
}

// atomic64 avoids importing sync/atomic's int64 alignment caveats into
// the test body.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(n int64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
