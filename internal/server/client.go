package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/reprolab/opim/internal/obs"
)

// Client is a typed client for the opimd HTTP API, so Go programs can
// drive a remote OPIM session the way a database client drives an online
// aggregation query.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a Client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(method, path string, out any) error {
	req, err := http.NewRequest(method, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("opimd: %s %s: %s: %s", method, path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Status fetches the session counters.
func (c *Client) Status() (Status, error) {
	var s Status
	err := c.do(http.MethodGet, "/status", &s)
	return s, err
}

// Snapshot fetches the current seed set and guarantee. Each call spends
// failure budget on the server exactly like a local Snapshot.
func (c *Client) Snapshot() (SnapshotResponse, error) {
	var s SnapshotResponse
	err := c.do(http.MethodGet, "/snapshot", &s)
	return s, err
}

// Metrics fetches the server's metrics registry: RR-generation
// throughput, per-endpoint request counters/latencies, and the latest
// snapshot's (θ, σˡ, σᵘ, α) gauges. Costs no δ budget.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.do(http.MethodGet, "/metrics", &s)
	return s, err
}

// Advance generates count RR sets synchronously. Counts above the
// server's RR budget (Status.MaxRR) are rejected with 400.
func (c *Client) Advance(count int) (Status, error) {
	var s Status
	err := c.do(http.MethodPost, "/advance?count="+url.QueryEscape(fmt.Sprint(count)), &s)
	return s, err
}

// Start begins background sampling.
func (c *Client) Start() (Status, error) {
	var s Status
	err := c.do(http.MethodPost, "/start", &s)
	return s, err
}

// Stop pauses background sampling.
func (c *Client) Stop() (Status, error) {
	var s Status
	err := c.do(http.MethodPost, "/stop", &s)
	return s, err
}
