package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/learn"
	"github.com/reprolab/opim/internal/obs"
)

// Client retry defaults; see the retry policy on Client.
const (
	defaultClientTimeout = 30 * time.Second
	defaultMaxRetries    = 3
	defaultRetryBase     = 100 * time.Millisecond
	maxRetryDelay        = 5 * time.Second
)

// defaultHTTPClient bounds every request end to end — http.DefaultClient
// has no timeout, so one hung server would hang the caller forever.
var defaultHTTPClient = &http.Client{Timeout: defaultClientTimeout}

// Client is a typed client for the opimd HTTP API, so Go programs can
// drive a remote OPIM session the way a database client drives an online
// aggregation query. SessionID scopes the session endpoints to one named
// session ("" targets the legacy default-session paths); Session derives
// a scoped client, and CreateSession/ListSessions/DeleteSession manage
// the session population.
//
// Every method has a context-taking variant (StatusContext etc.); the
// plain forms use context.Background(). Requests are built with
// http.NewRequestWithContext and sent through an http.Client with a 30s
// default timeout.
//
// Retry policy: failures are retried with exponential backoff + jitter,
// bounded by MaxRetries, but only when a retry cannot change the
// session's semantics:
//
//   - 503 (the server's deadline responses), 429 (admission-queue and
//     token-bucket rejections) and 409 (a request racing a session
//     eviction) are retried for idempotent requests only — Status,
//     Metrics, Start, Stop, PeekSnapshot, ListSessions;
//   - transport errors (connection refused/reset, timeouts) likewise are
//     retried for idempotent requests only;
//   - Advance and Snapshot are never auto-retried: a lost response may
//     mean the server already did the work (generated RR sets, spent δ
//     budget), so blind replay would double-spend — exactly the silent
//     budget corruption the resume guarantees exist to prevent;
//   - any other non-200 status is a semantic failure and never retried.
//
// A 503/429/409 Retry-After header, when present, is a floor on the
// backoff delay, never the delay itself: the client waits the hint plus
// its own jitter (see backoffDelay). Every shed client received the same
// whole-second hint — retrying exactly then would re-synchronize the
// herd the server just spread out. Jitter comes from a per-client source
// seeded by RetrySeed, so retry timing is reproducible in tests and
// never contends on (or is perturbed by) the global math/rand state.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// SessionID scopes the session endpoints: "alice" targets
	// /sessions/alice/status etc.; "" targets the legacy paths (/status),
	// which the server aliases to its default session.
	SessionID string
	// HTTPClient defaults to a shared client with a 30s timeout. Set an
	// explicit client to change the timeout or transport.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try for retryable
	// failures (0 means the default of 3; negative disables retries).
	MaxRetries int
	// RetryBase is the first backoff delay, doubled per attempt with up to
	// 50% added jitter (0 means the default of 100ms).
	RetryBase time.Duration
	// RetrySeed seeds the client's private jitter source; a fixed seed
	// makes retry timing reproducible. 0 picks a distinct seed per client.
	RetrySeed int64

	jmu    sync.Mutex
	jitter *rand.Rand
}

// clientSeq distinguishes the jitter streams of RetrySeed-less clients.
var clientSeq atomic.Int64

// NewClient returns a Client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// Session returns a client scoped to the named session, sharing this
// client's connection and retry configuration (but not its jitter state —
// each derived client gets its own stream).
func (c *Client) Session(id string) *Client {
	return &Client{
		BaseURL:    c.BaseURL,
		SessionID:  id,
		HTTPClient: c.HTTPClient,
		MaxRetries: c.MaxRetries,
		RetryBase:  c.RetryBase,
		RetrySeed:  c.RetrySeed,
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return defaultMaxRetries
	}
	return c.MaxRetries
}

// jitterN draws from the client's private jitter source, created on first
// use from RetrySeed.
func (c *Client) jitterN(n int64) int64 {
	if n <= 0 {
		return 0
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	if c.jitter == nil {
		seed := c.RetrySeed
		if seed == 0 {
			seed = time.Now().UnixNano() + clientSeq.Add(1)
		}
		c.jitter = rand.New(rand.NewSource(seed))
	}
	return c.jitter.Int63n(n)
}

// spath prefixes a session-scoped endpoint path with the session route.
func (c *Client) spath(p string) string {
	if c.SessionID == "" {
		return p
	}
	return "/sessions/" + url.PathEscape(c.SessionID) + p
}

// do performs one logical request with the retry policy above. idempotent
// marks requests whose replay cannot change session semantics. A non-nil
// body is marshaled to JSON once and re-sent on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	base := c.RetryBase
	if base <= 0 {
		base = defaultRetryBase
	}
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err, retryable, retryAfter := c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || !idempotent || attempt >= c.retries() {
			return lastErr
		}
		select {
		case <-time.After(c.backoffDelay(base, attempt, retryAfter)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// backoffDelay computes the wait before retry number attempt (0-based):
// exponential backoff from base with up to 50% added jitter, capped at
// maxRetryDelay. A server Retry-After hint raises the delay to at least
// the hint — with the jitter still added on top, never replacing it.
// The hint is when capacity is *expected* back, and the server hands the
// same whole-second value to every client it sheds in that window;
// treating it as the exact retry instant would reassemble the thundering
// herd at hint expiry, which is precisely what per-client jitter exists
// to prevent.
func (c *Client) backoffDelay(base time.Duration, attempt int, retryAfter time.Duration) time.Duration {
	delay := base
	// Doubling per attempt, without shift overflow for large MaxRetries:
	// stop doubling once past the cap.
	for i := 0; i < attempt && delay < maxRetryDelay; i++ {
		delay *= 2
	}
	if delay > maxRetryDelay {
		delay = maxRetryDelay
	}
	jitter := time.Duration(c.jitterN(int64(delay)/2 + 1))
	if retryAfter > 0 && delay < retryAfter {
		delay = retryAfter
	}
	return delay + jitter
}

// once performs a single HTTP exchange. retryable reports whether the
// failure class permits replaying an idempotent request; retryAfter is
// the server's Retry-After hint (0 when absent).
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (err error, retryable bool, retryAfter time.Duration) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err, false, 0
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		// Transport error: the request may or may not have reached the
		// server, which is precisely why only idempotent requests retry.
		return err, true, 0
	}
	// Drain whatever the handler below leaves unread before closing: a
	// Body closed with bytes still buffered poisons the underlying TCP
	// connection for keep-alive reuse, so every retry would pay a fresh
	// dial + handshake — and a retrying client is exactly the one that
	// needs its warm connection. The drain is bounded; a response large
	// enough to blow the bound is cheaper to abandon than to slurp.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10)) //nolint:errcheck // best-effort drain
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("opimd: %s %s: %s: %s", method, path, resp.Status, body)
		// 503: advance deadline. 429: admission queue or per-session token
		// bucket. 409: the request raced a session eviction; servable again
		// once the checkpoint write finishes. In each case an idempotent
		// retry after the server's honest Retry-After (plus jitter) wins.
		switch resp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusTooManyRequests, http.StatusConflict:
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
			return err, true, retryAfter
		}
		return err, false, 0
	}
	if out == nil {
		return nil, false, 0
	}
	return json.NewDecoder(resp.Body).Decode(out), false, 0
}

// Status fetches the session counters.
func (c *Client) Status() (Status, error) { return c.StatusContext(context.Background()) }

// StatusContext is Status bounded by ctx.
func (c *Client) StatusContext(ctx context.Context) (Status, error) {
	var s Status
	err := c.do(ctx, http.MethodGet, c.spath("/status"), nil, &s, true)
	return s, err
}

// Snapshot fetches the current seed set and guarantee. Each call spends
// failure budget on the server exactly like a local Snapshot — which is
// why it is never auto-retried.
func (c *Client) Snapshot() (SnapshotResponse, error) { return c.SnapshotContext(context.Background()) }

// SnapshotContext is Snapshot bounded by ctx.
func (c *Client) SnapshotContext(ctx context.Context) (SnapshotResponse, error) {
	var s SnapshotResponse
	err := c.do(ctx, http.MethodGet, c.spath("/snapshot"), nil, &s, false)
	return s, err
}

// PeekSnapshot fetches the last derived snapshot without spending any δ
// budget (and without blocking on the session): the server's
// snapshot?peek=1 path. 404 until the first real Snapshot. Idempotent —
// safe to poll and to retry.
func (c *Client) PeekSnapshot() (SnapshotResponse, error) {
	return c.PeekSnapshotContext(context.Background())
}

// PeekSnapshotContext is PeekSnapshot bounded by ctx.
func (c *Client) PeekSnapshotContext(ctx context.Context) (SnapshotResponse, error) {
	var s SnapshotResponse
	err := c.do(ctx, http.MethodGet, c.spath("/snapshot?peek=1"), nil, &s, true)
	return s, err
}

// Metrics fetches the server's metrics registry: RR-generation
// throughput, per-endpoint request counters/latencies, and the latest
// snapshot's (θ, σˡ, σᵘ, α) gauges. Costs no δ budget.
func (c *Client) Metrics() (obs.Snapshot, error) { return c.MetricsContext(context.Background()) }

// MetricsContext is Metrics bounded by ctx.
func (c *Client) MetricsContext(ctx context.Context) (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &s, true)
	return s, err
}

// Advance generates count RR sets synchronously. Counts above the
// session's RR budget (Status.MaxRR) are rejected with 400. Never
// auto-retried: a replay after an ambiguous failure would generate count
// additional RR sets on top of whatever the lost request produced.
func (c *Client) Advance(count int) (Status, error) {
	return c.AdvanceContext(context.Background(), count)
}

// AdvanceContext is Advance bounded by ctx: cancelling it aborts the
// server-side generation at the next chunk boundary (progress is kept on
// the server; poll Status).
func (c *Client) AdvanceContext(ctx context.Context, count int) (Status, error) {
	var s Status
	err := c.do(ctx, http.MethodPost, c.spath("/advance?count="+url.QueryEscape(fmt.Sprint(count))), nil, &s, false)
	return s, err
}

// Start adds the session to the server's background sampling rotation.
func (c *Client) Start() (Status, error) { return c.StartContext(context.Background()) }

// StartContext is Start bounded by ctx.
func (c *Client) StartContext(ctx context.Context) (Status, error) {
	var s Status
	err := c.do(ctx, http.MethodPost, c.spath("/start"), nil, &s, true)
	return s, err
}

// Stop removes the session from the background sampling rotation.
func (c *Client) Stop() (Status, error) { return c.StopContext(context.Background()) }

// StopContext is Stop bounded by ctx.
func (c *Client) StopContext(ctx context.Context) (Status, error) {
	var s Status
	err := c.do(ctx, http.MethodPost, c.spath("/stop"), nil, &s, true)
	return s, err
}

// Checkpoint forces the server to write the session's checkpoint now and
// reports the file and size. Idempotent in effect (a replayed checkpoint
// rewrites the same state) but cheap to leave unretried; callers needing
// durability should check the error and re-issue deliberately.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	return c.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint bounded by ctx.
func (c *Client) CheckpointContext(ctx context.Context) (CheckpointResponse, error) {
	var r CheckpointResponse
	err := c.do(ctx, http.MethodPost, c.spath("/checkpoint"), nil, &r, false)
	return r, err
}

// StartRound starts the next explore/exploit round of a learning session
// and returns its seed set (POST /rounds). Safe to auto-retry: the
// server's round protocol replays an outstanding round's stored seeds
// instead of starting a new one, so a retried request can never skip or
// double-advance a round.
func (c *Client) StartRound() (RoundResponse, error) {
	return c.StartRoundContext(context.Background())
}

// StartRoundContext is StartRound bounded by ctx.
func (c *Client) StartRoundContext(ctx context.Context) (RoundResponse, error) {
	var r RoundResponse
	err := c.do(ctx, http.MethodPost, c.spath("/rounds"), nil, &r, true)
	return r, err
}

// Observe submits a cascade's activation attempts against the given
// round (POST /observations). Round-bound observations (round > 0) are
// auto-retried: the server acknowledges an already-applied round as a
// duplicate without re-counting it. Free-form observations (round 0)
// always apply, so an ambiguous replay would double-count — those are
// never auto-retried; re-issue deliberately.
func (c *Client) Observe(round int64, attempts []learn.Attempt) (ObservationResponse, error) {
	return c.ObserveContext(context.Background(), round, attempts)
}

// ObserveContext is Observe bounded by ctx.
func (c *Client) ObserveContext(ctx context.Context, round int64, attempts []learn.Attempt) (ObservationResponse, error) {
	var r ObservationResponse
	req := ObservationRequest{Round: round, Attempts: attempts}
	err := c.do(ctx, http.MethodPost, c.spath("/observations"), req, &r, round > 0)
	return r, err
}

// CreateSession creates a named session (POST /sessions). Never
// auto-retried: a replay after an ambiguous failure would 409 on the
// just-created name, turning success into an error.
func (c *Client) CreateSession(spec SessionSpec) (SessionInfo, error) {
	return c.CreateSessionContext(context.Background(), spec)
}

// CreateSessionContext is CreateSession bounded by ctx.
func (c *Client) CreateSessionContext(ctx context.Context, spec SessionSpec) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/sessions", spec, &info, false)
	return info, err
}

// ListSessions lists every session on the server, sorted by id.
func (c *Client) ListSessions() ([]SessionInfo, error) {
	return c.ListSessionsContext(context.Background())
}

// ListSessionsContext is ListSessions bounded by ctx.
func (c *Client) ListSessionsContext(ctx context.Context) ([]SessionInfo, error) {
	var resp SessionListResponse
	err := c.do(ctx, http.MethodGet, "/sessions", nil, &resp, true)
	return resp.Sessions, err
}

// DeleteSession deletes the named session and its checkpoints. Not
// auto-retried: a replayed delete 404s on the now-gone name.
func (c *Client) DeleteSession(id string) error {
	return c.DeleteSessionContext(context.Background(), id)
}

// DeleteSessionContext is DeleteSession bounded by ctx.
func (c *Client) DeleteSessionContext(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+url.PathEscape(id), nil, nil, false)
}

// BulkSessions executes many session operations in one round-trip (POST
// /sessions/bulk): create, start, advance and stop batches, answered with
// one per-operation result each. Never auto-retried — the advance (and
// create) phases are not idempotent, exactly like their per-session
// counterparts; callers inspect the per-op statuses and re-issue only the
// operations that failed retryably.
func (c *Client) BulkSessions(req BulkSessionsRequest) (BulkSessionsResponse, error) {
	return c.BulkSessionsContext(context.Background(), req)
}

// BulkSessionsContext is BulkSessions bounded by ctx. Size the ctx (and
// the HTTPClient timeout) to the advance batch, not to the default 30s.
func (c *Client) BulkSessionsContext(ctx context.Context, req BulkSessionsRequest) (BulkSessionsResponse, error) {
	var resp BulkSessionsResponse
	err := c.do(ctx, http.MethodPost, "/sessions/bulk", req, &resp, false)
	return resp, err
}

// CreateGraph registers a named graph in the server's catalog (POST
// /graphs) so sessions can be created against it by name. Never
// auto-retried: a replay after an ambiguous failure would 409 on the
// just-registered name.
func (c *Client) CreateGraph(req CreateGraphRequest) (GraphInfo, error) {
	return c.CreateGraphContext(context.Background(), req)
}

// CreateGraphContext is CreateGraph bounded by ctx. Registering a graph
// loads it synchronously; size the ctx (and the HTTPClient timeout) to
// the graph, not to the default 30s.
func (c *Client) CreateGraphContext(ctx context.Context, req CreateGraphRequest) (GraphInfo, error) {
	var info GraphInfo
	err := c.do(ctx, http.MethodPost, "/graphs", req, &info, false)
	return info, err
}

// ListGraphs lists every registered graph, sorted by name.
func (c *Client) ListGraphs() ([]GraphInfo, error) {
	return c.ListGraphsContext(context.Background())
}

// ListGraphsContext is ListGraphs bounded by ctx.
func (c *Client) ListGraphsContext(ctx context.Context) ([]GraphInfo, error) {
	var resp GraphListResponse
	err := c.do(ctx, http.MethodGet, "/graphs", nil, &resp, true)
	return resp.Graphs, err
}

// GetGraph fetches one graph's catalog entry, including its fingerprint
// and live session count. Idempotent — safe to poll and to retry.
func (c *Client) GetGraph(name string) (GraphInfo, error) {
	return c.GetGraphContext(context.Background(), name)
}

// GetGraphContext is GetGraph bounded by ctx.
func (c *Client) GetGraphContext(ctx context.Context, name string) (GraphInfo, error) {
	var info GraphInfo
	err := c.do(ctx, http.MethodGet, "/graphs/"+url.PathEscape(name), nil, &info, true)
	return info, err
}

// DeleteGraph removes a graph from the catalog. The server answers 409
// while any session still references the graph — that conflict means
// "delete the sessions first", not "retry", so no auto-retry despite the
// general 409 policy.
func (c *Client) DeleteGraph(name string) error {
	return c.DeleteGraphContext(context.Background(), name)
}

// DeleteGraphContext is DeleteGraph bounded by ctx.
func (c *Client) DeleteGraphContext(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/graphs/"+url.PathEscape(name), nil, nil, false)
}

// UpdateGraph applies one mutation batch to a catalog graph (POST
// /graphs/{name}/updates), advancing its epoch and incrementally
// repairing every loaded session on it. Never auto-retried: a replay
// would apply the batch twice, and a timeout leaves the outcome unknown —
// poll GetGraph's epoch to disambiguate before resending.
func (c *Client) UpdateGraph(name string, updates []GraphUpdate) (UpdateGraphResponse, error) {
	return c.UpdateGraphContext(context.Background(), name, updates)
}

// UpdateGraphContext is UpdateGraph bounded by ctx.
func (c *Client) UpdateGraphContext(ctx context.Context, name string, updates []GraphUpdate) (UpdateGraphResponse, error) {
	var resp UpdateGraphResponse
	err := c.do(ctx, http.MethodPost, "/graphs/"+url.PathEscape(name)+"/updates",
		UpdateGraphRequest{Updates: updates}, &resp, false)
	return resp, err
}
