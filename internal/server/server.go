// Package server exposes OPIM sessions over HTTP — the paper's
// online-query-processing paradigm as a long-running, multi-tenant
// service. A background sampler streams RR sets across every running
// session in deficit-weighted round-robin order (a session's share of
// sampling follows its configured weight); clients poll each session's
// current seed set and guarantee and stop its refinement when satisfied,
// exactly as a database user monitors an online aggregation query.
//
// Endpoints (all JSON; docs/API.md has schemas and curl examples):
//
//	GET    /graphs                      list the graph catalog
//	POST   /graphs                      register a named graph (body: CreateGraphRequest)
//	GET    /graphs/{name}               describe one graph
//	DELETE /graphs/{name}               unregister a graph (409 while referenced)
//	GET    /sessions                    list sessions
//	POST   /sessions                    create a session (body: SessionSpec; "graph" picks its catalog graph)
//	POST   /sessions/bulk               create/start/advance/stop many sessions in one call (body: BulkSessionsRequest)
//	GET    /sessions/{id}               describe one session
//	DELETE /sessions/{id}               delete a session and its checkpoints
//	GET    /sessions/{id}/status        session counters (never blocks)
//	GET    /sessions/{id}/snapshot      derive (seed set, α); spends δ budget
//	GET    /sessions/{id}/snapshot?peek=1  last derived snapshot; spends none
//	POST   /sessions/{id}/advance?count=N  generate N more RR sets
//	POST   /sessions/{id}/start         join background sampling
//	POST   /sessions/{id}/stop          leave background sampling
//	POST   /sessions/{id}/checkpoint    force a checkpoint write now
//	GET    /metrics                     process metrics (?format=text)
//
// The pre-session paths (/status, /snapshot, /advance, /start, /stop,
// /checkpoint) alias the session named "default", so single-session
// clients and scripts keep working unchanged.
//
// Concurrency: each session owns its own mutex, δ budget and scratch, so
// a slow snapshot or advance on one session never blocks another — and
// /status and GET /sessions read lock-free cached counters, so they stay
// responsive even against a session mid-advance. Residency is bounded via
// Config.MaxLoadedSessions: the least-recently-used idle session is
// checkpointed and unloaded, then transparently reloaded on next touch
// (see sessions.go; requests racing an eviction get 409 + Retry-After).
//
// The request path is hardened for long-lived deployments: a
// panic-recovery middleware turns handler panics into 500s (counted in
// server_panics_total, stack to the event log), a bounded admission queue
// above the inflight cap rejects unserviceable requests with 429 + an
// honest Retry-After derived from queue depth and measured service time
// (qos.go), per-session token buckets rate-limit engine-touching requests
// per tenant, and /advance threads its request context into chunked RR
// generation so client disconnects and the configured request deadline
// actually stop the work (partial progress is kept — cancelling loses no
// RR sets).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// Robustness metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mPanics           = obs.Default().Counter("server_panics_total")
	mEncodeErrors     = obs.Default().Counter("server_encode_errors_total")
	mInflightRejected = obs.Default().Counter("server_inflight_rejected_total")
	mAdvanceDeadline  = obs.Default().Counter("server_advance_deadline_total")
)

// Config configures a Server.
type Config struct {
	// Batch is the RR-set count a weight-1 session is credited per
	// background-sampler visit (≤ 0 defaults to 10 000) — the fairness
	// quantum of the deficit-weighted rotation, and the largest chunk the
	// sampler holds any session's mutex for.
	Batch int
	// MaxRR caps each session's size; the background sampler drops a
	// session from its rotation there (≤ 0 defaults to 2²⁶). Sessions may
	// choose a smaller budget at creation (SessionSpec.MaxRR).
	MaxRR int64
	// RequestTimeout bounds /advance processing; past it the request
	// returns 503 with progress kept. 0 means no deadline.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently served HTTP requests; excess requests
	// enter the bounded admission queue (MaxQueue/MaxQueueWait) and are
	// rejected with 429 + an honest Retry-After when the queue cannot
	// plausibly serve them. ≤ 0 means unlimited.
	MaxInflight int
	// MaxQueue bounds how many over-capacity requests may wait for an
	// inflight slot (0 defaults to 2 × MaxInflight; < 0 disables queueing —
	// over-capacity requests are rejected immediately).
	MaxQueue int
	// MaxQueueWait bounds how long a queued request waits before a 429
	// (≤ 0 defaults to 500ms). Requests whose estimated wait — queue depth
	// times measured service time — already exceeds it are rejected without
	// queueing at all.
	MaxQueueWait time.Duration
	// DefaultRate is the per-session admission rate (engine-touching
	// requests per second, token bucket) for sessions that do not set
	// SessionSpec.Rate. ≤ 0 means unlimited.
	DefaultRate float64
	// DefaultBurst is the matching default bucket depth (≤ 0 means
	// max(1, DefaultRate)).
	DefaultBurst float64
	// CheckpointPath, when non-empty, enables crash-safe checkpointing of
	// the default session there (previous generation kept at
	// CheckpointPath+".prev").
	CheckpointPath string
	// CheckpointDir, when non-empty, enables per-session checkpoints:
	// every session (the default included, unless CheckpointPath overrides
	// it) checkpoints to CheckpointDir/<id>.ck, AdoptCheckpointDir
	// re-registers them at startup, and LRU eviction becomes possible.
	CheckpointDir string
	// MaxLoadedSessions bounds how many sessions are resident in memory;
	// above it the least-recently-used idle session is checkpointed and
	// unloaded, then transparently reloaded on its next touch. ≤ 0 means
	// unbounded. Only sessions with a checkpoint path are evictable.
	MaxLoadedSessions int
	// MaxLoadedGraphs bounds how many catalog graphs are resident; above it
	// the least-recently-used graph with no loaded session is unloaded and
	// transparently reloaded from its GraphSpec on the next session touch.
	// ≤ 0 means unbounded. Only graphs registered with a spec are
	// unloadable (see catalog.go).
	MaxLoadedGraphs int
	// DefaultGraphSpec, when non-empty, is the cliutil.GraphSpec string the
	// graph passed to New was loaded from. It makes the default graph
	// reloadable (so it participates in MaxLoadedGraphs) and is recorded in
	// every default-graph session checkpoint for restart-time verification.
	DefaultGraphSpec string
	// DefaultGraphLog, when non-nil, is the default graph's replayed
	// mutation journal (ReplayMutationLog): the graph handed to New is at
	// the journal's final epoch, and the log supplies the chain that stale
	// checkpoints are verified against and caught up with. Nil means the
	// default graph starts at its base epoch.
	DefaultGraphLog *GraphLog
	// CheckpointInterval is the cadence of StartCheckpointer
	// (≤ 0 defaults to DefaultCheckpointInterval).
	CheckpointInterval time.Duration
	// JournalCompactEvery, when > 0, compacts a graph's mutation journal
	// once it accumulates that many entries: the current graph is written
	// to an OPIMG2 snapshot beside the journal and the journal restarts
	// from the snapshot's epoch, bounding restart replay time and journal
	// size. ≤ 0 disables compaction (the journal grows without bound).
	JournalCompactEvery int
	// Events, when non-nil, receives structured server events: one
	// "server_panic" per recovered handler panic and one
	// "checkpoint_failure" per failed checkpoint write.
	Events obs.Sink
	// Generator, when non-nil, produces RR sets for every session —
	// created, adopted or reloaded — in place of in-process sampling
	// (a fleet.Coordinator distributing generation over workers). It
	// must honor the core.Generator determinism contract, so swapping
	// it changes where samples are computed, never what they are.
	Generator core.Generator
}

// Server hosts many named OPIM sessions behind an HTTP API. Sessions on
// the same catalog graph share one immutable sampler (graph + diffusion
// model) but nothing else: each has its own lock, δ budget, scratch and
// background-sampling membership, so sessions never block each other —
// across graphs or within one.
type Server struct {
	cfg     Config
	sampler *rrset.Sampler // the default graph's sampler (startup resume path)

	// smu guards the session table (sessions/order/touchSeq and each
	// session's lastTouch). It is never held across engine work, checkpoint
	// I/O or any sess.mu acquisition — table reads stay O(1) even while
	// every session is busy.
	smu      sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order; the round-robin rotation
	rrIdx    int      // next rotation position
	touchSeq int64

	loaded atomic.Int64 // sessions in stateLoaded (gauge mirror)

	// gmu guards the graph catalog table (graphs/gtouchSeq and each
	// entry's lastTouch); like smu it is never held across a load or any
	// entry.mu acquisition (see catalog.go for the full lock order).
	gmu       sync.Mutex
	graphs    map[string]*graphEntry
	gtouchSeq int64

	loadedGraphs atomic.Int64 // resident graphs (gauge mirror)

	// Admission control (see qos.go): admSlots holds one token per
	// concurrently served request, admQueued counts waiters, and svc is
	// the service-time EWMA behind every honest Retry-After hint.
	admSlots    chan struct{}
	admQueued   atomic.Int64
	admMaxQueue int64
	admMaxWait  time.Duration
	svc         ewma

	loopMu  sync.Mutex // guards running/stopCh/done transitions
	running bool
	stopCh  chan struct{}
	done    chan struct{}

	ckMu   sync.Mutex // guards the checkpointer goroutine's lifecycle
	ckStop chan struct{}
	ckDone chan struct{}

	saveMu sync.Mutex // serializes checkpoint writes (periodic/forced/final)
	// ckWrap, when non-nil, wraps the checkpoint writer — the fault
	// injection seam used by chaos tests (faultinject.TornWriter etc.).
	ckWrap func(io.Writer) io.Writer
}

// New wraps session — which becomes the "default" session, on the graph
// registered as "default" — with the given configuration. Further graphs
// are registered over HTTP (POST /graphs), further sessions created
// (POST /sessions) or adopted from checkpoints (AdoptCheckpointDir).
func New(session *core.Online, cfg Config) *Server {
	if cfg.Batch <= 0 {
		cfg.Batch = 10000
	}
	if cfg.MaxRR <= 0 {
		cfg.MaxRR = 1 << 26
	}
	s := &Server{
		cfg:      cfg,
		sampler:  session.Sampler(),
		sessions: make(map[string]*Session),
		graphs:   make(map[string]*graphEntry),
	}
	if cfg.MaxInflight > 0 {
		s.admSlots = make(chan struct{}, cfg.MaxInflight)
		switch {
		case cfg.MaxQueue > 0:
			s.admMaxQueue = int64(cfg.MaxQueue)
		case cfg.MaxQueue == 0:
			s.admMaxQueue = int64(2 * cfg.MaxInflight)
		}
		s.admMaxWait = cfg.MaxQueueWait
		if s.admMaxWait <= 0 {
			s.admMaxWait = defaultMaxQueueWait
		}
	}
	// Register the startup graph as the "default" catalog entry. With
	// DefaultGraphSpec set it is reloadable like any POSTed graph;
	// without, it can never be unloaded (symmetric with ckPath-less
	// sessions never being evictable). Pre-publication: no concurrency yet.
	g := session.Sampler().Graph()
	glog := cfg.DefaultGraphLog
	if glog == nil || glog.Epochs() == 0 {
		glog = &GraphLog{Lineages: []string{g.EpochLineage()}}
	}
	var spec cliutil.GraphSpec
	specString := cfg.DefaultGraphSpec
	if specString != "" {
		parsed, err := cliutil.ParseGraphSpec(specString)
		if err != nil {
			// An unparseable spec cannot reload the graph; keep the entry
			// resident forever rather than fail later.
			specString = ""
		} else {
			spec = parsed
		}
	}
	def := newGraphEntry(DefaultGraphName, spec, glog.Lineages[0], g, session.Sampler(), glog)
	def.specString = specString
	def.sessions.Store(1)   // the default session
	def.loadedRefs.Store(1) // ... which starts resident
	s.graphs[DefaultGraphName] = def
	s.gtouchSeq++
	def.lastTouch = s.gtouchSeq
	gGraphsLoaded.Set(float64(s.loadedGraphs.Add(1)))
	session.SetGraphIdentity(DefaultGraphName, def.specString)
	session.SetGenerator(cfg.Generator)

	ckPath := cfg.CheckpointPath
	if ckPath == "" {
		ckPath = s.sessionCheckpointPath(DefaultSessionID)
	}
	defSess := &Session{ID: DefaultSessionID, maxRR: cfg.MaxRR, ckPath: ckPath, graph: def}
	s.applySessionQoS(defSess, 0, 0, 0) // server-default weight and rate
	defSess.setOnlineLocked(session)    // pre-publication: no concurrent access yet
	s.addSession(defSess)
	return s
}

// Handler returns the HTTP handler for the server's API: the endpoint mux
// wrapped in the inflight-cap and panic-recovery middleware (recovery
// outermost, so even a panic inside the limiter is contained).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Legacy single-session paths alias the default session (forSession
	// maps an absent {id} wildcard to DefaultSessionID).
	mux.HandleFunc("/status", instrument("status", s.forSession(s.handleStatus)))
	mux.HandleFunc("/snapshot", instrument("snapshot", s.forSession(s.handleSnapshot)))
	mux.HandleFunc("/advance", instrument("advance", s.forSession(s.handleAdvance)))
	mux.HandleFunc("/start", instrument("start", s.forSession(s.handleStart)))
	mux.HandleFunc("/stop", instrument("stop", s.forSession(s.handleStop)))
	mux.HandleFunc("/checkpoint", instrument("checkpoint", s.forSession(s.handleCheckpoint)))
	mux.HandleFunc("/rounds", instrument("rounds", s.forSession(s.handleRounds)))
	mux.HandleFunc("/observations", instrument("observations", s.forSession(s.handleObservations)))
	mux.HandleFunc("/metrics", instrument("metrics", s.handleMetrics))
	// Graph catalog.
	mux.HandleFunc("/graphs", instrument("graphs", s.handleGraphs))
	mux.HandleFunc("/graphs/{name}", instrument("graph", s.handleGraphByName))
	mux.HandleFunc("/graphs/{name}/updates", instrument("graph_updates", s.handleGraphUpdates))
	// Session management and per-session endpoints. The literal
	// /sessions/bulk pattern wins over the /sessions/{id} wildcard.
	mux.HandleFunc("/sessions", instrument("sessions", s.handleSessions))
	mux.HandleFunc("/sessions/bulk", instrument("sessions_bulk", s.handleSessionsBulk))
	mux.HandleFunc("/sessions/{id}", instrument("session", s.handleSessionByID))
	mux.HandleFunc("/sessions/{id}/status", instrument("status", s.forSession(s.handleStatus)))
	mux.HandleFunc("/sessions/{id}/snapshot", instrument("snapshot", s.forSession(s.handleSnapshot)))
	mux.HandleFunc("/sessions/{id}/advance", instrument("advance", s.forSession(s.handleAdvance)))
	mux.HandleFunc("/sessions/{id}/start", instrument("start", s.forSession(s.handleStart)))
	mux.HandleFunc("/sessions/{id}/stop", instrument("stop", s.forSession(s.handleStop)))
	mux.HandleFunc("/sessions/{id}/checkpoint", instrument("checkpoint", s.forSession(s.handleCheckpoint)))
	mux.HandleFunc("/sessions/{id}/rounds", instrument("rounds", s.forSession(s.handleRounds)))
	mux.HandleFunc("/sessions/{id}/observations", instrument("observations", s.forSession(s.handleObservations)))
	return s.recoverer(s.limiter(mux))
}

// sessionHandler is an endpoint scoped to one resolved session.
type sessionHandler func(http.ResponseWriter, *http.Request, *Session)

// forSession resolves the {id} path wildcard (absent on the legacy paths,
// which alias the default session) and counts the request under a
// per-session labeled metric. Resolution does not mark the session used —
// only handlers that need the engine touch it, so pure monitoring
// (/status, peek) never defeats LRU eviction.
func (s *Server) forSession(h sessionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id == "" {
			id = DefaultSessionID
		}
		sess := s.lookup(id)
		if sess == nil {
			http.Error(w, fmt.Sprintf("unknown session %q", id), http.StatusNotFound)
			return
		}
		obs.Default().Counter(obs.Labeled("server_session_requests_total", "session", sess.ID)).Inc()
		h(w, r, sess)
	}
}

// instrument wraps a handler with a per-endpoint request counter and
// latency timer in obs.Default(). Every request counts, including
// rejected ones. The legacy path and its /sessions/{id} twin share one
// counter — they are the same endpoint.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := obs.Default().Counter("server_" + name + "_requests_total")
	latency := obs.Default().Timer("server_" + name + "_seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		requests.Inc()
		latency.Observe(time.Since(start))
	}
}

// limiter is the global admission layer (qos.go): above cfg.MaxInflight a
// request briefly queues for a slot in the bounded admission queue and is
// rejected with 429 + an honest Retry-After when it cannot plausibly be
// served within the wait budget. Every completed request feeds the
// service-time EWMA the Retry-After hints are computed from, so the
// middleware measures even when no cap is configured.
func (s *Server) limiter(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.admSlots != nil {
			if !s.admitQueue(w, r) {
				return
			}
			defer func() { <-s.admSlots }()
		}
		start := time.Now()
		h.ServeHTTP(w, r)
		s.svc.observe(time.Since(start))
		gAdmissionServiceEWMA.Set(s.svc.seconds())
	})
}

// recoverer turns a handler panic into a 500, counts it, and records the
// stack in the log and the event sink — one bad request must never take
// down sessions holding hours of RR sets.
func (s *Server) recoverer(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p == nil {
				return
			} else {
				mPanics.Inc()
				stack := debug.Stack()
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, stack)
				obs.Emit(s.cfg.Events, "server_panic", map[string]any{
					"method": r.Method,
					"path":   r.URL.Path,
					"panic":  fmt.Sprint(p),
					"stack":  string(stack),
				})
				// Best effort: a no-op if the handler already wrote a body.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Status is the /status response body.
type Status struct {
	Session       string `json:"session"`
	NumRR         int64  `json:"num_rr"`
	EdgesExamined int64  `json:"edges_examined"`
	Running       bool   `json:"running"`
	Loaded        bool   `json:"loaded"`
	MaxRR         int64  `json:"max_rr"`
	// Graph names the catalog graph the session runs on;
	// GraphFingerprint is that graph's current content hash and GraphEpoch
	// its position on the mutation epoch chain.
	Graph            string `json:"graph,omitempty"`
	GraphFingerprint string `json:"graph_fingerprint,omitempty"`
	GraphEpoch       int64  `json:"graph_epoch,omitempty"`
}

// SnapshotResponse is the /snapshot response body.
type SnapshotResponse struct {
	Session    string  `json:"session"`
	Seeds      []int32 `json:"seeds"`
	Alpha      float64 `json:"alpha"`
	SigmaLower float64 `json:"sigma_lower"`
	SigmaUpper float64 `json:"sigma_upper"`
	Theta1     int64   `json:"theta1"`
	Theta2     int64   `json:"theta2"`
	DeltaSpent float64 `json:"delta_spent"`
	Variant    string  `json:"variant"`
}

// sessionStatus reads only the lock-free mirrors — a /status poll returns
// immediately even while the session mutex is held by a long advance. The
// graph fields read the entry's atomically published identity, so they
// are lock-free too.
func (s *Server) sessionStatus(sess *Session) Status {
	st := Status{
		Session:       sess.ID,
		NumRR:         sess.statNumRR.Load(),
		EdgesExamined: sess.statEdges.Load(),
		Running:       sess.running.Load(),
		Loaded:        sessionState(sess.state.Load()) == stateLoaded,
		MaxRR:         sess.maxRR,
	}
	if sess.graph != nil {
		id := sess.graph.ident.Load()
		st.Graph = sess.graph.name
		st.GraphFingerprint = id.fingerprint
		st.GraphEpoch = id.epoch
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.sessionStatus(sess))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if peek := r.URL.Query().Get("peek"); peek == "1" || peek == "true" {
		// Budget-free read of the last derived snapshot: no session lock, no
		// δ spend, no reload — it works (and stays cheap) even while the
		// session is mid-advance or evicted to disk.
		if p := sess.lastSnap.Load(); p != nil {
			writeJSON(w, *p)
			return
		}
		http.Error(w, fmt.Sprintf("session %q has no derived snapshot yet (GET snapshot without peek derives one)", sess.ID), http.StatusNotFound)
		return
	}
	// A real snapshot touches the engine and spends δ budget — it pays a
	// token; the peek path above stays free.
	if !s.admitSession(w, sess) {
		return
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		s.replyError(w, status, msg)
		return
	}
	// Snapshot reuses the session's persistent scratch; sess.mu serializes
	// it against concurrent snapshots and the background sampler.
	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	snap := sess.online.Snapshot()
	sess.refreshStatsLocked()
	sess.mu.Unlock()
	resp := SnapshotResponse{
		Session:    sess.ID,
		Seeds:      snap.Seeds,
		Alpha:      snap.Alpha,
		SigmaLower: snap.SigmaLower,
		SigmaUpper: snap.SigmaUpper,
		Theta1:     snap.Theta1,
		Theta2:     snap.Theta2,
		DeltaSpent: snap.DeltaSpent,
		Variant:    snap.Variant.String(),
	}
	sess.lastSnap.Store(&resp)
	writeJSON(w, resp)
}

// statusClientGone is advanceSession's sentinel for a client cancellation:
// the connection is gone, so the handler must write nothing at all.
const statusClientGone = -1

// advanceSession validates count and generates RR sets on sess — the
// /advance semantics, shared by the single-session handler and the bulk
// API. It returns 0 on success, statusClientGone when the caller's
// context was cancelled (write nothing), or the HTTP status and message
// to answer with. Partial progress is kept in the session on every path.
func (s *Server) advanceSession(ctx context.Context, sess *Session, count int) (int, string) {
	if count <= 0 {
		return http.StatusBadRequest, "count must be a positive integer"
	}
	// A count above the session budget is a client error, not a request to
	// be silently clamped; the remaining-budget clamp below only trims
	// otherwise-valid requests near exhaustion (see docs/API.md).
	if int64(count) > sess.maxRR {
		return http.StatusBadRequest, fmt.Sprintf("count %d exceeds the session RR budget max_rr=%d", count, sess.maxRR)
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		return status, msg
	}
	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		return http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID)
	}
	if remaining := sess.maxRR - sess.online.NumRR(); int64(count) > remaining {
		count = int(remaining)
	}
	var generated int
	var advErr error
	if count > 0 {
		generated, advErr = sess.online.AdvanceContext(ctx, count)
		sess.refreshStatsLocked()
	}
	sess.mu.Unlock()
	if advErr != nil {
		// Partial progress is kept in the session either way.
		if errors.Is(advErr, context.DeadlineExceeded) {
			mAdvanceDeadline.Inc()
			return http.StatusServiceUnavailable, fmt.Sprintf("advance deadline exceeded after %d of %d RR sets (progress kept; poll /status)", generated, count)
		}
		return statusClientGone, ""
	}
	return 0, ""
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	count, err := strconv.Atoi(r.URL.Query().Get("count"))
	if err != nil {
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
		return
	}
	if !s.admitSession(w, sess) {
		return
	}
	// The request context covers both the wait for the session mutex and
	// the generation itself: AdvanceContext checks it before the first
	// chunk, so a request whose deadline passed while queueing does no
	// work at all.
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	switch status, msg := s.advanceSession(ctx, sess, count); status {
	case 0:
		writeJSON(w, s.sessionStatus(sess))
	case statusClientGone:
		// Client cancellation: the connection is gone, nothing to write.
	default:
		s.replyError(w, status, msg)
	}
}

// handleMetrics dumps obs.Default(). Unlike /snapshot it spends no δ
// budget: the core_last_* gauges reflect the most recent snapshot already
// derived (zero if none yet).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().WriteJSON(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().WriteText(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or text)", format), http.StatusBadRequest)
	}
}

// startSession adds sess to the background sampling rotation — the
// /start semantics, shared by the single-session handler and the bulk
// API. A non-zero return is the HTTP status (and message) of the failure.
//
// running must flip to true while the session is verifiably loaded,
// under sess.mu — set after a bare ensureLoaded, an eviction could pick
// the still-idle session in between and unload it, leaving running=true
// on stateUnloaded: /status would report Running while nextQuantum
// skips it, so background sampling silently never happens. Under
// sess.mu the flip either precedes the victim pick (running sessions
// are never picked) or an in-flight eviction sees running=true at its
// verify step and aborts; if the session was instead evicted in the
// gap, retry the reload.
func (s *Server) startSession(sess *Session) (int, string) {
	s.touch(sess)
	for attempt := 0; ; attempt++ {
		if status, msg := s.ensureLoaded(sess); status != 0 {
			return status, msg
		}
		sess.mu.Lock()
		if sess.online != nil && sessionState(sess.state.Load()) == stateLoaded {
			sess.running.Store(true)
			sess.mu.Unlock()
			break
		}
		sess.mu.Unlock()
		if attempt >= 2 {
			mSessionConflicts.Inc()
			return http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID)
		}
	}
	s.startLoop()
	return 0, ""
}

// stopSession removes sess from the rotation. The empty critical section
// is a barrier: it waits out a sampler chunk already holding the session,
// so "stop returned" means "no further background sampling on this
// session" (the sampler re-checks running under sess.mu).
func (s *Server) stopSession(sess *Session) {
	sess.running.Store(false)
	sess.mu.Lock()
	sess.mu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.admitSession(w, sess) {
		return
	}
	if status, msg := s.startSession(sess); status != 0 {
		s.replyError(w, status, msg)
		return
	}
	writeJSON(w, s.sessionStatus(sess))
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Deliberately not token-gated: a tenant over its rate must always be
	// able to stop its own background sampling.
	s.stopSession(sess)
	writeJSON(w, s.sessionStatus(sess))
}

// startLoop launches the round-robin sampler goroutine if it is not
// already running.
func (s *Server) startLoop() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stopCh = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stopCh, s.done)
}

// Stop halts the background sampler and waits for its goroutine to have
// fully exited, then clears every session's sampling membership (so
// Status.Running reads false everywhere). Safe to call at any time,
// including when not running.
func (s *Server) Stop() {
	s.loopMu.Lock()
	if s.running {
		s.running = false
		close(s.stopCh)
	}
	done := s.done
	s.loopMu.Unlock()
	if done != nil {
		<-done
	}
	for _, sess := range s.snapshotSessions() {
		sess.running.Store(false)
	}
}

// snapshotSessions copies the session list out of the table lock.
func (s *Server) snapshotSessions() []*Session {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Shutdown is the graceful teardown: it stops the background sampler and
// the periodic checkpointer (waiting for both goroutines to exit), then
// writes a final checkpoint for every loaded session that has one
// configured, so no sampled RR set is lost. It does not own the HTTP
// listener; callers drain in-flight requests first (http.Server.Shutdown),
// then call this.
func (s *Server) Shutdown() error {
	s.Stop()
	s.stopCheckpointer()
	var first error
	for _, sess := range s.snapshotSessions() {
		if sess.ckPath == "" || sessionState(sess.state.Load()) != stateLoaded {
			continue
		}
		if _, err := s.saveSessionCheckpoint(sess); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loopIdleWait is how long the sampler parks when no session is running.
const loopIdleWait = 2 * time.Millisecond

// nextQuantum picks the next running, loaded session in rotation order
// and hands out its deficit-weighted quantum: each visit credits the
// session weight × Batch RR sets of deficit (capped at deficitBurstCap
// visits' worth) and grants the whole accumulated deficit, so a session's
// share of sampling throughput is proportional to its weight — a weight-4
// session receives 4× the RR sets per rotation of a weight-1 session —
// not merely to its existence, as the old one-quantum round-robin gave.
func (s *Server) nextQuantum() (*Session, int64) {
	s.smu.Lock()
	defer s.smu.Unlock()
	n := len(s.order)
	for i := 0; i < n; i++ {
		idx := (s.rrIdx + i) % n
		sess := s.sessions[s.order[idx]]
		if sess == nil || !sess.running.Load() || sessionState(sess.state.Load()) != stateLoaded {
			continue
		}
		if sess.graph != nil && sess.graph.mutating.Load() {
			// A mutation batch is mid-repair on this graph; skip the visit
			// rather than contend with the repair sweep for sess.mu.
			continue
		}
		s.rrIdx = (idx + 1) % n
		credit := sess.weight * float64(s.cfg.Batch)
		sess.deficit += credit
		if cap := credit * deficitBurstCap; sess.deficit > cap {
			sess.deficit = cap
		}
		if quantum := int64(sess.deficit); quantum > 0 {
			return sess, quantum
		}
		// A very small weight may not have accrued one whole RR set yet;
		// the deficit banks and the rotation moves on.
	}
	return nil, 0
}

// loop is the deficit-weighted round-robin background sampler: one
// goroutine multiplexing every running session. Each visit serves the
// session's accumulated deficit in chunks of at most one Batch, releasing
// the session mutex between chunks, so however large a heavy tenant's
// quantum grows, a client request on any session still waits at most one
// Batch of that session's own work — weighted shares without weighted
// latency.
func (s *Server) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		sess, quantum := s.nextQuantum()
		if sess == nil {
			select {
			case <-stop:
				return
			case <-time.After(loopIdleWait):
			}
			continue
		}
		var served int64
		for quantum > 0 {
			sess.mu.Lock()
			if !sess.running.Load() || sess.online == nil {
				// Stopped or evicted between selection and lock acquisition.
				sess.mu.Unlock()
				break
			}
			chunk := min64(quantum, int64(s.cfg.Batch))
			if remaining := sess.maxRR - sess.online.NumRR(); chunk >= remaining {
				chunk = remaining
				if chunk <= 0 {
					// Budget exhausted: leave the rotation; /start re-admits.
					// The flip happens under sess.mu with the exhaustion
					// re-checked in this same critical section — stored after
					// unlocking, it could clobber a concurrent POST /start
					// that legitimately flipped the session running in the
					// gap (the lost-start race).
					sess.running.Store(false)
					sess.mu.Unlock()
					break
				}
			}
			sess.online.Advance(int(chunk))
			sess.refreshStatsLocked()
			sess.mu.Unlock()
			served += chunk
			quantum -= chunk
			// A stop request must not wait out a whole multi-batch quantum.
			select {
			case <-stop:
				s.creditServed(sess, served)
				return
			default:
			}
		}
		s.creditServed(sess, served)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// writeJSON encodes v as the response body. An encoding failure here is
// unrecoverable from the client's point of view — the 200 header and part
// of the body may already be on the wire, so sending http.Error would be
// a silent no-op; instead the failure is logged and counted
// (server_encode_errors_total).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		mEncodeErrors.Inc()
		log.Printf("server: encoding response: %v", err)
	}
}
