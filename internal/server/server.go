// Package server exposes OPIM sessions over HTTP — the paper's
// online-query-processing paradigm as a long-running, multi-tenant
// service. A background sampler streams RR sets round-robin across every
// running session; clients poll each session's current seed set and
// guarantee and stop its refinement when satisfied, exactly as a database
// user monitors an online aggregation query.
//
// Endpoints (all JSON; docs/API.md has schemas and curl examples):
//
//	GET    /graphs                      list the graph catalog
//	POST   /graphs                      register a named graph (body: CreateGraphRequest)
//	GET    /graphs/{name}               describe one graph
//	DELETE /graphs/{name}               unregister a graph (409 while referenced)
//	GET    /sessions                    list sessions
//	POST   /sessions                    create a session (body: SessionSpec; "graph" picks its catalog graph)
//	GET    /sessions/{id}               describe one session
//	DELETE /sessions/{id}               delete a session and its checkpoints
//	GET    /sessions/{id}/status        session counters (never blocks)
//	GET    /sessions/{id}/snapshot      derive (seed set, α); spends δ budget
//	GET    /sessions/{id}/snapshot?peek=1  last derived snapshot; spends none
//	POST   /sessions/{id}/advance?count=N  generate N more RR sets
//	POST   /sessions/{id}/start         join background sampling
//	POST   /sessions/{id}/stop          leave background sampling
//	POST   /sessions/{id}/checkpoint    force a checkpoint write now
//	GET    /metrics                     process metrics (?format=text)
//
// The pre-session paths (/status, /snapshot, /advance, /start, /stop,
// /checkpoint) alias the session named "default", so single-session
// clients and scripts keep working unchanged.
//
// Concurrency: each session owns its own mutex, δ budget and scratch, so
// a slow snapshot or advance on one session never blocks another — and
// /status and GET /sessions read lock-free cached counters, so they stay
// responsive even against a session mid-advance. Residency is bounded via
// Config.MaxLoadedSessions: the least-recently-used idle session is
// checkpointed and unloaded, then transparently reloaded on next touch
// (see sessions.go; requests racing an eviction get 409 + Retry-After).
//
// The request path is hardened for long-lived deployments: a
// panic-recovery middleware turns handler panics into 500s (counted in
// server_panics_total, stack to the event log), an inflight cap sheds
// load with 503 + Retry-After instead of queueing unboundedly, and
// /advance threads its request context into chunked RR generation so
// client disconnects and the configured request deadline actually stop
// the work (partial progress is kept — cancelling loses no RR sets).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// Robustness metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mPanics           = obs.Default().Counter("server_panics_total")
	mEncodeErrors     = obs.Default().Counter("server_encode_errors_total")
	mInflightRejected = obs.Default().Counter("server_inflight_rejected_total")
	mAdvanceDeadline  = obs.Default().Counter("server_advance_deadline_total")
)

// Config configures a Server.
type Config struct {
	// Batch is the RR-set count generated per background-sampler visit to a
	// running session (≤ 0 defaults to 10 000) — also the fairness quantum
	// of the round-robin rotation.
	Batch int
	// MaxRR caps each session's size; the background sampler drops a
	// session from its rotation there (≤ 0 defaults to 2²⁶). Sessions may
	// choose a smaller budget at creation (SessionSpec.MaxRR).
	MaxRR int64
	// RequestTimeout bounds /advance processing; past it the request
	// returns 503 with progress kept. 0 means no deadline.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently served HTTP requests; excess requests
	// are shed with 503 + Retry-After. ≤ 0 means unlimited.
	MaxInflight int
	// CheckpointPath, when non-empty, enables crash-safe checkpointing of
	// the default session there (previous generation kept at
	// CheckpointPath+".prev").
	CheckpointPath string
	// CheckpointDir, when non-empty, enables per-session checkpoints:
	// every session (the default included, unless CheckpointPath overrides
	// it) checkpoints to CheckpointDir/<id>.ck, AdoptCheckpointDir
	// re-registers them at startup, and LRU eviction becomes possible.
	CheckpointDir string
	// MaxLoadedSessions bounds how many sessions are resident in memory;
	// above it the least-recently-used idle session is checkpointed and
	// unloaded, then transparently reloaded on its next touch. ≤ 0 means
	// unbounded. Only sessions with a checkpoint path are evictable.
	MaxLoadedSessions int
	// MaxLoadedGraphs bounds how many catalog graphs are resident; above it
	// the least-recently-used graph with no loaded session is unloaded and
	// transparently reloaded from its GraphSpec on the next session touch.
	// ≤ 0 means unbounded. Only graphs registered with a spec are
	// unloadable (see catalog.go).
	MaxLoadedGraphs int
	// DefaultGraphSpec, when non-empty, is the cliutil.GraphSpec string the
	// graph passed to New was loaded from. It makes the default graph
	// reloadable (so it participates in MaxLoadedGraphs) and is recorded in
	// every default-graph session checkpoint for restart-time verification.
	DefaultGraphSpec string
	// CheckpointInterval is the cadence of StartCheckpointer
	// (≤ 0 defaults to DefaultCheckpointInterval).
	CheckpointInterval time.Duration
	// Events, when non-nil, receives structured server events: one
	// "server_panic" per recovered handler panic and one
	// "checkpoint_failure" per failed checkpoint write.
	Events obs.Sink
}

// Server hosts many named OPIM sessions behind an HTTP API. Sessions on
// the same catalog graph share one immutable sampler (graph + diffusion
// model) but nothing else: each has its own lock, δ budget, scratch and
// background-sampling membership, so sessions never block each other —
// across graphs or within one.
type Server struct {
	cfg     Config
	sampler *rrset.Sampler // the default graph's sampler (startup resume path)

	// smu guards the session table (sessions/order/touchSeq and each
	// session's lastTouch). It is never held across engine work, checkpoint
	// I/O or any sess.mu acquisition — table reads stay O(1) even while
	// every session is busy.
	smu      sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order; the round-robin rotation
	rrIdx    int      // next rotation position
	touchSeq int64

	loaded atomic.Int64 // sessions in stateLoaded (gauge mirror)

	// gmu guards the graph catalog table (graphs/gtouchSeq and each
	// entry's lastTouch); like smu it is never held across a load or any
	// entry.mu acquisition (see catalog.go for the full lock order).
	gmu       sync.Mutex
	graphs    map[string]*graphEntry
	gtouchSeq int64

	loadedGraphs atomic.Int64 // resident graphs (gauge mirror)

	inflight atomic.Int64

	loopMu  sync.Mutex // guards running/stopCh/done transitions
	running bool
	stopCh  chan struct{}
	done    chan struct{}

	ckMu   sync.Mutex // guards the checkpointer goroutine's lifecycle
	ckStop chan struct{}
	ckDone chan struct{}

	saveMu sync.Mutex // serializes checkpoint writes (periodic/forced/final)
	// ckWrap, when non-nil, wraps the checkpoint writer — the fault
	// injection seam used by chaos tests (faultinject.TornWriter etc.).
	ckWrap func(io.Writer) io.Writer
}

// New wraps session — which becomes the "default" session, on the graph
// registered as "default" — with the given configuration. Further graphs
// are registered over HTTP (POST /graphs), further sessions created
// (POST /sessions) or adopted from checkpoints (AdoptCheckpointDir).
func New(session *core.Online, cfg Config) *Server {
	if cfg.Batch <= 0 {
		cfg.Batch = 10000
	}
	if cfg.MaxRR <= 0 {
		cfg.MaxRR = 1 << 26
	}
	s := &Server{
		cfg:      cfg,
		sampler:  session.Sampler(),
		sessions: make(map[string]*Session),
		graphs:   make(map[string]*graphEntry),
	}
	// Register the startup graph as the "default" catalog entry. With
	// DefaultGraphSpec set it is reloadable like any POSTed graph;
	// without, it can never be unloaded (symmetric with ckPath-less
	// sessions never being evictable). Pre-publication: no concurrency yet.
	g := session.Sampler().Graph()
	def := &graphEntry{
		name:        DefaultGraphName,
		specString:  cfg.DefaultGraphSpec,
		fingerprint: g.Fingerprint(),
		n:           g.N(),
		m:           g.M(),
		g:           g,
		sampler:     session.Sampler(),
	}
	if cfg.DefaultGraphSpec != "" {
		spec, err := cliutil.ParseGraphSpec(cfg.DefaultGraphSpec)
		if err != nil {
			// An unparseable spec cannot reload the graph; keep the entry
			// resident forever rather than fail later.
			def.specString = ""
		} else {
			def.spec = spec
		}
	}
	def.isLoaded.Store(true)
	def.sessions.Store(1)   // the default session
	def.loadedRefs.Store(1) // ... which starts resident
	s.graphs[DefaultGraphName] = def
	s.gtouchSeq++
	def.lastTouch = s.gtouchSeq
	gGraphsLoaded.Set(float64(s.loadedGraphs.Add(1)))
	session.SetGraphIdentity(DefaultGraphName, def.specString)

	ckPath := cfg.CheckpointPath
	if ckPath == "" {
		ckPath = s.sessionCheckpointPath(DefaultSessionID)
	}
	defSess := &Session{ID: DefaultSessionID, maxRR: cfg.MaxRR, ckPath: ckPath, graph: def}
	defSess.setOnlineLocked(session) // pre-publication: no concurrent access yet
	s.addSession(defSess)
	return s
}

// Handler returns the HTTP handler for the server's API: the endpoint mux
// wrapped in the inflight-cap and panic-recovery middleware (recovery
// outermost, so even a panic inside the limiter is contained).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Legacy single-session paths alias the default session (forSession
	// maps an absent {id} wildcard to DefaultSessionID).
	mux.HandleFunc("/status", instrument("status", s.forSession(s.handleStatus)))
	mux.HandleFunc("/snapshot", instrument("snapshot", s.forSession(s.handleSnapshot)))
	mux.HandleFunc("/advance", instrument("advance", s.forSession(s.handleAdvance)))
	mux.HandleFunc("/start", instrument("start", s.forSession(s.handleStart)))
	mux.HandleFunc("/stop", instrument("stop", s.forSession(s.handleStop)))
	mux.HandleFunc("/checkpoint", instrument("checkpoint", s.forSession(s.handleCheckpoint)))
	mux.HandleFunc("/metrics", instrument("metrics", s.handleMetrics))
	// Graph catalog.
	mux.HandleFunc("/graphs", instrument("graphs", s.handleGraphs))
	mux.HandleFunc("/graphs/{name}", instrument("graph", s.handleGraphByName))
	// Session management and per-session endpoints.
	mux.HandleFunc("/sessions", instrument("sessions", s.handleSessions))
	mux.HandleFunc("/sessions/{id}", instrument("session", s.handleSessionByID))
	mux.HandleFunc("/sessions/{id}/status", instrument("status", s.forSession(s.handleStatus)))
	mux.HandleFunc("/sessions/{id}/snapshot", instrument("snapshot", s.forSession(s.handleSnapshot)))
	mux.HandleFunc("/sessions/{id}/advance", instrument("advance", s.forSession(s.handleAdvance)))
	mux.HandleFunc("/sessions/{id}/start", instrument("start", s.forSession(s.handleStart)))
	mux.HandleFunc("/sessions/{id}/stop", instrument("stop", s.forSession(s.handleStop)))
	mux.HandleFunc("/sessions/{id}/checkpoint", instrument("checkpoint", s.forSession(s.handleCheckpoint)))
	return s.recoverer(s.limiter(mux))
}

// sessionHandler is an endpoint scoped to one resolved session.
type sessionHandler func(http.ResponseWriter, *http.Request, *Session)

// forSession resolves the {id} path wildcard (absent on the legacy paths,
// which alias the default session) and counts the request under a
// per-session labeled metric. Resolution does not mark the session used —
// only handlers that need the engine touch it, so pure monitoring
// (/status, peek) never defeats LRU eviction.
func (s *Server) forSession(h sessionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id == "" {
			id = DefaultSessionID
		}
		sess := s.lookup(id)
		if sess == nil {
			http.Error(w, fmt.Sprintf("unknown session %q", id), http.StatusNotFound)
			return
		}
		obs.Default().Counter(obs.Labeled("server_session_requests_total", "session", sess.ID)).Inc()
		h(w, r, sess)
	}
}

// instrument wraps a handler with a per-endpoint request counter and
// latency timer in obs.Default(). Every request counts, including
// rejected ones. The legacy path and its /sessions/{id} twin share one
// counter — they are the same endpoint.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := obs.Default().Counter("server_" + name + "_requests_total")
	latency := obs.Default().Timer("server_" + name + "_seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		requests.Inc()
		latency.Observe(time.Since(start))
	}
}

// limiter sheds load above cfg.MaxInflight with 503 + Retry-After — a
// slow client can then back off and retry instead of queueing on a
// session mutex until its deadline passes.
func (s *Server) limiter(h http.Handler) http.Handler {
	max := int64(s.cfg.MaxInflight)
	if max <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inflight.Add(1) > max {
			s.inflight.Add(-1)
			mInflightRejected.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("server at capacity (%d requests in flight)", max), http.StatusServiceUnavailable)
			return
		}
		defer s.inflight.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// recoverer turns a handler panic into a 500, counts it, and records the
// stack in the log and the event sink — one bad request must never take
// down sessions holding hours of RR sets.
func (s *Server) recoverer(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p == nil {
				return
			} else {
				mPanics.Inc()
				stack := debug.Stack()
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, stack)
				obs.Emit(s.cfg.Events, "server_panic", map[string]any{
					"method": r.Method,
					"path":   r.URL.Path,
					"panic":  fmt.Sprint(p),
					"stack":  string(stack),
				})
				// Best effort: a no-op if the handler already wrote a body.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Status is the /status response body.
type Status struct {
	Session       string `json:"session"`
	NumRR         int64  `json:"num_rr"`
	EdgesExamined int64  `json:"edges_examined"`
	Running       bool   `json:"running"`
	Loaded        bool   `json:"loaded"`
	MaxRR         int64  `json:"max_rr"`
	// Graph names the catalog graph the session runs on;
	// GraphFingerprint is that graph's content hash.
	Graph            string `json:"graph,omitempty"`
	GraphFingerprint string `json:"graph_fingerprint,omitempty"`
}

// SnapshotResponse is the /snapshot response body.
type SnapshotResponse struct {
	Session    string  `json:"session"`
	Seeds      []int32 `json:"seeds"`
	Alpha      float64 `json:"alpha"`
	SigmaLower float64 `json:"sigma_lower"`
	SigmaUpper float64 `json:"sigma_upper"`
	Theta1     int64   `json:"theta1"`
	Theta2     int64   `json:"theta2"`
	DeltaSpent float64 `json:"delta_spent"`
	Variant    string  `json:"variant"`
}

// sessionStatus reads only the lock-free mirrors — a /status poll returns
// immediately even while the session mutex is held by a long advance. The
// graph fields read the entry's immutable identity, so they are lock-free
// too.
func (s *Server) sessionStatus(sess *Session) Status {
	st := Status{
		Session:       sess.ID,
		NumRR:         sess.statNumRR.Load(),
		EdgesExamined: sess.statEdges.Load(),
		Running:       sess.running.Load(),
		Loaded:        sessionState(sess.state.Load()) == stateLoaded,
		MaxRR:         sess.maxRR,
	}
	if sess.graph != nil {
		st.Graph = sess.graph.name
		st.GraphFingerprint = sess.graph.fingerprint
	}
	return st
}

// replyError writes an error status; 409s (eviction races) carry
// Retry-After so well-behaved clients back off and retry instead of
// failing a request the server could serve a moment later.
func replyError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusConflict {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, status)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.sessionStatus(sess))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if peek := r.URL.Query().Get("peek"); peek == "1" || peek == "true" {
		// Budget-free read of the last derived snapshot: no session lock, no
		// δ spend, no reload — it works (and stays cheap) even while the
		// session is mid-advance or evicted to disk.
		if p := sess.lastSnap.Load(); p != nil {
			writeJSON(w, *p)
			return
		}
		http.Error(w, fmt.Sprintf("session %q has no derived snapshot yet (GET snapshot without peek derives one)", sess.ID), http.StatusNotFound)
		return
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		replyError(w, status, msg)
		return
	}
	// Snapshot reuses the session's persistent scratch; sess.mu serializes
	// it against concurrent snapshots and the background sampler.
	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	snap := sess.online.Snapshot()
	sess.refreshStatsLocked()
	sess.mu.Unlock()
	resp := SnapshotResponse{
		Session:    sess.ID,
		Seeds:      snap.Seeds,
		Alpha:      snap.Alpha,
		SigmaLower: snap.SigmaLower,
		SigmaUpper: snap.SigmaUpper,
		Theta1:     snap.Theta1,
		Theta2:     snap.Theta2,
		DeltaSpent: snap.DeltaSpent,
		Variant:    snap.Variant.String(),
	}
	sess.lastSnap.Store(&resp)
	writeJSON(w, resp)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	count, err := strconv.Atoi(r.URL.Query().Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
		return
	}
	// A count above the session budget is a client error, not a request to
	// be silently clamped; the remaining-budget clamp below only trims
	// otherwise-valid requests near exhaustion (see docs/API.md).
	if int64(count) > sess.maxRR {
		http.Error(w, fmt.Sprintf("count %d exceeds the session RR budget max_rr=%d", count, sess.maxRR), http.StatusBadRequest)
		return
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		replyError(w, status, msg)
		return
	}
	// The request context covers both the wait for the session mutex and
	// the generation itself: AdvanceContext checks it before the first
	// chunk, so a request whose deadline passed while queueing does no
	// work at all.
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	if remaining := sess.maxRR - sess.online.NumRR(); int64(count) > remaining {
		count = int(remaining)
	}
	var generated int
	var advErr error
	if count > 0 {
		generated, advErr = sess.online.AdvanceContext(ctx, count)
		sess.refreshStatsLocked()
	}
	sess.mu.Unlock()
	if advErr != nil {
		// Partial progress is kept in the session either way.
		if errors.Is(advErr, context.DeadlineExceeded) {
			mAdvanceDeadline.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("advance deadline exceeded after %d of %d RR sets (progress kept; poll /status)", generated, count), http.StatusServiceUnavailable)
		}
		// Client cancellation: the connection is gone, nothing to write.
		return
	}
	writeJSON(w, s.sessionStatus(sess))
}

// handleMetrics dumps obs.Default(). Unlike /snapshot it spends no δ
// budget: the core_last_* gauges reflect the most recent snapshot already
// derived (zero if none yet).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().WriteJSON(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().WriteText(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or text)", format), http.StatusBadRequest)
	}
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.touch(sess)
	// running must flip to true while the session is verifiably loaded,
	// under sess.mu — set after a bare ensureLoaded, an eviction could pick
	// the still-idle session in between and unload it, leaving running=true
	// on stateUnloaded: /status would report Running while nextRunning
	// skips it, so background sampling silently never happens. Under
	// sess.mu the flip either precedes the victim pick (running sessions
	// are never picked) or an in-flight eviction sees running=true at its
	// verify step and aborts; if the session was instead evicted in the
	// gap, retry the reload.
	for attempt := 0; ; attempt++ {
		if status, msg := s.ensureLoaded(sess); status != 0 {
			replyError(w, status, msg)
			return
		}
		sess.mu.Lock()
		if sess.online != nil && sessionState(sess.state.Load()) == stateLoaded {
			sess.running.Store(true)
			sess.mu.Unlock()
			break
		}
		sess.mu.Unlock()
		if attempt >= 2 {
			mSessionConflicts.Inc()
			replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
			return
		}
	}
	s.startLoop()
	writeJSON(w, s.sessionStatus(sess))
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sess.running.Store(false)
	// Barrier: wait out a sampler batch already holding the session, so
	// "stop returned" means "no further background sampling on this
	// session" (the sampler re-checks running under sess.mu).
	sess.mu.Lock()
	sess.mu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	writeJSON(w, s.sessionStatus(sess))
}

// startLoop launches the round-robin sampler goroutine if it is not
// already running.
func (s *Server) startLoop() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stopCh = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stopCh, s.done)
}

// Stop halts the background sampler and waits for its goroutine to have
// fully exited, then clears every session's sampling membership (so
// Status.Running reads false everywhere). Safe to call at any time,
// including when not running.
func (s *Server) Stop() {
	s.loopMu.Lock()
	if s.running {
		s.running = false
		close(s.stopCh)
	}
	done := s.done
	s.loopMu.Unlock()
	if done != nil {
		<-done
	}
	for _, sess := range s.snapshotSessions() {
		sess.running.Store(false)
	}
}

// snapshotSessions copies the session list out of the table lock.
func (s *Server) snapshotSessions() []*Session {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Shutdown is the graceful teardown: it stops the background sampler and
// the periodic checkpointer (waiting for both goroutines to exit), then
// writes a final checkpoint for every loaded session that has one
// configured, so no sampled RR set is lost. It does not own the HTTP
// listener; callers drain in-flight requests first (http.Server.Shutdown),
// then call this.
func (s *Server) Shutdown() error {
	s.Stop()
	s.stopCheckpointer()
	var first error
	for _, sess := range s.snapshotSessions() {
		if sess.ckPath == "" || sessionState(sess.state.Load()) != stateLoaded {
			continue
		}
		if _, err := s.saveSessionCheckpoint(sess); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loopIdleWait is how long the sampler parks when no session is running.
const loopIdleWait = 2 * time.Millisecond

// nextRunning picks the next running, loaded session in rotation order —
// each visit hands out one Batch quantum, so N running sessions progress
// at 1/N of the sampling throughput each regardless of creation order.
func (s *Server) nextRunning() *Session {
	s.smu.Lock()
	defer s.smu.Unlock()
	n := len(s.order)
	for i := 0; i < n; i++ {
		idx := (s.rrIdx + i) % n
		sess := s.sessions[s.order[idx]]
		if sess != nil && sess.running.Load() && sessionState(sess.state.Load()) == stateLoaded {
			s.rrIdx = (idx + 1) % n
			return sess
		}
	}
	return nil
}

// loop is the round-robin background sampler: one goroutine multiplexing
// every running session, one batch per visit. Per-session pacing happens
// under that session's own mutex, so a client request on session B waits
// at most one batch of B — never a batch of A.
func (s *Server) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		sess := s.nextRunning()
		if sess == nil {
			select {
			case <-stop:
				return
			case <-time.After(loopIdleWait):
			}
			continue
		}
		sess.mu.Lock()
		if !sess.running.Load() || sess.online == nil {
			// Stopped or evicted between selection and lock acquisition.
			sess.mu.Unlock()
			continue
		}
		remaining := sess.maxRR - sess.online.NumRR()
		batch := int64(s.cfg.Batch)
		if batch > remaining {
			batch = remaining
		}
		if batch > 0 {
			sess.online.Advance(int(batch))
			sess.refreshStatsLocked()
		}
		sess.mu.Unlock()
		if batch <= 0 {
			// Budget exhausted: leave the rotation; /start re-admits.
			sess.running.Store(false)
		}
	}
}

// writeJSON encodes v as the response body. An encoding failure here is
// unrecoverable from the client's point of view — the 200 header and part
// of the body may already be on the wire, so sending http.Error would be
// a silent no-op; instead the failure is logged and counted
// (server_encode_errors_total).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		mEncodeErrors.Inc()
		log.Printf("server: encoding response: %v", err)
	}
}
