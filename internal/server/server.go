// Package server exposes an OPIM session over HTTP — the paper's
// online-query-processing paradigm as a long-running service. A background
// loop streams RR sets; clients poll the current seed set and guarantee
// and stop the refinement when satisfied, exactly as a database user
// monitors an online aggregation query.
//
// Endpoints (all JSON):
//
//	GET  /status            session counters
//	GET  /snapshot          current (seed set, α, bounds); spends δ budget
//	GET  /metrics           process metrics (JSON; ?format=text for lines)
//	POST /advance?count=N   generate N more RR sets synchronously
//	POST /start             start background sampling (idempotent)
//	POST /stop              pause background sampling (idempotent)
//	POST /checkpoint        force a crash-safe checkpoint write now
//
// docs/API.md documents every endpoint with its parameters, response
// schema and curl examples; docs/ROBUSTNESS.md documents the
// fault-tolerance layer (checkpointing, deadlines, shutdown, retry
// semantics). Every endpoint is instrumented: a request counter
// (server_<name>_requests_total) and a latency timer
// (server_<name>_seconds) in obs.Default(), which /metrics itself exposes
// together with the RR-generation throughput counters and the latest
// snapshot's (θ, σˡ, σᵘ, α) gauges — without spending any δ budget.
//
// The request path is hardened for long-lived deployments: a
// panic-recovery middleware turns handler panics into 500s (counted in
// server_panics_total, stack to the event log), an inflight cap sheds
// load with 503 + Retry-After instead of queueing unboundedly, and
// /advance threads its request context into chunked RR generation so
// client disconnects and the configured request deadline actually stop
// the work (partial progress is kept — cancelling loses no RR sets).
//
// Each session owns a persistent selection/coverage scratch (the
// epoch-marked kernels of internal/maxcover and internal/rrset), so a
// client polling /snapshot pays no per-request selection allocations; the
// server's session mutex serializes all access, which is what makes that
// reuse safe against the background sampling loop.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/obs"
)

// Robustness metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mPanics           = obs.Default().Counter("server_panics_total")
	mEncodeErrors     = obs.Default().Counter("server_encode_errors_total")
	mInflightRejected = obs.Default().Counter("server_inflight_rejected_total")
	mAdvanceDeadline  = obs.Default().Counter("server_advance_deadline_total")
)

// Config configures a Server.
type Config struct {
	// Batch is the RR-set count generated per background-loop iteration
	// (≤ 0 defaults to 10 000).
	Batch int
	// MaxRR caps the session size; the background loop stops there
	// (≤ 0 defaults to 2²⁶).
	MaxRR int64
	// RequestTimeout bounds /advance processing; past it the request
	// returns 503 with progress kept. 0 means no deadline.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently served HTTP requests; excess requests
	// are shed with 503 + Retry-After. ≤ 0 means unlimited.
	MaxInflight int
	// CheckpointPath, when non-empty, enables crash-safe checkpointing:
	// SaveCheckpoint / POST /checkpoint write the session there atomically
	// (previous generation kept at CheckpointPath+".prev").
	CheckpointPath string
	// CheckpointInterval is the cadence of StartCheckpointer
	// (≤ 0 defaults to DefaultCheckpointInterval).
	CheckpointInterval time.Duration
	// Events, when non-nil, receives structured server events: one
	// "server_panic" per recovered handler panic and one
	// "checkpoint_failure" per failed checkpoint write.
	Events obs.Sink
}

// Server wraps one Online session behind an HTTP API. All session access
// is serialized by an internal mutex, so the background sampler and HTTP
// clients can interleave safely.
type Server struct {
	mu      sync.Mutex
	session *core.Online

	cfg Config

	inflight atomic.Int64

	loopMu  sync.Mutex // guards running/stopCh/done transitions
	running bool
	stopCh  chan struct{}
	done    chan struct{}

	ckMu   sync.Mutex // guards the checkpointer goroutine's lifecycle
	ckStop chan struct{}
	ckDone chan struct{}

	saveMu sync.Mutex // serializes checkpoint writes (periodic/forced/final)
	// ckWrap, when non-nil, wraps the checkpoint writer — the fault
	// injection seam used by chaos tests (faultinject.TornWriter etc.).
	ckWrap func(io.Writer) io.Writer
}

// New wraps session with the given configuration.
func New(session *core.Online, cfg Config) *Server {
	if cfg.Batch <= 0 {
		cfg.Batch = 10000
	}
	if cfg.MaxRR <= 0 {
		cfg.MaxRR = 1 << 26
	}
	return &Server{session: session, cfg: cfg}
}

// Handler returns the HTTP handler for the server's API: the endpoint mux
// wrapped in the inflight-cap and panic-recovery middleware (recovery
// outermost, so even a panic inside the limiter is contained).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", instrument("status", s.handleStatus))
	mux.HandleFunc("/snapshot", instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("/advance", instrument("advance", s.handleAdvance))
	mux.HandleFunc("/start", instrument("start", s.handleStart))
	mux.HandleFunc("/stop", instrument("stop", s.handleStop))
	mux.HandleFunc("/metrics", instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/checkpoint", instrument("checkpoint", s.handleCheckpoint))
	return s.recoverer(s.limiter(mux))
}

// instrument wraps a handler with a per-endpoint request counter and
// latency timer in obs.Default(). Every request counts, including
// rejected ones.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := obs.Default().Counter("server_" + name + "_requests_total")
	latency := obs.Default().Timer("server_" + name + "_seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		requests.Inc()
		latency.Observe(time.Since(start))
	}
}

// limiter sheds load above cfg.MaxInflight with 503 + Retry-After — a
// slow client can then back off and retry instead of queueing on the
// session mutex until its deadline passes.
func (s *Server) limiter(h http.Handler) http.Handler {
	max := int64(s.cfg.MaxInflight)
	if max <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inflight.Add(1) > max {
			s.inflight.Add(-1)
			mInflightRejected.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("server at capacity (%d requests in flight)", max), http.StatusServiceUnavailable)
			return
		}
		defer s.inflight.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// recoverer turns a handler panic into a 500, counts it, and records the
// stack in the log and the event sink — one bad request must never take
// down a session holding hours of RR sets.
func (s *Server) recoverer(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p == nil {
				return
			} else {
				mPanics.Inc()
				stack := debug.Stack()
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, stack)
				obs.Emit(s.cfg.Events, "server_panic", map[string]any{
					"method": r.Method,
					"path":   r.URL.Path,
					"panic":  fmt.Sprint(p),
					"stack":  string(stack),
				})
				// Best effort: a no-op if the handler already wrote a body.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Status is the /status response body.
type Status struct {
	NumRR         int64 `json:"num_rr"`
	EdgesExamined int64 `json:"edges_examined"`
	Running       bool  `json:"running"`
	MaxRR         int64 `json:"max_rr"`
}

// SnapshotResponse is the /snapshot response body.
type SnapshotResponse struct {
	Seeds      []int32 `json:"seeds"`
	Alpha      float64 `json:"alpha"`
	SigmaLower float64 `json:"sigma_lower"`
	SigmaUpper float64 `json:"sigma_upper"`
	Theta1     int64   `json:"theta1"`
	Theta2     int64   `json:"theta2"`
	DeltaSpent float64 `json:"delta_spent"`
	Variant    string  `json:"variant"`
}

func (s *Server) status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		NumRR:         s.session.NumRR(),
		EdgesExamined: s.session.EdgesExamined(),
		Running:       s.isRunning(),
		MaxRR:         s.cfg.MaxRR,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.status())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// Snapshot reuses the session's persistent scratch; s.mu serializes it
	// against concurrent /snapshot requests and the background loop.
	s.mu.Lock()
	snap := s.session.Snapshot()
	s.mu.Unlock()
	writeJSON(w, SnapshotResponse{
		Seeds:      snap.Seeds,
		Alpha:      snap.Alpha,
		SigmaLower: snap.SigmaLower,
		SigmaUpper: snap.SigmaUpper,
		Theta1:     snap.Theta1,
		Theta2:     snap.Theta2,
		DeltaSpent: snap.DeltaSpent,
		Variant:    snap.Variant.String(),
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	count, err := strconv.Atoi(r.URL.Query().Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
		return
	}
	// A count above the session budget is a client error, not a request to
	// be silently clamped; the remaining-budget clamp below only trims
	// otherwise-valid requests near exhaustion (see docs/API.md).
	if int64(count) > s.cfg.MaxRR {
		http.Error(w, fmt.Sprintf("count %d exceeds the session RR budget max_rr=%d", count, s.cfg.MaxRR), http.StatusBadRequest)
		return
	}
	// The request context covers both the wait for the session mutex and
	// the generation itself: AdvanceContext checks it before the first
	// chunk, so a request whose deadline passed while queueing does no
	// work at all.
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	s.mu.Lock()
	if remaining := s.cfg.MaxRR - s.session.NumRR(); int64(count) > remaining {
		count = int(remaining)
	}
	var generated int
	var advErr error
	if count > 0 {
		generated, advErr = s.session.AdvanceContext(ctx, count)
	}
	s.mu.Unlock()
	if advErr != nil {
		// Partial progress is kept in the session either way.
		if errors.Is(advErr, context.DeadlineExceeded) {
			mAdvanceDeadline.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("advance deadline exceeded after %d of %d RR sets (progress kept; poll /status)", generated, count), http.StatusServiceUnavailable)
		}
		// Client cancellation: the connection is gone, nothing to write.
		return
	}
	writeJSON(w, s.status())
}

// handleMetrics dumps obs.Default(). Unlike /snapshot it spends no δ
// budget: the core_last_* gauges reflect the most recent snapshot already
// derived (zero if none yet).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().WriteJSON(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().WriteText(w); err != nil {
			mEncodeErrors.Inc()
			log.Printf("server: encoding /metrics response: %v", err)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or text)", format), http.StatusBadRequest)
	}
}

func (s *Server) isRunning() bool {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.running
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.loopMu.Lock()
	if !s.running {
		s.running = true
		s.stopCh = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop(s.stopCh, s.done)
	}
	s.loopMu.Unlock()
	writeJSON(w, s.status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.Stop()
	writeJSON(w, s.status())
}

// Stop halts background sampling and waits for the loop goroutine to have
// fully exited. Safe to call at any time, including when not running and
// concurrently with the loop's own budget-exhausted self-termination —
// in every case Stop returns only after the loop's done channel closed.
func (s *Server) Stop() {
	s.loopMu.Lock()
	if s.running {
		s.running = false
		close(s.stopCh)
	}
	done := s.done
	s.loopMu.Unlock()
	if done != nil {
		<-done
	}
}

// Shutdown is the graceful teardown: it stops the background loop and the
// periodic checkpointer (waiting for both goroutines to exit), then — when
// checkpointing is configured — writes a final checkpoint so no sampled RR
// set is lost. It does not own the HTTP listener; callers drain in-flight
// requests first (http.Server.Shutdown), then call this.
func (s *Server) Shutdown() error {
	s.Stop()
	s.stopCheckpointer()
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	_, err := s.SaveCheckpoint()
	return err
}

func (s *Server) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.mu.Lock()
		remaining := s.cfg.MaxRR - s.session.NumRR()
		batch := int64(s.cfg.Batch)
		if batch > remaining {
			batch = remaining
		}
		if batch > 0 {
			s.session.Advance(int(batch))
		}
		s.mu.Unlock()
		if batch <= 0 {
			// Budget exhausted: mark ourselves stopped and exit. A
			// concurrent Stop still waits on done (closed by the defer), so
			// "Stop returned" always means "loop exited".
			s.loopMu.Lock()
			if s.running {
				s.running = false
				close(s.stopCh)
			}
			s.loopMu.Unlock()
			return
		}
	}
}

// writeJSON encodes v as the response body. An encoding failure here is
// unrecoverable from the client's point of view — the 200 header and part
// of the body may already be on the wire, so sending http.Error would be
// a silent no-op; instead the failure is logged and counted
// (server_encode_errors_total).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		mEncodeErrors.Inc()
		log.Printf("server: encoding response: %v", err)
	}
}
