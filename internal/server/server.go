// Package server exposes an OPIM session over HTTP — the paper's
// online-query-processing paradigm as a long-running service. A background
// loop streams RR sets; clients poll the current seed set and guarantee
// and stop the refinement when satisfied, exactly as a database user
// monitors an online aggregation query.
//
// Endpoints (all JSON):
//
//	GET  /status            session counters
//	GET  /snapshot          current (seed set, α, bounds); spends δ budget
//	GET  /metrics           process metrics (JSON; ?format=text for lines)
//	POST /advance?count=N   generate N more RR sets synchronously
//	POST /start             start background sampling (idempotent)
//	POST /stop              pause background sampling (idempotent)
//
// docs/API.md documents every endpoint with its parameters, response
// schema and curl examples. Every endpoint is instrumented: a request
// counter (server_<name>_requests_total) and a latency timer
// (server_<name>_seconds) in obs.Default(), which /metrics itself exposes
// together with the RR-generation throughput counters and the latest
// snapshot's (θ, σˡ, σᵘ, α) gauges — without spending any δ budget.
//
// Each session owns a persistent selection/coverage scratch (the
// epoch-marked kernels of internal/maxcover and internal/rrset), so a
// client polling /snapshot pays no per-request selection allocations; the
// server's session mutex serializes all access, which is what makes that
// reuse safe against the background sampling loop.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/obs"
)

// Server wraps one Online session behind an HTTP API. All session access
// is serialized by an internal mutex, so the background sampler and HTTP
// clients can interleave safely.
type Server struct {
	mu      sync.Mutex
	session *core.Online

	// Batch is the RR-set count generated per background iteration.
	batch int
	// MaxRR caps the session size; the background loop stops there.
	maxRR int64

	loopMu  sync.Mutex // guards running/stopCh transitions
	running bool
	stopCh  chan struct{}
	done    chan struct{}
}

// New wraps session. batch is the background generation granularity
// (≤ 0 defaults to 10 000); maxRR caps total RR sets (≤ 0 defaults to 2²⁶).
func New(session *core.Online, batch int, maxRR int64) *Server {
	if batch <= 0 {
		batch = 10000
	}
	if maxRR <= 0 {
		maxRR = 1 << 26
	}
	return &Server{session: session, batch: batch, maxRR: maxRR}
}

// Handler returns the HTTP handler for the server's API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", instrument("status", s.handleStatus))
	mux.HandleFunc("/snapshot", instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("/advance", instrument("advance", s.handleAdvance))
	mux.HandleFunc("/start", instrument("start", s.handleStart))
	mux.HandleFunc("/stop", instrument("stop", s.handleStop))
	mux.HandleFunc("/metrics", instrument("metrics", s.handleMetrics))
	return mux
}

// instrument wraps a handler with a per-endpoint request counter and
// latency timer in obs.Default(). Every request counts, including
// rejected ones.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := obs.Default().Counter("server_" + name + "_requests_total")
	latency := obs.Default().Timer("server_" + name + "_seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		requests.Inc()
		latency.Observe(time.Since(start))
	}
}

// Status is the /status response body.
type Status struct {
	NumRR         int64 `json:"num_rr"`
	EdgesExamined int64 `json:"edges_examined"`
	Running       bool  `json:"running"`
	MaxRR         int64 `json:"max_rr"`
}

// SnapshotResponse is the /snapshot response body.
type SnapshotResponse struct {
	Seeds      []int32 `json:"seeds"`
	Alpha      float64 `json:"alpha"`
	SigmaLower float64 `json:"sigma_lower"`
	SigmaUpper float64 `json:"sigma_upper"`
	Theta1     int64   `json:"theta1"`
	Theta2     int64   `json:"theta2"`
	DeltaSpent float64 `json:"delta_spent"`
	Variant    string  `json:"variant"`
}

func (s *Server) status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		NumRR:         s.session.NumRR(),
		EdgesExamined: s.session.EdgesExamined(),
		Running:       s.isRunning(),
		MaxRR:         s.maxRR,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.status())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// Snapshot reuses the session's persistent scratch; s.mu serializes it
	// against concurrent /snapshot requests and the background loop.
	s.mu.Lock()
	snap := s.session.Snapshot()
	s.mu.Unlock()
	writeJSON(w, SnapshotResponse{
		Seeds:      snap.Seeds,
		Alpha:      snap.Alpha,
		SigmaLower: snap.SigmaLower,
		SigmaUpper: snap.SigmaUpper,
		Theta1:     snap.Theta1,
		Theta2:     snap.Theta2,
		DeltaSpent: snap.DeltaSpent,
		Variant:    snap.Variant.String(),
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	count, err := strconv.Atoi(r.URL.Query().Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
		return
	}
	// A count above the session budget is a client error, not a request to
	// be silently clamped; the remaining-budget clamp below only trims
	// otherwise-valid requests near exhaustion (see docs/API.md).
	if int64(count) > s.maxRR {
		http.Error(w, fmt.Sprintf("count %d exceeds the session RR budget max_rr=%d", count, s.maxRR), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if remaining := s.maxRR - s.session.NumRR(); int64(count) > remaining {
		count = int(remaining)
	}
	if count > 0 {
		s.session.Advance(count)
	}
	s.mu.Unlock()
	writeJSON(w, s.status())
}

// handleMetrics dumps obs.Default(). Unlike /snapshot it spends no δ
// budget: the core_last_* gauges reflect the most recent snapshot already
// derived (zero if none yet).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().WriteJSON(w); err != nil {
			http.Error(w, fmt.Sprintf("encoding metrics: %v", err), http.StatusInternalServerError)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().WriteText(w); err != nil {
			http.Error(w, fmt.Sprintf("encoding metrics: %v", err), http.StatusInternalServerError)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or text)", format), http.StatusBadRequest)
	}
}

func (s *Server) isRunning() bool {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.running
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.loopMu.Lock()
	if !s.running {
		s.running = true
		s.stopCh = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop(s.stopCh, s.done)
	}
	s.loopMu.Unlock()
	writeJSON(w, s.status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.Stop()
	writeJSON(w, s.status())
}

// Stop halts background sampling and waits for the loop to exit. Safe to
// call at any time, including when not running.
func (s *Server) Stop() {
	s.loopMu.Lock()
	if !s.running {
		s.loopMu.Unlock()
		return
	}
	close(s.stopCh)
	done := s.done
	s.running = false
	s.loopMu.Unlock()
	<-done
}

func (s *Server) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.mu.Lock()
		remaining := s.maxRR - s.session.NumRR()
		batch := int64(s.batch)
		if batch > remaining {
			batch = remaining
		}
		if batch > 0 {
			s.session.Advance(int(batch))
		}
		s.mu.Unlock()
		if batch <= 0 {
			// Budget exhausted: mark ourselves stopped and exit.
			s.loopMu.Lock()
			if s.running {
				s.running = false
				close(s.stopCh)
			}
			s.loopMu.Unlock()
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
	}
}
