// Package server exposes an OPIM session over HTTP — the paper's
// online-query-processing paradigm as a long-running service. A background
// loop streams RR sets; clients poll the current seed set and guarantee
// and stop the refinement when satisfied, exactly as a database user
// monitors an online aggregation query.
//
// Endpoints (all JSON):
//
//	GET  /status            session counters
//	GET  /snapshot          current (seed set, α, bounds); spends δ budget
//	POST /advance?count=N   generate N more RR sets synchronously
//	POST /start             start background sampling (idempotent)
//	POST /stop              pause background sampling (idempotent)
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/reprolab/opim/internal/core"
)

// Server wraps one Online session behind an HTTP API. All session access
// is serialized by an internal mutex, so the background sampler and HTTP
// clients can interleave safely.
type Server struct {
	mu      sync.Mutex
	session *core.Online

	// Batch is the RR-set count generated per background iteration.
	batch int
	// MaxRR caps the session size; the background loop stops there.
	maxRR int64

	loopMu  sync.Mutex // guards running/stopCh transitions
	running bool
	stopCh  chan struct{}
	done    chan struct{}
}

// New wraps session. batch is the background generation granularity
// (≤ 0 defaults to 10 000); maxRR caps total RR sets (≤ 0 defaults to 2²⁶).
func New(session *core.Online, batch int, maxRR int64) *Server {
	if batch <= 0 {
		batch = 10000
	}
	if maxRR <= 0 {
		maxRR = 1 << 26
	}
	return &Server{session: session, batch: batch, maxRR: maxRR}
}

// Handler returns the HTTP handler for the server's API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/advance", s.handleAdvance)
	mux.HandleFunc("/start", s.handleStart)
	mux.HandleFunc("/stop", s.handleStop)
	return mux
}

// Status is the /status response body.
type Status struct {
	NumRR         int64 `json:"num_rr"`
	EdgesExamined int64 `json:"edges_examined"`
	Running       bool  `json:"running"`
	MaxRR         int64 `json:"max_rr"`
}

// SnapshotResponse is the /snapshot response body.
type SnapshotResponse struct {
	Seeds      []int32 `json:"seeds"`
	Alpha      float64 `json:"alpha"`
	SigmaLower float64 `json:"sigma_lower"`
	SigmaUpper float64 `json:"sigma_upper"`
	Theta1     int64   `json:"theta1"`
	Theta2     int64   `json:"theta2"`
	DeltaSpent float64 `json:"delta_spent"`
	Variant    string  `json:"variant"`
}

func (s *Server) status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		NumRR:         s.session.NumRR(),
		EdgesExamined: s.session.EdgesExamined(),
		Running:       s.isRunning(),
		MaxRR:         s.maxRR,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.status())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	snap := s.session.Snapshot()
	s.mu.Unlock()
	writeJSON(w, SnapshotResponse{
		Seeds:      snap.Seeds,
		Alpha:      snap.Alpha,
		SigmaLower: snap.SigmaLower,
		SigmaUpper: snap.SigmaUpper,
		Theta1:     snap.Theta1,
		Theta2:     snap.Theta2,
		DeltaSpent: snap.DeltaSpent,
		Variant:    snap.Variant.String(),
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	count, err := strconv.Atoi(r.URL.Query().Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "count must be a positive integer", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if remaining := s.maxRR - s.session.NumRR(); int64(count) > remaining {
		count = int(remaining)
	}
	if count > 0 {
		s.session.Advance(count)
	}
	s.mu.Unlock()
	writeJSON(w, s.status())
}

func (s *Server) isRunning() bool {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.running
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.loopMu.Lock()
	if !s.running {
		s.running = true
		s.stopCh = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop(s.stopCh, s.done)
	}
	s.loopMu.Unlock()
	writeJSON(w, s.status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.Stop()
	writeJSON(w, s.status())
}

// Stop halts background sampling and waits for the loop to exit. Safe to
// call at any time, including when not running.
func (s *Server) Stop() {
	s.loopMu.Lock()
	if !s.running {
		s.loopMu.Unlock()
		return
	}
	close(s.stopCh)
	done := s.done
	s.running = false
	s.loopMu.Unlock()
	<-done
}

func (s *Server) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.mu.Lock()
		remaining := s.maxRR - s.session.NumRR()
		batch := int64(s.batch)
		if batch > remaining {
			batch = remaining
		}
		if batch > 0 {
			s.session.Advance(int(batch))
		}
		s.mu.Unlock()
		if batch <= 0 {
			// Budget exhausted: mark ourselves stopped and exit.
			s.loopMu.Lock()
			if s.running {
				s.running = false
				close(s.stopCh)
			}
			s.loopMu.Unlock()
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
	}
}
