package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/faultinject"
)

// isConflict matches the client error for a 409 (request racing an
// eviction) — the stress tests tolerate those, nothing else.
func isConflict(err error) bool {
	return err != nil && strings.Contains(err.Error(), "409")
}

func TestSessionCRUD(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	list, err := c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != DefaultSessionID || !list[0].Loaded || list[0].K != 5 {
		t.Fatalf("initial list = %+v", list)
	}

	info, err := c.CreateSession(SessionSpec{ID: "alice", K: 3, Delta: 0.1, Seed: 5, Variant: "vanilla"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "alice" || info.K != 3 || info.Variant != "vanilla" || info.Seed != 5 || !info.Loaded {
		t.Fatalf("created session info = %+v", info)
	}

	// Name collisions, bad specs and bad ids are rejected up front.
	for _, bad := range []SessionSpec{
		{ID: "alice", K: 3, Delta: 0.1},            // duplicate
		{ID: "", K: 3, Delta: 0.1},                 // empty id
		{ID: "../escape", K: 3, Delta: 0.1},        // unsafe id
		{ID: "nok", K: 0, Delta: 0.1},              // k < 1
		{ID: "nov", K: 3, Variant: "bogus"},        // unknown variant
		{ID: "nob", K: 3, Delta: 0.1, MaxRR: 1e18}, // budget above the server's
	} {
		if _, err := c.CreateSession(bad); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}

	list, err = c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "alice" || list[1].ID != DefaultSessionID {
		t.Fatalf("list after create = %+v", list)
	}

	// Sessions are isolated: advancing alice leaves default untouched.
	alice := c.Session("alice")
	st, err := alice.Advance(500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Session != "alice" || st.NumRR != 500 {
		t.Fatalf("alice advance status = %+v", st)
	}
	if st, err = c.Status(); err != nil || st.NumRR != 0 {
		t.Fatalf("default session moved with alice: %+v (%v)", st, err)
	}
	snap, err := alice.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Session != "alice" || len(snap.Seeds) != 3 {
		t.Fatalf("alice snapshot = %+v", snap)
	}

	// Per-session labeled request counter (obs.Labeled) moved.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters[`server_session_requests_total{session="alice"}`] < 2 {
		t.Fatalf("labeled session counter missing: %v", m.Counters)
	}

	// GET one session.
	got := getJSON[SessionInfo](t, ts.URL+"/sessions/alice")
	if got.ID != "alice" || got.NumRR != 500 {
		t.Fatalf("GET /sessions/alice = %+v", got)
	}

	// Delete semantics: default is protected, alice goes away fully.
	if err := c.DeleteSession(DefaultSessionID); err == nil {
		t.Fatal("deleting the default session was allowed")
	}
	if err := c.DeleteSession("alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSession("alice"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if _, err := alice.Status(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("status on deleted session: %v", err)
	}
	if list, _ = c.ListSessions(); len(list) != 1 {
		t.Fatalf("list after delete = %+v", list)
	}
}

// TestSlowSessionDoesNotBlockOthers is the tentpole acceptance test: with
// a deliberately slow sampler, a huge /advance holding session A's mutex
// must not delay A's /status (lock-free mirrors) nor any request on
// session B (its own mutex).
func TestSlowSessionDoesNotBlockOthers(t *testing.T) {
	srv, ts := newSlowServer(t, Config{Batch: 200})
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "b", K: 4, Delta: 0.05, Seed: 12}); err != nil {
		t.Fatal(err)
	}

	// Occupy the default session with an advance far too large to finish
	// during the test (cancelled at the end; progress is kept).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		cl := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Timeout: 10 * time.Minute}}
		cl.AdvanceContext(ctx, 1<<20)
	}()
	// Wait until the slow advance demonstrably holds the default session's
	// mutex (the /status mirrors only refresh once an advance completes,
	// so TryLock is the observable signal that it is in flight).
	def := srv.lookup(DefaultSessionID)
	deadline := time.Now().Add(5 * time.Second)
	for def.mu.TryLock() {
		def.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("slow advance never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Everything below must complete while that advance is in flight.
	b := c.Session("b")
	start := time.Now()
	if st := getJSON[Status](t, ts.URL+"/status"); st.Session != DefaultSessionID {
		t.Fatalf("status mid-advance = %+v", st)
	}
	if st, err := b.Advance(100); err != nil || st.NumRR != 100 {
		t.Fatalf("advance on b mid-advance on default: %+v (%v)", st, err)
	}
	if snap, err := b.Snapshot(); err != nil || snap.Session != "b" {
		t.Fatalf("snapshot on b mid-advance on default: %+v (%v)", snap, err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("session B served in %v while A was busy; not isolated", el)
	}
	select {
	case <-advDone:
		t.Fatal("the slow advance finished early; the test proved nothing")
	default:
	}
	cancel()
	<-advDone
}

// TestPeekSpendsNoDelta is the budget acceptance test: snapshot?peek=1
// returns the cached snapshot without touching DeltaSpent or the
// union-budget query counter, so dashboards can poll freely.
func TestPeekSpendsNoDelta(t *testing.T) {
	srv, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "u", K: 5, Delta: 0.05, Seed: 21, Union: true}); err != nil {
		t.Fatal(err)
	}
	u := c.Session("u")
	if _, err := u.Advance(1000); err != nil {
		t.Fatal(err)
	}

	// No snapshot derived yet: peek is 404, never a silent derivation.
	if _, err := u.PeekSnapshot(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("peek before first snapshot: %v", err)
	}

	first, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if first.DeltaSpent != 0.05/2 {
		t.Fatalf("first union-budget snapshot spent %v, want δ/2", first.DeltaSpent)
	}

	sess := srv.lookup("u")
	sess.mu.Lock()
	queriesBefore := sess.online.Queries()
	sess.mu.Unlock()
	before := counters(t)
	for i := 0; i < 5; i++ {
		p, err := u.PeekSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if p.Alpha != first.Alpha || p.DeltaSpent != first.DeltaSpent || len(p.Seeds) != len(first.Seeds) {
			t.Fatalf("peek %d diverged from the derived snapshot: %+v vs %+v", i, p, first)
		}
	}
	after := counters(t)
	sess.mu.Lock()
	queriesAfter := sess.online.Queries()
	sess.mu.Unlock()
	if queriesAfter != queriesBefore {
		t.Fatalf("peek moved the union-budget query counter: %d → %d", queriesBefore, queriesAfter)
	}
	if d := after.Counters["core_snapshots_total"] - before.Counters["core_snapshots_total"]; d != 0 {
		t.Fatalf("peek derived %d snapshots", d)
	}

	// The next real snapshot continues the δ/2^i schedule exactly where it
	// left off — peeks spent nothing.
	second, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if second.DeltaSpent != first.DeltaSpent/2 {
		t.Fatalf("second snapshot spent %v, want %v (peeks must not advance the schedule)",
			second.DeltaSpent, first.DeltaSpent/2)
	}
}

// TestEvictionReloadContinuesSampleStream is the persistence acceptance
// test: a session evicted under MaxLoadedSessions and transparently
// reloaded must continue the exact sample stream — its snapshot and its
// serialized state are byte-identical to a never-evicted run.
func TestEvictionReloadContinuesSampleStream(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir(), MaxLoadedSessions: 1})
	c := NewClient(ts.URL)

	spec := SessionSpec{ID: "evictee", K: 4, Delta: 0.05, Seed: 77, Union: true}
	if _, err := c.CreateSession(spec); err != nil {
		t.Fatal(err)
	}
	evictee := c.Session("evictee")
	if _, err := evictee.Advance(600); err != nil {
		t.Fatal(err)
	}
	// Touching the default session makes evictee the LRU resident; the
	// reload of default pushes the table over MaxLoadedSessions=1 and
	// evicts evictee (checkpoint-then-unload).
	if _, err := c.Advance(400); err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup("evictee")
	if got := sessionState(sess.state.Load()); got != stateUnloaded {
		t.Fatalf("evictee state = %d, want unloaded — eviction never happened", got)
	}
	if st, err := evictee.Status(); err != nil || st.Loaded || st.NumRR != 600 {
		t.Fatalf("unloaded status = %+v (%v)", st, err)
	}

	// The next touch transparently reloads and resumes the stream.
	if _, err := evictee.Advance(400); err != nil {
		t.Fatal(err)
	}
	snap, err := evictee.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same session never paused.
	ref, err := core.NewOnline(sampler, core.Options{
		K: 4, Delta: 0.05, Variant: core.Plus, Seed: 77, UnionBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.SetGraphIdentity(DefaultGraphName, "")
	ref.Advance(1000)
	want := ref.Snapshot()
	if snap.Alpha != want.Alpha || snap.SigmaLower != want.SigmaLower ||
		snap.SigmaUpper != want.SigmaUpper || snap.DeltaSpent != want.DeltaSpent {
		t.Fatalf("evicted+reloaded session diverged: %+v vs %v", snap, want)
	}
	for i := range want.Seeds {
		if snap.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d differs after eviction round trip", i)
		}
	}
	var a, b bytes.Buffer
	sess.mu.Lock()
	err = core.SaveSession(&a, sess.online)
	sess.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveSession(&b, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("evicted+reloaded session state is not byte-identical to the uninterrupted run")
	}
}

// TestAdoptCheckpointDirResume is the multi-session kill-resume test: a
// server torn down without graceful shutdown (the checkpoints on disk are
// all that survives) comes back with every session adopted — including a
// BaseSeeds+Exact session, which only round-trips under OPIMS2 — and each
// continues its exact sample stream.
func TestAdoptCheckpointDirResume(t *testing.T) {
	sampler := robustSampler(t)
	dir := t.TempDir()
	cfg := Config{Batch: 500, CheckpointDir: dir}

	srv1 := New(robustSession(t, sampler), cfg)
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := NewClient(ts1.URL)
	augSpec := SessionSpec{
		ID: "aug", K: 3, Delta: 0.05, Seed: 31,
		Union: true, Exact: true, BaseSeeds: []int32{1, 2, 3},
	}
	if _, err := c1.CreateSession(augSpec); err != nil {
		t.Fatal(err)
	}
	aug1 := c1.Session("aug")
	if _, err := aug1.Advance(700); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Advance(500); err != nil {
		t.Fatal(err)
	}
	if _, err := aug1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Simulated SIGKILL: no Stop, no Shutdown — just abandon the server.
	ts1.Close()

	// Restart: resume the default from its checkpoint (as opimd does),
	// adopt the rest of the directory.
	def, _, err := LoadCheckpoint(dir+"/default.ck", sampler)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(def, cfg)
	adopted, err := srv2.AdoptCheckpointDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || adopted[0] != "aug" {
		t.Fatalf("adopted = %v, want [aug]", adopted)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { srv2.Stop(); ts2.Close() })
	c2 := NewClient(ts2.URL)

	if st, err := c2.Status(); err != nil || st.NumRR != 500 {
		t.Fatalf("default after resume: %+v (%v)", st, err)
	}
	aug2 := c2.Session("aug")
	if _, err := aug2.Advance(300); err != nil {
		t.Fatal(err)
	}
	// OPIMS2 carried BaseSeeds and Exact through the kill.
	info := getJSON[SessionInfo](t, ts2.URL+"/sessions/aug")
	if !info.Exact || len(info.BaseSeeds) != 3 {
		t.Fatalf("aug lost OPIMS2 fields through kill-resume: %+v", info)
	}
	snap, err := aug2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	ref, err := core.NewOnline(sampler, core.Options{
		K: 3, Delta: 0.05, Variant: core.Plus, Seed: 31,
		UnionBudget: true, Exact: true, BaseSeeds: []int32{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.SetGraphIdentity(DefaultGraphName, "")
	ref.Advance(1000)
	want := ref.Snapshot()
	if snap.Alpha != want.Alpha || snap.SigmaLower != want.SigmaLower ||
		snap.SigmaUpper != want.SigmaUpper || snap.DeltaSpent != want.DeltaSpent {
		t.Fatalf("resumed aug session diverged: %+v vs %v", snap, want)
	}
	var a, b bytes.Buffer
	sess := srv2.lookup("aug")
	sess.mu.Lock()
	err = core.SaveSession(&a, sess.online)
	sess.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveSession(&b, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed aug session state is not byte-identical to the uninterrupted run")
	}
}

// TestMultiSessionStressWithEviction hammers N sessions concurrently
// under -race while MaxLoadedSessions forces constant eviction/reload
// churn, plus create/delete churn on the side. 409s (requests racing an
// eviction) are the documented outcome and tolerated; anything else
// fails. Afterwards every session must still be servable.
func TestMultiSessionStressWithEviction(t *testing.T) {
	sampler := robustSampler(t)
	_, ts := newCkServer(t, sampler, Config{Batch: 300, CheckpointDir: t.TempDir(), MaxLoadedSessions: 2})
	c := NewClient(ts.URL)

	const sessions = 4
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
		if _, err := c.CreateSession(SessionSpec{ID: ids[i], K: 3, Delta: 0.1, Seed: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions+1)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			cl := c.Session(id)
			cl.RetryBase = 2 * time.Millisecond
			cl.RetrySeed = 1
			for j := 0; j < 12; j++ {
				var err error
				switch j % 4 {
				case 0:
					_, err = cl.Advance(150)
				case 1:
					_, err = cl.Status()
				case 2:
					_, err = cl.Snapshot()
				case 3:
					if _, perr := cl.PeekSnapshot(); perr != nil &&
						!strings.Contains(perr.Error(), "404") && !isConflict(perr) {
						err = perr
					}
				}
				if err != nil && !isConflict(err) {
					errs <- fmt.Errorf("session %s op %d: %w", id, j, err)
					return
				}
			}
		}(id)
	}
	// Create/delete churn against the same table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 6; j++ {
			id := fmt.Sprintf("tmp%d", j)
			if _, err := c.CreateSession(SessionSpec{ID: id, K: 2, Delta: 0.1, Seed: uint64(j)}); err != nil {
				errs <- fmt.Errorf("create %s: %w", id, err)
				return
			}
			// DELETE is never auto-retried by the client; a 409 here just
			// means the session is mid-eviction, so retry by hand.
			var derr error
			for try := 0; try < 200; try++ {
				if derr = c.DeleteSession(id); derr == nil || !isConflict(derr) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if derr != nil {
				errs <- fmt.Errorf("delete %s: %w", id, derr)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: every session still answers, with its own RR count.
	list, err := c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != sessions+1 {
		t.Fatalf("list after stress = %+v", list)
	}
	for _, id := range ids {
		cl := c.Session(id)
		cl.RetryBase = 2 * time.Millisecond
		var st Status
		var err error
		for try := 0; try < 200; try++ {
			if st, err = cl.Advance(100); err == nil || !isConflict(err) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("session %s not servable after stress: %v", id, err)
		}
		if st.NumRR < 100 {
			t.Fatalf("session %s barely advanced: %+v", id, st)
		}
	}
}

// writerFunc adapts a function to io.Writer for checkpoint-write hooks.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// assertLoadedConsistent checks the loaded counter against table truth:
// it must equal the number of registered sessions in stateLoaded, or
// pickEvictionVictim misjudges capacity forever.
func assertLoadedConsistent(t *testing.T, srv *Server) {
	t.Helper()
	srv.smu.Lock()
	var want int64
	for _, sess := range srv.sessions {
		if sessionState(sess.state.Load()) == stateLoaded {
			want++
		}
	}
	got := srv.loaded.Load()
	srv.smu.Unlock()
	if got != want {
		t.Fatalf("loaded counter = %d, want %d (sessions actually loaded)", got, want)
	}
}

// TestEvictionFailureDoesNotSpin: with an unwritable checkpoint sink,
// maybeEvict must skip the failed victim and return — not busy-loop
// re-serializing the same LRU session from the request goroutine forever.
// Failed victims stay loaded and servable, and capacity is re-enforced
// once checkpoints write again.
func TestEvictionFailureDoesNotSpin(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir(), MaxLoadedSessions: 1})
	c := NewClient(ts.URL)

	// Every checkpoint write fails from here on.
	srv.ckWrap = func(w io.Writer) io.Writer { return faultinject.TornWriter(w, 64) }

	done := make(chan error, 1)
	go func() {
		for _, id := range []string{"a", "b"} {
			if _, err := c.CreateSession(SessionSpec{ID: id, K: 3, Delta: 0.1, Seed: 7}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("createSession stuck: maybeEvict is spinning on a failing eviction")
	}

	// Nothing could be evicted, so everything is still loaded and servable.
	for _, id := range []string{DefaultSessionID, "a", "b"} {
		if st, err := c.Session(id).Advance(100); err != nil || !st.Loaded {
			t.Fatalf("session %s after failed evictions: %+v (%v)", id, st, err)
		}
	}
	assertLoadedConsistent(t, srv)

	// Checkpoints write again: the next create brings residency back down.
	srv.ckWrap = nil
	if _, err := c.CreateSession(SessionSpec{ID: "c", K: 3, Delta: 0.1, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if n := srv.loaded.Load(); n != 1 {
		t.Fatalf("loaded = %d after recovery, want 1 (MaxLoadedSessions)", n)
	}
	assertLoadedConsistent(t, srv)
}

// TestEvictionVerifyKeepsRacingMutation is the lost-update regression
// test: a handler that passed ensureLoaded before the victim was marked
// stateEvicting can mutate the engine after the checkpoint bytes were
// serialized (its client saw 200). Eviction must detect the movement and
// re-checkpoint, so the reload resumes from the post-mutation state —
// never rolling NumRR or the δ accounting backward.
func TestEvictionVerifyKeepsRacingMutation(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "v", K: 3, Delta: 0.1, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session("v").Advance(500); err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup("v")
	sess.state.Store(int32(stateEvicting)) // as pickEvictionVictim would

	// During the first checkpoint's disk write — after serialization
	// released sess.mu — a racing request advances the engine, exactly the
	// window the serialize-then-verify protocol exists for.
	var once sync.Once
	srv.ckWrap = func(w io.Writer) io.Writer {
		return writerFunc(func(p []byte) (int, error) {
			once.Do(func() {
				sess.mu.Lock()
				sess.online.Advance(50)
				sess.refreshStatsLocked()
				sess.mu.Unlock()
			})
			return w.Write(p)
		})
	}
	if !srv.evictSession(sess) {
		t.Fatal("eviction aborted; want retry-and-unload after the racing mutation")
	}
	srv.ckWrap = nil
	if got := sessionState(sess.state.Load()); got != stateUnloaded {
		t.Fatalf("victim state = %d, want unloaded", got)
	}

	if status, msg := srv.ensureLoaded(sess); status != 0 {
		t.Fatalf("reload failed: %d %s", status, msg)
	}
	sess.mu.Lock()
	got := sess.online.NumRR()
	sess.mu.Unlock()
	if got != 550 {
		t.Fatalf("reloaded NumRR = %d, want 550 — the racing Advance was lost by eviction", got)
	}
	assertLoadedConsistent(t, srv)
}

// TestEvictionAbortsWhenSessionStartsRunning: /start setting running=true
// under sess.mu can still interleave with a victim pick that read
// running=false; the eviction's verify step must then abort and restore
// the session — a running session unloaded behind /start's back would
// report Running while the sampler skips it forever.
func TestEvictionAbortsWhenSessionStartsRunning(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "r", K: 3, Delta: 0.1, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup("r")
	sess.state.Store(int32(stateEvicting)) // victim picked with running=false...
	sess.running.Store(true)               // ...then /start slipped in under sess.mu

	if srv.evictSession(sess) {
		t.Fatal("evicted a running session")
	}
	if got := sessionState(sess.state.Load()); got != stateLoaded {
		t.Fatalf("aborted victim state = %d, want loaded", got)
	}
	sess.running.Store(false)
	if st, err := c.Session("r").Advance(100); err != nil || !st.Loaded {
		t.Fatalf("session after aborted eviction: %+v (%v)", st, err)
	}
	assertLoadedConsistent(t, srv)
}

// TestDeleteDuringEvictionKeepsCounter: DELETE must refuse (409) while an
// eviction is in flight rather than race its state transitions — the
// losing interleaving left the loaded counter permanently overcounting
// when the eviction's checkpoint write then failed.
func TestDeleteDuringEvictionKeepsCounter(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "d", K: 3, Delta: 0.1, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	sess := srv.lookup("d")
	sess.state.Store(int32(stateEvicting))

	if err := c.DeleteSession("d"); !isConflict(err) {
		t.Fatalf("delete during eviction: %v, want 409", err)
	}

	// The eviction's checkpoint write fails; the session must come back
	// loaded with the counter intact, and then delete cleanly.
	srv.ckWrap = func(w io.Writer) io.Writer { return faultinject.TornWriter(w, 64) }
	if srv.evictSession(sess) {
		t.Fatal("eviction succeeded despite failing checkpoint writes")
	}
	srv.ckWrap = nil
	assertLoadedConsistent(t, srv)

	if err := c.DeleteSession("d"); err != nil {
		t.Fatal(err)
	}
	if srv.lookup("d") != nil {
		t.Fatal("session still registered after delete")
	}
	assertLoadedConsistent(t, srv)
}
