package server

// Dynamic-graph coverage: the POST /graphs/{name}/updates endpoint, the
// byte-identity invariant (mutate + incremental repair ≡ a fresh session on
// the mutated graph), journal replay across a simulated SIGKILL with stale
// checkpoints catching up on the epoch chain, the eviction→mutation→reload
// lazy catch-up path, the one-batch-at-a-time 409 gates, and a concurrent
// advance/mutate chaos run (-race) that ends in byte-identity.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// firstEdge returns an existing edge of g.
func firstEdge(t *testing.T, g *graph.Graph) graph.Edge {
	t.Helper()
	var pick graph.Edge
	found := false
	g.Edges(func(e graph.Edge) bool { pick = e; found = true; return false })
	if !found {
		t.Fatal("graph has no edges")
	}
	return pick
}

// missingEdge returns a (from, to) pair that is not an edge of g.
func missingEdge(t *testing.T, g *graph.Graph) (int32, int32) {
	t.Helper()
	for from := int32(0); from < g.N(); from++ {
		adj := map[int32]bool{from: true}
		ns, _ := g.OutNeighbors(from)
		for _, v := range ns {
			adj[v] = true
		}
		for to := int32(0); to < g.N(); to++ {
			if !adj[to] {
				return from, to
			}
		}
	}
	t.Fatal("graph is complete; no missing edge")
	return 0, 0
}

// saveBytes serializes a server session's live state under its lock.
func saveBytes(t *testing.T, srv *Server, id string) []byte {
	t.Helper()
	sess := srv.lookup(id)
	if sess == nil {
		t.Fatalf("session %q not found", id)
	}
	var buf bytes.Buffer
	sess.mu.Lock()
	err := core.SaveSession(&buf, sess.online)
	sess.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refBytes runs a fresh reference session on g with the given options to
// numRR RR sets and serializes it, labelled as the default catalog graph.
func refBytes(t *testing.T, g *graph.Graph, opts core.Options, numRR int) []byte {
	t.Helper()
	ref, err := core.NewOnline(rrset.NewSampler(g, diffusion.IC), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetGraphIdentity(DefaultGraphName, "")
	ref.Advance(numRR)
	var buf bytes.Buffer
	if err := core.SaveSession(&buf, ref); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGraphUpdateEndpoint(t *testing.T) {
	sampler := robustSampler(t)
	_, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)

	if _, err := c.Advance(1000); err != nil {
		t.Fatal(err)
	}
	g := sampler.Graph()
	e := firstEdge(t, g)
	ifrom, ito := missingEdge(t, g)
	resp, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{
		{Op: "edge_delete", From: e.From, To: e.To},
		{Op: "edge_insert", From: ifrom, To: ito, P: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Graph != DefaultGraphName || resp.Epoch != 1 || resp.Applied != 2 {
		t.Fatalf("update response = %+v", resp)
	}
	if resp.Lineage == g.Fingerprint() || len(resp.Lineage) != 64 {
		t.Fatalf("lineage did not advance along the chain: %q", resp.Lineage)
	}
	if resp.N != g.N() || resp.M != g.M() {
		t.Fatalf("n/m after delete+insert = %d/%d, want %d/%d", resp.N, resp.M, g.N(), g.M())
	}
	// The loaded default session was repaired in the same request; a batch
	// touching a real edge invalidates at least one of 1000 RR sets.
	if len(resp.Repaired) != 1 || resp.Repaired[0].Session != DefaultSessionID || resp.Repaired[0].Regenerated == 0 {
		t.Fatalf("repaired = %+v", resp.Repaired)
	}

	// The catalog now reports the epoch-1 identity, including n/m.
	info, err := c.GetGraph(DefaultGraphName)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Lineage != resp.Lineage || info.Fingerprint != resp.Fingerprint ||
		info.N != resp.N || info.M != resp.M {
		t.Fatalf("graph info after mutation = %+v, update response = %+v", info, resp)
	}
	st, err := c.Status()
	if err != nil || st.GraphEpoch != 1 || st.GraphFingerprint != resp.Fingerprint {
		t.Fatalf("status after mutation = %+v (%v)", st, err)
	}
	// The session keeps advancing on the new epoch.
	if st2, err := c.Advance(500); err != nil || st2.NumRR != 1500 {
		t.Fatalf("advance after mutation: %+v (%v)", st2, err)
	}

	// Validation: unknown graph, unknown op, invalid op, empty batch.
	if _, err := c.UpdateGraph("nope", []GraphUpdate{{Op: "node_add"}}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown graph error = %v", err)
	}
	if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "edge_teleport"}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown op error = %v", err)
	}
	if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "edge_delete", From: ifrom, To: ifrom}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("invalid mutation error = %v", err)
	}
	if _, err := c.UpdateGraph(DefaultGraphName, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty batch error = %v", err)
	}
	// A rejected batch must not advance the chain.
	if info, err := c.GetGraph(DefaultGraphName); err != nil || info.Epoch != 1 {
		t.Fatalf("epoch after rejected batches = %+v (%v)", info, err)
	}
}

// TestMutateRepairMatchesFreshRun is the server-level determinism invariant:
// advance, mutate (incremental repair), advance more — the session state is
// byte-identical to a fresh session that ran on the mutated graph from the
// start.
func TestMutateRepairMatchesFreshRun(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500})
	c := NewClient(ts.URL)

	if _, err := c.Advance(1000); err != nil {
		t.Fatal(err)
	}
	e := firstEdge(t, sampler.Graph())
	ms := []graph.Mutation{
		{Op: graph.OpEdgeDelete, From: e.From, To: e.To},
	}
	if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{
		{Op: "edge_delete", From: e.From, To: e.To},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Advance(1000); err != nil {
		t.Fatal(err)
	}

	gm, err := sampler.Graph().WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	got := saveBytes(t, srv, DefaultSessionID)
	want := refBytes(t, gm, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9}, 2000)
	if !bytes.Equal(got, want) {
		t.Fatal("mutated+repaired session is not byte-identical to a fresh run on the mutated graph")
	}
}

// TestMutationJournalReplayRestart: simulated SIGKILL after a mutation. The
// restart replays the journal (ReplayMutationLog), resumes a pre-mutation
// default checkpoint through LoadCheckpointMetaLog (AcceptStale + catch-up),
// adopts a pre-mutation session checkpoint from the directory, and both
// sessions end byte-identical to never-crashed runs on the mutated graph.
func TestMutationJournalReplayRestart(t *testing.T) {
	sampler := robustSampler(t)
	dir := t.TempDir()
	cfg := Config{Batch: 500, CheckpointDir: dir}

	srv1 := New(robustSession(t, sampler), cfg)
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := NewClient(ts1.URL)

	if _, err := c1.CreateSession(SessionSpec{ID: "aug", K: 3, Delta: 0.05, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	aug1 := c1.Session("aug")
	if _, err := aug1.Advance(600); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Advance(500); err != nil {
		t.Fatal(err)
	}
	// Both checkpoints are taken at epoch 0 — they will be stale on disk.
	if _, err := aug1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	e := firstEdge(t, sampler.Graph())
	ms := []graph.Mutation{{Op: graph.OpEdgeDelete, From: e.From, To: e.To}}
	up, err := c1.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "edge_delete", From: e.From, To: e.To}})
	if err != nil {
		t.Fatal(err)
	}
	if up.Epoch != 1 || len(up.Repaired) != 2 {
		t.Fatalf("update response = %+v, want epoch 1 with both loaded sessions repaired", up)
	}
	// Simulated SIGKILL: no graceful shutdown, no re-checkpoint — only the
	// epoch-0 checkpoints and the mutation journal survive.
	ts1.Close()

	// Restart, the way opimd does: replay the journal over the spec-loaded
	// base graph, then resume the default checkpoint against the current
	// epoch's sampler.
	base := robustSampler(t).Graph()
	g2, glog, err := ReplayMutationLog(dir, DefaultGraphName, base)
	if err != nil {
		t.Fatal(err)
	}
	if glog.Epochs() != 1 || g2.Epoch() != 1 || g2.EpochLineage() != up.Lineage {
		t.Fatalf("journal replay: epochs=%d epoch=%d lineage=%q, want 1/1/%q",
			glog.Epochs(), g2.Epoch(), g2.EpochLineage(), up.Lineage)
	}
	sampler2 := rrset.NewSampler(g2, diffusion.IC)
	def, _, meta, regen, err := LoadCheckpointMetaLog(dir+"/default.ck", sampler2, glog)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.AcceptStale || regen == 0 {
		t.Fatalf("stale default checkpoint: AcceptStale=%v regen=%d, want a caught-up resume", meta.AcceptStale, regen)
	}
	if def.NumRR() != 500 {
		t.Fatalf("resumed default num_rr = %d, want 500", def.NumRR())
	}

	srv2 := New(def, Config{Batch: 500, CheckpointDir: dir, DefaultGraphLog: glog})
	adopted, err := srv2.AdoptCheckpointDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || adopted[0] != "aug" {
		t.Fatalf("adopted = %v, want [aug]", adopted)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		srv2.Stop()
		srv2.stopCheckpointer()
		ts2.Close()
	})
	c2 := NewClient(ts2.URL)

	if st, err := c2.Status(); err != nil || st.NumRR != 500 || st.GraphEpoch != 1 {
		t.Fatalf("default after replayed restart: %+v (%v)", st, err)
	}
	if _, err := c2.Advance(1500); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Session("aug").Advance(600); err != nil {
		t.Fatal(err)
	}

	gm, err := base.WithMutations(ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, srv2, DefaultSessionID); !bytes.Equal(got,
		refBytes(t, gm, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9}, 2000)) {
		t.Fatal("replayed default session diverged from a never-crashed run on the mutated graph")
	}
	if got := saveBytes(t, srv2, "aug"); !bytes.Equal(got,
		refBytes(t, gm, core.Options{K: 3, Delta: 0.05, Variant: core.Plus, Seed: 31}, 1200)) {
		t.Fatal("adopted stale session diverged from a never-crashed run on the mutated graph")
	}
}

// TestEvictedSessionCatchesUpAfterMutation: a session evicted before a
// mutation holds an epoch-0 checkpoint on disk and misses the repair sweep;
// its next touch reloads through loadForEntry, which must place the
// checkpoint on the epoch chain and regenerate exactly the missed batches.
func TestEvictedSessionCatchesUpAfterMutation(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir(), MaxLoadedSessions: 1})
	c := NewClient(ts.URL)

	if _, err := c.CreateSession(SessionSpec{ID: "evictee", K: 4, Delta: 0.05, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	evictee := c.Session("evictee")
	if _, err := evictee.Advance(600); err != nil {
		t.Fatal(err)
	}
	// Touching the default session evicts evictee (checkpoint-then-unload).
	if _, err := c.Advance(400); err != nil {
		t.Fatal(err)
	}
	if got := sessionState(srv.lookup("evictee").state.Load()); got != stateUnloaded {
		t.Fatalf("evictee state = %d, want unloaded", got)
	}

	e := firstEdge(t, sampler.Graph())
	up, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "edge_delete", From: e.From, To: e.To}})
	if err != nil {
		t.Fatal(err)
	}
	// Only the loaded default session is in the sweep.
	if len(up.Repaired) != 1 || up.Repaired[0].Session != DefaultSessionID {
		t.Fatalf("repaired = %+v, want only the default session", up.Repaired)
	}

	before := counters(t).Counters["server_sessions_caught_up_total"]
	if _, err := evictee.Advance(400); err != nil {
		t.Fatal(err)
	}
	if after := counters(t).Counters["server_sessions_caught_up_total"]; after != before+1 {
		t.Fatalf("sessions_caught_up_total = %d, want %d — reload did not catch up from the chain", after, before+1)
	}

	gm, err := sampler.Graph().WithMutations([]graph.Mutation{{Op: graph.OpEdgeDelete, From: e.From, To: e.To}})
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, srv, "evictee"); !bytes.Equal(got,
		refBytes(t, gm, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 77}, 1000)) {
		t.Fatal("evicted session's catch-up diverged from a fresh run on the mutated graph")
	}
}

// TestMutationConflict409: while a batch is mid-application the graph
// answers 409 to a second batch and to engine-touching session traffic,
// and recovers as soon as the flag clears.
func TestMutationConflict409(t *testing.T) {
	srv, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	e := srv.lookupGraph(DefaultGraphName)
	if e == nil {
		t.Fatal("default graph entry missing")
	}
	e.mutating.Store(true)
	if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "node_add"}}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("concurrent batch error = %v, want 409", err)
	}
	resp, err := http.Post(ts.URL+"/advance?count=100", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("advance during mutation: status %d, want 409", resp.StatusCode)
	}
	e.mutating.Store(false)
	if _, err := c.Advance(100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{{Op: "node_add"}}); err != nil {
		t.Fatal(err)
	}
}

// TestMutationChaos drives concurrent advances and mutation batches (run
// with -race): 409s from the serialization gates are the documented
// outcome; at the end the session must be byte-identical to a fresh run on
// the final graph — every interleaving of repair and sampling collapses to
// the same bytes.
func TestMutationChaos(t *testing.T) {
	sampler := robustSampler(t)
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)

	e := firstEdge(t, sampler.Graph())
	const batches = 12
	var applied [][]graph.Mutation

	var wg sync.WaitGroup
	advanced := make([]int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cw := NewClient(ts.URL)
			for i := 0; i < 15; i++ {
				if _, err := cw.Advance(100); err != nil {
					if strings.Contains(err.Error(), "409") {
						continue // raced a mutation batch; documented outcome
					}
					t.Errorf("advance: %v", err)
					return
				}
				advanced[w]++
			}
		}(w)
	}
	// The single mutator alternates delete/insert of one edge, so every
	// batch is valid against the sequentially-evolving graph.
	wg.Add(1)
	go func() {
		defer wg.Done()
		present := true
		for len(applied) < batches {
			var up GraphUpdate
			var m graph.Mutation
			if present {
				up = GraphUpdate{Op: "edge_delete", From: e.From, To: e.To}
				m = graph.Mutation{Op: graph.OpEdgeDelete, From: e.From, To: e.To}
			} else {
				up = GraphUpdate{Op: "edge_insert", From: e.From, To: e.To, P: e.P}
				m = graph.Mutation{Op: graph.OpEdgeInsert, From: e.From, To: e.To, P: e.P}
			}
			if _, err := c.UpdateGraph(DefaultGraphName, []GraphUpdate{up}); err != nil {
				if strings.Contains(err.Error(), "409") {
					continue
				}
				t.Errorf("update: %v", err)
				return
			}
			applied = append(applied, []graph.Mutation{m})
			present = !present
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if int(st.NumRR) != 100*(advanced[0]+advanced[1]) {
		t.Fatalf("num_rr = %d, want %d", st.NumRR, 100*(advanced[0]+advanced[1]))
	}
	if st.GraphEpoch != int64(len(applied)) {
		t.Fatalf("graph epoch = %d after %d applied batches", st.GraphEpoch, len(applied))
	}

	gm := sampler.Graph()
	for _, ms := range applied {
		if gm, err = gm.WithMutations(ms); err != nil {
			t.Fatal(err)
		}
	}
	if got := saveBytes(t, srv, DefaultSessionID); !bytes.Equal(got,
		refBytes(t, gm, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9}, int(st.NumRR))) {
		t.Fatal("chaos run is not byte-identical to a fresh run on the final graph")
	}
}
