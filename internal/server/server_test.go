package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

func newTestServer(t *testing.T, maxRR int64) (*Server, *httptest.Server) {
	t.Helper()
	g, err := gen.PreferentialAttachment(500, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rrset.NewSampler(g, diffusion.IC)
	session, err := core.NewOnline(sampler, core.Options{K: 5, Delta: 0.05, Variant: core.Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(session, 500, maxRR)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		ts.Close()
	})
	return srv, ts
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func postJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStatusInitial(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := getJSON[Status](t, ts.URL+"/status")
	if st.NumRR != 0 || st.Running {
		t.Fatalf("initial status = %+v", st)
	}
}

func TestAdvanceAndSnapshot(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := postJSON[Status](t, ts.URL+"/advance?count=2000")
	if st.NumRR != 2000 {
		t.Fatalf("after advance: %+v", st)
	}
	snap := getJSON[SnapshotResponse](t, ts.URL+"/snapshot")
	if len(snap.Seeds) != 5 {
		t.Fatalf("snapshot seeds = %v", snap.Seeds)
	}
	if snap.Alpha <= 0 || snap.Alpha > 1 {
		t.Fatalf("α = %v", snap.Alpha)
	}
	if snap.Theta1+snap.Theta2 != 2000 {
		t.Fatalf("θ1+θ2 = %d", snap.Theta1+snap.Theta2)
	}
	if snap.Variant != "OPIM+" {
		t.Fatalf("variant = %q", snap.Variant)
	}
}

func TestAdvanceValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	for _, q := range []string{"", "?count=0", "?count=-5", "?count=zebra"} {
		resp, err := http.Post(ts.URL+"/advance"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("advance%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts := newTestServer(t, 0)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/status"},
		{http.MethodPost, "/snapshot"},
		{http.MethodGet, "/advance"},
		{http.MethodGet, "/start"},
		{http.MethodGet, "/stop"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestBackgroundLoop(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := postJSON[Status](t, ts.URL+"/start")
	if !st.Running {
		t.Fatal("not running after /start")
	}
	// Idempotent start.
	postJSON[Status](t, ts.URL+"/start")

	deadline := time.Now().Add(5 * time.Second)
	var progressed bool
	for time.Now().Before(deadline) {
		if getJSON[Status](t, ts.URL+"/status").NumRR > 0 {
			progressed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Fatal("background loop generated nothing in 5s")
	}
	// Snapshot concurrently with the loop.
	snap := getJSON[SnapshotResponse](t, ts.URL+"/snapshot")
	if len(snap.Seeds) != 5 {
		t.Fatalf("concurrent snapshot = %+v", snap)
	}
	st = postJSON[Status](t, ts.URL+"/stop")
	if st.Running {
		t.Fatal("still running after /stop")
	}
	// Idempotent stop.
	postJSON[Status](t, ts.URL+"/stop")
	frozen := getJSON[Status](t, ts.URL+"/status").NumRR
	time.Sleep(50 * time.Millisecond)
	if got := getJSON[Status](t, ts.URL+"/status").NumRR; got != frozen {
		t.Fatalf("session advanced after stop: %d → %d", frozen, got)
	}
}

func TestBudgetStopsLoop(t *testing.T) {
	_, ts := newTestServer(t, 1200)
	postJSON[Status](t, ts.URL+"/start")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON[Status](t, ts.URL+"/status")
		if !st.Running {
			if st.NumRR != 1200 {
				t.Fatalf("stopped at %d RR sets, budget 1200", st.NumRR)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("loop did not stop at budget")
}

func TestAdvanceRespectsBudget(t *testing.T) {
	_, ts := newTestServer(t, 1000)
	st := postJSON[Status](t, ts.URL+"/advance?count=5000")
	if st.NumRR != 1000 {
		t.Fatalf("advance exceeded budget: %d", st.NumRR)
	}
}

func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRR != 0 {
		t.Fatalf("initial status %+v", st)
	}
	st, err = c.Advance(1500)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRR != 1500 {
		t.Fatalf("after advance %+v", st)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Seeds) != 5 || snap.Alpha <= 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	if st, err = c.Start(); err != nil || !st.Running {
		t.Fatalf("start: %v %+v", err, st)
	}
	if st, err = c.Stop(); err != nil || st.Running {
		t.Fatalf("stop: %v %+v", err, st)
	}
}

func TestClientErrorPropagation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)
	if _, err := c.Advance(-5); err == nil {
		t.Fatal("invalid advance accepted")
	}
	bad := NewClient("http://127.0.0.1:1")
	if _, err := bad.Status(); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
