package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

func newTestServer(t *testing.T, maxRR int64) (*Server, *httptest.Server) {
	t.Helper()
	g, err := gen.PreferentialAttachment(500, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rrset.NewSampler(g, diffusion.IC)
	session, err := core.NewOnline(sampler, core.Options{K: 5, Delta: 0.05, Variant: core.Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(session, Config{Batch: 500, MaxRR: maxRR})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		ts.Close()
	})
	return srv, ts
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func postJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStatusInitial(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := getJSON[Status](t, ts.URL+"/status")
	if st.NumRR != 0 || st.Running {
		t.Fatalf("initial status = %+v", st)
	}
}

func TestAdvanceAndSnapshot(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := postJSON[Status](t, ts.URL+"/advance?count=2000")
	if st.NumRR != 2000 {
		t.Fatalf("after advance: %+v", st)
	}
	snap := getJSON[SnapshotResponse](t, ts.URL+"/snapshot")
	if len(snap.Seeds) != 5 {
		t.Fatalf("snapshot seeds = %v", snap.Seeds)
	}
	if snap.Alpha <= 0 || snap.Alpha > 1 {
		t.Fatalf("α = %v", snap.Alpha)
	}
	if snap.Theta1+snap.Theta2 != 2000 {
		t.Fatalf("θ1+θ2 = %d", snap.Theta1+snap.Theta2)
	}
	if snap.Variant != "OPIM+" {
		t.Fatalf("variant = %q", snap.Variant)
	}
}

func TestAdvanceValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	for _, q := range []string{"", "?count=0", "?count=-5", "?count=zebra"} {
		resp, err := http.Post(ts.URL+"/advance"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("advance%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts := newTestServer(t, 0)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/status"},
		{http.MethodPost, "/snapshot"},
		{http.MethodGet, "/advance"},
		{http.MethodGet, "/start"},
		{http.MethodGet, "/stop"},
		{http.MethodPost, "/metrics"},
		{http.MethodGet, "/checkpoint"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestBackgroundLoop(t *testing.T) {
	_, ts := newTestServer(t, 0)
	st := postJSON[Status](t, ts.URL+"/start")
	if !st.Running {
		t.Fatal("not running after /start")
	}
	// Idempotent start.
	postJSON[Status](t, ts.URL+"/start")

	deadline := time.Now().Add(5 * time.Second)
	var progressed bool
	for time.Now().Before(deadline) {
		if getJSON[Status](t, ts.URL+"/status").NumRR > 0 {
			progressed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Fatal("background loop generated nothing in 5s")
	}
	// Snapshot concurrently with the loop.
	snap := getJSON[SnapshotResponse](t, ts.URL+"/snapshot")
	if len(snap.Seeds) != 5 {
		t.Fatalf("concurrent snapshot = %+v", snap)
	}
	st = postJSON[Status](t, ts.URL+"/stop")
	if st.Running {
		t.Fatal("still running after /stop")
	}
	// Idempotent stop.
	postJSON[Status](t, ts.URL+"/stop")
	frozen := getJSON[Status](t, ts.URL+"/status").NumRR
	time.Sleep(50 * time.Millisecond)
	if got := getJSON[Status](t, ts.URL+"/status").NumRR; got != frozen {
		t.Fatalf("session advanced after stop: %d → %d", frozen, got)
	}
}

func TestBudgetStopsLoop(t *testing.T) {
	_, ts := newTestServer(t, 1200)
	postJSON[Status](t, ts.URL+"/start")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON[Status](t, ts.URL+"/status")
		if !st.Running {
			if st.NumRR != 1200 {
				t.Fatalf("stopped at %d RR sets, budget 1200", st.NumRR)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("loop did not stop at budget")
}

func TestAdvanceRejectsCountAboveBudget(t *testing.T) {
	_, ts := newTestServer(t, 1000)
	resp, err := http.Post(ts.URL+"/advance?count=5000", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count above max_rr: status %d, want 400", resp.StatusCode)
	}
	if st := getJSON[Status](t, ts.URL+"/status"); st.NumRR != 0 {
		t.Fatalf("rejected advance still generated %d RR sets", st.NumRR)
	}
}

func TestAdvanceClampsToRemainingBudget(t *testing.T) {
	// Valid counts (≤ max_rr) near exhaustion are clamped to the remaining
	// budget, not rejected.
	_, ts := newTestServer(t, 1000)
	if st := postJSON[Status](t, ts.URL+"/advance?count=800"); st.NumRR != 800 {
		t.Fatalf("first advance: %+v", st)
	}
	if st := postJSON[Status](t, ts.URL+"/advance?count=800"); st.NumRR != 1000 {
		t.Fatalf("second advance not clamped to budget: %+v", st)
	}
}

func TestMetricsAdvanceAfterAdvance(t *testing.T) {
	// The metrics registry is process-global, so assert deltas, not
	// absolute values.
	_, ts := newTestServer(t, 0)
	before := getJSON[obs.Snapshot](t, ts.URL+"/metrics")

	postJSON[Status](t, ts.URL+"/advance?count=2000")
	snap := getJSON[SnapshotResponse](t, ts.URL+"/snapshot")
	after := getJSON[obs.Snapshot](t, ts.URL+"/metrics")

	if d := after.Counters["rrset_generated_total"] - before.Counters["rrset_generated_total"]; d < 2000 {
		t.Fatalf("rrset_generated_total advanced by %d, want ≥ 2000", d)
	}
	if d := after.Counters["server_advance_requests_total"] - before.Counters["server_advance_requests_total"]; d != 1 {
		t.Fatalf("server_advance_requests_total advanced by %d, want 1", d)
	}
	if d := after.Counters["server_snapshot_requests_total"] - before.Counters["server_snapshot_requests_total"]; d != 1 {
		t.Fatalf("server_snapshot_requests_total advanced by %d, want 1", d)
	}
	if d := after.Counters["core_snapshots_total"] - before.Counters["core_snapshots_total"]; d != 1 {
		t.Fatalf("core_snapshots_total advanced by %d, want 1", d)
	}
	// The gauges must reflect the snapshot we just took.
	if got := after.Gauges["core_last_alpha"]; got != snap.Alpha {
		t.Fatalf("core_last_alpha = %v, snapshot α = %v", got, snap.Alpha)
	}
	if got := after.Gauges["core_last_theta1"]; got != float64(snap.Theta1) {
		t.Fatalf("core_last_theta1 = %v, θ1 = %d", got, snap.Theta1)
	}
	if after.Timers["server_advance_seconds"].Count < 1 {
		t.Fatal("server_advance_seconds never observed")
	}
	if after.Timers["rrset_generate_seconds"].Count <= before.Timers["rrset_generate_seconds"].Count {
		t.Fatal("rrset_generate_seconds never observed")
	}
}

func TestMetricsTextFormat(t *testing.T) {
	_, ts := newTestServer(t, 0)
	postJSON[Status](t, ts.URL+"/advance?count=100")
	resp, err := http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rrset_generated_total ", "server_advance_requests_total ", "rrset_generate_seconds_count "} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("text exposition missing %q:\n%s", name, body)
		}
	}
}

func TestMetricsBadFormat(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRR != 0 {
		t.Fatalf("initial status %+v", st)
	}
	st, err = c.Advance(1500)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRR != 1500 {
		t.Fatalf("after advance %+v", st)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Seeds) != 5 || snap.Alpha <= 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	if st, err = c.Start(); err != nil || !st.Running {
		t.Fatalf("start: %v %+v", err, st)
	}
	if st, err = c.Stop(); err != nil || st.Running {
		t.Fatalf("stop: %v %+v", err, st)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["rrset_generated_total"] < 1500 {
		t.Fatalf("client metrics: rrset_generated_total = %d", m.Counters["rrset_generated_total"])
	}
	if m.Gauges["core_last_alpha"] != snap.Alpha {
		t.Fatalf("client metrics: core_last_alpha = %v, want %v", m.Gauges["core_last_alpha"], snap.Alpha)
	}
}

func TestClientErrorPropagation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)
	if _, err := c.Advance(-5); err == nil {
		t.Fatal("invalid advance accepted")
	}
	bad := NewClient("http://127.0.0.1:1")
	if _, err := bad.Status(); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
