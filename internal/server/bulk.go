package server

// Bulk session operations: POST /sessions/bulk lets a campaign frontend
// drive thousands of sessions — the repeated-campaign workload of online
// influence maximization — without one HTTP round-trip per session. One
// request carries create/start/advance/stop batches; the response reports
// one result per operation, in input order, with the same status codes
// the per-session endpoints would have answered.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"github.com/reprolab/opim/internal/obs"
)

// bulkMaxOps bounds the total operations in one bulk request; a frontend
// driving more sessions than this splits into several calls.
const bulkMaxOps = 10000

// bulkAdvanceWorkers bounds the parallelism of the advance phase: bulk
// must not let one request occupy every CPU the background sampler and
// other tenants need.
const bulkAdvanceWorkers = 4

// BulkAdvance names one session and how many RR sets to generate on it.
type BulkAdvance struct {
	ID    string `json:"id"`
	Count int    `json:"count"`
}

// BulkSessionsRequest is the POST /sessions/bulk body. Phases execute in
// the order create → start → advance → stop, so one call can create a
// fleet of sessions and immediately put it to work. Any phase may be
// empty.
type BulkSessionsRequest struct {
	// Create makes new sessions, exactly like POST /sessions per entry.
	Create []SessionSpec `json:"create,omitempty"`
	// Start joins each named session to background sampling.
	Start []string `json:"start,omitempty"`
	// Advance generates RR sets on each named session (bounded
	// parallelism; each entry pays the session's admission token).
	Advance []BulkAdvance `json:"advance,omitempty"`
	// Stop removes each named session from background sampling.
	Stop []string `json:"stop,omitempty"`
}

// BulkResult is the outcome of one bulk operation. Status carries the
// HTTP code the per-session endpoint would have answered (200 on
// success); Error is the message for non-200 statuses.
type BulkResult struct {
	Op     string `json:"op"` // "create", "start", "advance" or "stop"
	ID     string `json:"id"`
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	// Info describes the session after a successful create.
	Info *SessionInfo `json:"info,omitempty"`
	// NumRR is the session's RR count after a successful advance.
	NumRR int64 `json:"num_rr,omitempty"`
}

// BulkSessionsResponse is the POST /sessions/bulk response body: one
// result per requested operation, phases concatenated in execution order
// (create, start, advance, stop), each phase in input order.
type BulkSessionsResponse struct {
	Results []BulkResult `json:"results"`
	// Failed counts results with a non-200 status. The HTTP status of the
	// bulk call itself is 200 whenever the request was well-formed — per-op
	// failures are data, not transport errors.
	Failed int `json:"failed"`
}

// handleSessionsBulk serves POST /sessions/bulk.
func (s *Server) handleSessionsBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BulkSessionsRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	total := len(req.Create) + len(req.Start) + len(req.Advance) + len(req.Stop)
	if total == 0 {
		http.Error(w, "empty bulk request (want create, start, advance and/or stop)", http.StatusBadRequest)
		return
	}
	if total > bulkMaxOps {
		http.Error(w, fmt.Sprintf("bulk request has %d operations (limit %d); split the call", total, bulkMaxOps), http.StatusBadRequest)
		return
	}

	resp := BulkSessionsResponse{Results: make([]BulkResult, 0, total)}

	// Phase 1: create. Sequential — session creation is registry work, not
	// engine work, and must preserve input order for duplicate-id errors.
	for _, spec := range req.Create {
		res := BulkResult{Op: "create", ID: spec.ID, Status: http.StatusOK}
		sess, status, err := s.createSession(spec)
		if err != nil {
			res.Status = status
			res.Error = err.Error()
		} else {
			info := s.sessionInfo(sess)
			res.Info = &info
		}
		resp.Results = append(resp.Results, res)
	}

	// Phase 2: start. Each entry pays the session's admission token, like
	// POST /sessions/{id}/start would.
	for _, id := range req.Start {
		resp.Results = append(resp.Results, s.bulkGated("start", id, func(sess *Session) BulkResult {
			res := BulkResult{Op: "start", ID: id, Status: http.StatusOK}
			if status, msg := s.startSession(sess); status != 0 {
				res.Status = status
				res.Error = msg
			}
			return res
		}))
	}

	// Phase 3: advance, under bounded parallelism — results land at their
	// input index, so the response order is deterministic. The request
	// context (plus the configured request deadline) covers the whole
	// phase; a deadline answers 503 with partial progress kept per session.
	if len(req.Advance) > 0 {
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		results := make([]BulkResult, len(req.Advance))
		var wg sync.WaitGroup
		sem := make(chan struct{}, bulkAdvanceWorkers)
		for i, adv := range req.Advance {
			wg.Add(1)
			go func(i int, adv BulkAdvance) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = s.bulkGated("advance", adv.ID, func(sess *Session) BulkResult {
					res := BulkResult{Op: "advance", ID: adv.ID, Status: http.StatusOK}
					switch status, msg := s.advanceSession(ctx, sess, adv.Count); status {
					case 0:
						res.NumRR = sess.statNumRR.Load()
					case statusClientGone:
						// The bulk connection is gone; the response will never
						// be read, but fill honest per-op state anyway.
						res.Status = http.StatusServiceUnavailable
						res.Error = "request cancelled"
					default:
						res.Status = status
						res.Error = msg
					}
					return res
				})
			}(i, adv)
		}
		wg.Wait()
		resp.Results = append(resp.Results, results...)
	}

	// Phase 4: stop. Not token-gated (a tenant over its rate must always be
	// able to stop its sessions), mirroring POST /sessions/{id}/stop.
	for _, id := range req.Stop {
		res := BulkResult{Op: "stop", ID: id, Status: http.StatusOK}
		if sess := s.lookup(id); sess == nil {
			res.Status = http.StatusNotFound
			res.Error = fmt.Sprintf("unknown session %q", id)
		} else {
			s.stopSession(sess)
		}
		resp.Results = append(resp.Results, res)
	}

	for _, res := range resp.Results {
		if res.Status != http.StatusOK {
			resp.Failed++
		}
	}
	writeJSON(w, resp)
}

// bulkGated resolves a session id and charges its admission token, then
// runs op. Unknown ids answer 404, rate-limited tenants 429 with the
// token wait as Retry-After semantics folded into the per-op result.
func (s *Server) bulkGated(opName, id string, op func(*Session) BulkResult) BulkResult {
	sess := s.lookup(id)
	if sess == nil {
		return BulkResult{Op: opName, ID: id, Status: http.StatusNotFound,
			Error: fmt.Sprintf("unknown session %q", id)}
	}
	if ok, wait := takeSessionToken(sess); !ok {
		mAdmissionRatelimited.Inc()
		obs.Default().Counter(obs.Labeled("server_session_shed_total", "session", sess.ID)).Inc()
		return BulkResult{Op: opName, ID: id, Status: http.StatusTooManyRequests,
			Error: fmt.Sprintf("session %q over its request rate; retry in %ds", id, ceilSeconds(wait))}
	}
	return op(sess)
}
