package server

// Tests for the multi-tenant serving discipline (qos.go): token buckets,
// the bounded admission queue, honest Retry-After derivation, deficit-
// weighted fair sampling, the bulk session API, and the client-side
// retry-stampede and keep-alive regressions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/obs"
)

// postSpec creates a session over the API and fails the test on non-200.
func postSpec(t *testing.T, url string, spec SessionSpec) SessionInfo {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := make([]byte, 256)
		n, _ := resp.Body.Read(msg)
		t.Fatalf("POST /sessions %q: status %d: %s", spec.ID, resp.StatusCode, msg[:n])
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestTokenBucketTakeAndRefill(t *testing.T) {
	b := newTokenBucket(10, 2) // 10 tokens/s, depth 2, starts full
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d refused on a full bucket", i)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatal("take succeeded on an empty bucket")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("empty-bucket wait %v, want (0, 100ms] at 10 tokens/s", wait)
	}
	// One token accrues after 100ms.
	if ok, _ := b.take(now.Add(101 * time.Millisecond)); !ok {
		t.Fatal("token did not refill at the configured rate")
	}
	// The bucket never exceeds its burst: after a long idle stretch,
	// exactly burst takes succeed.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(later); !ok {
			t.Fatalf("take %d refused after refill to burst", i)
		}
	}
	if ok, _ := b.take(later); ok {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	if b := newTokenBucket(8, 0); b.burst != 8 {
		t.Fatalf("default burst %g, want rate 8", b.burst)
	}
	if b := newTokenBucket(0.25, 0); b.burst != 1 {
		t.Fatalf("default burst %g, want floor of 1 for sub-1 rates", b.burst)
	}
}

// TestRetryAfterDerivedFromLoad: the Retry-After hint must follow queue
// depth and measured service time, not a constant.
func TestRetryAfterDerivedFromLoad(t *testing.T) {
	s := &Server{cfg: Config{MaxInflight: 2}}
	s.svc.observe(2 * time.Second) // first observation seeds the EWMA exactly
	s.admQueued.Store(5)
	// Expected wait for a new arrival: (5+1) × 2s / 2 slots = 6s.
	if got := s.retryAfterSeconds(); got != 6 {
		t.Fatalf("retryAfterSeconds = %d, want 6 (depth 6 × 2s / 2 slots)", got)
	}
	s.admQueued.Store(0)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfterSeconds = %d, want 1 (single-request estimate rounds up)", got)
	}
	// Deep queue + slow service clamps at the maximum.
	s.admQueued.Store(1000)
	if got := s.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Fatalf("retryAfterSeconds = %d, want clamp %d", got, maxRetryAfterSeconds)
	}
}

// TestAdmitQueueGrantsFreedSlot: a request arriving over capacity parks
// in the queue and is served as soon as the slot frees — the behavior the
// old hard shed could not provide.
func TestAdmitQueueGrantsFreedSlot(t *testing.T) {
	s := &Server{cfg: Config{MaxInflight: 1}}
	s.admSlots = make(chan struct{}, 1)
	s.admMaxQueue = 2
	s.admMaxWait = time.Second
	s.admSlots <- struct{}{} // occupy the only slot
	go func() {
		time.Sleep(30 * time.Millisecond)
		<-s.admSlots // slot frees while the request is queued
	}()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/status", nil)
	if !s.admitQueue(rec, req) {
		t.Fatalf("queued request was rejected although the slot freed: %d %s", rec.Code, rec.Body)
	}
	<-s.admSlots // release what admitQueue acquired
}

// TestAdmitQueueRejectsWithHonestHint: when the slot never frees, the
// queued request gets 429 with a Retry-After derived from live state.
func TestAdmitQueueRejectsWithHonestHint(t *testing.T) {
	s := &Server{cfg: Config{MaxInflight: 1}}
	s.admSlots = make(chan struct{}, 1)
	s.admMaxQueue = 2
	s.admMaxWait = 50 * time.Millisecond
	s.admSlots <- struct{}{}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/status", nil)
	if s.admitQueue(rec, req) {
		t.Fatal("admitQueue granted a slot that was never released")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Queue disabled entirely: immediate rejection, no parking.
	s.admMaxQueue = 0
	start := time.Now()
	rec = httptest.NewRecorder()
	if s.admitQueue(rec, req) {
		t.Fatal("admitQueue granted with a full slot and no queue")
	}
	if el := time.Since(start); el > 20*time.Millisecond {
		t.Fatalf("queueless rejection took %v, want immediate", el)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queueless rejection status %d, want 429", rec.Code)
	}
}

// TestAdmissionQueueSmoothsBursts: with MaxInflight=1 but the queue
// enabled, a burst of cheap requests all succeed — the queue absorbs what
// the old limiter would have shed.
func TestAdmissionQueueSmoothsBursts(t *testing.T) {
	_, ts := newSlowServer(t, Config{Batch: 500, MaxInflight: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/status")
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("burst /status: %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionRateLimit: a session created with a rate answers 429 + the
// per-tenant Retry-After once its bucket empties, while monitoring
// (/status, peek) and /stop stay reachable.
func TestSessionRateLimit(t *testing.T) {
	_, ts := newTestServer(t, 1<<20)
	postSpec(t, ts.URL, SessionSpec{ID: "throttled", K: 3, Rate: 0.5, Burst: 1})

	if resp, err := http.Post(ts.URL+"/sessions/throttled/advance?count=100", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first advance inside burst: status %d", resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/sessions/throttled/advance?count=100", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate advance: status %d, want 429 (%s)", resp.StatusCode, body[:n])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited 429 without Retry-After")
	}
	if !strings.Contains(string(body[:n]), "over its request rate") {
		t.Fatalf("429 body %q does not name the rate limit", body[:n])
	}
	// A throttled tenant can still observe and stop its session.
	if st := getJSON[Status](t, ts.URL+"/sessions/throttled/status"); st.NumRR != 100 {
		t.Fatalf("/status blocked or wrong for a throttled tenant: %+v", st)
	}
	if st := postJSON[Status](t, ts.URL+"/sessions/throttled/stop"); st.Running {
		t.Fatal("/stop blocked for a throttled tenant")
	}
	// The unlimited default session is untouched by the other tenant's
	// bucket.
	if _, err := NewClient(ts.URL).Advance(100); err != nil {
		t.Fatalf("default session advance: %v", err)
	}
}

// TestSessionQoSValidation: malformed weight/rate/burst are 400s, and the
// resolved values round-trip through the listing.
func TestSessionQoSValidation(t *testing.T) {
	_, ts := newTestServer(t, 1<<20)
	for _, bad := range []string{
		`{"id":"w1","k":3,"weight":-1}`,
		`{"id":"w2","k":3,"weight":1e9}`,
		`{"id":"w3","k":3,"burst":-2}`,
	} {
		resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	info := postSpec(t, ts.URL, SessionSpec{ID: "shaped", K: 3, Weight: 4, Rate: 2, Burst: 5})
	if info.Weight != 4 || info.Rate != 2 || info.Burst != 5 {
		t.Fatalf("QoS fields did not round-trip: %+v", info)
	}
	// Defaults: weight 1, no rate.
	info = postSpec(t, ts.URL, SessionSpec{ID: "plain", K: 3})
	if info.Weight != 1 || info.Rate != 0 {
		t.Fatalf("default QoS wrong: %+v", info)
	}
}

// TestWeightedFairness: a weight-4 session receives ~4× the background
// sampling of a weight-1 session over a steady window (±20%), and a
// saturated heavy tenant cannot stall a light tenant's own /advance.
func TestWeightedFairness(t *testing.T) {
	const batch = 500
	srv, ts := newTestServer(t, 1<<26)
	c := NewClient(ts.URL)
	postSpec(t, ts.URL, SessionSpec{ID: "heavy", K: 3, Weight: 4})
	postSpec(t, ts.URL, SessionSpec{ID: "light", K: 3, Weight: 1})

	// Warm-up rotation, then quiesce: measuring deltas between two stopped
	// states keeps the window clean (no torn mid-rotation reads), and
	// starting both sessions in one bulk call keeps the start gap — during
	// which the rotation would serve one tenant alone — to microseconds
	// instead of an HTTP round-trip.
	if resp, err := c.BulkSessions(BulkSessionsRequest{Start: []string{"light", "heavy"}}); err != nil || resp.Failed != 0 {
		t.Fatalf("bulk start: %v (failed=%d)", err, resp.Failed)
	}
	waitLightRR := func(target int64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if getJSON[Status](t, ts.URL+"/sessions/light/status").NumRR >= target {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("rotation too slow: light never reached %d RR sets", target)
	}
	waitLightRR(2 * batch)

	// Mid-saturation: the light tenant's own advance must complete in
	// bounded time — it waits at most one Batch chunk of sampler work on
	// its own mutex, never the heavy tenant's full quantum.
	advStart := time.Now()
	postJSON[Status](t, ts.URL+"/sessions/light/advance?count=500")
	advLatency := time.Since(advStart)
	if advLatency > 10*time.Second {
		t.Fatalf("light tenant /advance took %v under heavy load; isolation broken", advLatency)
	}

	srv.Stop()
	h0 := getJSON[Status](t, ts.URL+"/sessions/heavy/status").NumRR
	l0 := getJSON[Status](t, ts.URL+"/sessions/light/status").NumRR

	// The measured window: restart both, run until the light session has
	// earned at least ten more credits, quiesce again.
	if resp, err := c.BulkSessions(BulkSessionsRequest{Start: []string{"light", "heavy"}}); err != nil || resp.Failed != 0 {
		t.Fatalf("bulk restart: %v (failed=%d)", err, resp.Failed)
	}
	waitLightRR(l0 + 10*batch)
	srv.Stop()

	heavy := getJSON[Status](t, ts.URL+"/sessions/heavy/status").NumRR - h0
	light := getJSON[Status](t, ts.URL+"/sessions/light/status").NumRR - l0
	if light < 10*batch {
		t.Fatalf("window too small: light delta %d, want ≥ %d", light, 10*batch)
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("weighted fairness broken: heavy/light deltas %d/%d = %.2f, want 4.0 ± 20%%", heavy, light, ratio)
	}
}

// TestLoopExhaustionRetireUnderLock: the budget-exhaustion retire in
// Server.loop must flip running under sess.mu — hammering /start against
// a session at its RR budget while the sampler keeps retiring it must
// stay race-free (the old unlocked store tripped -race here) and never
// overshoot the budget.
func TestLoopExhaustionRetireUnderLock(t *testing.T) {
	const budget = 1000
	srv, ts := newTestServer(t, 1<<20)
	postSpec(t, ts.URL, SessionSpec{ID: "tiny", K: 3, MaxRR: budget})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := http.Post(ts.URL+"/sessions/tiny/start", "", nil)
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	// Every start either re-admitted the session (and the sampler retired
	// it again at the budget) or raced a retire; either way the budget
	// holds and the loop settles with the session out of the rotation.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON[Status](t, ts.URL+"/sessions/tiny/status")
		if st.NumRR > budget {
			t.Fatalf("budget violated: num_rr=%d > max_rr=%d", st.NumRR, budget)
		}
		if st.NumRR == budget && !st.Running {
			srv.Stop()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session never settled at its budget: %+v",
		getJSON[Status](t, ts.URL+"/sessions/tiny/status"))
}

// TestBulkSessions: one POST /sessions/bulk creates, starts, advances and
// stops a fleet, reporting per-op statuses in order.
func TestBulkSessions(t *testing.T) {
	_, ts := newTestServer(t, 1<<20)
	c := NewClient(ts.URL)
	resp, err := c.BulkSessions(BulkSessionsRequest{
		Create: []SessionSpec{
			{ID: "b1", K: 3},
			{ID: "b2", K: 3, Weight: 2},
			{ID: "b1", K: 3}, // duplicate: per-op 409, not a transport error
		},
		Advance: []BulkAdvance{
			{ID: "b1", Count: 200},
			{ID: "b2", Count: 300},
			{ID: "ghost", Count: 100}, // unknown: per-op 404
		},
		Stop: []string{"b1", "b2"},
	})
	if err != nil {
		t.Fatalf("bulk call failed as transport error: %v", err)
	}
	if len(resp.Results) != 8 {
		t.Fatalf("%d results, want 8", len(resp.Results))
	}
	if resp.Failed != 2 {
		t.Fatalf("failed=%d, want 2 (duplicate create + unknown advance)", resp.Failed)
	}
	if r := resp.Results[2]; r.Op != "create" || r.Status != http.StatusConflict {
		t.Fatalf("duplicate create result: %+v", r)
	}
	if r := resp.Results[3]; r.Op != "advance" || r.Status != http.StatusOK || r.NumRR != 200 {
		t.Fatalf("b1 advance result: %+v", r)
	}
	if r := resp.Results[4]; r.NumRR != 300 {
		t.Fatalf("b2 advance result: %+v", r)
	}
	if r := resp.Results[5]; r.Status != http.StatusNotFound {
		t.Fatalf("ghost advance result: %+v", r)
	}
	if r := resp.Results[1]; r.Info == nil || r.Info.Weight != 2 {
		t.Fatalf("b2 create result carries no info: %+v", r)
	}
	// The fleet really exists and really advanced.
	if st := getJSON[Status](t, ts.URL+"/sessions/b2/status"); st.NumRR != 300 {
		t.Fatalf("bulk advance not applied: %+v", st)
	}
	// Malformed requests are transport-level 400s.
	for _, body := range []string{`{}`, `not json`} {
		hresp, herr := http.Post(ts.URL+"/sessions/bulk", "application/json", strings.NewReader(body))
		if herr != nil {
			t.Fatal(herr)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bulk body %q: status %d, want 400", body, hresp.StatusCode)
		}
	}
}

// TestRetryAfterIsFloorNotOverride is the thundering-herd regression: two
// clients that received the same Retry-After hint must pick different
// retry instants, and neither may retry before the hint.
func TestRetryAfterIsFloorNotOverride(t *testing.T) {
	hint := time.Second
	c1 := &Client{RetrySeed: 1}
	c2 := &Client{RetrySeed: 2}
	d1 := c1.backoffDelay(defaultRetryBase, 0, hint)
	d2 := c2.backoffDelay(defaultRetryBase, 0, hint)
	if d1 < hint || d2 < hint {
		t.Fatalf("delay shortened below the server hint: %v / %v < %v", d1, d2, hint)
	}
	if d1 == d2 {
		t.Fatalf("both clients retry at the same instant %v — the stampede the jitter exists to prevent", d1)
	}
	// Without a hint, backoff still doubles per attempt and caps out
	// without shift overflow even at absurd attempt counts.
	if d := c1.backoffDelay(defaultRetryBase, 200, 0); d > maxRetryDelay+maxRetryDelay/2 {
		t.Fatalf("attempt-200 delay %v blew the cap (shift overflow?)", d)
	}
	prev := time.Duration(0)
	for attempt := 0; attempt < 4; attempt++ {
		d := (&Client{RetrySeed: 7}).backoffDelay(defaultRetryBase, attempt, 0)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		_ = prev
		prev = d
	}
}

// TestClientDrainsBodyForKeepAlive: retries after shed responses must
// reuse the TCP connection — closing an undrained body would force a
// fresh dial per attempt.
func TestClientDrainsBodyForKeepAlive(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// A body large enough that the client's 512-byte error peek
			// leaves bytes behind — the drain has to finish the job. No
			// Retry-After: millisecond backoff keeps the test fast.
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(bytes.Repeat([]byte("shed "), 1024))
			return
		}
		json.NewEncoder(w).Encode(Status{Session: "default", NumRR: 42})
	}))
	defer ts.Close()

	var dials atomic.Int64
	base := &net.Dialer{}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return base.DialContext(ctx, network, addr)
		},
	}
	c := NewClient(ts.URL)
	c.HTTPClient = &http.Client{Transport: transport, Timeout: 30 * time.Second}
	c.RetryBase = time.Millisecond
	c.RetrySeed = 5
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status after two sheds: %v", err)
	}
	if st.NumRR != 42 {
		t.Fatalf("wrong response after retries: %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts reached the server, want 3", got)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("%d TCP dials for 3 attempts — undrained bodies are killing keep-alive; want 1", got)
	}
}

// TestAdmissionMetricsPresence: the server_admission_* family must exist
// in /metrics so dashboards and the CI check can rely on the names.
func TestAdmissionMetricsPresence(t *testing.T) {
	_, ts := newSlowServer(t, Config{Batch: 500, MaxInflight: 1, MaxQueue: -1})
	// Provoke at least one rejection so the counters are live.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := NewClient(ts.URL)
		c.AdvanceContext(ctx, 1<<20)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	snap := obs.Default().Snapshot()
	for _, name := range []string{
		"server_admission_rejected_total",
		"server_admission_queued_total",
		"server_admission_ratelimited_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %s missing from the registry", name)
		}
	}
	for _, name := range []string{
		"server_admission_queue_depth",
		"server_admission_service_ewma_seconds",
		"server_admission_retry_after_seconds",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s missing from the registry", name)
		}
	}
	if snap.Counters["server_admission_rejected_total"] == 0 {
		t.Fatal("no admission rejection was recorded by the provoked overload")
	}
}
