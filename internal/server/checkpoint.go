package server

// Crash-safe checkpointing: each session is periodically (and on
// shutdown, and on eviction) serialized through core.SaveSession onto an
// atomic write path (fsutil.WriteAtomic: tmp + fsync + rename, previous
// generation kept), and LoadCheckpoint restores it — at startup, and
// transparently when an evicted session is touched — falling back to the
// previous generation when the current one is corrupt. Because save →
// load → Advance is byte-identical to a never-paused session
// (core/persist.go), a daemon that crashes and resumes — or a session
// that is evicted and reloaded — serves exactly the answers (seeds, α,
// θ₁, θ₂, δ accounting) an uninterrupted one would have.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/fsutil"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// DefaultCheckpointInterval is the checkpointer cadence when
// Config.CheckpointInterval is unset.
const DefaultCheckpointInterval = 30 * time.Second

// Checkpoint metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mCkWrites     = obs.Default().Counter("server_checkpoint_writes_total")
	mCkFailures   = obs.Default().Counter("server_checkpoint_failures_total")
	mCkBytes      = obs.Default().Counter("server_checkpoint_bytes_total")
	mCkTime       = obs.Default().Timer("server_checkpoint_seconds")
	mCkRecoveries = obs.Default().Counter("server_checkpoint_recoveries_total")
)

// SaveCheckpoint atomically writes the default session to its checkpoint
// path and returns the checkpoint size — the single-session API kept for
// existing callers; saveSessionCheckpoint is the per-session form behind
// it.
func (s *Server) SaveCheckpoint() (int64, error) {
	sess := s.lookup(DefaultSessionID)
	if sess == nil || sess.ckPath == "" {
		return 0, errors.New("server: no checkpoint path configured")
	}
	return s.saveSessionCheckpoint(sess)
}

// engineFP fingerprints an engine's mutable state: NumRR moves on every
// Advance and Queries on every Snapshot, so fingerprint equality means
// "no mutation since the checkpoint bytes were captured". Eviction's
// serialize-then-verify protocol (evictSession) relies on this to detect
// a request that slipped in between serialization and unload.
type engineFP struct {
	numRR   int64
	queries int
}

// saveSessionCheckpoint atomically writes one session to its ckPath. The
// session is serialized to memory under its own mutex (sampling of that
// session pauses only for the in-memory copy, not for disk I/O; other
// sessions are untouched), then written via fsutil.WriteAtomic, so a torn
// write can never clobber the last good generation. Failures are logged,
// counted (server_checkpoint_failures_total) and reported to the event
// sink.
func (s *Server) saveSessionCheckpoint(sess *Session) (int64, error) {
	n, _, err := s.saveSessionCheckpointFP(sess)
	return n, err
}

// saveSessionCheckpointFP is saveSessionCheckpoint plus the engine
// fingerprint captured under sess.mu together with the serialized bytes —
// the fingerprint therefore describes exactly the state that went to
// disk.
func (s *Server) saveSessionCheckpointFP(sess *Session) (int64, engineFP, error) {
	var fp engineFP
	path := sess.ckPath
	if path == "" {
		return 0, fp, fmt.Errorf("server: session %q has no checkpoint path", sess.ID)
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	t0 := time.Now()

	sess.mu.Lock()
	var buf bytes.Buffer
	var err error
	if sess.online == nil {
		err = fmt.Errorf("server: session %q is not loaded", sess.ID)
	} else {
		err = core.SaveSession(&buf, sess.online)
		fp = engineFP{numRR: sess.online.NumRR(), queries: sess.online.Queries()}
	}
	sess.mu.Unlock()

	var n int64
	if err == nil {
		n, err = fsutil.WriteAtomic(path, func(w io.Writer) error {
			if s.ckWrap != nil {
				w = s.ckWrap(w)
			}
			_, werr := w.Write(buf.Bytes())
			return werr
		})
	}
	mCkTime.Observe(time.Since(t0))
	if err != nil {
		mCkFailures.Inc()
		log.Printf("server: checkpoint write to %s failed: %v", path, err)
		obs.Emit(s.cfg.Events, "checkpoint_failure", map[string]any{
			"session": sess.ID,
			"path":    path,
			"error":   err.Error(),
		})
		return n, fp, fmt.Errorf("server: checkpoint %s: %w", path, err)
	}
	mCkWrites.Inc()
	mCkBytes.Add(n)
	return n, fp, nil
}

// StartCheckpointer launches the periodic checkpoint goroutine at
// cfg.CheckpointInterval (DefaultCheckpointInterval when unset); each tick
// checkpoints every loaded session that has a checkpoint path. It is a
// no-op when no checkpointing is configured or the checkpointer is
// already running; Shutdown (or stopCheckpointer) stops it and waits for
// it to exit.
func (s *Server) StartCheckpointer() {
	if s.cfg.CheckpointPath == "" && s.cfg.CheckpointDir == "" {
		return
	}
	interval := s.cfg.CheckpointInterval
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	s.ckMu.Lock()
	if s.ckStop != nil {
		s.ckMu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.ckStop, s.ckDone = stop, done
	s.ckMu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// Errors are already logged and counted per session;
				// the checkpointer keeps trying — a transiently full disk
				// must not end checkpointing forever.
				for _, sess := range s.snapshotSessions() {
					if sess.ckPath == "" || sessionState(sess.state.Load()) != stateLoaded {
						continue
					}
					s.saveSessionCheckpoint(sess)
				}
			}
		}
	}()
}

// stopCheckpointer halts the periodic checkpointer and waits for its
// goroutine to exit. Safe to call when not running.
func (s *Server) stopCheckpointer() {
	s.ckMu.Lock()
	stop, done := s.ckStop, s.ckDone
	s.ckStop, s.ckDone = nil, nil
	s.ckMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// CheckpointResponse is the POST /checkpoint response body.
type CheckpointResponse struct {
	Session string `json:"session"`
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	NumRR   int64  `json:"num_rr"`
}

// handleCheckpoint forces a checkpoint write now — the durability point a
// client can demand before it stops polling for a while.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if sess.ckPath == "" {
		http.Error(w, "checkpointing not configured (start opimd with -checkpoint or -checkpoint-dir)", http.StatusNotFound)
		return
	}
	// A forced checkpoint serializes the engine under the session lock —
	// engine-touching work, so it pays a token like /advance does.
	if !s.admitSession(w, sess) {
		return
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		s.replyError(w, status, msg)
		return
	}
	n, err := s.saveSessionCheckpoint(sess)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, CheckpointResponse{
		Session: sess.ID,
		Path:    sess.ckPath,
		Bytes:   n,
		NumRR:   sess.statNumRR.Load(),
	})
}

// LoadCheckpoint restores a session from the checkpoint at path, written
// by saveSessionCheckpoint. Recovery order: the current generation first;
// if it is missing or corrupt (core.ErrBadSession, a truncated file, a
// torn write that survived fsync), the previous generation path+".prev" —
// such a fallback is logged and counted
// (server_checkpoint_recoveries_total). It returns the restored session
// and the file it actually came from. OPIMS3 checkpoints carry the source
// graph's fingerprint; a sampler over a different graph is refused with
// core.ErrGraphMismatch.
//
// When neither generation exists the error wraps fs.ErrNotExist, which is
// how a daemon distinguishes "first boot" from "both generations
// corrupt" — the latter is returned verbatim and should stop startup
// rather than silently discarding the session's δ/budget accounting.
func LoadCheckpoint(path string, sampler *rrset.Sampler) (*core.Online, string, error) {
	online, used, _, err := LoadCheckpointMeta(path, sampler)
	return online, used, err
}

// LoadCheckpointMeta is LoadCheckpoint returning also the checkpoint's
// graph-identity header — how a daemon learns whether the resumed session
// was fingerprint-verified (meta.Verified()) or came from a legacy
// OPIMS1/2 file whose graph cannot be checked.
func LoadCheckpointMeta(path string, sampler *rrset.Sampler) (*core.Online, string, *core.SessionMeta, error) {
	return loadCheckpointResolve(path, func(*core.SessionMeta) (*rrset.Sampler, error) {
		return sampler, nil
	})
}

// loadCheckpointResolve is the generation-fallback loader under both
// public forms: each generation attempt streams through
// core.LoadSessionResolve, so resolve sees the graph identity of the
// specific file being read (current and .prev may disagree after a graph
// switch). Load errors name the file and generation that failed — with
// many graphs sharing one checkpoint dir, "which file, which generation"
// is the difference between a findable mismatch and guesswork.
func loadCheckpointResolve(path string, resolve func(*core.SessionMeta) (*rrset.Sampler, error)) (*core.Online, string, *core.SessionMeta, error) {
	load := func(p string) (*core.Online, *core.SessionMeta, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return core.LoadSessionResolve(f, resolve)
	}
	session, meta, err := load(path)
	if err == nil {
		return session, path, meta, nil
	}
	prev := path + fsutil.PrevSuffix
	session, prevMeta, prevErr := load(prev)
	if prevErr == nil {
		if !os.IsNotExist(err) {
			// The current generation existed but was bad — a genuine
			// recovery, not a routine crash-between-renames window.
			mCkRecoveries.Inc()
		}
		log.Printf("server: checkpoint current generation %s unusable (%v); recovered from previous generation %s", path, err, prev)
		return session, prev, prevMeta, nil
	}
	if os.IsNotExist(err) && os.IsNotExist(prevErr) {
		return nil, "", nil, fmt.Errorf("server: no checkpoint at %s: %w", path, err)
	}
	return nil, "", nil, fmt.Errorf("server: checkpoint unusable: current generation %s: %w; previous generation %s: %v", path, err, prev, prevErr)
}

// loadSessionCheckpoint restores a session checkpoint resolving its graph
// through the catalog: the recorded graph name picks the registered entry,
// an unregistered name is auto-registered from the recorded spec, and a
// checkpoint with no identity (OPIMS1/2, or saved outside a catalog) falls
// back to the default graph with a logged "unverified graph" warning. On
// success the returned entry holds one loadedRefs reference owned by the
// restored session.
func (s *Server) loadSessionCheckpoint(path string) (*core.Online, *graphEntry, error) {
	var acquired []*graphEntry
	var missed [][]graph.Mutation
	var usedSampler *rrset.Sampler
	resolve := func(meta *core.SessionMeta) (*rrset.Sampler, error) {
		missed, usedSampler = nil, nil
		var e *graphEntry
		if meta.GraphName == "" || meta.GraphName == DefaultGraphName {
			if e = s.lookupGraph(DefaultGraphName); e == nil {
				return nil, errors.New("no default graph registered")
			}
		} else {
			var err error
			if e, err = s.ensureGraph(meta.GraphName, meta.GraphSpec); err != nil {
				return nil, err
			}
		}
		if !meta.Verified() {
			log.Printf("server: checkpoint %s is legacy OPIMS%d with no graph fingerprint; resuming on graph %q UNVERIFIED (see docs/ROBUSTNESS.md)",
				path, meta.Format, e.name)
		}
		sampler, err := s.acquireGraph(e)
		if err != nil {
			return nil, err
		}
		// Place the checkpoint on the graph's epoch chain: recorded at an
		// earlier epoch → accept it stale and catch up below; recorded off
		// the chain → release and refuse.
		ms, err := e.missedBatches(meta, sampler.Graph())
		if err != nil {
			s.releaseGraph(e)
			return nil, err
		}
		if ms != nil {
			missed = ms
			meta.AcceptStale = true
		}
		usedSampler = sampler
		acquired = append(acquired, e)
		return sampler, nil
	}
	online, _, _, err := loadCheckpointResolve(path, resolve)
	if err != nil {
		for _, e := range acquired {
			s.releaseGraph(e)
		}
		return nil, nil, err
	}
	// The last acquire belongs to the restored session; earlier ones came
	// from a generation that resolved but then failed to load.
	for _, e := range acquired[:len(acquired)-1] {
		s.releaseGraph(e)
	}
	entry := acquired[len(acquired)-1]
	if len(missed) > 0 {
		regen := online.RepairForMutations(usedSampler, missed...)
		mSessionsCaughtUp.Inc()
		log.Printf("server: checkpoint %s caught up %d epoch(s) on graph %q (%d RR sets regenerated)",
			path, len(missed), entry.name, regen)
	}
	return online, entry, nil
}
