package server

// Graph-catalog coverage: CRUD over /graphs, per-(graph, model) sampler
// sharing asserted by pointer identity, concurrent sessions on different
// graphs under -race, MaxLoadedGraphs LRU unload/reload churn, multi-graph
// checkpoint adoption, and the fingerprint guards (changed-on-disk reload,
// mismatched resume).

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// writeCatalogGraph generates a small distinct graph and writes it to a
// binary file registerable through a path-based GraphSpec.
func writeCatalogGraph(t *testing.T, n int32, seed uint64) (string, *graph.Graph) {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 6, 0.15, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("g%d.bin", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, g
}

// newCatalogServer is newTestServer with a caller-controlled Config.
func newCatalogServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, err := gen.PreferentialAttachment(500, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rrset.NewSampler(g, diffusion.IC)
	session, err := core.NewOnline(sampler, core.Options{K: 5, Delta: 0.05, Variant: core.Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 500
	}
	srv := New(session, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		srv.stopCheckpointer()
		ts.Close()
	})
	return srv, ts
}

// sessionSampler reads a session's live sampler pointer under its lock.
func sessionSampler(t *testing.T, srv *Server, id string) *rrset.Sampler {
	t.Helper()
	sess := srv.lookup(id)
	if sess == nil {
		t.Fatalf("session %q not found", id)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.online.Sampler()
}

func TestGraphCatalogCRUD(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	// The legacy flags register exactly one graph: "default", loaded,
	// referenced by the default session, with a real fingerprint.
	list, err := c.ListGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != DefaultGraphName || !list[0].Loaded || list[0].Sessions != 1 {
		t.Fatalf("initial graph list = %+v", list)
	}
	if len(list[0].Fingerprint) != 64 {
		t.Fatalf("default graph fingerprint = %q", list[0].Fingerprint)
	}

	path, g := writeCatalogGraph(t, 300, 11)
	info, err := c.CreateGraph(CreateGraphRequest{Name: "tiny", GraphSpec: cliutil.GraphSpec{Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "tiny" || info.N != g.N() || info.M != g.M() || !info.Loaded || info.Sessions != 0 {
		t.Fatalf("registered graph info = %+v", info)
	}
	if info.Fingerprint != g.Fingerprint() {
		t.Fatalf("catalog fingerprint %s, file fingerprints %s", info.Fingerprint, g.Fingerprint())
	}

	// Rejections: duplicate name, invalid name, empty spec.
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "tiny", GraphSpec: cliutil.GraphSpec{Path: path}}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate register error = %v", err)
	}
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "../escape", GraphSpec: cliutil.GraphSpec{Path: path}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad-name register error = %v", err)
	}
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "empty"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty-spec register error = %v", err)
	}

	if got, err := c.GetGraph("tiny"); err != nil || got.Fingerprint != g.Fingerprint() {
		t.Fatalf("GET /graphs/tiny = %+v (%v)", got, err)
	}
	if _, err := c.GetGraph("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("GET unknown graph error = %v", err)
	}

	// Sessions bind to graphs by name; the binding shows up in the info
	// and protects the graph from deletion.
	sinfo, err := c.CreateSession(SessionSpec{ID: "a", K: 2, Delta: 0.1, Graph: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if sinfo.Graph != "tiny" || sinfo.GraphFingerprint != g.Fingerprint() {
		t.Fatalf("session info = %+v", sinfo)
	}
	if _, err := c.CreateSession(SessionSpec{ID: "b", K: 2, Delta: 0.1, Graph: "nope"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("session on unknown graph error = %v", err)
	}
	st, err := c.Session("a").Status()
	if err != nil || st.Graph != "tiny" || st.GraphFingerprint != g.Fingerprint() {
		t.Fatalf("status = %+v (%v)", st, err)
	}
	if err := c.DeleteGraph("tiny"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("delete of referenced graph error = %v", err)
	}
	if err := c.DeleteSession("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteGraph("tiny"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteGraph("tiny"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double delete error = %v", err)
	}
	if err := c.DeleteGraph(DefaultGraphName); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("default graph delete error = %v", err)
	}
}

func TestSessionsShareSamplerPerGraph(t *testing.T) {
	srv, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	path, _ := writeCatalogGraph(t, 300, 21)
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "g1", GraphSpec: cliutil.GraphSpec{Path: path}}); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []SessionSpec{
		{ID: "a", K: 2, Delta: 0.1, Graph: "g1"},
		{ID: "b", K: 3, Delta: 0.1, Graph: "g1", Seed: 9},
		{ID: "c", K: 2, Delta: 0.1}, // no graph → default
	} {
		if _, err := c.CreateSession(spec); err != nil {
			t.Fatal(err)
		}
	}
	a, b := sessionSampler(t, srv, "a"), sessionSampler(t, srv, "b")
	if a != b {
		t.Fatal("two sessions on graph g1 built separate samplers")
	}
	def, other := sessionSampler(t, srv, DefaultSessionID), sessionSampler(t, srv, "c")
	if def != other {
		t.Fatal("graph-less session did not share the default graph's sampler")
	}
	if a == def {
		t.Fatal("sessions on different graphs share one sampler")
	}
}

// TestMultiGraphConcurrentSessions drives sessions on three distinct
// graphs concurrently (run with -race): advances on one graph must not
// corrupt or block progress on another.
func TestMultiGraphConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	for i, n := range []int32{250, 350} {
		path, _ := writeCatalogGraph(t, n, uint64(31+i))
		name := fmt.Sprintf("cg%d", i)
		if _, err := c.CreateGraph(CreateGraphRequest{Name: name, GraphSpec: cliutil.GraphSpec{Path: path}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateSession(SessionSpec{ID: name + "-s", K: 2, Delta: 0.1, Graph: name}); err != nil {
			t.Fatal(err)
		}
	}

	ids := []string{"cg0-s", "cg1-s", DefaultSessionID}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sc := c.Session(id)
			if id == DefaultSessionID {
				sc = c
			}
			for i := 0; i < 5; i++ {
				if _, err := sc.Advance(400); err != nil {
					t.Errorf("%s advance: %v", id, err)
					return
				}
				if _, err := sc.Snapshot(); err != nil {
					t.Errorf("%s snapshot: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	for _, id := range ids {
		sc := c.Session(id)
		if id == DefaultSessionID {
			sc = c
		}
		st, err := sc.Status()
		if err != nil || st.NumRR != 2000 {
			t.Fatalf("%s final status = %+v (%v)", id, st, err)
		}
	}
}

func TestMaxLoadedGraphsLRUUnload(t *testing.T) {
	srv, ts := newCatalogServer(t, Config{MaxLoadedGraphs: 1})
	c := NewClient(ts.URL)

	p1, g1 := writeCatalogGraph(t, 250, 41)
	p2, _ := writeCatalogGraph(t, 260, 43)
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "lru1", GraphSpec: cliutil.GraphSpec{Path: p1}}); err != nil {
		t.Fatal(err)
	}
	// The default graph has no spec, so it can never be unloaded; lru1 is
	// over the cap but also the only unloadable graph, and it was just
	// registered (keep) — it stays.
	if got, _ := c.GetGraph("lru1"); !got.Loaded {
		t.Fatalf("lru1 unloaded immediately after registration: %+v", got)
	}

	// Registering lru2 pushes the idle lru1 out (LRU).
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "lru2", GraphSpec: cliutil.GraphSpec{Path: p2}}); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.GetGraph("lru1"); got.Loaded {
		t.Fatalf("lru1 still loaded past MaxLoadedGraphs: %+v", got)
	}
	if got, _ := c.GetGraph("lru2"); !got.Loaded {
		t.Fatalf("lru2 not resident after registration: %+v", got)
	}

	// Touching the unloaded graph reloads it transparently — and verifies
	// the reload against the recorded fingerprint — then the now-idle lru2
	// becomes the victim.
	if _, err := c.CreateSession(SessionSpec{ID: "s1", K: 2, Delta: 0.1, Graph: "lru1"}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GetGraph("lru1")
	if !got.Loaded || got.Fingerprint != g1.Fingerprint() {
		t.Fatalf("lru1 after reload = %+v", got)
	}
	if got, _ := c.GetGraph("lru2"); got.Loaded {
		t.Fatalf("lru2 survived the reload of lru1: %+v", got)
	}
	if st, err := c.Session("s1").Advance(300); err != nil || st.NumRR != 300 {
		t.Fatalf("session on reloaded graph: %+v (%v)", st, err)
	}

	// A graph with resident sessions is never a victim: deleting the
	// session frees lru1 for unload on the next pressure.
	if g := srv.lookupGraph("lru1"); g.loadedRefs.Load() == 0 {
		t.Fatal("resident session holds no loadedRefs")
	}
	if err := c.DeleteSession("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(SessionSpec{ID: "s2", K: 2, Delta: 0.1, Graph: "lru2"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.GetGraph("lru1"); got.Loaded {
		t.Fatalf("idle lru1 not unloaded under pressure: %+v", got)
	}
}

// TestMultiGraphChurn mixes graph LRU unload churn with PR 4's session
// eviction churn (run with -race): sessions across two registered graphs
// plus the default keep advancing while both eviction mechanisms cycle
// state in and out of memory.
func TestMultiGraphChurn(t *testing.T) {
	dir := t.TempDir()
	_, ts := newCatalogServer(t, Config{
		CheckpointDir:     dir,
		MaxLoadedSessions: 2,
		MaxLoadedGraphs:   1,
	})
	c := NewClient(ts.URL)

	var sessions []string
	for i := 0; i < 2; i++ {
		path, _ := writeCatalogGraph(t, 250, uint64(51+2*i))
		name := fmt.Sprintf("churn%d", i)
		if _, err := c.CreateGraph(CreateGraphRequest{Name: name, GraphSpec: cliutil.GraphSpec{Path: path}}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			id := fmt.Sprintf("%s-s%d", name, j)
			if _, err := c.CreateSession(SessionSpec{ID: id, K: 2, Delta: 0.1, Graph: name}); err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, id)
		}
	}

	var wg sync.WaitGroup
	for _, id := range sessions {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sc := c.Session(id)
			for i := 0; i < 6; i++ {
				if _, err := sc.Advance(200); err != nil && !isConflict(err) {
					t.Errorf("%s advance: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// Every session stays reachable (transparently reloading its graph as
	// needed) and every advance that returned 200 is accounted for.
	for _, id := range sessions {
		st, err := c.Session(id).Status()
		if err != nil {
			t.Fatalf("%s status after churn: %v", id, err)
		}
		if st.NumRR%200 != 0 || st.NumRR > 1200 {
			t.Fatalf("%s lost or duplicated work: %+v", id, st)
		}
	}
	list, err := c.ListGraphs()
	if err != nil || len(list) != 3 {
		t.Fatalf("graph list after churn = %+v (%v)", list, err)
	}
}

func TestAdoptCheckpointDirMultiGraph(t *testing.T) {
	dir := t.TempDir()
	p1, g1 := writeCatalogGraph(t, 250, 61)
	p2, g2 := writeCatalogGraph(t, 260, 63)

	srv1, ts1 := newCatalogServer(t, Config{CheckpointDir: dir})
	c1 := NewClient(ts1.URL)
	if _, err := c1.CreateGraph(CreateGraphRequest{Name: "alpha", GraphSpec: cliutil.GraphSpec{Path: p1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateGraph(CreateGraphRequest{Name: "beta", GraphSpec: cliutil.GraphSpec{Path: p2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateSession(SessionSpec{ID: "sa", K: 2, Delta: 0.1, Graph: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateSession(SessionSpec{ID: "sb", K: 2, Delta: 0.1, Graph: "beta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Session("sa").Advance(500); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Session("sb").Advance(700); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Shutdown(); err != nil { // final checkpoints for every session
		t.Fatal(err)
	}
	ts1.Close()

	// The restarted daemon knows nothing about alpha/beta — adoption must
	// re-register both from the specs recorded in the OPIMS3 checkpoints.
	srv2, ts2 := newCatalogServer(t, Config{CheckpointDir: dir})
	adopted, err := srv2.AdoptCheckpointDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 2 || adopted[0] != "sa" || adopted[1] != "sb" {
		t.Fatalf("adopted = %v", adopted)
	}
	c2 := NewClient(ts2.URL)
	ga, err := c2.GetGraph("alpha")
	if err != nil || ga.Fingerprint != g1.Fingerprint() || ga.Sessions != 1 {
		t.Fatalf("alpha after adoption = %+v (%v)", ga, err)
	}
	gb, err := c2.GetGraph("beta")
	if err != nil || gb.Fingerprint != g2.Fingerprint() || gb.Sessions != 1 {
		t.Fatalf("beta after adoption = %+v (%v)", gb, err)
	}
	// Adopted sessions resumed on the right graphs with their progress.
	sta, err := c2.Session("sa").Status()
	if err != nil || sta.NumRR != 500 || sta.Graph != "alpha" || sta.GraphFingerprint != g1.Fingerprint() {
		t.Fatalf("sa after adoption = %+v (%v)", sta, err)
	}
	stb, err := c2.Session("sb").Status()
	if err != nil || stb.NumRR != 700 || stb.Graph != "beta" {
		t.Fatalf("sb after adoption = %+v (%v)", stb, err)
	}
	// The adopted session shares the catalog's sampler, not a private one.
	if sessionSampler(t, srv2, "sa") != srv2.lookupGraph("alpha").sampler {
		t.Fatal("adopted session does not share the catalog sampler")
	}
	if _, err := c2.Session("sa").Advance(100); err != nil {
		t.Fatal(err)
	}
}

// TestAdoptRejectsMismatchedGraph forges the failure OPIMS3 exists to
// catch: a daemon restarted against a reweighted variant of the dataset
// (same node count — the pre-fingerprint check passed this) must refuse
// the checkpoint loudly instead of resuming with corrupt guarantees.
func TestAdoptRejectsMismatchedGraph(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newCatalogServer(t, Config{CheckpointDir: dir})
	c1 := NewClient(ts1.URL)
	if _, err := c1.CreateSession(SessionSpec{ID: "x", K: 2, Delta: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Session("x").Advance(300); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second daemon: same topology, uniform-reweighted probabilities.
	g, err := gen.PreferentialAttachment(500, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.Uniform, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := core.NewOnline(rrset.NewSampler(g, diffusion.IC), core.Options{K: 5, Delta: 0.05, Variant: core.Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(session, Config{Batch: 500, CheckpointDir: dir})
	defer srv2.Stop()
	if _, err := srv2.AdoptCheckpointDir(); !errors.Is(err, core.ErrGraphMismatch) {
		t.Fatalf("adoption on reweighted graph: err = %v, want ErrGraphMismatch", err)
	}
}

// TestGraphReloadDetectsChangedFile: a registered file edited on disk must
// fail the fingerprint re-check when the graph reloads after an unload.
func TestGraphReloadDetectsChangedFile(t *testing.T) {
	srv, ts := newTestServer(t, 0)
	c := NewClient(ts.URL)

	path, _ := writeCatalogGraph(t, 250, 71)
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "mut", GraphSpec: cliutil.GraphSpec{Path: path}}); err != nil {
		t.Fatal(err)
	}
	e := srv.lookupGraph("mut")
	if !srv.unloadGraph(e) {
		t.Fatal("idle graph refused to unload")
	}

	// Overwrite the file with a different graph (same name, new content).
	other, err := gen.PreferentialAttachment(250, 6, 0.15, 99)
	if err != nil {
		t.Fatal(err)
	}
	other, err = graph.Reweight(other, graph.WeightedCascade, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, other); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = c.CreateSession(SessionSpec{ID: "s", K: 2, Delta: 0.1, Graph: "mut"})
	if err == nil || !strings.Contains(err.Error(), "changed on disk") {
		t.Fatalf("session on changed graph: err = %v, want changed-on-disk refusal", err)
	}
}
