package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/fleet"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// End-to-end server↔fleet integration: the daemon's Generator seam. The
// determinism contract means every test can use one oracle — a plain
// local server — and demand exact equality.

func fleetTestSampler(t *testing.T) *rrset.Sampler {
	t.Helper()
	g, err := gen.PreferentialAttachment(400, 6, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rrset.NewSampler(g, diffusion.IC)
}

func newFleetServer(t *testing.T, gen core.Generator) *httptest.Server {
	t.Helper()
	sampler := fleetTestSampler(t)
	session, err := core.NewOnline(sampler, core.Options{K: 5, Delta: 0.05, Variant: core.Plus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(session, Config{Batch: 500, MaxRR: 1 << 20, Generator: gen})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		ts.Close()
	})
	return ts
}

func advanceAndSnapshot(t *testing.T, url string, count int) (Status, SnapshotResponse) {
	t.Helper()
	st := postJSON[Status](t, fmt.Sprintf("%s/advance?count=%d", url, count))
	return st, getJSON[SnapshotResponse](t, url+"/snapshot")
}

// TestAdvanceDegradedZeroWorkers: a server whose Generator is a fleet
// with no reachable workers must still answer /advance with 200 and the
// exact same results as a purely local server — graceful degradation is
// invisible except in metrics and logs.
func TestAdvanceDegradedZeroWorkers(t *testing.T) {
	local := newFleetServer(t, nil)
	wantSt, wantSnap := advanceAndSnapshot(t, local.URL, 3000)

	empty := fleet.NewCoordinator(fleet.Config{Logf: func(string, ...any) {}})
	degraded := newFleetServer(t, empty)
	gotSt, gotSnap := advanceAndSnapshot(t, degraded.URL, 3000)

	if gotSt.NumRR != wantSt.NumRR || gotSt.EdgesExamined != wantSt.EdgesExamined {
		t.Fatalf("degraded status %+v, want %+v", gotSt, wantSt)
	}
	if fmt.Sprint(gotSnap.Seeds) != fmt.Sprint(wantSnap.Seeds) || gotSnap.Alpha != wantSnap.Alpha {
		t.Fatalf("degraded snapshot %v/%v, want %v/%v", gotSnap.Seeds, gotSnap.Alpha, wantSnap.Seeds, wantSnap.Alpha)
	}

	// An unreachable (not merely empty) fleet behaves the same.
	dead := fleet.NewCoordinator(fleet.Config{
		Workers:    []string{"http://127.0.0.1:1"},
		RPCTimeout: 500 * time.Millisecond,
		Logf:       func(string, ...any) {},
	})
	deadSrv := newFleetServer(t, dead)
	gotSt, gotSnap = advanceAndSnapshot(t, deadSrv.URL, 3000)
	if gotSt.NumRR != wantSt.NumRR || fmt.Sprint(gotSnap.Seeds) != fmt.Sprint(wantSnap.Seeds) {
		t.Fatalf("unreachable-fleet results diverged: %+v, %v", gotSt, gotSnap.Seeds)
	}
}

// TestAdvanceThroughWorkerFleet: a server generating through two real
// fleet workers answers /advance with results identical to local
// sampling, and the created-session path inherits the Generator too.
func TestAdvanceThroughWorkerFleet(t *testing.T) {
	local := newFleetServer(t, nil)
	wantSt, wantSnap := advanceAndSnapshot(t, local.URL, 3000)

	// Two worker processes, each holding its own replica (same spec ⇒
	// same fingerprint as the server's graph).
	urls := make([]string, 2)
	for i := range urls {
		w := fleet.NewWorker(fleetTestSampler(t))
		ws := httptest.NewServer(w)
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	coord := fleet.NewCoordinator(fleet.Config{
		Workers:   urls,
		ChunkSize: 500,
		Logf:      func(string, ...any) {},
	})
	fleetSrv := newFleetServer(t, coord)
	gotSt, gotSnap := advanceAndSnapshot(t, fleetSrv.URL, 3000)

	if gotSt.NumRR != wantSt.NumRR || gotSt.EdgesExamined != wantSt.EdgesExamined {
		t.Fatalf("fleet status %+v, want %+v", gotSt, wantSt)
	}
	if fmt.Sprint(gotSnap.Seeds) != fmt.Sprint(wantSnap.Seeds) || gotSnap.Alpha != wantSnap.Alpha {
		t.Fatalf("fleet snapshot %v/%v, want %v/%v", gotSnap.Seeds, gotSnap.Alpha, wantSnap.Seeds, wantSnap.Alpha)
	}
}
