package server

// Graph catalog: graphs are first-class, named, content-addressed
// resources. Each catalog entry pins one (graph, diffusion model) pair
// behind one shared rrset.Sampler, so N sessions on the same dataset share
// a single alias-table build and RR generation structure. Entries are
// reference-counted two ways: `sessions` counts every registered session
// naming the graph (DELETE /graphs/{name} answers 409 while it is
// non-zero), and `loadedRefs` counts sessions currently resident in
// memory — only a graph with zero loadedRefs may be unloaded. With
// Config.MaxLoadedGraphs set, idle graphs are LRU-unloaded (mirroring PR
// 4's session eviction, but without a disk write: a graph reloads from its
// GraphSpec) and transparently reloaded on the next session touch, with
// the reloaded content verified against the entry's recorded fingerprint
// so a dataset edited on disk surfaces as a loud error, never as silently
// different guarantees.
//
// Lock order: sess.mu → entry.mu → gmu (the catalog table lock). gmu is
// never held across a graph load or any entry.mu acquisition.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/fsutil"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// DefaultGraphName names the graph registered from opimd's startup flags;
// sessions that do not name a graph run on it.
const DefaultGraphName = "default"

// Graph-catalog metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	gGraphsLoaded    = obs.Default().Gauge("server_graphs_loaded")
	mGraphLoadTime   = obs.Default().Timer("server_graph_load_seconds")
	mGraphUnloadTime = obs.Default().Timer("server_graph_unload_seconds")
)

// graphIdent is a graph entry's current identity — content fingerprint,
// position on the epoch chain, and dimensions — published through an
// atomic pointer so /status and listings read it lock-free while a
// mutation batch advances it.
type graphIdent struct {
	fingerprint string
	epoch       int64
	lineage     string
	n           int32
	m           int64
}

// graphEntry is one catalog slot. The static fields (name, spec,
// specString, fingerprint) are immutable after the entry is published, so
// they are readable without any lock; the current identity lives in ident
// (lock-free reads); the residency fields (g, sampler) and the epoch
// chain (history, lineages) transition under mu.
type graphEntry struct {
	name       string
	spec       cliutil.GraphSpec
	specString string // "" = not reloadable (graph handed to New without a spec)

	// fingerprint is the BASE (epoch-0) content hash, recorded at first
	// load and sticky across unload: a reload whose recomputed base
	// fingerprint differs (the file changed on disk) is refused. The
	// current epoch's fingerprint lives in ident.
	fingerprint string

	// ident is the entry's current identity; replaced wholesale when a
	// mutation batch lands.
	ident atomic.Pointer[graphIdent]

	// mu guards the residency transition (g/sampler nil ↔ non-nil) and
	// makes loadedRefs increments atomic with the load, so an unload
	// checking loadedRefs==0 under mu can never race a session acquiring
	// the sampler.
	mu      sync.Mutex
	g       *graph.Graph   // nil while unloaded
	sampler *rrset.Sampler // nil while unloaded

	// The epoch chain, guarded by mu: history[i] advanced epoch
	// baseEpoch+i, lineages[i] is the chain hash at epoch baseEpoch+i
	// (len(lineages) == len(history)+1; lineages[0] == fingerprint while
	// baseEpoch is 0). Stale checkpoints are verified against — and caught
	// up with — this. After journal compaction baseEpoch is the snapshot's
	// epoch and snapFP its content fingerprint: reloads then start from
	// the snapshot file instead of replaying the full chain from the spec.
	history   [][]graph.Mutation
	lineages  []string
	baseEpoch int64
	snapFP    string

	// mutating serializes mutation batches: one at a time per graph, and
	// engine-touching session requests answer 409 while it is set.
	mutating atomic.Bool

	isLoaded atomic.Bool // mirror of sampler != nil, for lock-free listing

	// sessions counts registered sessions naming this graph (loaded or
	// not); DELETE is refused while non-zero.
	sessions atomic.Int64
	// loadedRefs counts resident sessions using sampler; unload requires 0.
	loadedRefs atomic.Int64

	// lastTouch orders LRU unload; guarded by the server's gmu.
	lastTouch int64
}

// lookupGraph returns the entry (nil if unknown).
func (s *Server) lookupGraph(name string) *graphEntry {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	return s.graphs[name]
}

// touchGraph marks e most-recently-used for LRU unload.
func (s *Server) touchGraph(e *graphEntry) {
	s.gmu.Lock()
	s.gtouchSeq++
	e.lastTouch = s.gtouchSeq
	s.gmu.Unlock()
}

// graphForSession resolves the graph a new session names and counts the
// session against it — under gmu, so a concurrent DELETE either misses the
// increment and 409s, or wins and the lookup 404s; a session can never be
// created on a graph that is mid-delete.
func (s *Server) graphForSession(name string) (*graphEntry, int, error) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	e := s.graphs[name]
	if e == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown graph %q (register it via POST /graphs)", name)
	}
	e.sessions.Add(1)
	return e, 0, nil
}

// acquireGraph returns e's shared sampler for a session about to become
// resident, loading the graph from its spec first when it was unloaded.
// The loadedRefs increment happens under e.mu, atomically with the load.
// Every successful acquire must be paired with a releaseGraph.
func (s *Server) acquireGraph(e *graphEntry) (*rrset.Sampler, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sampler == nil {
		if e.specString == "" {
			return nil, fmt.Errorf("graph %q was unloaded and has no spec to reload from", e.name)
		}
		t0 := time.Now()
		g, model, err := e.spec.Load()
		if err != nil {
			return nil, fmt.Errorf("reloading graph %q (%s): %w", e.name, e.specString, err)
		}
		if fp := g.Fingerprint(); fp != e.fingerprint {
			return nil, fmt.Errorf("graph %q changed on disk: spec %q now fingerprints %s, catalog recorded %s",
				e.name, e.specString, fp, e.fingerprint)
		}
		if e.baseEpoch > 0 {
			// The journal was compacted: the chain before baseEpoch is gone,
			// so the reload starts from the compaction snapshot (verified
			// against its recorded fingerprint) rather than the spec's base.
			snapPath := MutationSnapshotPath(s.cfg.CheckpointDir, e.name, e.baseEpoch)
			snap, err := readGraphSnapshot(snapPath, e.snapFP)
			if err != nil {
				return nil, fmt.Errorf("reloading graph %q: %w", e.name, err)
			}
			if err := snap.AdoptEpochIdentity(e.baseEpoch, e.lineages[0]); err != nil {
				return nil, fmt.Errorf("reloading graph %q: %w", e.name, err)
			}
			g = snap
		}
		// Re-walk the epoch chain: the recorded history advances the base
		// (or snapshot) graph back to the current epoch, and each step
		// re-verifies its chained lineage.
		for i, ms := range e.history {
			ng, err := g.WithMutations(ms)
			if err != nil {
				return nil, fmt.Errorf("reloading graph %q: replaying mutation batch %d: %w", e.name, i, err)
			}
			if ng.EpochLineage() != e.lineages[i+1] {
				return nil, fmt.Errorf("reloading graph %q: batch %d replays to lineage %s, chain recorded %s",
					e.name, i, ng.EpochLineage(), e.lineages[i+1])
			}
			g = ng
		}
		e.g, e.sampler = g, rrset.NewSampler(g, model)
		e.isLoaded.Store(true)
		gGraphsLoaded.Set(float64(s.loadedGraphs.Add(1)))
		mGraphLoadTime.Observe(time.Since(t0))
		obs.Emit(s.cfg.Events, "graph_load", map[string]any{
			"graph":             e.name,
			"graph_fingerprint": e.fingerprint,
			"reload":            true,
		})
	}
	e.loadedRefs.Add(1)
	s.touchGraph(e)
	return e.sampler, nil
}

// releaseGraph undoes one acquireGraph (the session left memory).
func (s *Server) releaseGraph(e *graphEntry) {
	e.loadedRefs.Add(-1)
	s.touchGraph(e)
}

// newGraphEntry builds a loaded catalog slot for g at the epoch glog
// replays to. baseFP is the epoch-0 content fingerprint (the spec-reload
// verification anchor); glog supplies the chain walked so far.
func newGraphEntry(name string, spec cliutil.GraphSpec, baseFP string, g *graph.Graph, sampler *rrset.Sampler, glog *GraphLog) *graphEntry {
	e := &graphEntry{
		name:        name,
		spec:        spec,
		specString:  spec.String(),
		fingerprint: baseFP,
		g:           g,
		sampler:     sampler,
		history:     glog.History,
		lineages:    glog.Lineages,
		baseEpoch:   g.Epoch() - int64(len(glog.History)),
		snapFP:      glog.SnapshotFP,
	}
	e.ident.Store(&graphIdent{
		fingerprint: g.Fingerprint(),
		epoch:       g.Epoch(),
		lineage:     g.EpochLineage(),
		n:           g.N(),
		m:           g.M(),
	})
	e.isLoaded.Store(true)
	return e
}

// registerGraph loads spec and publishes it under name. The returned
// status is the HTTP code for the failure (400 invalid, 409 name taken).
func (s *Server) registerGraph(name string, spec cliutil.GraphSpec) (*graphEntry, int, error) {
	if !sessionIDRe.MatchString(name) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("graph name %q invalid (want [A-Za-z0-9][A-Za-z0-9._-]*, at most 64 chars)", name)
	}
	if err := spec.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Cheap duplicate check before the expensive load; the insert below
	// re-checks, so a racing duplicate registration still loses cleanly.
	if s.lookupGraph(name) != nil {
		return nil, http.StatusConflict, fmt.Errorf("graph %q already exists", name)
	}
	t0 := time.Now()
	g, model, err := spec.Load()
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("loading graph %q: %w", name, err)
	}
	baseFP := g.Fingerprint()
	glog := &GraphLog{Lineages: []string{g.EpochLineage()}}
	if s.cfg.CheckpointDir != "" {
		// A journal left by a previous run replays the graph forward to the
		// epoch its sessions last checkpointed against.
		if g, glog, err = ReplayMutationLog(s.cfg.CheckpointDir, name, g); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	e := newGraphEntry(name, spec, baseFP, g, rrset.NewSampler(g, model), glog)
	s.gmu.Lock()
	if _, taken := s.graphs[name]; taken {
		s.gmu.Unlock()
		return nil, http.StatusConflict, fmt.Errorf("graph %q already exists", name)
	}
	s.graphs[name] = e
	s.gtouchSeq++
	e.lastTouch = s.gtouchSeq
	s.gmu.Unlock()
	gGraphsLoaded.Set(float64(s.loadedGraphs.Add(1)))
	mGraphLoadTime.Observe(time.Since(t0))
	obs.Emit(s.cfg.Events, "graph_load", map[string]any{
		"graph":             e.name,
		"graph_fingerprint": e.fingerprint,
		"reload":            false,
	})
	s.maybeUnloadGraphs(e)
	return e, 0, nil
}

// ensureGraph returns the registered entry for name, registering it from
// specString when absent — the adoption path for checkpoints whose graph
// the restarted daemon has not seen yet.
func (s *Server) ensureGraph(name, specString string) (*graphEntry, error) {
	if e := s.lookupGraph(name); e != nil {
		return e, nil
	}
	if specString == "" {
		return nil, fmt.Errorf("graph %q is not registered and the checkpoint records no spec to load it from", name)
	}
	spec, err := cliutil.ParseGraphSpec(specString)
	if err != nil {
		return nil, fmt.Errorf("graph %q: checkpoint records unusable spec: %w", name, err)
	}
	e, status, rerr := s.registerGraph(name, spec)
	if rerr != nil {
		if status == http.StatusConflict { // raced another adoption of the same graph
			if e := s.lookupGraph(name); e != nil {
				return e, nil
			}
		}
		return nil, rerr
	}
	return e, nil
}

// removeGraph unregisters name and drops its residency. The returned
// status is the HTTP failure code: 400 for the default graph, 404 unknown,
// 409 while sessions reference it.
func (s *Server) removeGraph(name string) (int, error) {
	if name == DefaultGraphName {
		return http.StatusBadRequest, fmt.Errorf("cannot delete the default graph (the legacy flags and sessions without a graph field use it)")
	}
	s.gmu.Lock()
	e := s.graphs[name]
	if e == nil {
		s.gmu.Unlock()
		return http.StatusNotFound, fmt.Errorf("unknown graph %q", name)
	}
	if n := e.sessions.Load(); n > 0 {
		s.gmu.Unlock()
		return http.StatusConflict, fmt.Errorf("graph %q is referenced by %d session(s); delete them first", name, n)
	}
	delete(s.graphs, name)
	s.gmu.Unlock()
	e.mu.Lock()
	if e.sampler != nil {
		e.g, e.sampler = nil, nil
		e.isLoaded.Store(false)
		gGraphsLoaded.Set(float64(s.loadedGraphs.Add(-1)))
	}
	e.mu.Unlock()
	if s.cfg.CheckpointDir != "" {
		// The epoch chain dies with the graph: a future graph under the same
		// name starts a fresh journal instead of failing replay against this
		// one's base fingerprint. Compaction snapshots and the previous
		// journal generation go with it.
		os.Remove(MutationLogPath(s.cfg.CheckpointDir, name))                     //nolint:errcheck
		os.Remove(MutationLogPath(s.cfg.CheckpointDir, name) + fsutil.PrevSuffix) //nolint:errcheck
		for _, p := range graphSnapshotPaths(s.cfg.CheckpointDir, name) {
			os.Remove(p) //nolint:errcheck
		}
	}
	return 0, nil
}

// maybeUnloadGraphs enforces MaxLoadedGraphs: while too many graphs are
// resident it drops the least-recently-used idle one (zero loadedRefs,
// reloadable spec, never keep). Unlike session eviction there is no disk
// write — the graph reloads from its spec — so no evicting state is
// needed; a victim that gains a reference between pick and unload is
// simply skipped.
func (s *Server) maybeUnloadGraphs(keep *graphEntry) {
	if s.cfg.MaxLoadedGraphs <= 0 {
		return
	}
	var skip map[*graphEntry]bool
	for {
		victim := s.pickUnloadVictim(keep, skip)
		if victim == nil {
			return
		}
		if !s.unloadGraph(victim) {
			if skip == nil {
				skip = make(map[*graphEntry]bool)
			}
			skip[victim] = true
		}
	}
}

func (s *Server) pickUnloadVictim(keep *graphEntry, skip map[*graphEntry]bool) *graphEntry {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if int(s.loadedGraphs.Load()) <= s.cfg.MaxLoadedGraphs {
		return nil
	}
	var victim *graphEntry
	for _, e := range s.graphs {
		if e == keep || skip[e] || e.specString == "" || !e.isLoaded.Load() || e.loadedRefs.Load() != 0 {
			continue
		}
		if victim == nil || e.lastTouch < victim.lastTouch {
			victim = e
		}
	}
	return victim
}

// unloadGraph drops e's graph and sampler if it is still idle, reporting
// whether it is unloaded afterwards.
func (s *Server) unloadGraph(e *graphEntry) bool {
	e.mu.Lock()
	if e.sampler == nil {
		e.mu.Unlock()
		return true
	}
	if e.loadedRefs.Load() != 0 {
		e.mu.Unlock()
		return false
	}
	t0 := time.Now()
	e.g, e.sampler = nil, nil
	e.isLoaded.Store(false)
	e.mu.Unlock()
	gGraphsLoaded.Set(float64(s.loadedGraphs.Add(-1)))
	mGraphUnloadTime.Observe(time.Since(t0))
	obs.Emit(s.cfg.Events, "graph_unload", map[string]any{
		"graph":             e.name,
		"graph_fingerprint": e.fingerprint,
	})
	return true
}

// CreateGraphRequest is the POST /graphs request body: a name plus a
// cliutil.GraphSpec, whose fields (path, profile, scale, weights, seed,
// model) inline verbatim into the JSON object.
type CreateGraphRequest struct {
	// Name registers the graph ([A-Za-z0-9][A-Za-z0-9._-]*, ≤ 64 chars).
	Name string `json:"name"`
	cliutil.GraphSpec
}

// GraphInfo describes one catalog entry in /graphs responses.
type GraphInfo struct {
	Name string `json:"name"`
	// Spec is the canonical GraphSpec string the graph (re)loads from;
	// empty when the graph was handed to the server without one.
	Spec string `json:"spec,omitempty"`
	// Fingerprint is the current epoch's content hash (graph.Fingerprint).
	Fingerprint string `json:"graph_fingerprint"`
	// Epoch counts applied mutation batches; Lineage is the epoch-chain
	// hash identifying this graph's exact mutation history.
	Epoch   int64  `json:"epoch"`
	Lineage string `json:"lineage"`
	N       int32  `json:"n"`
	M       int64  `json:"m"`
	// Loaded reports residency; an unloaded graph reloads transparently on
	// the next session touch.
	Loaded bool `json:"loaded"`
	// Sessions counts registered sessions on this graph; DELETE requires 0.
	Sessions int64 `json:"sessions"`
}

// GraphListResponse is the GET /graphs response body.
type GraphListResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

func graphInfo(e *graphEntry) GraphInfo {
	id := e.ident.Load()
	return GraphInfo{
		Name:        e.name,
		Spec:        e.specString,
		Fingerprint: id.fingerprint,
		Epoch:       id.epoch,
		Lineage:     id.lineage,
		N:           id.n,
		M:           id.m,
		Loaded:      e.isLoaded.Load(),
		Sessions:    e.sessions.Load(),
	}
}

// handleGraphs serves the catalog collection: GET lists, POST registers.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.gmu.Lock()
		entries := make([]*graphEntry, 0, len(s.graphs))
		for _, e := range s.graphs {
			entries = append(entries, e)
		}
		s.gmu.Unlock()
		resp := GraphListResponse{Graphs: make([]GraphInfo, 0, len(entries))}
		for _, e := range entries {
			resp.Graphs = append(resp.Graphs, graphInfo(e))
		}
		sort.Slice(resp.Graphs, func(i, j int) bool { return resp.Graphs[i].Name < resp.Graphs[j].Name })
		writeJSON(w, resp)
	case http.MethodPost:
		var req CreateGraphRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
			return
		}
		e, status, err := s.registerGraph(req.Name, req.GraphSpec)
		if err != nil {
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, graphInfo(e))
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// handleGraphByName serves one catalog entry: GET describes, DELETE
// unregisters (409 while sessions reference it).
func (s *Server) handleGraphByName(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet:
		e := s.lookupGraph(name)
		if e == nil {
			http.Error(w, fmt.Sprintf("unknown graph %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, graphInfo(e))
	case http.MethodDelete:
		if status, err := s.removeGraph(name); err != nil {
			s.replyError(w, status, err.Error())
			return
		}
		writeJSON(w, map[string]string{"deleted": name})
	default:
		http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
	}
}
