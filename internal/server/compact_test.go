package server

// Journal-compaction coverage: once the mutation journal holds
// JournalCompactEvery entries it collapses into an OPIMG2 snapshot plus a
// rewritten single-header journal; replay from the snapshot reproduces
// the exact epoch chain, checkpoints predating the snapshot are refused
// loudly, current checkpoints resume, and an unloaded graph reloads
// through the snapshot (not the full from-base replay).

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/cliutil"
	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

// setWeightBatches applies one set_weight batch per value to the named
// graph's first edge and returns the applied mutations plus the final
// update response.
func setWeightBatches(t *testing.T, c *Client, name string, g *graph.Graph, ps []float32) ([][]graph.Mutation, UpdateGraphResponse) {
	t.Helper()
	e := firstEdge(t, g)
	var applied [][]graph.Mutation
	var last UpdateGraphResponse
	for _, p := range ps {
		up, err := c.UpdateGraph(name, []GraphUpdate{{Op: "set_weight", From: e.From, To: e.To, P: p}})
		if err != nil {
			t.Fatal(err)
		}
		applied = append(applied, []graph.Mutation{{Op: graph.OpSetWeight, From: e.From, To: e.To, P: p}})
		last = up
	}
	return applied, last
}

func TestJournalCompaction(t *testing.T) {
	sampler := robustSampler(t)
	dir := t.TempDir()
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: dir, JournalCompactEvery: 3})
	c := NewClient(ts.URL)

	if _, err := c.Advance(500); err != nil {
		t.Fatal(err)
	}
	// This checkpoint is at epoch 0; the compaction below truncates the
	// chain past it.
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	before := counters(t).Counters["server_journal_compactions_total"]
	applied, last := setWeightBatches(t, c, DefaultGraphName, sampler.Graph(), []float32{0.11, 0.22, 0.33, 0.44})
	if last.Epoch != 4 {
		t.Fatalf("epoch after 4 batches = %d", last.Epoch)
	}
	if after := counters(t).Counters["server_journal_compactions_total"]; after != before+1 {
		t.Fatalf("journal_compactions_total = %d, want %d (compaction at the 3rd batch)", after, before+1)
	}
	if _, err := os.Stat(MutationSnapshotPath(dir, DefaultGraphName, 3)); err != nil {
		t.Fatalf("compaction snapshot missing: %v", err)
	}
	// The live session keeps advancing across the compaction.
	if _, err := c.Advance(500); err != nil {
		t.Fatal(err)
	}

	// Replay from disk, the way a restart does: the snapshot supplies
	// epochs 0–3, the rewritten journal epoch 4.
	base := robustSampler(t).Graph()
	g2, glog, err := ReplayMutationLog(dir, DefaultGraphName, base)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Epoch() != 4 || g2.EpochLineage() != last.Lineage {
		t.Fatalf("replayed graph at epoch %d lineage %.12s, live graph at 4/%.12s", g2.Epoch(), g2.EpochLineage(), last.Lineage)
	}
	if glog.BaseEpoch != 3 || glog.Epochs() != 1 || glog.SnapshotFP == "" {
		t.Fatalf("replayed log = {BaseEpoch:%d Epochs:%d SnapshotFP:%q}, want base 3 with one entry", glog.BaseEpoch, glog.Epochs(), glog.SnapshotFP)
	}

	// The epoch-0 checkpoint now predates the snapshot: refused loudly.
	sampler2 := rrset.NewSampler(g2, diffusion.IC)
	_, _, _, _, err = LoadCheckpointMetaLog(dir+"/default.ck", sampler2, glog)
	if !errors.Is(err, core.ErrGraphMismatch) || !strings.Contains(err.Error(), "outside the journaled chain") {
		t.Fatalf("pre-compaction checkpoint resume error = %v, want a loud outside-the-chain refusal", err)
	}

	// A current checkpoint resumes cleanly against the replayed graph.
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	def, _, _, regen, err := LoadCheckpointMetaLog(dir+"/default.ck", sampler2, glog)
	if err != nil || regen != 0 || def.NumRR() != 1000 {
		t.Fatalf("current checkpoint resume: num_rr=%d regen=%d err=%v", def.NumRR(), regen, err)
	}

	// The repaired live session is byte-identical to a fresh run on the
	// final graph — compaction changed durability bookkeeping, not state.
	gm := sampler.Graph()
	for _, ms := range applied {
		if gm, err = gm.WithMutations(ms); err != nil {
			t.Fatal(err)
		}
	}
	if got := saveBytes(t, srv, DefaultSessionID); !bytes.Equal(got,
		refBytes(t, gm, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9}, 1000)) {
		t.Fatal("session across a journal compaction is not byte-identical to a fresh run on the final graph")
	}
}

// TestCompactedGraphReloadFromSnapshot: after compaction an unloaded
// catalog graph reloads through the snapshot (the pre-snapshot chain is
// gone), re-verifying the snapshot's fingerprint — and a corrupted
// snapshot file fails the reload loudly.
func TestCompactedGraphReloadFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newCkServer(t, robustSampler(t), Config{Batch: 500, CheckpointDir: dir, JournalCompactEvery: 2})
	c := NewClient(ts.URL)

	path, cg := writeCatalogGraph(t, 250, 71)
	if _, err := c.CreateGraph(CreateGraphRequest{Name: "cg", GraphSpec: cliutil.GraphSpec{Path: path}}); err != nil {
		t.Fatal(err)
	}
	_, last := setWeightBatches(t, c, "cg", cg, []float32{0.4, 0.6})

	entry := srv.lookupGraph("cg")
	entry.mu.Lock()
	baseEpoch, snapFP := entry.baseEpoch, entry.snapFP
	entry.mu.Unlock()
	if baseEpoch != 2 || snapFP == "" {
		t.Fatalf("entry after compaction: baseEpoch=%d snapFP=%q, want the snapshot identity", baseEpoch, snapFP)
	}
	if !srv.unloadGraph(entry) {
		t.Fatal("idle graph refused to unload")
	}

	// The next session touch reloads: base from the spec, then the
	// snapshot, then (empty) history — ending at the live identity.
	if _, err := c.CreateSession(SessionSpec{ID: "s1", K: 3, Delta: 0.05, Seed: 7, Graph: "cg"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session("s1").Advance(400); err != nil {
		t.Fatal(err)
	}
	entry.mu.Lock()
	g := entry.g
	entry.mu.Unlock()
	if g == nil || g.Epoch() != 2 || g.EpochLineage() != last.Lineage {
		t.Fatalf("reloaded graph identity = %v, want epoch 2 lineage %.12s", g, last.Lineage)
	}

	// Corrupt the snapshot: the reload must refuse, not silently diverge.
	if err := c.DeleteSession("s1"); err != nil {
		t.Fatalf("deleting session: %v", err)
	}
	if !srv.unloadGraph(entry) {
		t.Fatal("graph refused second unload")
	}
	snapPath := MutationSnapshotPath(dir, "cg", 2)
	if err := os.WriteFile(snapPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreateSession(SessionSpec{ID: "s2", K: 3, Delta: 0.05, Seed: 7, Graph: "cg"})
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("session on corrupted snapshot: err = %v, want a loud snapshot failure", err)
	}
}
