package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/faultinject"
	"github.com/reprolab/opim/internal/fsutil"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// robustSampler builds the shared sampler for the checkpoint/chaos tests;
// a fixed graph seed so every session in a test sees the same instance.
func robustSampler(t *testing.T) *rrset.Sampler {
	t.Helper()
	g, err := gen.PreferentialAttachment(400, 5, 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rrset.NewSampler(g, diffusion.IC)
}

func robustSession(t *testing.T, sampler *rrset.Sampler) *core.Online {
	t.Helper()
	session, err := core.NewOnline(sampler, core.Options{K: 4, Delta: 0.05, Variant: core.Plus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return session
}

func newCkServer(t *testing.T, sampler *rrset.Sampler, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(robustSession(t, sampler), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Stop()
		srv.stopCheckpointer()
		ts.Close()
	})
	return srv, ts
}

func counters(t *testing.T) obs.Snapshot {
	t.Helper()
	return obs.Default().Snapshot()
}

func TestCheckpointEndpointRoundTrip(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")
	_, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointPath: path})
	before := counters(t)

	postJSON[Status](t, ts.URL+"/advance?count=1000")
	c := NewClient(ts.URL)
	resp, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Path != path || resp.NumRR != 1000 || resp.Bytes <= 0 {
		t.Fatalf("checkpoint response %+v", resp)
	}

	restored, src, err := LoadCheckpoint(path, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if src != path || restored.NumRR() != 1000 {
		t.Fatalf("restored from %s with num_rr=%d", src, restored.NumRR())
	}

	after := counters(t)
	if d := after.Counters["server_checkpoint_writes_total"] - before.Counters["server_checkpoint_writes_total"]; d != 1 {
		t.Fatalf("checkpoint writes advanced by %d, want 1", d)
	}
	if d := after.Counters["server_checkpoint_bytes_total"] - before.Counters["server_checkpoint_bytes_total"]; d != resp.Bytes {
		t.Fatalf("checkpoint bytes advanced by %d, response said %d", d, resp.Bytes)
	}
	if after.Timers["server_checkpoint_seconds"].Count < 1 {
		t.Fatal("server_checkpoint_seconds never observed")
	}
}

func TestCheckpointNotConfigured(t *testing.T) {
	sampler := robustSampler(t)
	_, ts := newCkServer(t, sampler, Config{Batch: 500})
	resp, err := http.Post(ts.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint without config: status %d, want 404", resp.StatusCode)
	}
}

// TestKillResumeByteIdentical is the persist.go determinism invariant at
// the server layer: SIGKILL (simulated by abandoning the server without
// any graceful teardown) after a checkpoint, resume from disk, and the
// resumed session's next snapshot must be byte-identical to a run that
// never crashed.
func TestKillResumeByteIdentical(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")

	// Run A: advance 1200, checkpoint, advance 400 more that the "crash"
	// loses, then die without any shutdown path.
	srvA, tsA := newCkServer(t, sampler, Config{Batch: 500, CheckpointPath: path})
	postJSON[Status](t, tsA.URL+"/advance?count=1200")
	if _, err := srvA.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	postJSON[Status](t, tsA.URL+"/advance?count=400")
	tsA.Close() // SIGKILL: no Stop, no final checkpoint

	// Run B: resume. The 400 post-checkpoint sets are gone; the stream
	// replays them exactly.
	sessionB, src, err := LoadCheckpoint(path, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if src != path || sessionB.NumRR() != 1200 {
		t.Fatalf("resumed from %s with num_rr=%d, want 1200 from the checkpoint", src, sessionB.NumRR())
	}
	srvB := New(sessionB, Config{Batch: 500})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	postJSON[Status](t, tsB.URL+"/advance?count=800")
	gotSnap := getJSON[SnapshotResponse](t, tsB.URL+"/snapshot")

	// Reference: the same session that never crashed.
	ref := robustSession(t, sampler)
	ref.SetGraphIdentity(DefaultGraphName, "")
	ref.Advance(2000)
	wantSnap := ref.Snapshot()

	if gotSnap.Alpha != wantSnap.Alpha || gotSnap.SigmaLower != wantSnap.SigmaLower ||
		gotSnap.SigmaUpper != wantSnap.SigmaUpper || gotSnap.Theta1 != wantSnap.Theta1 ||
		gotSnap.Theta2 != wantSnap.Theta2 || gotSnap.DeltaSpent != wantSnap.DeltaSpent {
		t.Fatalf("resumed snapshot %+v diverged from uninterrupted %+v", gotSnap, wantSnap)
	}
	for i := range wantSnap.Seeds {
		if gotSnap.Seeds[i] != wantSnap.Seeds[i] {
			t.Fatalf("seed %d differs: %d vs %d", i, gotSnap.Seeds[i], wantSnap.Seeds[i])
		}
	}
	// Byte-identical serialized state — queries counter included, so the
	// δ spending schedule of every FUTURE snapshot matches too.
	var a, b bytes.Buffer
	if err := core.SaveSession(&a, sessionB); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveSession(&b, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed session state is not byte-identical to the uninterrupted run")
	}
}

func TestCheckpointFallbackToPrevGeneration(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointPath: path})

	postJSON[Status](t, ts.URL+"/advance?count=500")
	if _, err := srv.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	postJSON[Status](t, ts.URL+"/advance?count=500")
	if _, err := srv.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the current generation after the fact (bit rot, a torn
	// write that fsync lied about) — recovery must fall back to .prev.
	if err := os.WriteFile(path, []byte("OPIMS1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := counters(t)
	restored, src, err := LoadCheckpoint(path, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if src != path+fsutil.PrevSuffix {
		t.Fatalf("restored from %s, want the previous generation", src)
	}
	if restored.NumRR() != 500 {
		t.Fatalf("previous generation holds num_rr=%d, want 500", restored.NumRR())
	}
	after := counters(t)
	if d := after.Counters["server_checkpoint_recoveries_total"] - before.Counters["server_checkpoint_recoveries_total"]; d != 1 {
		t.Fatalf("recoveries advanced by %d, want 1", d)
	}
	// And the recovered session still serves traffic.
	srv2 := New(restored, Config{Batch: 500})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if st := postJSON[Status](t, ts2.URL+"/advance?count=100"); st.NumRR != 600 {
		t.Fatalf("recovered session advance: %+v", st)
	}
}

func TestCheckpointTornWriteKeepsCurrent(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointPath: path})

	postJSON[Status](t, ts.URL+"/advance?count=400")
	if _, err := srv.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	postJSON[Status](t, ts.URL+"/advance?count=400")

	// The second checkpoint write tears after 64 bytes.
	srv.ckWrap = func(w io.Writer) io.Writer { return faultinject.TornWriter(w, 64) }
	before := counters(t)
	if _, err := srv.SaveCheckpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn checkpoint error = %v", err)
	}
	after := counters(t)
	if d := after.Counters["server_checkpoint_failures_total"] - before.Counters["server_checkpoint_failures_total"]; d != 1 {
		t.Fatalf("checkpoint failures advanced by %d, want 1", d)
	}
	srv.ckWrap = nil

	// The torn write never touched the good generation.
	restored, src, err := LoadCheckpoint(path, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if src != path || restored.NumRR() != 400 {
		t.Fatalf("after torn write: restored from %s with num_rr=%d, want 400 from the current generation", src, restored.NumRR())
	}
}

func TestPeriodicCheckpointerWritesAndStops(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")
	srv, ts := newCkServer(t, sampler, Config{
		Batch:              500,
		CheckpointPath:     path,
		CheckpointInterval: 10 * time.Millisecond,
	})
	postJSON[Status](t, ts.URL+"/advance?count=300")
	srv.StartCheckpointer()
	srv.StartCheckpointer() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpointer wrote nothing in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shutdown stops the checkpointer goroutine (done-channel accounting)
	// and writes a final checkpoint of the latest state.
	postJSON[Status](t, ts.URL+"/advance?count=300")
	srv.ckMu.Lock()
	ckDone := srv.ckDone
	srv.ckMu.Unlock()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ckDone:
	default:
		t.Fatal("Shutdown returned before the checkpointer goroutine exited")
	}
	restored, _, err := LoadCheckpoint(path, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumRR() != 600 {
		t.Fatalf("final checkpoint holds num_rr=%d, want 600", restored.NumRR())
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	sampler := robustSampler(t)
	_, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ck"), sampler)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint error = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadCheckpointBothGenerationsBad(t *testing.T) {
	sampler := robustSampler(t)
	path := filepath.Join(t.TempDir(), "session.ck")
	for _, p := range []string{path, path + fsutil.PrevSuffix} {
		if err := os.WriteFile(p, []byte("not a session"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := LoadCheckpoint(path, sampler)
	if err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("both-bad error = %v, want a hard failure distinct from not-exist", err)
	}
	if want := fmt.Sprintf("previous generation %s", path+fsutil.PrevSuffix); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the previous generation", err)
	}
}
