package server

// Dynamic graphs over HTTP: POST /graphs/{name}/updates applies one
// mutation batch (edge inserts/deletes, weight changes, node adds) to a
// catalog graph and incrementally repairs every loaded session on it —
// only the RR sets whose traces touch a mutated edge are regenerated
// (rrset.Repair), so the cost is O(f·θ) for a batch invalidating an
// f-fraction of θ sets, not a full resample.
//
// Identity moves along the graph's epoch chain: applying a batch advances
// the epoch and chains the lineage hash (graph.ChainFingerprint), the
// batch is journaled durably before the in-memory swap (mutlog.go), and
// session checkpoints record the epoch they were taken at (OPIMS4). A
// checkpoint that resumes onto a later epoch is verified against the
// chain and caught up with exactly the missed batches — deliberate,
// loud-on-divergence rebasing instead of core.ErrGraphMismatch refusing
// every resume after the first edge insert.
//
// Concurrency: one batch at a time per graph (the `mutating` flag answers
// 409 to a second batch and to engine-touching session requests while the
// repair sweep runs), and the background sampler skips sessions whose
// graph is mid-mutation. Sessions that slip through any gate are still
// correct — repair is idempotent byte-for-byte — the gates only bound
// tail latency.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/obs"
	"github.com/reprolab/opim/internal/rrset"
)

// Mutation metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mGraphMutations    = obs.Default().Counter("server_graph_mutations_total")
	mMutationConflicts = obs.Default().Counter("server_graph_mutation_conflicts_total")
	mSessionsRepaired  = obs.Default().Counter("server_sessions_repaired_total")
	mSessionsCaughtUp  = obs.Default().Counter("server_sessions_caught_up_total")
	mMutationTime      = obs.Default().Timer("server_graph_mutation_seconds")
	mJournalCompacts   = obs.Default().Counter("server_journal_compactions_total")
)

// GraphUpdate is one mutation op in wire form (docs/API.md): op is
// "edge_insert", "edge_delete", "set_weight" or "node_add"; from/to name
// the directed edge ⟨from,to⟩ and p its probability where the op uses
// them (node_add ignores all three).
type GraphUpdate struct {
	Op   string  `json:"op"`
	From int32   `json:"from,omitempty"`
	To   int32   `json:"to,omitempty"`
	P    float32 `json:"p,omitempty"`
}

// UpdateGraphRequest is the POST /graphs/{name}/updates request body: one
// all-or-nothing batch, applied in order.
type UpdateGraphRequest struct {
	Updates []GraphUpdate `json:"updates"`
}

// SessionRepair reports one session's incremental repair in an
// UpdateGraphResponse: Regenerated counts the RR sets the batch
// invalidated and the server resampled (across both OPIM-C halves).
type SessionRepair struct {
	Session     string `json:"session"`
	Regenerated int    `json:"regenerated"`
}

// UpdateGraphResponse is the POST /graphs/{name}/updates response body.
type UpdateGraphResponse struct {
	Graph string `json:"graph"`
	// Epoch and Lineage identify the graph's new position on its epoch
	// chain; Fingerprint is the new content hash.
	Epoch       int64  `json:"epoch"`
	Lineage     string `json:"lineage"`
	Fingerprint string `json:"graph_fingerprint"`
	N           int32  `json:"n"`
	M           int64  `json:"m"`
	// Applied is the number of ops in the batch.
	Applied int `json:"applied"`
	// Repaired lists the loaded sessions rebased onto the new epoch, with
	// their regenerated RR-set counts. Unloaded sessions catch up lazily
	// from their checkpoints on next touch.
	Repaired []SessionRepair `json:"repaired,omitempty"`
}

// handleGraphUpdates is POST /graphs/{name}/updates.
func (s *Server) handleGraphUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.PathValue("name")
	e := s.lookupGraph(name)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown graph %q", name), http.StatusNotFound)
		return
	}
	var req UpdateGraphRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ms, err := updatesToMutations(req.Updates)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(ms) == 0 {
		http.Error(w, "updates must contain at least one op", http.StatusBadRequest)
		return
	}
	resp, status, err := s.mutateGraph(e, ms)
	if err != nil {
		s.replyError(w, status, err.Error())
		return
	}
	writeJSON(w, *resp)
}

// mutateGraph applies one batch to e's graph: validate + derive the new
// epoch (WithMutations), journal it durably, swap the entry's residency,
// then sweep every loaded session on e through RepairForMutations. The
// returned status is the HTTP code for the failure.
func (s *Server) mutateGraph(e *graphEntry, ms []graph.Mutation) (*UpdateGraphResponse, int, error) {
	if !e.mutating.CompareAndSwap(false, true) {
		mMutationConflicts.Inc()
		return nil, http.StatusConflict, fmt.Errorf("graph %q is already applying a mutation batch; retry shortly", e.name)
	}
	defer e.mutating.Store(false)
	t0 := time.Now()
	defer func() { mMutationTime.Observe(time.Since(t0)) }()

	// Pin the graph resident for the whole mutation (loading it from its
	// spec if the catalog had unloaded it).
	sampler, err := s.acquireGraph(e)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	defer s.releaseGraph(e)

	g := sampler.Graph()
	ng, err := g.WithMutations(ms)
	if err != nil {
		if errors.Is(err, graph.ErrInvalidMutation) {
			return nil, http.StatusBadRequest, err
		}
		return nil, http.StatusInternalServerError, err
	}

	// Write-ahead journal: the batch is durable before anything observes
	// it. A failure here applies nothing.
	if s.cfg.CheckpointDir != "" {
		entry := mutlogEntry{Epoch: ng.Epoch(), Lineage: ng.EpochLineage(), Updates: mutationsToUpdates(ms)}
		if err := appendMutationLog(s.cfg.CheckpointDir, e.name, e.fingerprint, entry); err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}

	// Swap the entry onto the new epoch. Old readers (sessions not yet
	// repaired, in-flight traversals) keep the old graph alive; they are
	// rebased below.
	newSampler := rrset.NewSampler(ng, sampler.Model())
	e.mu.Lock()
	e.g, e.sampler = ng, newSampler
	e.history = append(e.history, ms)
	e.lineages = append(e.lineages, ng.EpochLineage())
	e.mu.Unlock()
	e.ident.Store(&graphIdent{
		fingerprint: ng.Fingerprint(),
		epoch:       ng.Epoch(),
		lineage:     ng.EpochLineage(),
		n:           ng.N(),
		m:           ng.M(),
	})
	mGraphMutations.Inc()

	// Rebase every loaded session on this graph. Each repair holds only
	// that session's mutex; sessions on other graphs are untouched. A
	// session that loads concurrently is caught by the freshness check in
	// ensureLoaded/createSession — and repair is idempotent, so the two
	// paths overlapping is harmless.
	var repaired []SessionRepair
	for _, sess := range s.snapshotSessions() {
		if sess.graph != e {
			continue
		}
		sess.mu.Lock()
		if sess.online != nil && sess.online.Sampler() != newSampler {
			regen := sess.online.RepairForMutations(newSampler, ms)
			sess.refreshStatsLocked()
			sess.lastSnap.Store(nil)
			repaired = append(repaired, SessionRepair{Session: sess.ID, Regenerated: regen})
			mSessionsRepaired.Inc()
		}
		sess.mu.Unlock()
	}

	obs.Emit(s.cfg.Events, "graph_mutation", map[string]any{
		"graph":             e.name,
		"epoch":             ng.Epoch(),
		"lineage":           ng.EpochLineage(),
		"graph_fingerprint": ng.Fingerprint(),
		"ops":               len(ms),
		"sessions_repaired": len(repaired),
	})
	// Still inside the e.mutating critical section, so no concurrent
	// append can interleave with the journal rewrite.
	s.maybeCompactJournal(e, ng)
	return &UpdateGraphResponse{
		Graph:       e.name,
		Epoch:       ng.Epoch(),
		Lineage:     ng.EpochLineage(),
		Fingerprint: ng.Fingerprint(),
		N:           ng.N(),
		M:           ng.M(),
		Applied:     len(ms),
		Repaired:    repaired,
	}, 0, nil
}

// maybeCompactJournal compacts e's mutation journal once it holds
// Config.JournalCompactEvery entries: snapshot the current graph, rewrite
// the journal to start from it, and truncate the in-memory chain to
// match. Called from mutateGraph while e.mutating is held, so no batch
// can append concurrently. Checkpoints recorded before the snapshot epoch
// can no longer resume (they fail loudly with "outside the known chain"),
// which is why the threshold should comfortably exceed how stale a
// session checkpoint can get between checkpointer passes. A compaction
// failure only logs: the journal keeps its full history and the next
// batch retries.
func (s *Server) maybeCompactJournal(e *graphEntry, ng *graph.Graph) {
	if s.cfg.JournalCompactEvery <= 0 || s.cfg.CheckpointDir == "" {
		return
	}
	e.mu.Lock()
	n := len(e.history)
	e.mu.Unlock()
	if n < s.cfg.JournalCompactEvery {
		return
	}
	if err := compactMutationLog(s.cfg.CheckpointDir, e.name, e.fingerprint, ng); err != nil {
		log.Printf("server: compacting mutation journal for graph %q: %v (history kept; next batch retries)", e.name, err)
		return
	}
	e.mu.Lock()
	e.history = nil
	e.lineages = []string{ng.EpochLineage()}
	e.baseEpoch = ng.Epoch()
	e.snapFP = ng.Fingerprint()
	e.mu.Unlock()
	mJournalCompacts.Inc()
	obs.Emit(s.cfg.Events, "journal_compaction", map[string]any{
		"graph":             e.name,
		"epoch":             ng.Epoch(),
		"lineage":           ng.EpochLineage(),
		"graph_fingerprint": ng.Fingerprint(),
		"entries_dropped":   n,
	})
	log.Printf("server: compacted mutation journal for graph %q at epoch %d (%d entries folded into snapshot)", e.name, ng.Epoch(), n)
}

// metaLineage is the epoch-chain position a checkpoint claims: the OPIMS4
// lineage when present, else the content fingerprint (an OPIMS3 file is
// always an epoch-0 claim — lineage(0) IS the content fingerprint).
// Empty for unverifiable legacy files.
func metaLineage(m *core.SessionMeta) string {
	if m.Lineage != "" {
		return m.Lineage
	}
	return m.GraphFingerprint
}

// missedBatches verifies that a checkpoint's recorded (epoch, lineage) is
// an ancestor on this entry's chain and returns the batches applied since
// — nil when the checkpoint is already current. An unrelated lineage (a
// different base dataset, a diverged history) is a hard error: rebasing
// RR sets across unrelated graphs would be silent corruption. A legacy
// checkpoint with no fingerprint at all cannot be placed on the chain;
// consistent with the existing unverified-resume policy it is treated as
// a base-epoch claim and caught up with the full history, loudly.
func (e *graphEntry) missedBatches(m *core.SessionMeta, cur *graph.Graph) ([][]graph.Mutation, error) {
	lin := metaLineage(m)
	if m.Epoch == cur.Epoch() && lin == cur.EpochLineage() {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if lin == "" {
		if len(e.history) == 0 {
			return nil, nil // unchanged graph; the usual unverified warning applies
		}
		log.Printf("server: legacy checkpoint (OPIMS%d, no fingerprint) resuming onto mutated graph %q at epoch %d; treating it as epoch %d UNVERIFIED and replaying %d batch(es)",
			m.Format, e.name, cur.Epoch(), e.baseEpoch, len(e.history))
		return append([][]graph.Mutation(nil), e.history...), nil
	}
	idx := m.Epoch - e.baseEpoch
	if idx < 0 || idx >= int64(len(e.lineages)) {
		return nil, fmt.Errorf("%w: checkpoint records epoch %d of graph %q, outside the known chain [%d, %d] (mutation journal truncated or missing?)",
			core.ErrGraphMismatch, m.Epoch, e.name, e.baseEpoch, e.baseEpoch+int64(len(e.history)))
	}
	if e.lineages[idx] != lin {
		return nil, fmt.Errorf("%w: checkpoint's graph %q lineage %.12s at epoch %d is not on this graph's epoch chain (%.12s): the checkpoint descends from a different history",
			core.ErrGraphMismatch, e.name, lin, m.Epoch, e.lineages[idx])
	}
	if int(idx) == len(e.history) {
		return nil, nil
	}
	return append([][]graph.Mutation(nil), e.history[idx:]...), nil
}

// loadForEntry restores a session checkpoint against e's current sampler,
// accepting — and catching up — a checkpoint taken at an earlier epoch of
// e's chain. The returned session is always at sampler's epoch.
func (s *Server) loadForEntry(path string, e *graphEntry, sampler *rrset.Sampler) (*core.Online, error) {
	var missed [][]graph.Mutation
	resolve := func(meta *core.SessionMeta) (*rrset.Sampler, error) {
		missed = nil
		ms, err := e.missedBatches(meta, sampler.Graph())
		if err != nil {
			return nil, err
		}
		if ms != nil {
			missed = ms
			meta.AcceptStale = true
		}
		return sampler, nil
	}
	online, _, _, err := loadCheckpointResolve(path, resolve)
	if err != nil {
		return nil, err
	}
	if len(missed) > 0 {
		regen := online.RepairForMutations(sampler, missed...)
		mSessionsCaughtUp.Inc()
		log.Printf("server: session checkpoint %s caught up %d epoch(s) on graph %q (%d RR sets regenerated)",
			path, len(missed), e.name, regen)
	}
	return online, nil
}

// catchUpLoadedLocked closes the load-races-mutation window: called under
// sess.mu right after a session becomes resident, it checks whether the
// entry's sampler moved past the one the session was built or loaded
// against and, if so, repairs with exactly the missed chain suffix. With
// no race it is a pointer compare.
func (s *Server) catchUpLoadedLocked(sess *Session) {
	e := sess.graph
	if e == nil || sess.online == nil {
		return
	}
	g := sess.online.Sampler().Graph()
	e.mu.Lock()
	cur := e.sampler
	var missed [][]graph.Mutation
	if cur != nil && cur != sess.online.Sampler() {
		idx := g.Epoch() - e.baseEpoch
		if idx >= 0 && idx < int64(len(e.history)) && e.lineages[idx] == g.EpochLineage() {
			missed = append([][]graph.Mutation(nil), e.history[idx:]...)
		}
	}
	e.mu.Unlock()
	if len(missed) > 0 {
		sess.online.RepairForMutations(cur, missed...)
		sess.refreshStatsLocked()
		mSessionsCaughtUp.Inc()
	}
}

// LoadCheckpointMetaLog is LoadCheckpointMeta for a graph with a mutation
// history: a checkpoint recorded at an earlier epoch of glog's chain is
// accepted and caught up (RepairForMutations with the missed batches)
// instead of refused with core.ErrGraphMismatch. sampler must be over the
// current-epoch graph (ReplayMutationLog's result); regen reports the RR
// sets regenerated by the catch-up (0 when the checkpoint was current).
// This is opimd's startup-resume path for the default session.
func LoadCheckpointMetaLog(path string, sampler *rrset.Sampler, glog *GraphLog) (online *core.Online, used string, meta *core.SessionMeta, regen int, err error) {
	if glog.Epochs() == 0 {
		online, used, meta, err = LoadCheckpointMeta(path, sampler)
		return online, used, meta, 0, err
	}
	cur := sampler.Graph()
	var missed [][]graph.Mutation
	resolve := func(m *core.SessionMeta) (*rrset.Sampler, error) {
		missed = nil
		lin := metaLineage(m)
		if m.Epoch == cur.Epoch() && lin == cur.EpochLineage() {
			return sampler, nil
		}
		if lin == "" {
			log.Printf("server: legacy checkpoint %s (OPIMS%d, no fingerprint) resuming onto mutated graph at epoch %d; treating it as epoch %d UNVERIFIED", path, m.Format, cur.Epoch(), glog.BaseEpoch)
			missed = glog.History
			m.AcceptStale = true
			return sampler, nil
		}
		idx := m.Epoch - glog.BaseEpoch
		if idx < 0 || idx >= int64(len(glog.Lineages)) {
			return nil, fmt.Errorf("%w: checkpoint records epoch %d, outside the journaled chain [%d, %d] (mutation journal truncated or compacted past it?)",
				core.ErrGraphMismatch, m.Epoch, glog.BaseEpoch, glog.BaseEpoch+int64(glog.Epochs()))
		}
		if glog.Lineages[idx] != lin {
			return nil, fmt.Errorf("%w: checkpoint lineage %.12s at epoch %d is not on the journaled epoch chain: it descends from a different history", core.ErrGraphMismatch, lin, m.Epoch)
		}
		missed = glog.History[idx:]
		m.AcceptStale = true
		return sampler, nil
	}
	online, used, meta, err = loadCheckpointResolve(path, resolve)
	if err != nil {
		return nil, "", nil, 0, err
	}
	if len(missed) > 0 {
		regen = online.RepairForMutations(sampler, missed...)
	}
	return online, used, meta, regen, nil
}
