package server

// Feedback-loop coverage: the round/observation protocol end to end
// against internal/diffusion as the ground-truth world — rounds serve
// seeds, simulated cascades feed back, the posterior-mean edge error
// falls — plus the at-least-once delivery invariants (replayed rounds,
// duplicate observations) and a simulated SIGKILL mid-campaign that must
// resume from the OPIMS5 checkpoint with no acknowledged observation
// lost.

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/learn"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// observeRound simulates one real-world cascade of the round's seeds on
// the truth graph and submits the trace. The rng stream is keyed by the
// round so a replayed simulation is reproducible.
func observeRound(t *testing.T, c *Client, truth *diffusion.Simulator, r RoundResponse, worldSeed uint64) ObservationResponse {
	t.Helper()
	_, atts := truth.RunICTrace(r.Seeds, rng.New(worldSeed).Split(uint64(r.Round)), nil)
	la := make([]learn.Attempt, len(atts))
	for i, a := range atts {
		la[i] = learn.Attempt{From: a.From, To: a.To, Success: a.Success}
	}
	resp, err := c.Observe(r.Round, la)
	if err != nil {
		t.Fatalf("round %d observation: %v", r.Round, err)
	}
	return resp
}

// sessionMAE reads the session's posterior-mean absolute edge error
// against the true weights, under the session lock.
func sessionMAE(t *testing.T, srv *Server, id string, truth *graph.Graph) float64 {
	t.Helper()
	sess := srv.lookup(id)
	if sess == nil {
		t.Fatalf("session %q not found", id)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.campaign == nil {
		t.Fatalf("session %q has no campaign", id)
	}
	mae, err := sess.campaign.Posterior().MeanAbsError(truth)
	if err != nil {
		t.Fatal(err)
	}
	return mae
}

func TestLearningSessionLifecycle(t *testing.T) {
	sampler := robustSampler(t)
	truth := diffusion.NewSimulator(sampler.Graph())
	srv, ts := newCkServer(t, sampler, Config{Batch: 500, CheckpointDir: t.TempDir()})
	c := NewClient(ts.URL)

	if _, err := c.CreateSession(SessionSpec{
		ID: "learner", K: 4, Delta: 0.05, Seed: 21,
		Learn: &LearnSpec{Seed: 5, RoundRR: 512},
	}); err != nil {
		t.Fatal(err)
	}
	lc := c.Session("learner")

	// Round 1 explores: the Thompson realization differs from the true
	// weights almost surely, so it lands as a weight-only mutation epoch.
	r1, err := lc.StartRound()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Round != 1 || r1.Kind != "explore" || r1.Replay {
		t.Fatalf("round 1 = %+v", r1)
	}
	if len(r1.Seeds) != 4 || r1.Applied == 0 || r1.Epoch == 0 || r1.NumRR != 512 || r1.Alpha <= 0 {
		t.Fatalf("round 1 = %+v: want 4 seeds, a non-empty realization, an advanced epoch, 512 RR sets and a guarantee", r1)
	}

	// A second rounds POST while the observation is outstanding replays
	// the same round and seeds instead of starting a new one.
	r1b, err := lc.StartRound()
	if err != nil {
		t.Fatal(err)
	}
	if !r1b.Replay || r1b.Round != 1 || r1b.Kind != r1.Kind {
		t.Fatalf("replayed round = %+v", r1b)
	}
	for i, s := range r1b.Seeds {
		if s != r1.Seeds[i] {
			t.Fatalf("replayed seeds %v differ from served seeds %v", r1b.Seeds, r1.Seeds)
		}
	}

	o1 := observeRound(t, lc, truth, r1, 77)
	if !o1.Applied || o1.Observations == 0 {
		t.Fatalf("observation 1 = %+v", o1)
	}
	// A duplicate delivery is acknowledged, not re-counted.
	o1d := observeRound(t, lc, truth, r1, 77)
	if o1d.Applied || o1d.Observations != o1.Observations {
		t.Fatalf("duplicate observation = %+v, first = %+v", o1d, o1)
	}
	// A round from the future is refused.
	if _, err := lc.Observe(9, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("future-round observation error = %v, want 400", err)
	}

	// Round 2 exploits (posterior mean). Free-form (round 0) observations
	// apply even while its window is open.
	r2, err := lc.StartRound()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Round != 2 || r2.Kind != "exploit" || r2.Replay {
		t.Fatalf("round 2 = %+v", r2)
	}
	e := firstEdge(t, sampler.Graph())
	of, err := lc.Observe(0, []learn.Attempt{{From: e.From, To: e.To, Success: true}})
	if err != nil || !of.Applied || of.Observations != o1.Observations+1 {
		t.Fatalf("free-form observation = %+v (%v)", of, err)
	}
	// An attempt on a non-edge fails the whole batch.
	ifrom, ito := missingEdge(t, sampler.Graph())
	if _, err := lc.Observe(r2.Round, []learn.Attempt{{From: ifrom, To: ito}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown-edge observation error = %v, want 400", err)
	}
	observeRound(t, lc, truth, r2, 77)

	// Non-learning sessions refuse the protocol.
	if _, err := c.StartRound(); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("rounds on non-learning session error = %v, want 400", err)
	}
	if _, err := c.Observe(1, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("observations on non-learning session error = %v, want 400", err)
	}

	// The realizations ride the ordinary epoch chain: graph epoch advanced
	// once per applied realization, visible in the catalog.
	info, err := c.GetGraph(DefaultGraphName)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch < 1 {
		t.Fatalf("graph epoch = %d after realized rounds, want ≥ 1", info.Epoch)
	}
	_ = srv
}

// TestLearnSpecValidation: a negative or over-budget round RR budget is
// refused at session creation.
func TestLearnSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, 4096)
	c := NewClient(ts.URL)
	if _, err := c.CreateSession(SessionSpec{ID: "bad", K: 2, Learn: &LearnSpec{RoundRR: -1}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("negative round_rr error = %v, want 400", err)
	}
	if _, err := c.CreateSession(SessionSpec{ID: "bad2", K: 2, Learn: &LearnSpec{RoundRR: 1 << 20}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("over-budget round_rr error = %v, want 400", err)
	}
}

// TestLearningCampaignConvergesAndSurvivesKill is the end-to-end
// acceptance invariant: a campaign against internal/diffusion as the
// ground-truth world drives the posterior-mean edge error down, and a
// SIGKILL mid-campaign — including with a round's observation outstanding
// — resumes from the OPIMS5 checkpoint extension with no acknowledged
// observation lost and the open round replayed verbatim.
func TestLearningCampaignConvergesAndSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	const worldSeed = 1234

	sampler := robustSampler(t)
	truthG := sampler.Graph()
	truth := diffusion.NewSimulator(truthG)

	srv1 := New(robustSession(t, sampler), Config{Batch: 500, CheckpointDir: dir})
	if err := srv1.EnableLearning(DefaultSessionID, 5, 256); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := NewClient(ts1.URL)

	mae0 := sessionMAE(t, srv1, DefaultSessionID, truthG)

	var lastObservations int64
	for round := 1; round <= 6; round++ {
		r, err := c1.StartRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if r.Round != int64(round) || r.Replay {
			t.Fatalf("round %d response = %+v", round, r)
		}
		o := observeRound(t, c1, truth, r, worldSeed)
		lastObservations = o.Observations
	}
	maeMid := sessionMAE(t, srv1, DefaultSessionID, truthG)
	if !(maeMid < mae0) {
		t.Fatalf("posterior-mean edge error did not fall: %.4f → %.4f after 6 rounds", mae0, maeMid)
	}

	// Round 7 is served but never observed — then the process dies. Only
	// the checkpoints and the mutation journal survive.
	r7, err := c1.StartRound()
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close() // simulated SIGKILL: no Shutdown, no final checkpoint

	// Restart the way opimd does: replay the journal over a freshly
	// loaded base graph, resume the default checkpoint against the
	// current epoch, re-enable learning (which must keep the restored
	// campaign, not reset to the uniform prior).
	base := robustSampler(t).Graph()
	g2, glog, err := ReplayMutationLog(dir, DefaultGraphName, base)
	if err != nil {
		t.Fatal(err)
	}
	sampler2 := rrset.NewSampler(g2, diffusion.IC)
	def, _, _, _, err := LoadCheckpointMetaLog(dir+"/default.ck", sampler2, glog)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(def, Config{Batch: 500, CheckpointDir: dir, DefaultGraphLog: glog})
	if err := srv2.EnableLearning(DefaultSessionID, 5, 256); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		srv2.Stop()
		srv2.stopCheckpointer()
		ts2.Close()
	})
	c2 := NewClient(ts2.URL)

	// No acknowledged observation was lost, and the open round replays
	// with the seeds served before the kill.
	r7b, err := c2.StartRound()
	if err != nil {
		t.Fatal(err)
	}
	if !r7b.Replay || r7b.Round != r7.Round || r7b.Kind != r7.Kind {
		t.Fatalf("post-kill round = %+v, pre-kill = %+v: want a verbatim replay", r7b, r7)
	}
	for i, s := range r7b.Seeds {
		if s != r7.Seeds[i] {
			t.Fatalf("post-kill seeds %v differ from pre-kill %v", r7b.Seeds, r7.Seeds)
		}
	}
	o7 := observeRound(t, c2, truth, r7b, worldSeed)
	if !o7.Applied || o7.Observations <= lastObservations {
		t.Fatalf("post-kill observation = %+v: the restored posterior lost acknowledged observations (had %d)", o7, lastObservations)
	}

	for round := 8; round <= 14; round++ {
		r, err := c2.StartRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if r.Round != int64(round) {
			t.Fatalf("round %d response = %+v: the restored campaign lost its round counter", round, r)
		}
		observeRound(t, c2, truth, r, worldSeed)
	}
	maeEnd := sessionMAE(t, srv2, DefaultSessionID, truthG)
	if !(maeEnd < maeMid) || !(maeEnd < mae0) {
		t.Fatalf("posterior-mean edge error not strictly decreasing across the kill: %.4f → %.4f → %.4f", mae0, maeMid, maeEnd)
	}
	if math.IsNaN(maeEnd) {
		t.Fatal("NaN error")
	}
}
