package server

// Feedback-driven learning sessions: the server closes the online-IM
// loop over HTTP. A learning session (SessionSpec.Learn) treats its
// graph's edge weights as unknown and runs the round protocol of
// learn.Campaign:
//
//	POST /sessions/{id}/rounds        sample the round's realization
//	                                  (Thompson explore / posterior-mean
//	                                  exploit), apply it as an ordinary
//	                                  weight-only mutation epoch, generate
//	                                  RR sets, derive and serve seeds
//	POST /sessions/{id}/observations  feed back the observed cascade's
//	                                  activation attempts; the posterior
//	                                  updates and the round closes
//
// Durability: the campaign's serialized state rides inside the engine's
// OPIMS5 extension blob, and both endpoints checkpoint synchronously
// before acknowledging, so a kill −9 at any instant loses no acknowledged
// observation. The protocol is replay-safe end to end: a round retried
// after a crash re-derives the same realization (absolute target weights
// + a per-round RNG stream → an empty diff against the already-applied
// epoch), a rounds request while seeds are outstanding returns the stored
// seeds, and an observation for an already-closed round is acknowledged
// as a duplicate without touching the posterior (at-least-once delivery).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/reprolab/opim/internal/learn"
	"github.com/reprolab/opim/internal/obs"
)

// defaultRoundRR is the per-round RR generation budget when the session
// spec does not set one: enough for a stable seed set on mid-sized graphs
// while keeping rounds fast (a campaign runs many of them).
const defaultRoundRR = 1024

// RoundResponse is the POST /sessions/{id}/rounds response body.
type RoundResponse struct {
	Session string `json:"session"`
	// Round numbers rounds from 1; observations quote it back.
	Round int64 `json:"round"`
	// Kind is "explore" (Thompson-sampled realization) or "exploit"
	// (posterior-mean realization).
	Kind string `json:"kind"`
	// Seeds is the seed set to run the real-world campaign with.
	Seeds []int32 `json:"seeds"`
	// Alpha is the approximation guarantee of Seeds on the realization
	// (0 on a replayed response — re-deriving it would spend δ budget).
	Alpha float64 `json:"alpha"`
	// Applied counts the weight mutations the realization needed (0 when
	// the graph already realized the round — e.g. a crash-retry).
	Applied int `json:"applied"`
	// Epoch is the graph's epoch after the realization landed.
	Epoch int64 `json:"epoch"`
	// NumRR is the session's RR-set count after the round's generation.
	NumRR int64 `json:"num_rr"`
	// Replay is true when this response re-serves the seeds of a round
	// whose observation is still outstanding, rather than starting a new
	// round.
	Replay bool `json:"replay,omitempty"`
}

// ObservationRequest is the POST /sessions/{id}/observations body. Round
// ties the trace to the round whose seeds generated it; round 0 submits a
// free-form observation (a cascade observed outside the round protocol),
// which always applies.
type ObservationRequest struct {
	Round    int64           `json:"round"`
	Attempts []learn.Attempt `json:"attempts"`
}

// ObservationResponse is the POST /sessions/{id}/observations response.
type ObservationResponse struct {
	Session  string `json:"session"`
	Round    int64  `json:"round"`
	Attempts int    `json:"attempts"`
	// Applied is false for a duplicate delivery (the round was already
	// closed); the posterior was not touched.
	Applied bool `json:"applied"`
	// Observations is the posterior's total Bernoulli-outcome count.
	Observations int64 `json:"observations"`
	// Entropy is the mean per-edge posterior entropy (0 = uniform prior,
	// decreasing as the campaign learns).
	Entropy float64 `json:"entropy"`
}

// syncLearnExtLocked re-serializes the campaign into the engine's OPIMS5
// extension blob so the next checkpoint — synchronous, periodic, eviction
// or shutdown — carries the current learner state. Callers hold sess.mu.
func (sess *Session) syncLearnExtLocked() {
	if sess.campaign == nil || sess.online == nil {
		return
	}
	b, err := sess.campaign.MarshalBinary()
	if err != nil {
		// Marshal of an in-memory campaign cannot fail today; guard anyway
		// so a future encoding bug cannot silently checkpoint stale state.
		panic(fmt.Sprintf("server: serializing learner state for session %q: %v", sess.ID, err))
	}
	sess.online.SetExtension(b)
}

// checkpointLearn makes the campaign state durable before an
// acknowledgement leaves the server. Without a checkpoint path durability
// is not configured and the in-memory state is all there is.
func (s *Server) checkpointLearn(sess *Session) error {
	if sess.ckPath == "" {
		return nil
	}
	_, err := s.saveSessionCheckpoint(sess)
	return err
}

// restoreCampaign rolls the session's campaign back to a state captured
// with MarshalBinary — the in-process analogue of a crash-retry, used
// when a round fails downstream of StartRound so the client's retry
// re-derives the same round instead of skipping one.
func (sess *Session) restoreCampaign(prev []byte) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.online == nil {
		return // evicted; the checkpoint on disk is the surviving state
	}
	c, err := learn.UnmarshalCampaign(prev, sess.online.Sampler().Graph())
	if err != nil {
		panic(fmt.Sprintf("server: restoring learner state for session %q: %v", sess.ID, err))
	}
	sess.campaign = c
	sess.syncLearnExtLocked()
}

// handleRounds is POST /sessions/{id}/rounds: start the next
// explore/exploit round (or re-serve the current one's seeds while its
// observation is outstanding).
func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.admitSession(w, sess) {
		return
	}
	if !sess.roundBusy.CompareAndSwap(false, true) {
		mSessionConflicts.Inc()
		s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q is already starting a round; retry shortly", sess.ID))
		return
	}
	defer sess.roundBusy.Store(false)
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		s.replyError(w, status, msg)
		return
	}

	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	if sess.campaign == nil {
		sess.mu.Unlock()
		http.Error(w, fmt.Sprintf("session %q is not a learning session (create it with a learn spec)", sess.ID), http.StatusBadRequest)
		return
	}
	if sess.campaign.Awaiting() {
		// The current round's observation is outstanding: re-serve its
		// seeds (at-least-once delivery of the round itself). The
		// checkpoint below re-establishes durability for a client retrying
		// precisely because the previous attempt's checkpoint failed.
		resp := s.roundResponseLocked(sess, 0, true)
		sess.mu.Unlock()
		if err := s.checkpointLearn(sess); err != nil {
			s.replyError(w, http.StatusInternalServerError, fmt.Sprintf("round state not durable: %v; retry", err))
			return
		}
		writeJSON(w, resp)
		return
	}
	prev, err := sess.campaign.MarshalBinary()
	if err != nil {
		sess.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ms, explore, err := sess.campaign.StartRound(sess.online.Sampler().Graph())
	if err != nil {
		sess.mu.Unlock()
		http.Error(w, fmt.Sprintf("starting round: %v", err), http.StatusInternalServerError)
		return
	}
	round := sess.campaign.Round()
	sess.mu.Unlock()

	// Apply the realization as an ordinary weight-only mutation epoch:
	// journaled, swept through incremental repair (the weight-only fast
	// path), visible to every session on the graph. An empty batch means
	// the graph already realizes this round — nothing to apply.
	if len(ms) > 0 {
		if _, status, err := s.mutateGraph(sess.graph, ms); err != nil {
			sess.restoreCampaign(prev)
			s.replyError(w, status, fmt.Sprintf("applying round realization: %v", err))
			return
		}
	}

	// Refine the realization's RR sets before deriving seeds. Partial
	// progress on failure is harmless — RR sets are valid at any count —
	// but the round itself must be retried from StartRound.
	rr := sess.roundRR
	if rr <= 0 {
		rr = defaultRoundRR
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if status, msg := s.advanceSession(ctx, sess, rr); status != 0 {
		sess.restoreCampaign(prev)
		if status == statusClientGone {
			return
		}
		s.replyError(w, status, msg)
		return
	}

	sess.mu.Lock()
	if sess.online == nil || sess.campaign == nil {
		sess.mu.Unlock()
		s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	snap := sess.online.Snapshot()
	sess.campaign.ServeSeeds(snap.Seeds)
	sess.syncLearnExtLocked()
	sess.refreshStatsLocked()
	resp := s.roundResponseLocked(sess, len(ms), false)
	resp.Alpha = snap.Alpha
	sess.mu.Unlock()

	// Seeds leave the server only after the awaiting round is durable:
	// a kill −9 after this write resumes with the window open and the
	// same stored seeds.
	if err := s.checkpointLearn(sess); err != nil {
		s.replyError(w, http.StatusInternalServerError, fmt.Sprintf("round state not durable: %v; retry", err))
		return
	}
	obs.Emit(s.cfg.Events, "learn_round", map[string]any{
		"session": sess.ID,
		"round":   round,
		"kind":    resp.Kind,
		"explore": explore,
		"applied": len(ms),
		"epoch":   resp.Epoch,
		"seeds":   len(resp.Seeds),
	})
	writeJSON(w, resp)
}

// roundResponseLocked assembles the rounds response from the campaign's
// current state; callers hold sess.mu with campaign non-nil.
func (s *Server) roundResponseLocked(sess *Session, applied int, replay bool) RoundResponse {
	kind := "exploit"
	if sess.campaign.Explore() {
		kind = "explore"
	}
	resp := RoundResponse{
		Session: sess.ID,
		Round:   sess.campaign.Round(),
		Kind:    kind,
		Seeds:   sess.campaign.Seeds(),
		Applied: applied,
		NumRR:   sess.statNumRR.Load(),
		Replay:  replay,
	}
	if sess.graph != nil {
		resp.Epoch = sess.graph.ident.Load().epoch
	}
	return resp
}

// handleObservations is POST /sessions/{id}/observations: fold an
// observed cascade's activation attempts into the session's posterior.
// The acknowledgement is durable: the posterior is checkpointed before
// the 200 leaves, and a failed checkpoint rolls the in-memory update back
// so the client's retry re-applies it — an acked observation can never be
// lost to a crash, and an unacked one is never double-counted.
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ObservationRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 32<<20)).Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.admitSession(w, sess) {
		return
	}
	s.touch(sess)
	if status, msg := s.ensureLoaded(sess); status != 0 {
		s.replyError(w, status, msg)
		return
	}

	sess.mu.Lock()
	if sess.online == nil {
		sess.mu.Unlock()
		s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q was evicted mid-request; retry shortly", sess.ID))
		return
	}
	if sess.campaign == nil {
		sess.mu.Unlock()
		http.Error(w, fmt.Sprintf("session %q is not a learning session (create it with a learn spec)", sess.ID), http.StatusBadRequest)
		return
	}
	prev, err := sess.campaign.MarshalBinary()
	if err != nil {
		sess.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	applied, err := sess.campaign.Observe(req.Round, req.Attempts)
	if err != nil {
		sess.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if applied {
		sess.syncLearnExtLocked()
	}
	resp := ObservationResponse{
		Session:      sess.ID,
		Round:        req.Round,
		Attempts:     len(req.Attempts),
		Applied:      applied,
		Observations: sess.campaign.Posterior().Observations(),
		Entropy:      sess.campaign.Posterior().Entropy(),
	}
	sess.mu.Unlock()

	if applied {
		if err := s.checkpointLearn(sess); err != nil {
			sess.restoreCampaign(prev)
			s.replyError(w, http.StatusInternalServerError,
				fmt.Sprintf("observation not durable: %v; retry (it was not applied)", err))
			return
		}
		obs.Emit(s.cfg.Events, "learn_observation", map[string]any{
			"session":  sess.ID,
			"round":    req.Round,
			"attempts": len(req.Attempts),
			"entropy":  resp.Entropy,
		})
	}
	writeJSON(w, resp)
}

// EnableLearning turns an existing session into a learning session — the
// startup path for opimd's -learn flag on the default session. A campaign
// already restored from the session's checkpoint extension is kept (the
// resume case); otherwise a fresh uniform-prior campaign is created with
// the given seed. roundRR configures the per-round RR budget (0 = the
// server default).
func (s *Server) EnableLearning(id string, seed uint64, roundRR int) error {
	sess := s.lookup(id)
	if sess == nil {
		return fmt.Errorf("server: unknown session %q", id)
	}
	if status, msg := s.ensureLoaded(sess); status != 0 {
		return fmt.Errorf("server: session %q: %s", id, msg)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.online == nil {
		return fmt.Errorf("server: session %q is not loaded", id)
	}
	sess.roundRR = roundRR
	if sess.campaign != nil {
		return nil // restored from the checkpoint; keep the learned posterior
	}
	sess.campaign = learn.NewCampaign(sess.online.Sampler().Graph(), seed)
	sess.syncLearnExtLocked()
	return nil
}
