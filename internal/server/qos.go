package server

// Multi-tenant quality of service: the serving discipline that arbitrates
// thousands of concurrent sessions of very different sizes.
//
// Three mechanisms compose (docs/ROBUSTNESS.md has the operator view):
//
//   - Per-session token buckets gate admission of engine-touching
//     requests (/advance, /snapshot, /start, /checkpoint): a tenant over
//     its configured rate gets 429 + an honest Retry-After equal to the
//     time until its next token, so one chatty client cannot monopolize
//     the request path. Rates come from SessionSpec.Rate/Burst, defaulted
//     by Config.DefaultRate/DefaultBurst (0 = unlimited).
//
//   - A bounded admission queue replaces the old hard inflight shed:
//     above Config.MaxInflight a request briefly queues for a slot
//     (bounded by MaxQueue and MaxQueueWait) instead of failing a request
//     the server could serve a moment later; when the queue is full, or
//     the estimated wait — queue depth × measured service time — already
//     exceeds the wait budget, the request is rejected immediately with
//     429 + a Retry-After computed from that same estimate. Every hint
//     the server emits (429, 503, 409) is derived from live queue depth
//     and the service-time EWMA, never a constant.
//
//   - Deficit-weighted round-robin background sampling: each visit of the
//     sampler loop credits a running session weight × Batch RR sets of
//     deficit and serves up to the accumulated deficit in Batch-sized
//     chunks, so a session's share of sampling throughput follows its
//     SessionSpec.Weight — a weight-4 campaign refines 4× faster than a
//     weight-1 probe — while per-chunk lock holds stay bounded by one
//     Batch, preserving the isolation guarantee that a client request on
//     a session waits at most one batch of its own work.

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/opim/internal/obs"
)

// Admission-control metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mAdmissionQueued      = obs.Default().Counter("server_admission_queued_total")
	mAdmissionRejected    = obs.Default().Counter("server_admission_rejected_total")
	mAdmissionRatelimited = obs.Default().Counter("server_admission_ratelimited_total")
	mAdmissionWait        = obs.Default().Timer("server_admission_wait_seconds")
	gAdmissionQueueDepth  = obs.Default().Gauge("server_admission_queue_depth")
	gAdmissionServiceEWMA = obs.Default().Gauge("server_admission_service_ewma_seconds")
	gAdmissionRetryAfter  = obs.Default().Gauge("server_admission_retry_after_seconds")
)

// QoS defaults and bounds.
const (
	// defaultMaxQueueWait bounds how long an over-capacity request parks in
	// the admission queue before a 429 (Config.MaxQueueWait ≤ 0).
	defaultMaxQueueWait = 500 * time.Millisecond
	// maxSessionWeight bounds SessionSpec.Weight; a larger spread turns
	// weighted fairness back into starvation.
	maxSessionWeight = 1024
	// deficitBurstCap caps a session's accumulated sampling deficit, in
	// multiples of its per-visit credit (weight × Batch): a session that
	// was budget-clamped for a while may catch up by at most this factor
	// in one visit, keeping rotation latency bounded.
	deficitBurstCap = 2
	// maxRetryAfterSeconds clamps honest Retry-After hints; past a minute
	// the client should poll, not trust a point estimate.
	maxRetryAfterSeconds = 60
	// svcPrior seeds the service-time estimate before the first completed
	// request has been measured.
	svcPrior = 50 * time.Millisecond
)

// tokenBucket is a standard token bucket: capacity `burst` tokens,
// refilled continuously at `rate` tokens/second. take consumes one token
// or reports how long until one accrues.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second, > 0
	burst  float64 // bucket depth, ≥ 1
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket. burst ≤ 0 defaults to
// max(1, rate) — at least one request, and roughly one second of rate.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take consumes one token at time now. When the bucket is empty it
// reports ok=false and the wait until the next whole token accrues — the
// honest Retry-After for this tenant.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// ewma is a lock-free exponentially-weighted moving average of request
// service time, the latency half of every honest Retry-After estimate.
type ewma struct{ bits atomic.Uint64 }

const ewmaAlpha = 0.2

func (e *ewma) observe(d time.Duration) {
	s := d.Seconds()
	for {
		old := e.bits.Load()
		prev := math.Float64frombits(old)
		next := s
		if prev != 0 {
			next = (1-ewmaAlpha)*prev + ewmaAlpha*s
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (e *ewma) seconds() float64 { return math.Float64frombits(e.bits.Load()) }

// serviceEstimate is the current per-request service-time estimate,
// falling back to a prior before the first measurement.
func (s *Server) serviceEstimate() time.Duration {
	if sec := s.svc.seconds(); sec > 0 {
		return time.Duration(sec * float64(time.Second))
	}
	return svcPrior
}

// estimatedWait predicts how long the request at queue position pos
// (1-based) waits for a slot: pos × service time, spread over the
// configured parallelism.
func (s *Server) estimatedWait(pos int64) time.Duration {
	slots := int64(s.cfg.MaxInflight)
	if slots <= 0 {
		slots = 1
	}
	est := time.Duration(pos) * s.serviceEstimate() / time.Duration(slots)
	return est
}

// retryAfterSeconds derives the Retry-After hint from live state: the
// expected wait for a new arrival behind the current queue, in whole
// seconds, clamped to [1, maxRetryAfterSeconds]. Never a constant — a
// server with a deep queue and slow requests tells its clients to stay
// away longer, which is what keeps the retry storm spread out.
func (s *Server) retryAfterSeconds() int {
	return ceilSeconds(s.estimatedWait(s.admQueued.Load() + 1))
}

// ceilSeconds rounds a wait up to whole seconds within the Retry-After
// clamp (the header has one-second resolution; rounding down would invite
// a guaranteed-too-early retry).
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// setRetryAfter stamps an honest Retry-After derived from queue/latency
// state and returns the chosen value.
func (s *Server) setRetryAfter(w http.ResponseWriter) int {
	secs := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	gAdmissionRetryAfter.Set(float64(secs))
	return secs
}

// replyError writes an error status. Backpressure statuses (409 eviction
// races, 429 admission, 503 deadlines) carry an honest Retry-After so
// well-behaved clients back off proportionally to actual server load
// instead of hammering a fixed cadence.
func (s *Server) replyError(w http.ResponseWriter, status int, msg string) {
	switch status {
	case http.StatusConflict, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		s.setRetryAfter(w)
	}
	http.Error(w, msg, status)
}

// admitQueue is the global bounded admission queue: it acquires an
// inflight slot, briefly queueing when all are busy. A request that
// cannot plausibly be served within the wait budget — queue full, or
// estimated wait past MaxQueueWait — is rejected immediately with 429 and
// an honest Retry-After rather than parked to fail later. Returns whether
// a slot was acquired (the caller must release it); on false the response
// has been written (unless the client already disconnected).
func (s *Server) admitQueue(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.admSlots <- struct{}{}:
		return true
	default:
	}
	pos := s.admQueued.Add(1)
	if pos > s.admMaxQueue || s.estimatedWait(pos) > s.admMaxWait {
		gAdmissionQueueDepth.Set(float64(s.admQueued.Add(-1)))
		s.rejectAdmission(w, fmt.Sprintf(
			"server at capacity (%d in flight, %d queued)", s.cfg.MaxInflight, pos-1))
		return false
	}
	gAdmissionQueueDepth.Set(float64(pos))
	mAdmissionQueued.Inc()
	start := time.Now()
	timer := time.NewTimer(s.admMaxWait)
	defer timer.Stop()
	select {
	case s.admSlots <- struct{}{}:
		gAdmissionQueueDepth.Set(float64(s.admQueued.Add(-1)))
		mAdmissionWait.Observe(time.Since(start))
		return true
	case <-timer.C:
		gAdmissionQueueDepth.Set(float64(s.admQueued.Add(-1)))
		mAdmissionWait.Observe(time.Since(start))
		s.rejectAdmission(w, fmt.Sprintf(
			"no capacity within %v (%d in flight)", s.admMaxWait, s.cfg.MaxInflight))
		return false
	case <-r.Context().Done():
		gAdmissionQueueDepth.Set(float64(s.admQueued.Add(-1)))
		return false
	}
}

func (s *Server) rejectAdmission(w http.ResponseWriter, msg string) {
	mAdmissionRejected.Inc()
	mInflightRejected.Inc() // kept: the pre-queue shed counter, same meaning
	s.setRetryAfter(w)
	http.Error(w, msg, http.StatusTooManyRequests)
}

// validateQoSSpec checks the SessionSpec QoS fields (zero values mean
// "server default" and always pass).
func validateQoSSpec(spec SessionSpec) error {
	if math.IsNaN(spec.Weight) || math.IsInf(spec.Weight, 0) || spec.Weight < 0 || spec.Weight > maxSessionWeight {
		return fmt.Errorf("weight %g outside (0, %d]", spec.Weight, maxSessionWeight)
	}
	if math.IsNaN(spec.Rate) || math.IsInf(spec.Rate, 0) {
		return fmt.Errorf("rate %g is not a finite number", spec.Rate)
	}
	if math.IsNaN(spec.Burst) || math.IsInf(spec.Burst, 0) || spec.Burst < 0 {
		return fmt.Errorf("burst %g must be a finite number ≥ 0", spec.Burst)
	}
	return nil
}

// applySessionQoS resolves the session's serving-discipline parameters
// from spec values (0 = server default) and installs them: weight for the
// DWRR sampler, rate/burst for the admission token bucket. A negative
// rate is the explicit "unlimited" override of a server-wide DefaultRate.
func (s *Server) applySessionQoS(sess *Session, weight, rate, burst float64) {
	if weight <= 0 {
		weight = 1
	}
	sess.weight = weight
	if rate == 0 {
		rate = s.cfg.DefaultRate
	}
	if burst <= 0 {
		burst = s.cfg.DefaultBurst
	}
	if rate > 0 {
		sess.bucket = newTokenBucket(rate, burst)
		sess.rate = rate
		sess.burst = sess.bucket.burst
	}
}

// takeSessionToken consumes one token from the session's admission bucket
// (nil bucket = unlimited). On refusal it reports the per-tenant wait.
func takeSessionToken(sess *Session) (ok bool, wait time.Duration) {
	if sess.bucket == nil {
		return true, 0
	}
	return sess.bucket.take(time.Now())
}

// admitSession gates an engine-touching request on the session's token
// bucket, answering a tenant over its rate with 429 + the exact time its
// next token accrues. Monitoring reads (/status, snapshot?peek) are never
// gated — a throttled tenant can still observe its session.
func (s *Server) admitSession(w http.ResponseWriter, sess *Session) bool {
	ok, wait := takeSessionToken(sess)
	if ok {
		return true
	}
	secs := ceilSeconds(wait)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	gAdmissionRetryAfter.Set(float64(secs))
	mAdmissionRatelimited.Inc()
	obs.Default().Counter(obs.Labeled("server_session_shed_total", "session", sess.ID)).Inc()
	http.Error(w, fmt.Sprintf("session %q over its request rate (%g/s, burst %g)",
		sess.ID, sess.rate, sess.burst), http.StatusTooManyRequests)
	return false
}

// creditServed settles a DWRR visit: the served RR sets are debited from
// the session's deficit (never below zero — an exhausted budget must not
// bank credit it could never have spent) and the per-tenant deficit gauge
// is republished.
func (s *Server) creditServed(sess *Session, served int64) {
	s.smu.Lock()
	sess.deficit -= float64(served)
	if sess.deficit < 0 {
		sess.deficit = 0
	}
	d := sess.deficit
	s.smu.Unlock()
	obs.Default().Gauge(obs.Labeled("server_session_deficit", "session", sess.ID)).Set(d)
}
