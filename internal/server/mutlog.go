package server

// The mutation journal: the durable record of a graph's epoch chain.
//
// Every applied mutation batch is appended — and fsynced — to
// CheckpointDir/graph-<name>.mutlog BEFORE the in-memory graph swap, so
// session checkpoints can never reference an epoch the journal does not
// record (write-ahead ordering). The file is JSONL: a header line naming
// the graph and its base (epoch-0) content fingerprint, then one entry per
// batch carrying the resulting epoch, the chained lineage hash, and the
// batch's ops in wire form. At startup ReplayMutationLog re-derives the
// current-epoch graph by re-applying every batch to the freshly loaded
// base graph, verifying each step against the recorded lineage — an edited
// journal, a swapped dataset, or a divergent replay all fail loudly.
//
// A crash mid-append leaves a torn final line. That line is dropped on
// replay: the batch it described was never applied in memory (the apply
// strictly follows the fsync), no session checkpoint can be ahead of it,
// and the client that posted it never received a success response. The
// epoch chain is what makes this detectable rather than assumed — a
// partially recorded batch cannot chain-hash to a valid lineage.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/reprolab/opim/internal/graph"
)

// GraphLog is a graph's mutation history from its base epoch: History[i]
// is the batch that advanced epoch i to i+1, and Lineages[i] is the
// epoch-chain hash at epoch i (Lineages[0] is the base content
// fingerprint), so len(Lineages) == len(History)+1. It is what a stale
// checkpoint is verified against — and caught up with — when it resumes
// onto a mutated graph.
type GraphLog struct {
	History  [][]graph.Mutation
	Lineages []string
}

// Epochs returns the number of recorded mutation batches.
func (l *GraphLog) Epochs() int {
	if l == nil {
		return 0
	}
	return len(l.History)
}

// MutationLogPath returns where the named graph's mutation journal lives
// under a checkpoint directory.
func MutationLogPath(dir, name string) string {
	return filepath.Join(dir, "graph-"+name+".mutlog")
}

// mutlogHeader is the journal's first line.
type mutlogHeader struct {
	Graph           string `json:"graph"`
	BaseFingerprint string `json:"base_fingerprint"`
}

// mutlogEntry is one journal line after the header: the batch that
// advanced the graph to Epoch, whose lineage must chain-hash to Lineage.
type mutlogEntry struct {
	Epoch   int64         `json:"epoch"`
	Lineage string        `json:"lineage"`
	Updates []GraphUpdate `json:"updates"`
}

// ReplayMutationLog applies the journal for the named graph (if any) to g
// — a freshly loaded base (epoch-0) graph — and returns the current-epoch
// graph plus the verified history. Each replayed batch must reproduce the
// recorded lineage, so any divergence between the journal and the dataset
// on disk is a hard error, never a silently different graph. A torn final
// line (crash mid-append) is dropped with a log line; a torn or
// unparsable line anywhere else is corruption and fails the replay.
// With no journal present g is returned unchanged under an empty log.
func ReplayMutationLog(dir, name string, g *graph.Graph) (*graph.Graph, *GraphLog, error) {
	glog := &GraphLog{Lineages: []string{g.EpochLineage()}}
	path := MutationLogPath(dir, name)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return g, glog, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening mutation journal %s: %w", path, err)
	}
	defer f.Close()

	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("server: reading mutation journal %s: %w", path, err)
	}
	if len(lines) == 0 {
		return g, glog, nil
	}

	var hdr mutlogHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("server: mutation journal %s: bad header: %w", path, err)
	}
	if hdr.BaseFingerprint != g.Fingerprint() {
		return nil, nil, fmt.Errorf("server: mutation journal %s was recorded for base graph %s, but graph %q on disk fingerprints %s",
			path, hdr.BaseFingerprint, name, g.Fingerprint())
	}

	for i, line := range lines[1:] {
		var e mutlogEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-2 {
				// Torn tail: the crash interrupted the append before the
				// fsync completed, so the batch was never applied and no
				// checkpoint references its epoch. Drop it.
				log.Printf("server: mutation journal %s: dropping torn final entry (crash mid-append): %v", path, err)
				break
			}
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d corrupt: %w", path, i+1, err)
		}
		ms, err := updatesToMutations(e.Updates)
		if err != nil {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d: %w", path, i+1, err)
		}
		ng, err := g.WithMutations(ms)
		if err != nil {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d does not apply: %w", path, i+1, err)
		}
		if ng.Epoch() != e.Epoch || ng.EpochLineage() != e.Lineage {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d replays to epoch %d lineage %s, journal records epoch %d lineage %s (journal edited, or dataset changed)",
				path, i+1, ng.Epoch(), ng.EpochLineage(), e.Epoch, e.Lineage)
		}
		g = ng
		glog.History = append(glog.History, ms)
		glog.Lineages = append(glog.Lineages, e.Lineage)
	}
	return g, glog, nil
}

// appendMutationLog durably records one applied batch: open (creating
// with the header when new), append the entry line, fsync. The caller
// applies the batch in memory only after this returns nil — write-ahead
// order is what makes crash-mid-mutation detectable rather than silent.
func appendMutationLog(dir, name, baseFP string, e mutlogEntry) error {
	path := MutationLogPath(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening mutation journal %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	var buf []byte
	if st.Size() == 0 {
		hdr, err := json.Marshal(mutlogHeader{Graph: name, BaseFingerprint: baseFP})
		if err != nil {
			return err
		}
		buf = append(append(buf, hdr...), '\n')
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	buf = append(append(buf, line...), '\n')
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("server: appending to mutation journal %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("server: syncing mutation journal %s: %w", path, err)
	}
	if st.Size() == 0 {
		// First write also created the file; make the directory entry
		// durable so a crash cannot lose the whole journal while session
		// checkpoints already reference its epochs.
		if d, derr := os.Open(dir); derr == nil {
			d.Sync() //nolint:errcheck // best effort; some filesystems refuse dir fsync
			d.Close()
		}
	}
	return nil
}

// updatesToMutations converts wire-form updates into graph mutations,
// validating the op names (graph.WithMutations validates everything else).
func updatesToMutations(ups []GraphUpdate) ([]graph.Mutation, error) {
	ms := make([]graph.Mutation, 0, len(ups))
	for i, u := range ups {
		op, err := graph.ParseMutOp(u.Op)
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		ms = append(ms, graph.Mutation{Op: op, From: u.From, To: u.To, P: u.P})
	}
	return ms, nil
}

// mutationsToUpdates is updatesToMutations' inverse, for journaling.
func mutationsToUpdates(ms []graph.Mutation) []GraphUpdate {
	ups := make([]GraphUpdate, 0, len(ms))
	for _, m := range ms {
		ups = append(ups, GraphUpdate{Op: m.Op.String(), From: m.From, To: m.To, P: m.P})
	}
	return ups
}
