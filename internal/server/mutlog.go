package server

// The mutation journal: the durable record of a graph's epoch chain.
//
// Every applied mutation batch is appended — and fsynced — to
// CheckpointDir/graph-<name>.mutlog BEFORE the in-memory graph swap, so
// session checkpoints can never reference an epoch the journal does not
// record (write-ahead ordering). The file is JSONL: a header line naming
// the graph and its base (epoch-0) content fingerprint, then one entry per
// batch carrying the resulting epoch, the chained lineage hash, and the
// batch's ops in wire form. At startup ReplayMutationLog re-derives the
// current-epoch graph by re-applying every batch to the freshly loaded
// base graph, verifying each step against the recorded lineage — an edited
// journal, a swapped dataset, or a divergent replay all fail loudly.
//
// A crash mid-append leaves a torn final line. That line is dropped on
// replay: the batch it described was never applied in memory (the apply
// strictly follows the fsync), no session checkpoint can be ahead of it,
// and the client that posted it never received a success response. The
// epoch chain is what makes this detectable rather than assumed — a
// partially recorded batch cannot chain-hash to a valid lineage.
//
// Compaction (Config.JournalCompactEvery) bounds replay time: once the
// journal accumulates K entries, the current graph is written to an
// OPIMG2 snapshot (graph-<name>.e<epoch>.snap) and the journal is
// atomically rewritten to a single header line referencing it. Replay
// then starts from the snapshot — verified against the recorded
// fingerprint and stamped with the recorded (epoch, lineage) — instead of
// the epoch-0 base. The crash orderings are all safe: the snapshot is
// written before the header that references it (an orphan snapshot under
// the old header is simply unused), snapshot files are epoch-suffixed so
// a new snapshot can never clobber the one the current header points at,
// and the header rewrite goes through fsutil.WriteAtomic (a crash between
// its renames leaves the previous journal generation at .prev, which
// replay falls back to).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"github.com/reprolab/opim/internal/fsutil"
	"github.com/reprolab/opim/internal/graph"
)

// GraphLog is a graph's mutation history from its base epoch: History[i]
// is the batch that advanced epoch BaseEpoch+i to BaseEpoch+i+1, and
// Lineages[i] is the epoch-chain hash at epoch BaseEpoch+i, so
// len(Lineages) == len(History)+1. BaseEpoch is 0 for an uncompacted
// journal (Lineages[0] is then the base content fingerprint); after
// compaction it is the snapshot's epoch and SnapshotFP records the
// snapshot's content hash. It is what a stale checkpoint is verified
// against — and caught up with — when it resumes onto a mutated graph.
type GraphLog struct {
	History  [][]graph.Mutation
	Lineages []string
	// BaseEpoch is the epoch the log starts from: 0, or the compaction
	// snapshot's epoch. Checkpoints recorded before it cannot resume.
	BaseEpoch int64
	// SnapshotFP is the compaction snapshot's content fingerprint
	// ("" when BaseEpoch is 0) — the reload-verification anchor.
	SnapshotFP string
}

// Epochs returns the number of recorded mutation batches.
func (l *GraphLog) Epochs() int {
	if l == nil {
		return 0
	}
	return len(l.History)
}

// MutationLogPath returns where the named graph's mutation journal lives
// under a checkpoint directory.
func MutationLogPath(dir, name string) string {
	return filepath.Join(dir, "graph-"+name+".mutlog")
}

// MutationSnapshotPath returns where a compaction snapshot of the named
// graph at the given epoch lives under a checkpoint directory. Epoch-
// suffixed so writing a new snapshot can never clobber the one the
// current journal header references.
func MutationSnapshotPath(dir, name string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("graph-%s.e%d.snap", name, epoch))
}

// mutlogHeader is the journal's first line. BaseFingerprint always
// anchors the epoch-0 dataset; the Snapshot fields are set by compaction
// and redirect replay to start from the referenced OPIMG2 snapshot
// instead of the base graph.
type mutlogHeader struct {
	Graph           string `json:"graph"`
	BaseFingerprint string `json:"base_fingerprint"`
	SnapshotEpoch   int64  `json:"snapshot_epoch,omitempty"`
	SnapshotLineage string `json:"snapshot_lineage,omitempty"`
	SnapshotFP      string `json:"snapshot_fingerprint,omitempty"`
}

// mutlogEntry is one journal line after the header: the batch that
// advanced the graph to Epoch, whose lineage must chain-hash to Lineage.
type mutlogEntry struct {
	Epoch   int64         `json:"epoch"`
	Lineage string        `json:"lineage"`
	Updates []GraphUpdate `json:"updates"`
}

// ReplayMutationLog applies the journal for the named graph (if any) to g
// — a freshly loaded base (epoch-0) graph — and returns the current-epoch
// graph plus the verified history. Each replayed batch must reproduce the
// recorded lineage, so any divergence between the journal and the dataset
// on disk is a hard error, never a silently different graph. A torn final
// line (crash mid-append) is dropped with a log line; a torn or
// unparsable line anywhere else is corruption and fails the replay.
// With no journal present g is returned unchanged under an empty log. A
// journal rewritten by compaction redirects replay to its snapshot; a
// missing journal with a .prev generation beside it (a crash between
// WriteAtomic's renames) falls back to the previous generation.
func ReplayMutationLog(dir, name string, g *graph.Graph) (*graph.Graph, *GraphLog, error) {
	glog := &GraphLog{Lineages: []string{g.EpochLineage()}}
	path := MutationLogPath(dir, name)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		f, err = os.Open(path + fsutil.PrevSuffix)
		if errors.Is(err, os.ErrNotExist) {
			return g, glog, nil
		}
		if err == nil {
			log.Printf("server: mutation journal %s missing; replaying previous generation %s (crash between compaction renames)", path, path+fsutil.PrevSuffix)
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening mutation journal %s: %w", path, err)
	}
	defer f.Close()

	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("server: reading mutation journal %s: %w", path, err)
	}
	if len(lines) == 0 {
		return g, glog, nil
	}

	var hdr mutlogHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("server: mutation journal %s: bad header: %w", path, err)
	}
	if hdr.BaseFingerprint != g.Fingerprint() {
		return nil, nil, fmt.Errorf("server: mutation journal %s was recorded for base graph %s, but graph %q on disk fingerprints %s",
			path, hdr.BaseFingerprint, name, g.Fingerprint())
	}
	if hdr.SnapshotLineage != "" {
		// Compacted journal: replay starts from the snapshot, not the base.
		snapPath := MutationSnapshotPath(dir, name, hdr.SnapshotEpoch)
		snap, err := readGraphSnapshot(snapPath, hdr.SnapshotFP)
		if err != nil {
			return nil, nil, err
		}
		if err := snap.AdoptEpochIdentity(hdr.SnapshotEpoch, hdr.SnapshotLineage); err != nil {
			return nil, nil, fmt.Errorf("server: journal snapshot %s: %w", snapPath, err)
		}
		g = snap
		glog.BaseEpoch = hdr.SnapshotEpoch
		glog.SnapshotFP = hdr.SnapshotFP
		glog.Lineages = []string{hdr.SnapshotLineage}
	}

	for i, line := range lines[1:] {
		var e mutlogEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-2 {
				// Torn tail: the crash interrupted the append before the
				// fsync completed, so the batch was never applied and no
				// checkpoint references its epoch. Drop it.
				log.Printf("server: mutation journal %s: dropping torn final entry (crash mid-append): %v", path, err)
				break
			}
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d corrupt: %w", path, i+1, err)
		}
		ms, err := updatesToMutations(e.Updates)
		if err != nil {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d: %w", path, i+1, err)
		}
		ng, err := g.WithMutations(ms)
		if err != nil {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d does not apply: %w", path, i+1, err)
		}
		if ng.Epoch() != e.Epoch || ng.EpochLineage() != e.Lineage {
			return nil, nil, fmt.Errorf("server: mutation journal %s: entry %d replays to epoch %d lineage %s, journal records epoch %d lineage %s (journal edited, or dataset changed)",
				path, i+1, ng.Epoch(), ng.EpochLineage(), e.Epoch, e.Lineage)
		}
		g = ng
		glog.History = append(glog.History, ms)
		glog.Lineages = append(glog.Lineages, e.Lineage)
	}
	return g, glog, nil
}

// appendMutationLog durably records one applied batch: open (creating
// with the header when new), append the entry line, fsync. The caller
// applies the batch in memory only after this returns nil — write-ahead
// order is what makes crash-mid-mutation detectable rather than silent.
func appendMutationLog(dir, name, baseFP string, e mutlogEntry) error {
	path := MutationLogPath(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening mutation journal %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	var buf []byte
	if st.Size() == 0 {
		hdr, err := json.Marshal(mutlogHeader{Graph: name, BaseFingerprint: baseFP})
		if err != nil {
			return err
		}
		buf = append(append(buf, hdr...), '\n')
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	buf = append(append(buf, line...), '\n')
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("server: appending to mutation journal %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("server: syncing mutation journal %s: %w", path, err)
	}
	if st.Size() == 0 {
		// First write also created the file; make the directory entry
		// durable so a crash cannot lose the whole journal while session
		// checkpoints already reference its epochs.
		if d, derr := os.Open(dir); derr == nil {
			d.Sync() //nolint:errcheck // best effort; some filesystems refuse dir fsync
			d.Close()
		}
	}
	return nil
}

// readGraphSnapshot loads a compaction snapshot and verifies its content
// against the fingerprint the journal header recorded — a snapshot edited
// or swapped on disk fails loudly, never replays silently different.
func readGraphSnapshot(path, wantFP string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: opening journal snapshot %s: %w", path, err)
	}
	defer f.Close()
	g, err := graph.ReadCSR(f)
	if err != nil {
		return nil, fmt.Errorf("server: reading journal snapshot %s: %w", path, err)
	}
	if fp := g.Fingerprint(); fp != wantFP {
		return nil, fmt.Errorf("server: journal snapshot %s fingerprints %s, journal header recorded %s (snapshot edited or swapped?)", path, fp, wantFP)
	}
	return g, nil
}

// compactMutationLog rewrites the named graph's journal to start from g:
// g is written to an epoch-suffixed OPIMG2 snapshot, then the journal is
// atomically replaced with a single header line referencing it. Write
// order makes every crash point safe — the snapshot lands before any
// header mentions it, and the journal swap is WriteAtomic (old generation
// kept at .prev). Snapshots from earlier compactions are removed best-
// effort afterwards; a leftover one is just disk, never read.
func compactMutationLog(dir, name, baseFP string, g *graph.Graph) error {
	snapPath := MutationSnapshotPath(dir, name, g.Epoch())
	if _, err := fsutil.WriteAtomic(snapPath, func(w io.Writer) error {
		return graph.WriteCSR(w, g)
	}); err != nil {
		return fmt.Errorf("server: writing journal snapshot %s: %w", snapPath, err)
	}
	hdr, err := json.Marshal(mutlogHeader{
		Graph:           name,
		BaseFingerprint: baseFP,
		SnapshotEpoch:   g.Epoch(),
		SnapshotLineage: g.EpochLineage(),
		SnapshotFP:      g.Fingerprint(),
	})
	if err != nil {
		return err
	}
	path := MutationLogPath(dir, name)
	if _, err := fsutil.WriteAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(append(hdr, '\n'))
		return werr
	}); err != nil {
		return fmt.Errorf("server: rewriting mutation journal %s: %w", path, err)
	}
	for _, old := range graphSnapshotPaths(dir, name) {
		if old != snapPath {
			os.Remove(old) //nolint:errcheck // best effort; an orphan snapshot is never read
		}
	}
	return nil
}

// graphSnapshotPaths lists the named graph's compaction snapshots (any
// epoch) under dir, for cleanup.
func graphSnapshotPaths(dir, name string) []string {
	paths, _ := filepath.Glob(filepath.Join(dir, "graph-"+name+".e*.snap"))
	return paths
}

// updatesToMutations converts wire-form updates into graph mutations,
// validating the op names (graph.WithMutations validates everything else).
func updatesToMutations(ups []GraphUpdate) ([]graph.Mutation, error) {
	ms := make([]graph.Mutation, 0, len(ups))
	for i, u := range ups {
		op, err := graph.ParseMutOp(u.Op)
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		ms = append(ms, graph.Mutation{Op: op, From: u.From, To: u.To, P: u.P})
	}
	return ms, nil
}

// mutationsToUpdates is updatesToMutations' inverse, for journaling.
func mutationsToUpdates(ms []graph.Mutation) []GraphUpdate {
	ups := make([]GraphUpdate, 0, len(ms))
	for _, m := range ms {
		ups = append(ups, GraphUpdate{Op: m.Op.String(), From: m.From, To: m.To, P: m.P})
	}
	return ups
}
