package server

// Multi-session management: the server hosts many named OPIM sessions —
// the paper's online-processing paradigm (§2.2) with one pause-and-report
// query per user — each owning its own lock, scratch, δ budget and
// background-sampling membership. Sessions are created, listed and
// deleted over HTTP (/sessions), addressed at /sessions/{id}/..., and the
// pre-session endpoints (/status, /snapshot, ...) alias the session named
// "default" so existing clients keep working.
//
// Residency is bounded: with Config.CheckpointDir and MaxLoadedSessions
// set, the least-recently-used idle session is checkpointed and unloaded
// (state machine loaded → evicting → unloaded) and transparently reloaded
// from its checkpoint on the next touch. A request that races an eviction
// gets 409 + Retry-After rather than blocking on the checkpoint write;
// the Go client treats that exactly like a load-shed 503.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/reprolab/opim/internal/core"
	"github.com/reprolab/opim/internal/learn"
	"github.com/reprolab/opim/internal/obs"
)

// DefaultSessionID names the session that the legacy single-session
// endpoints (/status, /snapshot, ...) alias.
const DefaultSessionID = "default"

// Session-manager metrics (obs.Default(), see docs/OBSERVABILITY.md).
var (
	mSessionsCreated  = obs.Default().Counter("server_sessions_created_total")
	mSessionsDeleted  = obs.Default().Counter("server_sessions_deleted_total")
	mSessionsEvicted  = obs.Default().Counter("server_sessions_evicted_total")
	mSessionsReloaded = obs.Default().Counter("server_sessions_reloaded_total")
	mSessionConflicts = obs.Default().Counter("server_session_conflicts_total")
	gSessionsLoaded   = obs.Default().Gauge("server_sessions_loaded")
)

// sessionState is the residency state of one Session.
type sessionState int32

const (
	// stateLoaded: the core.Online lives in memory and serves requests.
	stateLoaded sessionState = iota
	// stateEvicting: an eviction is checkpointing the session; requests
	// answer 409 + Retry-After instead of blocking on the disk write.
	stateEvicting
	// stateUnloaded: only the checkpoint exists; the next touch reloads.
	stateUnloaded
)

// Session is one managed OPIM session: a core.Online plus the serving
// state around it. All access to the engine goes through mu, which is
// per-session — a slow snapshot or advance on one session never blocks
// another.
type Session struct {
	// ID is the immutable session name ([A-Za-z0-9][A-Za-z0-9._-]*).
	ID string

	// mu serializes every use of online: handlers, the round-robin
	// sampler, checkpoint serialization, eviction and reload.
	mu     sync.Mutex
	online *core.Online // nil while unloaded

	state   atomic.Int32 // sessionState
	running atomic.Bool  // background round-robin sampling membership

	maxRR int64

	// statNumRR/statEdges cache the engine counters after every mutation,
	// so /status and GET /sessions never take mu — they stay readable
	// while a long advance holds the session lock.
	statNumRR atomic.Int64
	statEdges atomic.Int64

	// opts caches the engine's Options for lock-free listing; nil until
	// the session has been loaded at least once (adopted checkpoints).
	opts atomic.Pointer[core.Options]

	// lastSnap caches the most recent derived snapshot for the
	// budget-free peek path. It survives eviction deliberately: a
	// dashboard can poll an unloaded session without forcing a reload.
	lastSnap atomic.Pointer[SnapshotResponse]

	// ckPath, when non-empty, is where this session checkpoints; a
	// session without one can never be evicted.
	ckPath string

	// weight is the session's share of background sampling throughput
	// (deficit-weighted round-robin, see qos.go); immutable after creation.
	weight float64
	// deficit is the DWRR deficit counter in RR sets, guarded by the
	// server's smu (it is rotation state, like lastTouch).
	deficit float64
	// bucket rate-limits admission of engine-touching requests for this
	// tenant; nil means unlimited. rate/burst mirror its configuration for
	// lock-free listing.
	bucket      *tokenBucket
	rate, burst float64

	// graph is the catalog entry the session runs on, set at creation (or
	// adoption) and immutable afterwards. The session holds one `sessions`
	// reference on it for its whole registered life, plus one `loadedRefs`
	// reference while resident (see catalog.go).
	graph *graphEntry

	// campaign, when non-nil, makes this a learning session: the
	// feedback-driven round machine of learn.Campaign (see learn.go).
	// Guarded by mu; its serialized state rides inside the engine's OPIMS5
	// extension blob, so it survives eviction, restart and kill −9 with
	// the checkpoint. roundRR is the RR-set budget generated per round
	// before seeds are served (0 = defaultRoundRR); roundBusy serializes
	// POST /rounds per session without holding mu across the graph
	// mutation.
	campaign  *learn.Campaign
	roundRR   int
	roundBusy atomic.Bool

	// lastTouch orders LRU eviction; guarded by the server's smu.
	lastTouch int64
}

// refreshStatsLocked re-publishes the lock-free counter mirrors; callers
// hold sess.mu with online non-nil.
func (sess *Session) refreshStatsLocked() {
	sess.statNumRR.Store(sess.online.NumRR())
	sess.statEdges.Store(sess.online.EdgesExamined())
}

// setOnlineLocked installs an engine (created or reloaded) and refreshes
// every mirror; callers hold sess.mu. A checkpoint extension blob, when
// present, restores the session's learning campaign exactly where the
// serialized round machine left off.
func (sess *Session) setOnlineLocked(online *core.Online) {
	sess.online = online
	opts := online.Options()
	sess.opts.Store(&opts)
	sess.refreshStatsLocked()
	if ext := online.Extension(); len(ext) > 0 {
		c, err := learn.UnmarshalCampaign(ext, online.Sampler().Graph())
		if err != nil {
			// Keep serving the session (the RR state is intact) but say
			// loudly that the feedback loop lost its posterior.
			log.Printf("server: session %q: cannot restore learner state from checkpoint extension: %v", sess.ID, err)
			return
		}
		sess.campaign = c
	}
}

// SessionSpec is the POST /sessions request body. Zero values take the
// server defaults noted per field.
type SessionSpec struct {
	// ID names the session (required; [A-Za-z0-9][A-Za-z0-9._-]*, ≤ 64).
	ID string `json:"id"`
	// Graph names the catalog graph the session runs on ("" = "default").
	Graph string `json:"graph,omitempty"`
	// K is the seed-set size (required, ≥ 1).
	K int `json:"k"`
	// Delta is the failure probability (0 = 1/n).
	Delta float64 `json:"delta"`
	// Variant is "vanilla", "plus" or "prime" ("" = plus).
	Variant string `json:"variant"`
	// Seed drives the session's sample stream.
	Seed uint64 `json:"seed"`
	// Workers bounds RR-generation parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// Union enables the δ/2^i union-budget snapshot schedule.
	Union bool `json:"union"`
	// Exact switches to Clopper–Pearson bounds.
	Exact bool `json:"exact"`
	// BaseSeeds switches the session to the augmentation problem.
	BaseSeeds []int32 `json:"base_seeds"`
	// MaxRR overrides the server's RR budget for this session (0 =
	// Config.MaxRR; larger values are rejected).
	MaxRR int64 `json:"max_rr"`
	// Weight is the session's share of background sampling throughput: a
	// weight-4 session receives ~4× the RR quanta per rotation of a
	// weight-1 session (0 = 1; must be in (0, 1024]).
	Weight float64 `json:"weight,omitempty"`
	// Rate caps this tenant's engine-touching requests (snapshot, advance,
	// start, checkpoint) in requests/second via a token bucket. 0 takes the
	// server default (-default-rate); negative means explicitly unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth (0 = server default, then
	// max(1, rate)).
	Burst float64 `json:"burst,omitempty"`
	// Learn, when set, makes this a learning session: edge weights are
	// treated as unknown, POST rounds/observations drive the
	// explore-exploit feedback loop, and the Beta posterior state rides in
	// every checkpoint (see docs/LEARNING.md).
	Learn *LearnSpec `json:"learn,omitempty"`
}

// LearnSpec configures a learning session (SessionSpec.Learn).
type LearnSpec struct {
	// Seed roots the campaign's per-round Thompson draw streams.
	Seed uint64 `json:"seed"`
	// RoundRR is the RR-set count generated on the round's realization
	// graph before seeds are served (0 = the server default, 1024).
	RoundRR int `json:"round_rr,omitempty"`
}

// SessionInfo describes one session in /sessions responses. Option fields
// are zero for a session adopted from a checkpoint that has not been
// loaded yet (they live inside the checkpoint).
type SessionInfo struct {
	ID               string  `json:"id"`
	Graph            string  `json:"graph,omitempty"`
	GraphFingerprint string  `json:"graph_fingerprint,omitempty"`
	GraphEpoch       int64   `json:"graph_epoch,omitempty"`
	K                int     `json:"k,omitempty"`
	Delta            float64 `json:"delta,omitempty"`
	Variant          string  `json:"variant,omitempty"`
	Seed             uint64  `json:"seed"`
	Union            bool    `json:"union"`
	Exact            bool    `json:"exact"`
	BaseSeeds        []int32 `json:"base_seeds,omitempty"`
	NumRR            int64   `json:"num_rr"`
	MaxRR            int64   `json:"max_rr"`
	Weight           float64 `json:"weight"`
	Rate             float64 `json:"rate,omitempty"`
	Burst            float64 `json:"burst,omitempty"`
	Running          bool    `json:"running"`
	Loaded           bool    `json:"loaded"`
	Checkpoint       string  `json:"checkpoint,omitempty"`
}

// SessionListResponse is the GET /sessions response body.
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

var sessionIDRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// lookup returns the session without marking it used (nil if unknown).
func (s *Server) lookup(id string) *Session {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.sessions[id]
}

// touch marks sess most-recently-used for LRU eviction.
func (s *Server) touch(sess *Session) {
	s.smu.Lock()
	s.touchSeq++
	sess.lastTouch = s.touchSeq
	s.smu.Unlock()
}

// addSession registers sess; it fails when the id is taken.
func (s *Server) addSession(sess *Session) error {
	s.smu.Lock()
	defer s.smu.Unlock()
	if _, ok := s.sessions[sess.ID]; ok {
		return fmt.Errorf("session %q already exists", sess.ID)
	}
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	s.touchSeq++
	sess.lastTouch = s.touchSeq
	if sessionState(sess.state.Load()) == stateLoaded {
		gSessionsLoaded.Set(float64(s.loaded.Add(1)))
	}
	return nil
}

// sessionCheckpointPath returns where a session of this id checkpoints
// ("" when per-session checkpointing is not configured).
func (s *Server) sessionCheckpointPath(id string) string {
	if s.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.CheckpointDir, id+".ck")
}

// createSession builds and registers a session from spec. The returned
// status is the HTTP code for the failure (400 invalid spec, 409 name
// taken, 500 otherwise).
func (s *Server) createSession(spec SessionSpec) (*Session, int, error) {
	if !sessionIDRe.MatchString(spec.ID) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("session id %q invalid (want [A-Za-z0-9][A-Za-z0-9._-]*, at most 64 chars)", spec.ID)
	}
	variant, err := parseVariant(spec.Variant)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	maxRR := spec.MaxRR
	if maxRR == 0 {
		maxRR = s.cfg.MaxRR
	}
	if maxRR < 0 || maxRR > s.cfg.MaxRR {
		return nil, http.StatusBadRequest,
			fmt.Errorf("max_rr %d outside (0, server budget %d]", maxRR, s.cfg.MaxRR)
	}
	if err := validateQoSSpec(spec); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if spec.Learn != nil && (spec.Learn.RoundRR < 0 || int64(spec.Learn.RoundRR) > maxRR) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("learn.round_rr %d outside [0, max_rr %d]", spec.Learn.RoundRR, maxRR)
	}
	graphName := spec.Graph
	if graphName == "" {
		graphName = DefaultGraphName
	}
	entry, status, err := s.graphForSession(graphName)
	if err != nil {
		return nil, status, err
	}
	sampler, err := s.acquireGraph(entry)
	if err != nil {
		entry.sessions.Add(-1)
		return nil, http.StatusInternalServerError, err
	}
	fail := func(status int, err error) (*Session, int, error) {
		s.releaseGraph(entry)
		entry.sessions.Add(-1)
		return nil, status, err
	}
	delta := spec.Delta
	if delta == 0 {
		delta = 1 / float64(sampler.Graph().N())
	}
	online, err := core.NewOnline(sampler, core.Options{
		K:           spec.K,
		Delta:       delta,
		Variant:     variant,
		Seed:        spec.Seed,
		Workers:     spec.Workers,
		UnionBudget: spec.Union,
		Exact:       spec.Exact,
		BaseSeeds:   spec.BaseSeeds,
		Events:      s.cfg.Events,
		Generator:   s.cfg.Generator,
	})
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	online.SetGraphIdentity(entry.name, entry.specString)
	sess := &Session{ID: spec.ID, maxRR: maxRR, ckPath: s.sessionCheckpointPath(spec.ID), graph: entry}
	s.applySessionQoS(sess, spec.Weight, spec.Rate, spec.Burst)
	sess.mu.Lock()
	sess.setOnlineLocked(online)
	if spec.Learn != nil {
		sess.roundRR = spec.Learn.RoundRR
		sess.campaign = learn.NewCampaign(sampler.Graph(), spec.Learn.Seed)
		sess.syncLearnExtLocked()
	}
	sess.mu.Unlock()
	if err := s.addSession(sess); err != nil {
		return fail(http.StatusConflict, err)
	}
	// A mutation batch that landed while this session was being built may
	// have swept the table before addSession published it; catch up now
	// (no-op when the sampler is current).
	sess.mu.Lock()
	s.catchUpLoadedLocked(sess)
	sess.mu.Unlock()
	mSessionsCreated.Inc()
	s.maybeEvict(sess)
	s.maybeUnloadGraphs(entry)
	return sess, 0, nil
}

// AdoptCheckpointDir registers one session per "<id>.ck" file in
// Config.CheckpointDir, so a restarted daemon serves every checkpointed
// session again. Each checkpoint is loaded at adoption — validating it
// before the daemon starts serving and populating the lock-free /status
// mirrors — and MaxLoadedSessions is then enforced as usual, so under a
// residency cap the surplus is checkpoint-evicted right back and
// reloaded transparently on its first touch. An unusable checkpoint
// (both generations) aborts adoption rather than silently discarding
// that session's δ accounting, mirroring the startup refusal for the
// default session. Already-registered ids (the resumed default session)
// are skipped. It returns the adopted ids sorted.
func (s *Server) AdoptCheckpointDir() ([]string, error) {
	if s.cfg.CheckpointDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: reading checkpoint dir: %w", err)
	}
	var adopted []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ck") {
			continue
		}
		id := strings.TrimSuffix(name, ".ck")
		if !sessionIDRe.MatchString(id) {
			continue
		}
		if s.lookup(id) != nil {
			continue // already registered (e.g. the resumed default)
		}
		sess := &Session{ID: id, maxRR: s.cfg.MaxRR, ckPath: s.sessionCheckpointPath(id)}
		s.applySessionQoS(sess, 0, 0, 0)
		// The checkpoint's own graph-identity header picks (or registers)
		// the catalog graph the session resumes on; OPIMS3 fingerprints are
		// verified, legacy formats log an "unverified graph" warning.
		online, entry, err := s.loadSessionCheckpoint(sess.ckPath)
		if err != nil {
			sort.Strings(adopted)
			return adopted, fmt.Errorf("server: adopting session %q: %w", id, err)
		}
		sess.graph = entry
		entry.sessions.Add(1)
		online.SetEvents(s.cfg.Events)
		online.SetGenerator(s.cfg.Generator)
		sess.mu.Lock()
		sess.setOnlineLocked(online)
		sess.mu.Unlock()
		if err := s.addSession(sess); err != nil {
			s.releaseGraph(entry)
			entry.sessions.Add(-1)
			continue
		}
		sess.mu.Lock()
		s.catchUpLoadedLocked(sess)
		sess.mu.Unlock()
		adopted = append(adopted, id)
		s.maybeEvict(sess)
		s.maybeUnloadGraphs(entry)
	}
	sort.Strings(adopted)
	return adopted, nil
}

// ensureLoaded makes sess servable, reloading it from its checkpoint when
// evicted. A non-zero return is the HTTP status (and message) to answer
// with: 409 while an eviction is in flight, 500 when the reload failed.
func (s *Server) ensureLoaded(sess *Session) (int, string) {
	if sess.graph != nil && sess.graph.mutating.Load() {
		// A mutation batch is being applied to this session's graph; engine
		// requests wait it out like an eviction (409 + Retry-After) instead
		// of contending with the repair sweep. Purely a latency gate — a
		// request that slips past is still repaired to the right epoch.
		mSessionConflicts.Inc()
		return http.StatusConflict, fmt.Sprintf("graph %q is applying a mutation batch; retry shortly", sess.graph.name)
	}
	switch sessionState(sess.state.Load()) {
	case stateEvicting:
		mSessionConflicts.Inc()
		return http.StatusConflict, fmt.Sprintf("session %q is being evicted; retry shortly", sess.ID)
	case stateUnloaded:
		sess.mu.Lock()
		if sessionState(sess.state.Load()) == stateUnloaded {
			// A handler can hold a *Session that a concurrent DELETE already
			// unregistered; reloading it would increment the loaded counter
			// for a session no eviction can ever find again. (Taking smu via
			// lookup inside sess.mu is safe: nothing locks in the opposite
			// order.)
			if s.lookup(sess.ID) != sess {
				sess.mu.Unlock()
				return http.StatusNotFound, fmt.Sprintf("session %q was deleted", sess.ID)
			}
			// Re-acquire the session's graph first (reloading it from its
			// spec if the catalog unloaded it); the checkpoint's recorded
			// identity is then verified against the entry's epoch chain — a
			// checkpoint taken before a mutation batch is caught up with
			// exactly the missed batches during the load.
			sampler := s.sampler
			acquired := false
			if sess.graph != nil {
				var err error
				if sampler, err = s.acquireGraph(sess.graph); err != nil {
					sess.mu.Unlock()
					return http.StatusInternalServerError,
						fmt.Sprintf("session %q: %v", sess.ID, err)
				}
				acquired = true
			}
			var online *core.Online
			var err error
			if sess.graph != nil {
				online, err = s.loadForEntry(sess.ckPath, sess.graph, sampler)
			} else {
				online, _, err = LoadCheckpoint(sess.ckPath, sampler)
			}
			if err != nil {
				if acquired {
					s.releaseGraph(sess.graph)
				}
				sess.mu.Unlock()
				return http.StatusInternalServerError,
					fmt.Sprintf("session %q: reload from checkpoint %s failed: %v", sess.ID, sess.ckPath, err)
			}
			online.SetEvents(s.cfg.Events)
			online.SetGenerator(s.cfg.Generator)
			sess.setOnlineLocked(online)
			// Close the load-races-mutation window: if a batch landed on the
			// entry between the sampler acquisition above and now, repair
			// with the missed suffix before serving (idempotent if the batch
			// was already caught up during the load).
			s.catchUpLoadedLocked(sess)
			sess.state.Store(int32(stateLoaded))
			gSessionsLoaded.Set(float64(s.loaded.Add(1)))
			mSessionsReloaded.Inc()
		}
		sess.mu.Unlock()
		s.maybeEvict(sess)
	}
	return 0, ""
}

// maybeEvict enforces MaxLoadedSessions: while too many sessions are
// resident it checkpoints-then-unloads the least-recently-used idle one
// (never keep, never a running or checkpoint-less session). Eviction work
// happens outside every lock except the victim's own. A victim whose
// eviction fails or aborts (checkpoint write error, request race) is
// skipped for the rest of this pass instead of re-picked — a full or
// read-only checkpoint dir must not turn the triggering request into a
// busy loop that re-serializes the same session forever; capacity is
// simply re-enforced on the next create or reload.
func (s *Server) maybeEvict(keep *Session) {
	if s.cfg.MaxLoadedSessions <= 0 {
		return
	}
	var skip map[*Session]bool
	for {
		victim := s.pickEvictionVictim(keep, skip)
		if victim == nil {
			return
		}
		if !s.evictSession(victim) {
			if skip == nil {
				skip = make(map[*Session]bool)
			}
			skip[victim] = true
		}
	}
}

func (s *Server) pickEvictionVictim(keep *Session, skip map[*Session]bool) *Session {
	s.smu.Lock()
	defer s.smu.Unlock()
	if int(s.loaded.Load()) <= s.cfg.MaxLoadedSessions {
		return nil
	}
	var victim *Session
	for _, sess := range s.sessions {
		if sess == keep || skip[sess] || sess.ckPath == "" || sess.running.Load() {
			continue
		}
		if sessionState(sess.state.Load()) != stateLoaded {
			continue
		}
		if victim == nil || sess.lastTouch < victim.lastTouch {
			victim = sess
		}
	}
	if victim != nil {
		victim.state.Store(int32(stateEvicting))
	}
	return victim
}

// evictAttempts bounds evictSession's serialize-then-verify retries; a
// session still mutating after this many checkpoints stays loaded.
const evictAttempts = 3

// evictSession checkpoints the victim and drops its engine, reporting
// whether the session was actually unloaded. A failed checkpoint aborts
// the eviction (the session stays loaded and servable) — unloading
// without a durable copy would lose the δ accounting.
//
// Serialize-then-verify: a handler that passed ensureLoaded before the
// victim was marked stateEvicting can still acquire sess.mu after the
// checkpoint bytes were captured and legitimately mutate the engine
// (200 to the client). Unloading then would discard that mutation — the
// reload would roll NumRR and the δ/2^i query accounting backward. So
// after the disk write the engine is re-checked under sess.mu against
// the fingerprint serialized to disk: if it moved, the checkpoint is
// retaken; if the session joined background sampling (handleStart racing
// the victim pick), the eviction aborts — a running session is never
// evictable.
func (s *Server) evictSession(sess *Session) bool {
	for attempt := 0; attempt < evictAttempts; attempt++ {
		_, fp, err := s.saveSessionCheckpointFP(sess)
		if err != nil {
			break
		}
		sess.mu.Lock()
		if sess.online == nil {
			// Unloaded underneath us: nothing left to evict, and whoever
			// dropped the engine owned the loaded-counter transition.
			sess.state.Store(int32(stateUnloaded))
			sess.mu.Unlock()
			return true
		}
		if sess.running.Load() {
			sess.mu.Unlock()
			break
		}
		moved := sess.online.NumRR() != fp.numRR || sess.online.Queries() != fp.queries
		if !moved {
			sess.online = nil
			sess.state.Store(int32(stateUnloaded))
			sess.mu.Unlock()
			gSessionsLoaded.Set(float64(s.loaded.Add(-1)))
			mSessionsEvicted.Inc()
			if sess.graph != nil {
				// The session left memory: drop its residency reference and
				// let the graph itself become unloadable.
				s.releaseGraph(sess.graph)
				s.maybeUnloadGraphs(nil)
			}
			return true
		}
		sess.mu.Unlock()
		// The engine moved since serialization; checkpoint again so the
		// unloaded state matches what is on disk.
	}
	sess.mu.Lock()
	sess.state.Store(int32(stateLoaded))
	sess.mu.Unlock()
	return false
}

// sessionInfo builds the listing entry without taking the session mutex.
func (s *Server) sessionInfo(sess *Session) SessionInfo {
	info := SessionInfo{
		ID:         sess.ID,
		NumRR:      sess.statNumRR.Load(),
		MaxRR:      sess.maxRR,
		Weight:     sess.weight,
		Rate:       sess.rate,
		Burst:      sess.burst,
		Running:    sess.running.Load(),
		Loaded:     sessionState(sess.state.Load()) == stateLoaded,
		Checkpoint: sess.ckPath,
	}
	if sess.graph != nil {
		id := sess.graph.ident.Load()
		info.Graph = sess.graph.name
		info.GraphFingerprint = id.fingerprint
		info.GraphEpoch = id.epoch
	}
	if opts := sess.opts.Load(); opts != nil {
		info.K = opts.K
		info.Delta = opts.Delta
		info.Variant = variantWire(opts.Variant)
		info.Seed = opts.Seed
		info.Union = opts.UnionBudget
		info.Exact = opts.Exact
		info.BaseSeeds = opts.BaseSeeds
	}
	return info
}

// handleSessions serves the collection: GET lists, POST creates.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.smu.Lock()
		sessions := make([]*Session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			sessions = append(sessions, sess)
		}
		s.smu.Unlock()
		resp := SessionListResponse{Sessions: make([]SessionInfo, 0, len(sessions))}
		for _, sess := range sessions {
			resp.Sessions = append(resp.Sessions, s.sessionInfo(sess))
		}
		sort.Slice(resp.Sessions, func(i, j int) bool { return resp.Sessions[i].ID < resp.Sessions[j].ID })
		writeJSON(w, resp)
	case http.MethodPost:
		var spec SessionSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
			http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
			return
		}
		sess, status, err := s.createSession(spec)
		if err != nil {
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, s.sessionInfo(sess))
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// handleSessionByID serves one session: GET describes it, DELETE removes
// it together with its checkpoint files.
func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookup(id)
	if sess == nil {
		http.Error(w, fmt.Sprintf("unknown session %q", id), http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, s.sessionInfo(sess))
	case http.MethodDelete:
		if id == DefaultSessionID {
			http.Error(w, "cannot delete the default session (the legacy endpoints alias it)", http.StatusBadRequest)
			return
		}
		if !s.removeSession(sess) {
			mSessionConflicts.Inc()
			s.replyError(w, http.StatusConflict, fmt.Sprintf("session %q is being evicted; retry shortly", id))
			return
		}
		writeJSON(w, map[string]string{"deleted": id})
	default:
		http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
	}
}

// removeSession unregisters sess, waits out any in-flight sampler batch,
// and deletes its checkpoint generations (they belong to the manager's
// CheckpointDir; a deleted session must not resurrect on restart). It
// returns false — and does nothing — while an eviction is in flight:
// sessions are marked stateEvicting under smu (pickEvictionVictim), so
// checking under smu here cannot race the victim pick, and an eviction's
// own loaded/unloaded transition then never interleaves with the delete's
// (no double-decrement, no leaked increment when a failed eviction
// restores stateLoaded on an unregistered session).
func (s *Server) removeSession(sess *Session) bool {
	s.smu.Lock()
	if _, ok := s.sessions[sess.ID]; !ok {
		s.smu.Unlock()
		return true
	}
	if sessionState(sess.state.Load()) == stateEvicting {
		s.smu.Unlock()
		return false
	}
	delete(s.sessions, sess.ID)
	for i, id := range s.order {
		if id == sess.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.smu.Unlock()

	sess.running.Store(false)
	sess.mu.Lock() // barrier: wait out an in-flight batch or request
	sess.online = nil
	// The loaded/unloaded state is read under sess.mu (every transition
	// happens there), so a reload racing this delete is counted exactly
	// once whichever side wins the lock.
	wasLoaded := sessionState(sess.state.Load()) == stateLoaded
	if wasLoaded {
		gSessionsLoaded.Set(float64(s.loaded.Add(-1)))
	}
	sess.state.Store(int32(stateUnloaded))
	sess.mu.Unlock()
	if sess.graph != nil {
		if wasLoaded {
			s.releaseGraph(sess.graph)
		}
		sess.graph.sessions.Add(-1)
		s.maybeUnloadGraphs(nil)
	}

	if sess.ckPath != "" && s.cfg.CheckpointDir != "" &&
		filepath.Dir(sess.ckPath) == filepath.Clean(s.cfg.CheckpointDir) {
		os.Remove(sess.ckPath)
		os.Remove(sess.ckPath + ".prev")
	}
	mSessionsDeleted.Inc()
	return true
}

// parseVariant maps the wire names onto core variants ("" = plus, the
// paper's recommended setting and opimd's flag default).
func parseVariant(name string) (core.Variant, error) {
	switch strings.ToLower(name) {
	case "", "plus":
		return core.Plus, nil
	case "vanilla":
		return core.Vanilla, nil
	case "prime":
		return core.Prime, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want vanilla, plus or prime)", name)
}

// variantWire is parseVariant's inverse: SessionInfo.Variant round-trips
// into SessionSpec.Variant (the paper names from Variant.String do not).
func variantWire(v core.Variant) string {
	switch v {
	case core.Vanilla:
		return "vanilla"
	case core.Prime:
		return "prime"
	}
	return "plus"
}
