package tim

import (
	"testing"

	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/imm"
	"github.com/reprolab/opim/internal/rrset"
)

func testGraph(t testing.TB, n int32) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 8, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunBasic(t *testing.T) {
	g := testGraph(t, 800)
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Run(s, 10, 0.4, 0.1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("seeds = %d", len(res.Seeds))
	}
	if res.KPT < 1 || res.Theta < 1 || res.RRGenerated < res.Theta {
		t.Fatalf("accounting: %v", res)
	}
}

func TestRunErrors(t *testing.T) {
	g := testGraph(t, 100)
	s := rrset.NewSampler(g, diffusion.IC)
	if _, err := Run(s, 0, 0.3, 0.1, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(s, 5, 1.5, 0.1, 1, 1); err == nil {
		t.Error("ε=1.5 accepted")
	}
	if _, err := Run(s, 5, 0.3, 0, 1, 1); err == nil {
		t.Error("δ=0 accepted")
	}
}

func TestRunEdgelessGraph(t *testing.T) {
	b := graph.NewBuilder(10, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Run(s, 3, 0.3, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}

func TestRunPicksHubOnStar(t *testing.T) {
	g, err := gen.Star(400, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := Run(s, 1, 0.3, 0.1, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("TIM picked %d, want hub", res.Seeds[0])
	}
	// KPT must lower-bound σ(S°) = 1 + 399·0.3 = 120.7.
	if res.KPT > 120.7*1.2 {
		t.Fatalf("KPT = %v above the optimum", res.KPT)
	}
}

func TestRunDeterministic(t *testing.T) {
	g := testGraph(t, 500)
	s := rrset.NewSampler(g, diffusion.LT)
	a, err := Run(s, 5, 0.4, 0.1, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 5, 0.4, 0.1, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta != b.Theta || a.KPT != b.KPT {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestTIMComparableToIMM(t *testing.T) {
	// TIM and IMM have the same guarantee; seed quality should match, and
	// IMM should not need more RR sets (IMM's LB estimation is tighter —
	// that was IMM's contribution).
	g := testGraph(t, 1000)
	s := rrset.NewSampler(g, diffusion.IC)
	timRes, err := Run(s, 10, 0.3, 0.1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	immRes, err := imm.Run(s, 10, 0.3, 0.1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := diffusion.EstimateSpread(g, diffusion.IC, timRes.Seeds, 10000, 10, 0)
	b := diffusion.EstimateSpread(g, diffusion.IC, immRes.Seeds, 10000, 10, 0)
	if a.Spread < 0.85*b.Spread || b.Spread < 0.85*a.Spread {
		t.Fatalf("TIM %v vs IMM %v diverge", a, b)
	}
}

func TestWidth(t *testing.T) {
	g := testGraph(t, 100)
	s := rrset.NewSampler(g, diffusion.IC)
	var set []int32
	var want int64
	for v := int32(0); v < 5; v++ {
		set = append(set, v)
		want += int64(g.InDegree(v))
	}
	if got := width(s, set); got != want {
		t.Fatalf("width = %d, want %d", got, want)
	}
}
