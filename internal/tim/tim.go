// Package tim implements TIM⁺ [Tang, Xiao, Shi — SIGMOD 2014], the first
// practical RIS-based influence-maximization algorithm and IMM's
// predecessor (discussed in the paper's §7). It is included for
// completeness of the baseline family: TIM → IMM → SSA/D-SSA → OPIM-C.
//
// TIM has two phases:
//
//  1. KPT estimation: estimate a lower bound KPT⁺ on the optimal spread
//     from the *widths* of sampled RR sets — the width ω(R) is the number
//     of in-edges entering R's members, and E[1 − (1 − ω(R)/m)^k] relates
//     to the spread of the best size-k set.
//  2. Node selection: θ = λ/KPT⁺ fresh RR sets, then the greedy.
//
// As with the imm package, the original n^−ℓ failure probability is
// generalized to an explicit δ by substituting ln(1/δ) for ℓ·ln n.
package tim

import (
	"fmt"
	"math"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/maxcover"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// Result is the outcome of one TIM run.
type Result struct {
	// Seeds is the returned size-k seed set.
	Seeds []int32
	// KPT is the estimated lower bound on the optimal spread.
	KPT float64
	// Theta is the phase-2 sample size.
	Theta int64
	// RRGenerated counts RR sets across both phases.
	RRGenerated int64
	// Eps, Delta echo the parameters.
	Eps, Delta float64
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("TIM{k=%d KPT=%.1f θ=%d rr=%d}", len(r.Seeds), r.KPT, r.Theta, r.RRGenerated)
}

// Run executes TIM on the sampler's graph.
func Run(sampler *rrset.Sampler, k int, eps, delta float64, seed uint64, workers int) (*Result, error) {
	g := sampler.Graph()
	n := g.N()
	m := g.M()
	if k < 1 || int64(k) > int64(n) {
		return nil, fmt.Errorf("tim: k = %d outside [1, n=%d]", k, n)
	}
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("tim: ε = %v outside (0, 1)", eps)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("tim: δ = %v outside (0, 1)", delta)
	}
	if m == 0 {
		// Degenerate: no edges, every size-k set has spread k; any k nodes do.
		seeds := make([]int32, k)
		for i := range seeds {
			seeds[i] = int32(i)
		}
		return &Result{Seeds: seeds, KPT: float64(k), Theta: 1, Eps: eps, Delta: delta}, nil
	}

	root := rng.New(seed)
	res := &Result{Eps: eps, Delta: delta}
	lnInvDelta := math.Log(1 / delta)
	log2n := math.Log2(float64(n))

	// Phase 1: KPT estimation (TIM's Algorithm 2).
	kpt := 1.0
	phase1 := rrset.NewCollection(n)
	base1 := root.Split(1)
	maxI := int(log2n) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		ci := int64(math.Ceil((6*lnInvDelta + 6*math.Log(log2n+1)) * math.Pow(2, float64(i))))
		if add := ci - int64(phase1.Count()); add > 0 {
			rrset.Generate(phase1, sampler, int(add), base1, workers)
		}
		var sum float64
		for id := int32(0); id < int32(phase1.Count()); id++ {
			w := width(sampler, phase1.Set(id))
			kappa := 1 - math.Pow(1-float64(w)/float64(m), float64(k))
			sum += kappa
		}
		if sum/float64(phase1.Count()) > 1/math.Pow(2, float64(i)) {
			kpt = float64(n) * sum / (2 * float64(phase1.Count()))
			break
		}
	}
	res.RRGenerated += int64(phase1.Count())

	// KPT refinement (TIM⁺'s intermediate step): greedy on the phase-1 sets
	// and a fresh estimate of that seed set's spread give a second, often
	// tighter lower bound.
	refineSel := maxcover.Greedy(phase1, k)
	refine := rrset.NewCollection(n)
	refineCount := int64(math.Ceil((2 + eps) * float64(n) * lnInvDelta / (eps * eps * kpt)))
	if refineCount > 0 && refineCount < 1<<22 {
		rrset.Generate(refine, sampler, int(refineCount), root.Split(2), workers)
		res.RRGenerated += refineCount
		est := float64(n) * float64(refine.Coverage(refineSel.Seeds)) / float64(refine.Count())
		if refined := est / (1 + eps); refined > kpt {
			kpt = refined
		}
	}
	res.KPT = kpt

	// Phase 2: θ = λ/KPT with λ = (8+2ε)n(ln(1/δ) + ln C(n,k) + ln 2)ε⁻².
	lambda := (8 + 2*eps) * float64(n) * (lnInvDelta + bound.LnChoose(n, k) + math.Ln2) / (eps * eps)
	theta := int64(math.Ceil(lambda / kpt))
	if theta < 1 {
		theta = 1
	}
	res.Theta = theta
	phase2 := rrset.NewCollection(n)
	rrset.Generate(phase2, sampler, int(theta), root.Split(3), workers)
	res.RRGenerated += theta
	sel := maxcover.Greedy(phase2, k)
	res.Seeds = sel.Seeds
	return res, nil
}

// width returns ω(R): the number of edges entering R's members.
func width(s *rrset.Sampler, set []int32) int64 {
	var w int64
	g := s.Graph()
	for _, v := range set {
		w += int64(g.InDegree(v))
	}
	return w
}
