package obs

// Structured events: where metrics aggregate, events record. Every
// Snapshot of an OPIM session and every doubling round of OPIM-C emits one
// event carrying the paper quantities at that instant (θ1, θ2, Λ1, Λ2,
// σˡ, σᵘ, α, elapsed time), so a run's whole α-trajectory is replayable
// from its JSONL log instead of being scraped from stdout.

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Sink receives structured events. Implementations must be safe for
// concurrent use. Callers should go through Emit, which tolerates a nil
// Sink, so unconfigured observability costs one nil check.
type Sink interface {
	// Emit records one event. The fields map must not be retained or
	// mutated after Emit returns.
	Emit(event string, fields map[string]any)
}

// Emit forwards to s.Emit, doing nothing when s is nil.
func Emit(s Sink, event string, fields map[string]any) {
	if s != nil {
		s.Emit(event, fields)
	}
}

// JSONLSink writes one JSON object per event, one per line (JSON Lines).
// Each record carries three sink-added fields alongside the caller's:
//
//	seq   monotonically increasing sequence number (file order == seq order)
//	ts    RFC3339Nano UTC wall-clock timestamp
//	event the event name
//
// Records are buffered; call Flush (or Close, for sinks that own their
// file) to guarantee durability. Encoding errors are sticky and reported
// by Flush/Close.
type JSONLSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer // non-nil when the sink owns the underlying file
	seq    int64
	err    error
}

// NewJSONLSink wraps w. The caller retains ownership of w; Close only
// flushes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// CreateJSONL creates (or truncates) path and returns a sink that owns the
// file: Close flushes and closes it.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewJSONLSink(f)
	s.closer = f
	return s, nil
}

// Emit implements Sink.
func (s *JSONLSink) Emit(event string, fields map[string]any) {
	rec := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event

	s.mu.Lock()
	defer s.mu.Unlock()
	rec["seq"] = s.seq
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	s.seq++
	if s.err != nil {
		return
	}
	enc := json.NewEncoder(s.w) // Encode appends the newline
	if err := enc.Encode(rec); err != nil {
		s.err = err
	}
}

// Flush forces buffered records to the underlying writer and returns the
// first error encountered so far.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and, if the sink owns its file (CreateJSONL), closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	closer := s.closer
	s.closer = nil
	s.mu.Unlock()
	if closer != nil {
		if cerr := closer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// MemoryEvent is one event captured by a MemorySink.
type MemoryEvent struct {
	Event  string
	Fields map[string]any
}

// MemorySink collects events in memory — the Sink for tests and for
// programmatic consumers that post-process a run without touching disk.
type MemorySink struct {
	mu     sync.Mutex
	events []MemoryEvent
}

// Emit implements Sink; it deep-copies the fields map.
func (s *MemorySink) Emit(event string, fields map[string]any) {
	cp := make(map[string]any, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	s.mu.Lock()
	s.events = append(s.events, MemoryEvent{Event: event, Fields: cp})
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far, in order.
func (s *MemorySink) Events() []MemoryEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]MemoryEvent(nil), s.events...)
}

// Len returns the number of events emitted so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
