// Package obs is the repository's observability layer: dependency-free
// metrics (atomic counters, gauges, timers) and structured events (a JSONL
// sink). The hot paths — rrset.Generate, core.Online/Maximize, the opimd
// HTTP server — report through it, so every experiment and every server
// run produces machine-readable evidence of the quantities the paper
// reasons about: θ (RR sets generated), Λ1/Λ2 (coverages), σˡ/σᵘ (spread
// bounds), and α (the instance-specific approximation guarantee).
//
// Metrics live in a Registry; Default() is the process-wide registry that
// the instrumented packages use and that opimd's GET /metrics exposes.
// Metric updates are a handful of atomic operations per *batch* (never per
// RR set), so instrumentation cost is unmeasurable next to sampling.
//
// See docs/OBSERVABILITY.md for the catalogue of metric and event names
// and their mapping to paper quantities.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotone; this is not
// enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 point-in-time value, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates durations: count, sum, min, max. It is a histogram
// reduced to the moments the harness actually reads; safe for concurrent
// use.
type Timer struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min, max time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.sum += d
	t.mu.Unlock()
}

// TimerStats is a consistent copy of a Timer's accumulated moments.
type TimerStats struct {
	Count         int64
	Sum, Min, Max time.Duration
}

// Mean returns Sum/Count (0 when empty).
func (s TimerStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Stats returns a consistent snapshot of the timer.
func (t *Timer) Stats() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimerStats{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
}

// Registry is a namespace of metrics. Counter/Gauge/Timer get-or-create by
// name, so independent packages can share one registry without
// coordination. A name may only ever hold one metric kind; reusing it for
// another kind panics (it is a programming error, like a duplicate expvar).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the instrumented
// packages (rrset, core, server) and exposed by opimd's GET /metrics.
func Default() *Registry { return defaultRegistry }

// Labeled renders a metric name with Prometheus-style labels, e.g.
// Labeled("server_requests_total", "session", "alice") →
// `server_requests_total{session="alice"}`. The registry itself is
// label-unaware — each labeled name is an ordinary metric — so callers own
// the cardinality: only use values from a bounded, caller-controlled set
// (session ids, endpoint names), never request-derived free text.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Labeled(%q) with odd key/value list", name))
	}
	out := name + "{"
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + "=" + fmt.Sprintf("%q", kv[i+1])
	}
	return out + "}"
}

func (r *Registry) checkKind(name, kind string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: metric %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: metric %q already registered as gauge", name))
	}
	if _, ok := r.timers[name]; ok && kind != "timer" {
		panic(fmt.Sprintf("obs: metric %q already registered as timer", name))
	}
}

// Counter returns the counter registered under name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it if absent.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "timer")
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// TimerValues is the JSON form of one timer in a registry Snapshot.
type TimerValues struct {
	Count       int64   `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MinSeconds  float64 `json:"min_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// Snapshot is a consistent copy of every metric in a Registry — the body
// of opimd's GET /metrics in its JSON form.
type Snapshot struct {
	Counters map[string]int64       `json:"counters"`
	Gauges   map[string]float64     `json:"gauges"`
	Timers   map[string]TimerValues `json:"timers"`
}

// Snapshot copies out every metric value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]float64, len(gauges)),
		Timers:   make(map[string]TimerValues, len(timers)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, t := range timers {
		st := t.Stats()
		s.Timers[k] = TimerValues{
			Count:       st.Count,
			SumSeconds:  st.Sum.Seconds(),
			MinSeconds:  st.Min.Seconds(),
			MaxSeconds:  st.Max.Seconds(),
			MeanSeconds: st.Mean().Seconds(),
		}
	}
	return s
}

// WriteJSON writes the registry as one JSON object (map keys are emitted
// sorted by encoding/json, so output is deterministic for fixed values).
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Snapshot())
}

// WriteText writes a flat "name value" line per metric, sorted by name —
// a minimal text exposition for eyeballs and shell pipelines. Timers
// expand to name_count / name_sum_seconds / name_min_seconds /
// name_max_seconds lines.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Timers))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, t := range s.Timers {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, t.Count),
			fmt.Sprintf("%s_sum_seconds %g", k, t.SumSeconds),
			fmt.Sprintf("%s_min_seconds %g", k, t.MinSeconds),
			fmt.Sprintf("%s_max_seconds %g", k, t.MaxSeconds),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
