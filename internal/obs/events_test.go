package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func decodeLines(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %q: %v", len(out), sc.Text(), err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJSONLSinkBasic(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit("snapshot", map[string]any{"alpha": 0.5, "theta1": int64(100)})
	s.Emit("snapshot", map[string]any{"alpha": 0.75})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeLines(t, buf.Bytes())
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0]["event"] != "snapshot" || recs[0]["alpha"] != 0.5 {
		t.Fatalf("rec0 = %v", recs[0])
	}
	if recs[0]["seq"] != float64(0) || recs[1]["seq"] != float64(1) {
		t.Fatalf("seq = %v, %v", recs[0]["seq"], recs[1]["seq"])
	}
	if _, ok := recs[0]["ts"].(string); !ok {
		t.Fatalf("ts missing: %v", recs[0])
	}
}

// TestJSONLSinkConcurrentOrdering asserts the sink's core contract: every
// concurrently emitted record lands as one intact JSON line and the file
// order equals seq order.
func TestJSONLSinkConcurrentOrdering(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit("e", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeLines(t, buf.Bytes())
	if len(recs) != goroutines*per {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*per)
	}
	for i, r := range recs {
		if r["seq"] != float64(i) {
			t.Fatalf("record %d has seq %v: file order != seq order", i, r["seq"])
		}
	}
}

func TestJSONLSinkFlushMakesRecordsVisible(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit("e", nil)
	// Small records may sit in the bufio buffer until flushed.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(decodeLines(t, buf.Bytes())); got != 1 {
		t.Fatalf("after flush: %d records", got)
	}
}

func TestCreateJSONLOwnsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("done", map[string]any{"ok": true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := decodeLines(t, data)
	if len(recs) != 1 || recs[0]["event"] != "done" || recs[0]["ok"] != true {
		t.Fatalf("recs = %v", recs)
	}
	// Double Close is harmless.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitNilSink(t *testing.T) {
	Emit(nil, "ignored", map[string]any{"x": 1}) // must not panic
}

func TestMemorySink(t *testing.T) {
	var s MemorySink
	fields := map[string]any{"k": 1}
	Emit(&s, "a", fields)
	fields["k"] = 2 // sink must have copied
	s.Emit("b", nil)
	evs := s.Events()
	if s.Len() != 2 || len(evs) != 2 {
		t.Fatalf("len = %d / %d", s.Len(), len(evs))
	}
	if evs[0].Event != "a" || evs[0].Fields["k"] != 1 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[1].Event != "b" || len(evs[1].Fields) != 0 {
		t.Fatalf("ev1 = %+v", evs[1])
	}
}
