package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(40)
	c.Add(2)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	vals := []float64{0.25, 0.5, 0.75, 1.0}
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set(v)
			}
		}(v)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			got := g.Value()
			ok := got == 0 // before any Set lands
			for _, v := range vals {
				ok = ok || got == v
			}
			if !ok {
				t.Errorf("torn gauge read: %v", got)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= per; j++ {
				tm.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	st := tm.Stats()
	if st.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*per)
	}
	wantSum := time.Duration(goroutines) * time.Duration(per*(per+1)/2) * time.Microsecond
	if st.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", st.Sum, wantSum)
	}
	if st.Min != time.Microsecond || st.Max != per*time.Microsecond {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean() != wantSum/time.Duration(goroutines*per) {
		t.Fatalf("mean = %v", st.Mean())
	}
}

func TestTimerEmptyStats(t *testing.T) {
	var tm Timer
	st := tm.Stats()
	if st.Count != 0 || st.Sum != 0 || st.Min != 0 || st.Max != 0 || st.Mean() != 0 {
		t.Fatalf("empty timer stats = %+v", st)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Timer("z") != r.Timer("z") {
		t.Fatal("Timer not idempotent")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r.Gauge("dup")
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(1)
				r.Timer("t").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("shared counter = %d", got)
	}
}

func TestSnapshotAndWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	r.Gauge("alpha").Set(0.83)
	r.Timer("gen").Observe(20 * time.Millisecond)
	r.Timer("gen").Observe(40 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if s.Counters["hits"] != 7 {
		t.Fatalf("hits = %d", s.Counters["hits"])
	}
	if s.Gauges["alpha"] != 0.83 {
		t.Fatalf("alpha = %v", s.Gauges["alpha"])
	}
	tv := s.Timers["gen"]
	if tv.Count != 2 || tv.SumSeconds != 0.06 || tv.MinSeconds != 0.02 || tv.MaxSeconds != 0.04 || tv.MeanSeconds != 0.03 {
		t.Fatalf("timer = %+v", tv)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(2)
	r.Counter("a_count").Add(1)
	r.Gauge("g").Set(0.5)
	r.Timer("t").Observe(time.Second)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"a_count 1",
		"b_count 2",
		"g 0.5",
		"t_count 1",
		"t_max_seconds 1",
		"t_min_seconds 1",
		"t_sum_seconds 1",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
	Default().Counter("obs_test_probe").Inc()
	if Default().Snapshot().Counters["obs_test_probe"] < 1 {
		t.Fatal("default registry lost a counter")
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("m_total"); got != "m_total" {
		t.Fatalf("no labels: %q", got)
	}
	if got := Labeled("m_total", "session", "alice"); got != `m_total{session="alice"}` {
		t.Fatalf("one label: %q", got)
	}
	if got := Labeled("m_total", "session", "a", "endpoint", "snapshot"); got != `m_total{session="a",endpoint="snapshot"}` {
		t.Fatalf("two labels: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd key/value list did not panic")
		}
	}()
	Labeled("m_total", "orphan")
}

func TestLabeledNamesAreOrdinaryMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("sess_requests_total", "session", "a")).Add(2)
	r.Counter(Labeled("sess_requests_total", "session", "b")).Inc()
	snap := r.Snapshot()
	if snap.Counters[`sess_requests_total{session="a"}`] != 2 || snap.Counters[`sess_requests_total{session="b"}`] != 1 {
		t.Fatalf("labeled counters = %v", snap.Counters)
	}
}
