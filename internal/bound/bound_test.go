package bound

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSigmaLowerHandComputed(t *testing.T) {
	// Λ2 = 100, δ2 = e⁻¹ so a = 1, n = 1000, θ2 = 500.
	// s = √(100 + 2/9) − √(1/2); v = (s² − 1/18)·2.
	a := 1.0
	s := math.Sqrt(100+2*a/9) - math.Sqrt(a/2)
	want := (s*s - a/18) * 1000 / 500
	got := SigmaLower(100, 1000, 500, math.Exp(-1))
	if !close(got, want, 1e-9) {
		t.Fatalf("SigmaLower = %v, want %v", got, want)
	}
}

func TestSigmaLowerClampsNegative(t *testing.T) {
	// Tiny coverage with a harsh δ drives the raw formula negative.
	if got := SigmaLower(0.5, 1000, 10, 1e-9); got != 0 {
		t.Fatalf("SigmaLower = %v, want clamp to 0", got)
	}
}

func TestSigmaLowerClampsAtN(t *testing.T) {
	if got := SigmaLower(1e9, 100, 10, 0.5); got != 100 {
		t.Fatalf("SigmaLower = %v, want clamp to n", got)
	}
}

func TestSigmaLowerZeroTheta(t *testing.T) {
	if got := SigmaLower(10, 100, 0, 0.1); got != 0 {
		t.Fatalf("SigmaLower with θ2=0 = %v", got)
	}
}

func TestSigmaLowerMonotoneInLambda(t *testing.T) {
	f := func(raw uint16) bool {
		l := float64(raw)
		return SigmaLower(l+1, 10000, 1000, 0.01) >= SigmaLower(l, 10000, 1000, 0.01)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmaUpperHandComputed(t *testing.T) {
	a := math.Log(1 / 0.05)
	s := math.Sqrt(200+a/2) + math.Sqrt(a/2)
	want := s * s * 1000 / 400
	got := SigmaUpper(200, 1000, 400, 0.05)
	if !close(got, want, 1e-9) {
		t.Fatalf("SigmaUpper = %v, want %v", got, want)
	}
}

func TestSigmaUpperClamps(t *testing.T) {
	if got := SigmaUpper(0, 1000, 1000000, 0.999999); got != 1 {
		t.Fatalf("SigmaUpper floor = %v, want 1", got)
	}
	if got := SigmaUpper(1e12, 100, 10, 0.5); got != 100 {
		t.Fatalf("SigmaUpper cap = %v, want n", got)
	}
	if got := SigmaUpper(5, 77, 0, 0.1); got != 77 {
		t.Fatalf("SigmaUpper with θ1=0 = %v, want n", got)
	}
}

func TestSigmaBoundsTightenWithSamples(t *testing.T) {
	// With coverage scaling linearly in θ, more samples tighten both bounds
	// toward the true spread.
	n := int32(10000)
	trueSpread := 250.0
	var prevGap float64 = math.Inf(1)
	for _, theta := range []int64{1000, 10000, 100000} {
		lam := trueSpread * float64(theta) / float64(n)
		lo := SigmaLower(lam, n, theta, 0.01)
		hi := SigmaUpper(lam/OneMinusInvE, n, theta, 0.01)
		if lo > trueSpread {
			t.Fatalf("θ=%d: lower bound %v above true spread", theta, lo)
		}
		gap := hi - lo
		if gap >= prevGap {
			t.Fatalf("θ=%d: gap %v did not shrink from %v", theta, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestAlpha(t *testing.T) {
	if got := Alpha(50, 100); got != 0.5 {
		t.Fatalf("Alpha = %v", got)
	}
	if got := Alpha(150, 100); got != 1 {
		t.Fatalf("Alpha clamp high = %v", got)
	}
	if got := Alpha(-5, 100); got != 0 {
		t.Fatalf("Alpha clamp low = %v", got)
	}
	if got := Alpha(5, 0); got != 0 {
		t.Fatalf("Alpha zero denominator = %v", got)
	}
}

func TestLnChoose(t *testing.T) {
	cases := []struct {
		n    int32
		k    int
		want float64
	}{
		{10, 0, 0},
		{10, 10, 0},
		{10, 1, math.Log(10)},
		{10, 9, math.Log(10)},
		{5, 2, math.Log(10)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LnChoose(c.n, c.k); !close(got, c.want, 1e-9) {
			t.Fatalf("LnChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LnChoose(5, 6), -1) || !math.IsInf(LnChoose(5, -1), -1) {
		t.Fatal("out-of-range LnChoose not −Inf")
	}
}

func TestLnChooseSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int32(nRaw%100) + 2
		k := int(kRaw) % int(n)
		return close(LnChoose(n, k), LnChoose(n, int(n)-k), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLemma61SamplesScaling(t *testing.T) {
	base := Lemma61Samples(100000, 50, 0.1, 0.01)
	if base <= 0 {
		t.Fatalf("Lemma61Samples = %v", base)
	}
	// Halving ε quadruples the requirement.
	tight := Lemma61Samples(100000, 50, 0.05, 0.01)
	if !close(tight/base, 4, 1e-9) {
		t.Fatalf("ε-scaling ratio = %v, want 4", tight/base)
	}
	// Smaller δ needs more samples.
	if Lemma61Samples(100000, 50, 0.1, 0.001) <= base {
		t.Fatal("smaller δ did not increase sample count")
	}
	// Larger k needs fewer samples per Lemma 6.1's 1/k factor (the ln C(n,k)
	// growth is slower than linear in k for k ≪ n).
	if Lemma61Samples(100000, 100, 0.1, 0.01) >= base {
		t.Fatal("doubling k did not decrease the bound")
	}
}

func TestThetaMaxTheta0Relation(t *testing.T) {
	n, k := int32(50000), 50
	eps, delta := 0.1, 0.01
	tm := ThetaMax(n, k, eps, delta)
	t0 := Theta0(n, k, eps, delta)
	if !close(t0, tm*eps*eps*float64(k)/float64(n), 1e-6) {
		t.Fatalf("θ0 = %v does not satisfy eq. (17)", t0)
	}
	// θ0 is independent of ε.
	if !close(Theta0(n, k, 0.01, delta), t0, 1e-6*t0) {
		t.Fatal("θ0 depends on ε")
	}
	if tm <= t0 {
		t.Fatalf("θmax = %v not above θ0 = %v", tm, t0)
	}
}

func TestImaxRounds(t *testing.T) {
	if got := ImaxRounds(1024, 1); got != 10 {
		t.Fatalf("ImaxRounds(1024,1) = %d", got)
	}
	if got := ImaxRounds(1000, 1); got != 10 {
		t.Fatalf("ImaxRounds(1000,1) = %d (⌈log2 1000⌉ = 10)", got)
	}
	if got := ImaxRounds(1, 10); got != 1 {
		t.Fatalf("degenerate ImaxRounds = %d", got)
	}
	if got := ImaxRounds(5, 0); got != 1 {
		t.Fatalf("zero θ0 ImaxRounds = %d", got)
	}
}

func TestBorgsBetaExample(t *testing.T) {
	// §3.2's example: to reach β = 0.1 on n = 10⁵, m = 10⁶ requires more
	// than 2×10¹² edges examined.
	n, m := int32(100000), int64(1000000)
	gamma := int64(2e12)
	if beta := BorgsBeta(gamma, n, m); beta >= 0.12 {
		t.Fatalf("β(2e12) = %v; paper says ≈ 0.1 needs > 2e12 edges", beta)
	}
	if BorgsAlpha(int64(1e18), n, m) != 0.25 {
		t.Fatal("BorgsAlpha not capped at 1/4")
	}
	if BorgsBeta(0, n, m) != 0 {
		t.Fatal("β(0) != 0")
	}
	if BorgsBeta(100, 1, 0) != 0 {
		t.Fatal("β degenerate n not 0")
	}
}

func TestAdoptionGuaranteeSchedule(t *testing.T) {
	if AdoptionGuarantee(0) != 0 {
		t.Fatal("no completed executions must report 0")
	}
	if AdoptionGuarantee(1) != 0 {
		t.Fatal("first execution has ε = 1−1/e, guarantee 0")
	}
	if got := AdoptionGuarantee(2); !close(got, OneMinusInvE/2, 1e-12) {
		t.Fatalf("AdoptionGuarantee(2) = %v, want (1−1/e)/2", got)
	}
	// Monotone, capped below 1−1/e.
	prev := 0.0
	for i := 1; i < 30; i++ {
		g := AdoptionGuarantee(i)
		if g < prev {
			t.Fatalf("guarantee decreased at %d", i)
		}
		if g >= OneMinusInvE {
			t.Fatalf("guarantee reached 1−1/e at %d", i)
		}
		prev = g
	}
	// Consistency: guarantee after i executions equals (1−1/e) − ε_i.
	for i := 1; i < 20; i++ {
		if !close(AdoptionGuarantee(i), OneMinusInvE-AdoptionEps(i), 1e-12) {
			t.Fatalf("schedule inconsistency at %d", i)
		}
	}
}

func TestLemma44RatioNearOne(t *testing.T) {
	// Figure 1: with Λ2 = 100 the ratio is close to 1 across the plotted
	// ranges δ ∈ [1e−10, 0.1], Λ1 ∈ {10², 10³, 10⁴, 10⁵}.
	for _, delta := range []float64{1e-10, 1e-6, 1e-3, 0.1} {
		for _, lambda1 := range []float64{100, 1000, 10000, 100000} {
			r := Lemma44Ratio(lambda1, 100, delta)
			if math.IsNaN(r) || r < 0.8 || r > 1 {
				t.Fatalf("ratio(Λ1=%v, δ=%v) = %v, want in (0.8, 1]", lambda1, delta, r)
			}
		}
	}
}

func TestLemma44FGMonotonicity(t *testing.T) {
	// Appendix B: f is decreasing in x, g is increasing in x.
	for x := 1.0; x < 20; x += 0.5 {
		if Lemma44F(100, x+0.5) > Lemma44F(100, x) {
			t.Fatalf("f not decreasing at x=%v", x)
		}
		if Lemma44G(100, x+0.5) < Lemma44G(100, x) {
			t.Fatalf("g not increasing at x=%v", x)
		}
	}
}

func TestOneMinusInvE(t *testing.T) {
	if !close(OneMinusInvE, 0.6321205588285577, 1e-12) {
		t.Fatalf("OneMinusInvE = %v", OneMinusInvE)
	}
}
