package bound

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reprolab/opim/internal/rng"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},   // I_x(1,1) = x
		{2, 1, 0.5, 0.25},  // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},  // I_x(1,2) = 1−(1−x)²
		{2, 2, 0.5, 0.5},   // symmetric beta at its median
		{5, 5, 0.5, 0.5},   // ditto
		{3, 1, 0.2, 0.008}, // x³
		{1, 3, 0.2, 0.488}, // 1−0.8³
		{2, 3, 0, 0},       // boundary
		{2, 3, 1, 1},       // boundary
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	f := func(ar, br, xr uint8) bool {
		a := float64(ar%50) + 1
		b := float64(br%50) + 1
		x := float64(xr) / 256
		return math.Abs(RegIncBeta(a, b, x)-(1-RegIncBeta(b, a, 1-x))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(3, 7, x)
		if v < prev-1e-12 {
			t.Fatalf("I_x(3,7) not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestBetaInvInverse(t *testing.T) {
	f := func(ar, br, pr uint8) bool {
		a := float64(ar%30) + 1
		b := float64(br%30) + 1
		p := (float64(pr) + 0.5) / 257
		x := BetaInv(a, b, p)
		return math.Abs(RegIncBeta(a, b, x)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if BetaInv(2, 3, 0) != 0 || BetaInv(2, 3, 1) != 1 {
		t.Fatal("BetaInv boundaries wrong")
	}
}

// binomTail computes Pr[Binom(n,p) ≥ k] directly for small n.
func binomTail(n, k int64, p float64) float64 {
	var sum float64
	for i := k; i <= n; i++ {
		sum += math.Exp(lgamma(float64(n)+1)-lgamma(float64(i)+1)-lgamma(float64(n-i)+1)) *
			math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
	}
	return sum
}

func TestBinomialLowerPAgainstDirectTail(t *testing.T) {
	// At p = BinomialLowerP(k, θ, δ): Pr[Binom(θ,p) ≥ k] = δ exactly.
	for _, tc := range []struct {
		k, theta int64
		delta    float64
	}{
		{3, 20, 0.05}, {10, 50, 0.01}, {1, 10, 0.1}, {19, 20, 0.05},
	} {
		p := BinomialLowerP(tc.k, tc.theta, tc.delta)
		if got := binomTail(tc.theta, tc.k, p); math.Abs(got-tc.delta) > 1e-6 {
			t.Errorf("k=%d θ=%d: tail at lower limit = %v, want %v", tc.k, tc.theta, got, tc.delta)
		}
	}
	if BinomialLowerP(0, 10, 0.05) != 0 {
		t.Error("k=0 lower limit not 0")
	}
}

func TestBinomialUpperPAgainstDirectTail(t *testing.T) {
	// At p = BinomialUpperP(k, θ, δ): Pr[Binom(θ,p) ≤ k] = δ exactly.
	for _, tc := range []struct {
		k, theta int64
		delta    float64
	}{
		{3, 20, 0.05}, {10, 50, 0.01}, {0, 10, 0.1},
	} {
		p := BinomialUpperP(tc.k, tc.theta, tc.delta)
		got := 1 - binomTail(tc.theta, tc.k+1, p)
		if math.Abs(got-tc.delta) > 1e-6 {
			t.Errorf("k=%d θ=%d: cdf at upper limit = %v, want %v", tc.k, tc.theta, got, tc.delta)
		}
	}
	if BinomialUpperP(10, 10, 0.05) != 1 {
		t.Error("k=θ upper limit not 1")
	}
}

func TestClopperPearsonCoverageStatistical(t *testing.T) {
	// Draw many binomials with known p and verify the one-sided intervals
	// violate at rate ≤ δ.
	src := rng.New(42)
	const (
		trials = 3000
		theta  = 400
		p      = 0.13
		delta  = 0.1
	)
	lowViol, highViol := 0, 0
	for i := 0; i < trials; i++ {
		var k int64
		for j := 0; j < theta; j++ {
			if src.Float64() < p {
				k++
			}
		}
		if BinomialLowerP(k, theta, delta) > p {
			lowViol++
		}
		if BinomialUpperP(k, theta, delta) < p {
			highViol++
		}
	}
	if rate := float64(lowViol) / trials; rate > delta*1.3 {
		t.Fatalf("lower limit violated at rate %v > δ", rate)
	}
	if rate := float64(highViol) / trials; rate > delta*1.3 {
		t.Fatalf("upper limit violated at rate %v > δ", rate)
	}
}

func TestSigmaExactConsistentWithMartingale(t *testing.T) {
	// Both bound pairs must bracket the true spread; the exact pair is
	// typically tighter. Scenario: n=10000, true σ=300, θ=5000 samples,
	// expected coverage 150.
	n := int32(10000)
	theta := int64(5000)
	lambda := int64(150)
	delta := 0.01

	exLo := SigmaLowerExact(lambda, theta, n, delta)
	maLo := SigmaLower(float64(lambda), n, theta, delta)
	if exLo < maLo*0.9 {
		t.Fatalf("exact lower %v much looser than martingale %v", exLo, maLo)
	}
	// Both lower bounds stay below the unbiased point estimate.
	point := float64(n) * float64(lambda) / float64(theta)
	if exLo > point || maLo > point {
		t.Fatalf("lower bounds above point estimate: exact %v, martingale %v, point %v", exLo, maLo, point)
	}

	exHi := SigmaUpperExact(float64(lambda), theta, n, delta)
	maHi := SigmaUpper(float64(lambda), n, theta, delta)
	if exHi < point || maHi < point {
		t.Fatalf("upper bounds below point estimate")
	}
	if exHi > maHi*1.1 {
		t.Fatalf("exact upper %v much looser than martingale %v", exHi, maHi)
	}
}

func TestSigmaExactEdgeCases(t *testing.T) {
	if got := SigmaLowerExact(5, 0, 100, 0.1); got != 0 {
		t.Fatalf("θ=0 lower = %v", got)
	}
	if got := SigmaUpperExact(5, 0, 100, 0.1); got != 100 {
		t.Fatalf("θ=0 upper = %v", got)
	}
	if got := SigmaUpperExact(0, 100, 50, 0.5); got < 1 {
		t.Fatalf("upper floor = %v", got)
	}
	if got := SigmaUpperExact(1e9, 100, 50, 0.5); got != 50 {
		t.Fatalf("upper cap = %v", got)
	}
}
