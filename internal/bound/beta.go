package bound

// Exact binomial (Clopper–Pearson) alternatives to the martingale bounds
// of §4. For a FIXED number θ of RR sets the coverage Λ(S) is exactly
// Binomial(θ, σ(S)/n), so exact binomial confidence limits are valid and
// usually tighter than eqs. (5)/(8) — an instance of the "tightened
// bounds" direction the paper pursues in §5. The library exposes them as
// the experimental Exact option; the default remains the paper's formulas.
//
// The quantile inversions go through the regularized incomplete beta
// function I_x(a, b), computed with the standard Lentz continued fraction.

import "math"

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x ∈ [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Continued fraction converges fast for x < (a+1)/(a+b+2); use the
	// symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction of the incomplete beta function
// (modified Lentz's method).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaInv returns the p-quantile of the Beta(a, b) distribution, i.e. the
// x with I_x(a, b) = p, by bisection (monotone, always converges).
func BetaInv(a, b, p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2
}

// BinomialLowerP returns the Clopper–Pearson lower confidence limit on the
// success probability p of a Binomial(theta, p) given k observed successes:
// the largest p0 with Pr[Binom(theta, p0) ≥ k] ≤ delta, i.e.
// BetaInv(k, theta−k+1, delta). k = 0 yields 0.
func BinomialLowerP(k, theta int64, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	if k >= theta {
		return BetaInv(float64(theta), 1, delta)
	}
	return BetaInv(float64(k), float64(theta-k+1), delta)
}

// BinomialUpperP returns the Clopper–Pearson upper confidence limit:
// the smallest p0 with Pr[Binom(theta, p0) ≤ k] ≤ delta, i.e.
// BetaInv(k+1, theta−k, 1−delta). k = theta yields 1.
func BinomialUpperP(k, theta int64, delta float64) float64 {
	if k >= theta {
		return 1
	}
	if k < 0 {
		k = 0
	}
	return BetaInv(float64(k+1), float64(theta-k), 1-delta)
}

// SigmaLowerExact is the Clopper–Pearson counterpart of eq. (5): a lower
// bound on σ(S) from its coverage Λ2 in θ2 i.i.d. RR sets, valid with
// probability ≥ 1−δ2.
func SigmaLowerExact(lambda2, theta2 int64, n int32, delta2 float64) float64 {
	if theta2 <= 0 {
		return 0
	}
	return float64(n) * BinomialLowerP(lambda2, theta2, delta2)
}

// SigmaUpperExact is the Clopper–Pearson counterpart of eqs. (8)/(13):
// given a valid upper bound ΛU on Λ1(S°) (greedy, eq. 10, or Leskovec),
// it upper-bounds σ(S°) with probability ≥ 1−δ1. ΛU is rounded up; the
// resulting bound can only loosen.
func SigmaUpperExact(lambdaUpper float64, theta1 int64, n int32, delta1 float64) float64 {
	if theta1 <= 0 {
		return float64(n)
	}
	k := int64(math.Ceil(lambdaUpper))
	v := float64(n) * BinomialUpperP(k, theta1, delta1)
	if v < 1 {
		v = 1
	}
	if v > float64(n) {
		v = float64(n)
	}
	return v
}
