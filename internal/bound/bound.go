// Package bound implements the pure mathematics of the paper's quality
// guarantees: the martingale concentration bounds of §4 (eqs. 5 and 8),
// the tightened upper bounds of §5 (eqs. 13 and 15), the OPIM-C sample
// budgets of §6 (eqs. 16 and 17, via Lemma 6.1), Borgs et al.'s β (§3.2),
// the OPIM-adoption guarantee schedule (§3.3), and the Lemma 4.4 ratio
// plotted in Figure 1.
//
// All functions are deterministic float math with no dependencies, so every
// algorithm package shares one verified implementation of each formula.
package bound

import "math"

// OneMinusInvE is 1 − 1/e, the greedy approximation factor for monotone
// submodular maximization.
var OneMinusInvE = 1 - 1/math.E

// SigmaLower computes σˡ(S*) per eq. (5):
//
//	σˡ(S*) = ( (√(Λ2(S*) + 2a/9) − √(a/2))² − a/18 ) · n/θ2,  a = ln(1/δ2).
//
// It lower-bounds σ(S*) with probability ≥ 1−δ2 (Lemma 4.2). The raw
// formula can go negative when Λ2 is small relative to a; the result is
// clamped to [0, n], which preserves validity (σ ≥ 0 always holds).
func SigmaLower(lambda2 float64, n int32, theta2 int64, delta2 float64) float64 {
	if theta2 <= 0 {
		return 0
	}
	a := math.Log(1 / delta2)
	s := math.Sqrt(lambda2+2*a/9) - math.Sqrt(a/2)
	v := (s*s - a/18) * float64(n) / float64(theta2)
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return float64(n)
	}
	return v
}

// SigmaUpper computes the generic upper-bound shape shared by eqs. (8),
// (13), and (15):
//
//	σᵘ = ( √(Λᵁ + a/2) + √(a/2) )² · n/θ1,  a = ln(1/δ1),
//
// where Λᵁ is any valid upper bound on Λ1(S°): Λ1(S*)/(1−1/e) gives eq. (8)
// (OPIM⁰), Λ1ᵘ(S°) of eq. (10) gives eq. (13) (OPIM⁺), and Λ1⋄(S°) gives
// eq. (15) (OPIM′). The result is clamped to [1, n]: σ(S°) ≥ 1 whenever
// k ≥ 1, and can never exceed n.
func SigmaUpper(lambdaUpper float64, n int32, theta1 int64, delta1 float64) float64 {
	if theta1 <= 0 {
		return float64(n)
	}
	a := math.Log(1 / delta1)
	s := math.Sqrt(lambdaUpper+a/2) + math.Sqrt(a/2)
	v := s * s * float64(n) / float64(theta1)
	if v < 1 {
		v = 1
	}
	if v > float64(n) {
		v = float64(n)
	}
	return v
}

// Alpha combines a spread lower bound and optimum upper bound into the
// reported approximation guarantee α = σˡ/σᵘ, clamped to [0, 1].
func Alpha(sigmaLower, sigmaUpper float64) float64 {
	if sigmaUpper <= 0 {
		return 0
	}
	a := sigmaLower / sigmaUpper
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// LnChoose returns ln C(n, k). k outside [0, n] yields −Inf (an impossible
// event), matching the union-bound usage ln C(n,k) + ln(1/δ).
func LnChoose(n int32, k int) float64 {
	if k < 0 || int64(k) > int64(n) {
		return math.Inf(-1)
	}
	if k == 0 || int64(k) == int64(n) {
		return 0
	}
	if int64(k) > int64(n)/2 {
		k = int(int64(n) - int64(k))
	}
	var s float64
	for i := 0; i < k; i++ {
		s += math.Log(float64(n)-float64(i)) - math.Log(float64(i)+1)
	}
	return s
}

// Lemma61Samples returns the RR-set count of Lemma 6.1 [Tang et al. 2015]:
//
//	θ ≥ 2n( (1−1/e)·√ln(2/δ) + √((1−1/e)(ln C(n,k) + ln(2/δ))) )² / (ε²k),
//
// sufficient for the greedy seed set over θ RR sets to be a (1−1/e−ε)-
// approximation with probability ≥ 1−δ.
func Lemma61Samples(n int32, k int, eps, delta float64) float64 {
	a := OneMinusInvE * math.Sqrt(math.Log(2/delta))
	b := math.Sqrt(OneMinusInvE * (LnChoose(n, k) + math.Log(2/delta)))
	return 2 * float64(n) * (a + b) * (a + b) / (eps * eps * float64(k))
}

// ThetaMax returns eq. (16): the RR-set cap of OPIM-C, i.e. Lemma 6.1's
// bound instantiated with failure budget δ/3.
func ThetaMax(n int32, k int, eps, delta float64) float64 {
	return Lemma61Samples(n, k, eps, delta/3)
}

// Theta0 returns eq. (17): the initial per-half RR-set count of OPIM-C,
// θ0 = θmax · ε²k/n (which is independent of ε).
func Theta0(n int32, k int, eps, delta float64) float64 {
	return ThetaMax(n, k, eps, delta) * eps * eps * float64(k) / float64(n)
}

// BorgsBeta returns Borgs et al.'s quality indicator (§3.2):
//
//	β = γ / (1492992 · (n+m) · ln n),
//
// where γ is the number of edges examined while building RR sets. The
// guarantee their OPIM algorithm reports is min{1/4, β}.
func BorgsBeta(gamma int64, n int32, m int64) float64 {
	if n < 2 {
		return 0
	}
	return float64(gamma) / (1492992 * float64(int64(n)+m) * math.Log(float64(n)))
}

// BorgsAlpha returns min{1/4, β}, the approximation guarantee reported by
// Borgs et al.'s OPIM algorithm.
func BorgsAlpha(gamma int64, n int32, m int64) float64 {
	return math.Min(0.25, BorgsBeta(gamma, n, m))
}

// AdoptionGuarantee returns the approximation ratio reported by the §3.3
// OPIM-adoption after completed executions of the underlying (1−1/e−ε)
// algorithm: the i-th execution uses ε_i = (1−1/e)/2^{i−1}, so after i
// completed executions the adoption reports (1−1/e)(1 − 2^{−(i−1)}); with
// no completed executions it reports 0.
func AdoptionGuarantee(completed int) float64 {
	if completed <= 0 {
		return 0
	}
	return OneMinusInvE * (1 - math.Pow(2, -float64(completed-1)))
}

// AdoptionEps returns ε_i = (1−1/e)/2^{i−1} for the i-th (1-based)
// execution of the adopted algorithm.
func AdoptionEps(i int) float64 {
	return OneMinusInvE / math.Pow(2, float64(i-1))
}

// Lemma44F is f(x) = (√(Λ2 + 2x/9) − √(x/2))² − x/18 from Lemma 4.4.
func Lemma44F(lambda2, x float64) float64 {
	s := math.Sqrt(lambda2+2*x/9) - math.Sqrt(x/2)
	return s*s - x/18
}

// Lemma44G is g(x) = (√(Λ1/(1−1/e) + x/2) + √(x/2))² from Lemma 4.4.
func Lemma44G(lambda1, x float64) float64 {
	s := math.Sqrt(lambda1/OneMinusInvE+x/2) + math.Sqrt(x/2)
	return s * s
}

// Lemma44Ratio is the quantity plotted in Figure 1:
//
//	f(ln 2/δ)·g(ln 1/δ) / ( f(ln 1/δ)·g(ln 2/δ) ),
//
// the worst-case loss of fixing δ1 = δ2 = δ/2 instead of optimizing the
// split. Values close to 1 mean the even split is near-optimal.
func Lemma44Ratio(lambda1, lambda2, delta float64) float64 {
	num := Lemma44F(lambda2, math.Log(2/delta)) * Lemma44G(lambda1, math.Log(1/delta))
	den := Lemma44F(lambda2, math.Log(1/delta)) * Lemma44G(lambda1, math.Log(2/delta))
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// ImaxRounds returns i_max = ⌈log2(θmax/θ0)⌉, the OPIM-C round cap
// (Algorithm 2, line 3). It is at least 1.
func ImaxRounds(thetaMax, theta0 float64) int {
	if theta0 <= 0 || thetaMax <= theta0 {
		return 1
	}
	i := int(math.Ceil(math.Log2(thetaMax / theta0)))
	if i < 1 {
		i = 1
	}
	return i
}
