package ssa

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rrset"
)

func testGraph(t testing.TB, n int32) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, 8, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSolveEps123(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.3, 0.5} {
		e0 := solveEps123(eps)
		if e0 <= 0 || e0 >= 1 {
			t.Fatalf("ε=%v: e0 = %v outside (0, 1)", eps, e0)
		}
		got := (2*e0+e0*e0)*(bound.OneMinusInvE-eps) + bound.OneMinusInvE*e0
		if math.Abs(got-eps) > 1e-9 {
			t.Fatalf("ε=%v: combination rule gives %v", eps, got)
		}
	}
}

func TestRunSSAFixBasic(t *testing.T) {
	g := testGraph(t, 800)
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := RunSSAFix(s, 10, 0.4, 0.1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("seeds = %d", len(res.Seeds))
	}
	if res.RRGenerated <= 0 || res.Iterations < 1 {
		t.Fatalf("accounting: %v", res)
	}
}

func TestRunDSSAFixBasic(t *testing.T) {
	g := testGraph(t, 800)
	s := rrset.NewSampler(g, diffusion.LT)
	res, err := RunDSSAFix(s, 10, 0.4, 0.1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("seeds = %d", len(res.Seeds))
	}
	if res.RRGenerated <= 0 {
		t.Fatalf("accounting: %v", res)
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t, 100)
	s := rrset.NewSampler(g, diffusion.IC)
	for name, run := range map[string]func() error{
		"ssa-k0":     func() error { _, err := RunSSAFix(s, 0, 0.3, 0.1, 1, 1); return err },
		"ssa-eps":    func() error { _, err := RunSSAFix(s, 5, 1.0, 0.1, 1, 1); return err },
		"ssa-delta":  func() error { _, err := RunSSAFix(s, 5, 0.3, 0, 1, 1); return err },
		"dssa-k0":    func() error { _, err := RunDSSAFix(s, 0, 0.3, 0.1, 1, 1); return err },
		"dssa-eps":   func() error { _, err := RunDSSAFix(s, 5, 0, 0.1, 1, 1); return err },
		"dssa-delta": func() error { _, err := RunDSSAFix(s, 5, 0.3, 1, 1, 1); return err },
	} {
		if run() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph(t, 500)
	s := rrset.NewSampler(g, diffusion.IC)
	a, err := RunDSSAFix(s, 5, 0.4, 0.1, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDSSAFix(s, 5, 0.4, 0.1, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.RRGenerated != b.RRGenerated || a.Iterations != b.Iterations {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestPicksHubOnStar(t *testing.T) {
	g, err := gen.Star(400, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	ssa, err := RunSSAFix(s, 1, 0.3, 0.1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ssa.Seeds[0] != 0 {
		t.Fatalf("SSA-Fix picked %d, want hub", ssa.Seeds[0])
	}
	dssa, err := RunDSSAFix(s, 1, 0.3, 0.1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dssa.Seeds[0] != 0 {
		t.Fatalf("D-SSA-Fix picked %d, want hub", dssa.Seeds[0])
	}
}

func TestSpreadComparableToGuaranteeTarget(t *testing.T) {
	g := testGraph(t, 1200)
	s := rrset.NewSampler(g, diffusion.IC)
	ssa, err := RunSSAFix(s, 10, 0.3, 0.1, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	dssa, err := RunDSSAFix(s, 10, 0.3, 0.1, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := diffusion.EstimateSpread(g, diffusion.IC, ssa.Seeds, 10000, 12, 0)
	b := diffusion.EstimateSpread(g, diffusion.IC, dssa.Seeds, 10000, 12, 0)
	// Both run the same greedy over RIS samples; spreads should be within
	// a modest factor of each other.
	if a.Spread < 0.7*b.Spread || b.Spread < 0.7*a.Spread {
		t.Fatalf("SSA-Fix %v vs D-SSA-Fix %v diverge", a, b)
	}
}

func TestThetaPrimeMaxMatchesFormula(t *testing.T) {
	n, k := int32(1000), 10
	eps, delta := 0.2, 0.05
	want := 8 * bound.OneMinusInvE * (math.Log(6/delta) + bound.LnChoose(n, k)) * float64(n) / (eps * eps * float64(k))
	if got := thetaPrimeMax(n, k, eps, delta); math.Abs(got-want) > 1e-6 {
		t.Fatalf("θ'max = %v, want %v", got, want)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Seeds: []int32{1}, RRGenerated: 5, Iterations: 2}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestLimitedRunsAbortOnBudget(t *testing.T) {
	g := testGraph(t, 800)
	s := rrset.NewSampler(g, diffusion.IC)
	// A 50-RR budget cannot complete either algorithm at ε=0.1.
	res, complete, err := RunSSAFixLimited(s, 10, 0.1, 0.1, 1, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("SSA-Fix claimed completion within 50 RR sets")
	}
	if res.Seeds != nil {
		t.Fatalf("aborted run returned seeds %v", res.Seeds)
	}
	dres, complete, err := RunDSSAFixLimited(s, 10, 0.1, 0.1, 1, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("D-SSA-Fix claimed completion within 50 RR sets")
	}
	if dres.Seeds != nil {
		t.Fatalf("aborted run returned seeds %v", dres.Seeds)
	}
}

func TestSSAFixStareBudgetAbort(t *testing.T) {
	// A budget big enough to pass the first "stop" but not the "stare"
	// exercises the second abort path. Find it adaptively: run unlimited
	// once to learn the full cost, then give ~60% of it.
	g := testGraph(t, 600)
	s := rrset.NewSampler(g, diffusion.IC)
	full, err := RunSSAFix(s, 5, 0.3, 0.1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.RRGenerated * 6 / 10
	if budget < 10 {
		t.Skip("run too small to split")
	}
	res, complete, err := RunSSAFixLimited(s, 5, 0.3, 0.1, 2, 2, budget)
	if err != nil {
		t.Fatal(err)
	}
	if complete && res.RRGenerated > budget {
		t.Fatalf("claimed completion beyond budget: %d > %d", res.RRGenerated, budget)
	}
}

func TestCapReachedPath(t *testing.T) {
	// A near-empty graph starves coverage so the stare check cannot pass;
	// both algorithms must terminate via the θ'max cap rather than loop.
	b := graph.NewBuilder(60, 1)
	b.AddEdge(0, 1, 0.01)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	res, err := RunSSAFix(s, 2, 0.05, 0.3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	dres, err := RunDSSAFix(s, 2, 0.05, 0.3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Seeds) != 2 {
		t.Fatalf("seeds = %v", dres.Seeds)
	}
}
