// Package ssa implements the stop-and-stare baselines the paper evaluates:
//
//   - SSA-Fix — the revised Stop-and-Stare algorithm of Huang et al. [18],
//     which restored the (1−1/e−ε) guarantee of Nguyen et al.'s SSA [28].
//   - D-SSA-Fix — the dynamic variant of Nguyen et al. [29], implemented
//     verbatim from Algorithm 3 reproduced in the OPIM paper's Appendix C.
//
// Both follow the stop-and-stare pattern: grow a collection R1 of RR sets
// by doubling ("stop"), derive a greedy seed set, then validate its spread
// estimate against an INDEPENDENT collection R2 ("stare"); terminate when
// the two estimates agree within the ε decomposition, or when R1 reaches
// the worst-case cap θ'max of Lemma 6.1 (with SSA's constant 8(1−1/e)).
//
// SSA-Fix here keeps the published control structure and ε1=ε2=ε3
// decomposition (solved from the same combination rule as Algorithm 3's
// line 14) with this library's bound plumbing; see DESIGN.md §3 for the
// substitution note.
package ssa

import (
	"fmt"
	"math"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/maxcover"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// Result is the outcome of one SSA-Fix or D-SSA-Fix run.
type Result struct {
	// Seeds is the returned size-k seed set.
	Seeds []int32
	// RRGenerated counts all RR sets generated (R1 stream plus stare sets).
	RRGenerated int64
	// Iterations is the number of doubling rounds executed.
	Iterations int
	// CapReached reports termination by the θ'max worst-case cap rather
	// than by the stare validation.
	CapReached bool
	// Eps, Delta echo the parameters.
	Eps, Delta float64
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("ssa{k=%d rr=%d iters=%d cap=%v}", len(r.Seeds), r.RRGenerated, r.Iterations, r.CapReached)
}

func validate(n int32, k int, eps, delta float64) error {
	if k < 1 || int64(k) > int64(n) {
		return fmt.Errorf("ssa: k = %d outside [1, n=%d]", k, n)
	}
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("ssa: ε = %v outside (0, 1)", eps)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("ssa: δ = %v outside (0, 1)", delta)
	}
	return nil
}

// thetaPrimeMax is Algorithm 3 line 1: 8(1−1/e)(ln(6/δ)+ln C(n,k))·n/(ε²k).
func thetaPrimeMax(n int32, k int, eps, delta float64) float64 {
	return 8 * bound.OneMinusInvE * (math.Log(6/delta) + bound.LnChoose(n, k)) * float64(n) / (eps * eps * float64(k))
}

// solveEps123 finds e0 with ε1 = ε2 = ε3 = e0 satisfying the Algorithm 3
// line-14 combination rule (2e0+e0²)(1−1/e−ε) + (1−1/e)e0 = ε, by bisection.
func solveEps123(eps float64) float64 {
	target := eps
	f := func(e0 float64) float64 {
		return (2*e0+e0*e0)*(bound.OneMinusInvE-eps) + bound.OneMinusInvE*e0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RunSSAFix executes SSA-Fix.
func RunSSAFix(sampler *rrset.Sampler, k int, eps, delta float64, seed uint64, workers int) (*Result, error) {
	res, _, err := RunSSAFixLimited(sampler, k, eps, delta, seed, workers, math.MaxInt64)
	return res, err
}

// RunSSAFixLimited is RunSSAFix with a hard cap on generated RR sets; it
// aborts with complete=false when the cap would be exceeded (used by the
// §3.3 OPIM-adoption).
func RunSSAFixLimited(sampler *rrset.Sampler, k int, eps, delta float64, seed uint64, workers int, maxRR int64) (res *Result, complete bool, err error) {
	g := sampler.Graph()
	n := g.N()
	if err := validate(n, k, eps, delta); err != nil {
		return nil, false, err
	}
	res = &Result{Eps: eps, Delta: delta}

	e0 := solveEps123(eps)
	thetaMax := thetaPrimeMax(n, k, eps, delta)
	// Round count for the union bound: doublings from the initial Λ-sized
	// sample up to θ'max.
	lambda0 := (2 + 2*e0/3) * math.Log(3/delta) / (e0 * e0)
	imax := bound.ImaxRounds(thetaMax, lambda0)
	deltaIter := delta / (3 * float64(imax))
	lnIter := math.Log(1 / deltaIter)

	// Initial "stop" size: enough coverage for a reliable R1 estimate.
	theta := int64(math.Ceil((1 + e0) * (2 + 2*e0/3) * lnIter / (e0 * e0)))
	if theta < 1 {
		theta = 1
	}
	lambdaMin := float64(theta)

	root := rng.New(seed)
	base1, base2 := root.Split(1), root.Split(2)
	r1 := rrset.NewCollection(n)

	for iter := 1; ; iter++ {
		res.Iterations = iter
		if theta+res.RRGenerated > maxRR {
			res.RRGenerated += int64(r1.Count())
			res.Seeds = nil
			return res, false, nil
		}
		if add := theta - int64(r1.Count()); add > 0 {
			rrset.Generate(r1, sampler, int(add), base1, workers)
		}
		sel := maxcover.Greedy(r1, k)
		res.Seeds = sel.Seeds
		theta1 := int64(r1.Count())

		if float64(sel.Coverage) >= lambdaMin {
			sigma1 := float64(n) * float64(sel.Coverage) / float64(theta1)
			// Stare: independent estimate with enough samples for an
			// ε2-accurate check of σ1/(1+ε1).
			need := (2 + 2*e0/3) * lnIter * float64(n) / (e0 * e0 * sigma1 / (1 + e0))
			theta2 := int64(math.Ceil(need))
			if theta2 < 1 {
				theta2 = 1
			}
			if theta1+theta2+res.RRGenerated > maxRR {
				res.RRGenerated += theta1
				res.Seeds = nil
				return res, false, nil
			}
			r2 := rrset.NewCollection(n)
			rrset.Generate(r2, sampler, int(theta2), base2.Split(uint64(iter)), workers)
			res.RRGenerated += theta2
			sigma2 := float64(n) * float64(r2.Coverage(sel.Seeds)) / float64(theta2)
			if sigma2 >= sigma1/(1+e0) {
				res.RRGenerated += theta1
				return res, true, nil
			}
		}
		if float64(theta1) >= thetaMax {
			res.CapReached = true
			res.RRGenerated += theta1
			return res, true, nil
		}
		theta *= 2
	}
}

// RunDSSAFix executes D-SSA-Fix exactly as Algorithm 3 (Appendix C).
func RunDSSAFix(sampler *rrset.Sampler, k int, eps, delta float64, seed uint64, workers int) (*Result, error) {
	res, _, err := RunDSSAFixLimited(sampler, k, eps, delta, seed, workers, math.MaxInt64)
	return res, err
}

// RunDSSAFixLimited is RunDSSAFix with a hard cap on generated RR sets; it
// aborts with complete=false when the cap would be exceeded.
func RunDSSAFixLimited(sampler *rrset.Sampler, k int, eps, delta float64, seed uint64, workers int, maxRR int64) (res *Result, complete bool, err error) {
	g := sampler.Graph()
	n := g.N()
	if err := validate(n, k, eps, delta); err != nil {
		return nil, false, err
	}
	res = &Result{Eps: eps, Delta: delta}

	// Line 1.
	thetaMax := thetaPrimeMax(n, k, eps, delta)
	// Line 2: i'max = ⌈log2(2·θ'max·ε² / ((2+2ε/3)·ln(3/δ)))⌉.
	imax := int(math.Ceil(math.Log2(2 * thetaMax * eps * eps / ((2 + 2*eps/3) * math.Log(3/delta)))))
	if imax < 1 {
		imax = 1
	}
	// Line 3.
	theta0 := (2 + 2*eps/3) * math.Log(3*float64(imax)/delta) / (eps * eps)
	lambda1Min := 1 + (1+eps)*theta0
	t0 := int64(math.Ceil(theta0))
	if t0 < 1 {
		t0 = 1
	}

	root := rng.New(seed)
	base := root.Split(1)
	var next uint64 // global RR stream index

	genInto := func(c *rrset.Collection, count int64) {
		// Stream-indexed split sources keep the single RR stream
		// R_1, R_2, … deterministic.
		start := next
		next += uint64(count)
		sc := sampler.NewScratch()
		for j := int64(0); j < count; j++ {
			src := base.Split(start + uint64(j))
			nodes, examined := sampler.Sample(src, sc)
			c.Add(nodes, examined)
		}
	}

	r1 := rrset.NewCollection(n)
	r2 := rrset.NewCollection(n)

	target := bound.OneMinusInvE - eps
	for i := 1; ; i++ {
		res.Iterations = i
		half := t0 << uint(i-1) // θ'0 · 2^{i−1}
		if 2*half > maxRR {
			res.RRGenerated = int64(next)
			res.Seeds = nil
			return res, false, nil
		}

		// Lines 5–6: R1 = first half of the stream prefix, R2 = second.
		// R1 of round i equals R1 ∪ R2 of round i−1; R2 is always fresh.
		for _, id := range allSets(r2) {
			r1.Add(r2.Set(id), 0)
		}
		if add := half - int64(r1.Count()); add > 0 {
			genInto(r1, add)
		}
		r2 = rrset.NewCollection(n)
		genInto(r2, half)

		theta1 := int64(r1.Count())
		theta2 := int64(r2.Count())

		// Line 7.
		sel := maxcover.Greedy(r1, k)
		res.Seeds = sel.Seeds

		// Lines 8–16.
		if float64(sel.Coverage) >= lambda1Min {
			sigma1 := float64(n) * float64(sel.Coverage) / float64(theta1)
			lambda2 := r2.Coverage(sel.Seeds)
			if lambda2 > 0 {
				sigma2 := float64(n) * float64(lambda2) / float64(theta2)
				pow := math.Pow(2, float64(i-1))
				epsA := sigma1/sigma2 - 1
				epsB := eps * math.Sqrt(float64(n)*(1+eps)/(pow*sigma2))
				epsC := eps * math.Sqrt(float64(n)*(1+eps)*target/((1+eps/3)*pow*sigma2))
				epsI := (epsA+epsB+epsA*epsB)*target + bound.OneMinusInvE*epsC
				if epsI <= eps {
					res.RRGenerated = int64(next)
					return res, true, nil
				}
			}
		}
		// Line 17.
		if float64(theta1) >= thetaMax {
			res.CapReached = true
			res.RRGenerated = int64(next)
			return res, true, nil
		}
	}
}

// allSets returns the ids 0..Count−1 of a collection.
func allSets(c *rrset.Collection) []int32 {
	ids := make([]int32, c.Count())
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}
