package ssa

import (
	"math"
	"testing"

	"github.com/reprolab/opim/internal/bound"
	"github.com/reprolab/opim/internal/diffusion"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
	"github.com/reprolab/opim/internal/rrset"
)

// TestAppendixCCounterexample reproduces the paper's Appendix C analysis of
// why D-SSA-Fix's ε_b check cannot provide instance-specific guarantees:
// on an edgeless graph with n = 10⁵, k = 1, δ' = 10⁻³ and θ2 = 10⁵ RR sets,
//
//   - every RR set is the singleton {root}, so σ(S*) = 1 for any seed;
//   - Pr[Λ2(S*) = 0] = (1 − 1/n)^θ2 ≈ e⁻¹ ≈ 0.37;
//   - the ε̂ that the Chernoff bound actually requires solves
//     ε̂² = (2 + 2ε̂/3)·n/(θ2·σ(S*))·ln(1/δ'), giving ε̂ ≈ 6.67,
//     while D-SSA's ε_b stays below it — so its acceptance test fires with
//     probability far above δ'.
//
// We verify each quantity numerically and by direct sampling.
func TestAppendixCCounterexample(t *testing.T) {
	const (
		n          = 100000
		theta2     = 100000
		deltaPrime = 1e-3
	)

	// Pr[Λ2(S*) = 0] = (1−1/n)^θ2 ≈ 0.3679 (paper: "0.37").
	pZero := math.Pow(1-1.0/n, theta2)
	if math.Abs(pZero-0.37) > 0.005 {
		t.Fatalf("Pr[Λ2 = 0] = %v, appendix says 0.37", pZero)
	}

	// ε̂ solves ε̂² = (2 + 2ε̂/3)·(n/(θ2·σ))·ln(1/δ') with σ(S*) = 1.
	lnInv := math.Log(1 / deltaPrime)
	f := func(e float64) float64 {
		return e*e - (2+2*e/3)*(float64(n)/float64(theta2))*lnInv
	}
	lo, hi := 0.0, 100.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	epsHat := (lo + hi) / 2
	if math.Abs(epsHat-6.67) > 0.05 {
		t.Fatalf("ε̂ = %v, appendix computes 6.67", epsHat)
	}

	// With ε = 1−1/e and σ2(S*) ≥ σ(S*) (which happens with probability
	// 1 − 0.37 = 0.63), the appendix's ratio ε_b²/ε̂² < 0.62 < 1.
	eps := bound.OneMinusInvE
	ratio := (2 + 2*eps/3) * (1 + eps) / (2 + 2*epsHat/3) // σ(S*)/σ2(S*) ≤ 1
	if ratio >= 0.62 {
		t.Fatalf("ε_b²/ε̂² bound = %v, appendix says < 0.62", ratio)
	}

	// Empirically confirm the RR-set structure on a (smaller) edgeless
	// graph: every set is a singleton and Pr[Λ2({v}) = 0] tracks
	// (1−1/n)^θ.
	b := graph.NewBuilder(2000, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := rrset.NewSampler(g, diffusion.IC)
	const trials = 300
	zeros := 0
	for trial := 0; trial < trials; trial++ {
		c := rrset.NewCollection(g.N())
		rrset.Generate(c, s, 2000, rng.New(uint64(trial)), 0)
		if c.TotalSize() != int64(c.Count()) {
			t.Fatal("edgeless RR set larger than a singleton")
		}
		if c.Degree(7) == 0 {
			zeros++
		}
	}
	want := math.Pow(1-1.0/2000, 2000) // ≈ e⁻¹
	got := float64(zeros) / trials
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("empirical Pr[Λ=0] = %v, want ≈ %v", got, want)
	}
}
