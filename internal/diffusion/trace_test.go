package diffusion

import (
	"testing"

	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/rng"
)

// RunICTrace must be Run(IC, …) with its randomness untouched: the same
// source state yields the same cascade, and the trace's successful
// attempts reconstruct exactly the non-seed activations.
func TestRunICTraceMatchesRun(t *testing.T) {
	g, err := gen.PreferentialAttachment(400, 4, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	simA := NewSimulator(g)
	simB := NewSimulator(g)
	seeds := []int32{0, 7, 42}
	for trial := 0; trial < 50; trial++ {
		src := rng.New(99).Split(uint64(trial))
		want := simA.Run(IC, seeds, src)

		src = rng.New(99).Split(uint64(trial))
		got, atts := simB.RunICTrace(seeds, src, nil)
		if got != want {
			t.Fatalf("trial %d: traced spread %d, untraced %d", trial, got, want)
		}

		// Successful attempts account for every non-seed activation, each
		// activated exactly once.
		activated := map[int32]bool{}
		for _, s := range seeds {
			activated[s] = true
		}
		for _, a := range atts {
			if !activated[a.From] {
				t.Fatalf("trial %d: attempt from inactive node %d", trial, a.From)
			}
			if a.Success {
				if activated[a.To] {
					t.Fatalf("trial %d: node %d activated twice", trial, a.To)
				}
				activated[a.To] = true
			}
		}
		if len(activated) != got {
			t.Fatalf("trial %d: trace reconstructs %d activations, spread was %d", trial, len(activated), got)
		}

		// Each (From,To) pair is tried at most once — the IC single-chance rule.
		tried := map[[2]int32]bool{}
		for _, a := range atts {
			k := [2]int32{a.From, a.To}
			if tried[k] {
				t.Fatalf("trial %d: edge %v tried twice", trial, k)
			}
			tried[k] = true
		}
	}
}

func TestRunICTraceReusesBuffer(t *testing.T) {
	g, err := gen.Line(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(g)
	buf := make([]Attempt, 0, 16)
	_, atts := sim.RunICTrace([]int32{0}, rng.New(1), buf[:0])
	if len(atts) != 4 {
		t.Fatalf("p=1 line trace has %d attempts, want 4", len(atts))
	}
	if cap(buf) >= len(atts) && &buf[:1][0] != &atts[0] {
		t.Fatal("trace did not reuse the caller's buffer")
	}
	for i, a := range atts {
		if !a.Success || a.From != int32(i) || a.To != int32(i+1) {
			t.Fatalf("attempt %d = %+v, want success %d→%d", i, a, i, i+1)
		}
	}
}
