package diffusion

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/opim/internal/gen"
	"github.com/reprolab/opim/internal/graph"
	"github.com/reprolab/opim/internal/rng"
)

// TestSpreadBoundsProperty: every cascade activates at least the distinct
// seeds and at most n nodes, for random graphs, models and seed sets.
func TestSpreadBoundsProperty(t *testing.T) {
	src := rng.New(101)
	g, err := gen.PreferentialAttachment(64, 4, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.Reweight(g, graph.WeightedCascade, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(g)
	f := func(seedRaw []uint8, modelBit bool) bool {
		if len(seedRaw) == 0 {
			return true
		}
		model := IC
		if modelBit {
			model = LT
		}
		seeds := make([]int32, 0, len(seedRaw))
		distinct := map[int32]bool{}
		for _, s := range seedRaw {
			v := int32(s) % g.N()
			seeds = append(seeds, v)
			distinct[v] = true
		}
		got := sim.Run(model, seeds, src)
		return got >= len(distinct) && got <= int(g.N())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadScaleInvarianceProperty: on an edgeless graph the spread equals
// exactly the number of distinct seeds, under both models.
func TestSpreadEdgelessExactProperty(t *testing.T) {
	b := graph.NewBuilder(32, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(g)
	src := rng.New(102)
	f := func(seedRaw []uint8, modelBit bool) bool {
		model := IC
		if modelBit {
			model = LT
		}
		seeds := make([]int32, 0, len(seedRaw))
		distinct := map[int32]bool{}
		for _, s := range seedRaw {
			v := int32(s) % 32
			seeds = append(seeds, v)
			distinct[v] = true
		}
		return sim.Run(model, seeds, src) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadMonotoneInProbability: raising every edge probability cannot
// lower the expected spread (checked with matched estimator noise).
func TestSpreadMonotoneInProbability(t *testing.T) {
	base, err := gen.PreferentialAttachment(300, 5, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	low, err := graph.Reweight(base, graph.Uniform, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := graph.Reweight(base, graph.Uniform, 0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 1, 2}
	for _, model := range []Model{IC, LT} {
		a := EstimateSpread(low, model, seeds, 20000, 4, 0)
		b := EstimateSpread(high, model, seeds, 20000, 4, 0)
		if b.Spread+4*(a.StdErr+b.StdErr) < a.Spread {
			t.Fatalf("%v: spread decreased when probabilities rose: %v → %v", model, a, b)
		}
	}
}
